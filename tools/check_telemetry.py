#!/usr/bin/env python3
"""Validate a strt telemetry directory (obs::TelemetrySink output).

Usage: check_telemetry.py TELEMETRY_DIR [--require-shards N]

Checks, with no dependencies beyond the standard library:

  metrics.prom   Prometheus text exposition format 0.0.4: every sample
                 line parses, metric names are legal, every sample is
                 covered by a preceding # TYPE, labels are well-formed
                 name="value" pairs with no duplicate label names and no
                 duplicate (family, labelset) series, histogram bucket
                 counts are cumulative and consistent with _count/_sum.
  trace.json     Chrome Trace Event Format carrying schema
                 strt.obs.trace.v1: complete "X" events only, span ids
                 unique per trace, parent links resolve within the
                 trace, durations non-negative.
  events.jsonl   one strt.obs.report.v2 JSON object per line.

With --require-shards N the exposition must additionally carry the
service's per-shard series -- strt_svc_shard_served, strt_svc_shard_batches
and strt_svc_shard_queue_depth, each labeled shard="0" .. shard="N-1".

Exit status 0 when everything holds; 1 with a message otherwise.
"""

import json
import re
import sys
from pathlib import Path

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[0-9eE.+-]+|NaN|[+-]Inf)$"
)
TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<type>counter|gauge|histogram|summary|untyped)$"
)

LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)

TRACE_SCHEMA = "strt.obs.trace.v1"
REPORT_SCHEMA = "strt.obs.report.v2"

# Per-shard series the service exports; --require-shards checks each one
# carries shard="0" .. shard="N-1".
SHARD_FAMILIES = (
    "strt_svc_shard_served",
    "strt_svc_shard_batches",
    "strt_svc_shard_queue_depth",
)


def fail(msg):
    print(f"check_telemetry: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_labels(labels, where):
    """Label body ({...} contents) -> dict; fails on malformed pairs or
    duplicate label names.  (Values containing a bare comma would split
    wrong; the exporter never emits any.)"""
    if not labels:
        return {}
    out = {}
    for pair in labels.split(","):
        m = LABEL_PAIR.match(pair)
        if not m:
            fail(f"{where}: malformed label pair {pair!r}")
        if m.group("name") in out:
            fail(f"{where}: duplicate label name {m.group('name')!r}")
        out[m.group("name")] = m.group("value")
    return out


def base_metric(name):
    """Strip histogram/summary sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prometheus(path, require_shards=0):
    types = {}
    histograms = {}  # family -> list of (le, cumulative_count)
    scalars = {}  # family suffix samples: _sum/_count values
    series = set()  # (name, frozen labelset) -- duplicates are illegal
    shard_values = {}  # family -> set of shard label values
    samples = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_LINE.match(line)
                if not m:
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                types[m.group("name")] = m.group("type")
            continue
        m = SAMPLE_LINE.match(line)
        if not m:
            fail(f"{path}:{lineno}: malformed sample line: {line!r}")
        name = m.group("name")
        family = base_metric(name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            fail(f"{path}:{lineno}: sample {name!r} has no # TYPE line")
        labelset = parse_labels(m.group("labels") or "",
                                f"{path}:{lineno}")
        key = (name, frozenset(labelset.items()))
        if key in series:
            fail(f"{path}:{lineno}: duplicate series {line!r}")
        series.add(key)
        if "shard" in labelset:
            shard_values.setdefault(name, set()).add(labelset["shard"])
        value = float(m.group("value")) if m.group("value") not in (
            "NaN", "+Inf", "-Inf") else m.group("value")
        samples += 1
        if declared == "histogram" and name.endswith("_bucket"):
            if "le" not in labelset:
                fail(f"{path}:{lineno}: histogram bucket without le label")
            histograms.setdefault(family, []).append(
                (labelset["le"], float(value)))
        elif declared == "histogram":
            scalars[name] = float(value)
    for family, buckets in histograms.items():
        counts = [c for (_le, c) in buckets]
        if counts != sorted(counts):
            fail(f"{path}: {family} bucket counts are not cumulative")
        if buckets[-1][0] != "+Inf":
            fail(f"{path}: {family} is missing the +Inf bucket")
        count = scalars.get(f"{family}_count")
        if count is None:
            fail(f"{path}: {family} has buckets but no _count sample")
        if buckets[-1][1] != count:
            fail(
                f"{path}: {family} +Inf bucket {buckets[-1][1]} != "
                f"_count {count}"
            )
        if f"{family}_sum" not in scalars:
            fail(f"{path}: {family} has buckets but no _sum sample")
    if require_shards:
        want = {str(k) for k in range(require_shards)}
        for family in SHARD_FAMILIES:
            got = shard_values.get(family, set())
            if not want <= got:
                fail(
                    f"{path}: {family} is missing shard series "
                    f"{sorted(want - got)} (have {sorted(got)})"
                )
    print(f"  metrics.prom: {samples} samples, "
          f"{len(histograms)} histogram(s), "
          f"{len(shard_values)} shard-labeled family(ies) -- ok")


def check_trace(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    schema = doc.get("otherData", {}).get("schema")
    if schema != TRACE_SCHEMA:
        fail(f"{path}: schema {schema!r}, expected {TRACE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
    spans_by_trace = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in ev:
                fail(f"{path}: event {i} is missing {key!r}")
        if ev["ph"] != "X":
            fail(f"{path}: event {i} is not a complete ('X') event")
        if ev["dur"] < 0:
            fail(f"{path}: event {i} has negative duration")
        args = ev["args"]
        for key in ("trace_id", "span_id", "parent"):
            if key not in args:
                fail(f"{path}: event {i} args is missing {key!r}")
        spans = spans_by_trace.setdefault(args["trace_id"], {})
        sid = args["span_id"]
        if sid in spans:
            fail(f"{path}: duplicate span id {sid} in trace "
                 f"{args['trace_id']}")
        spans[sid] = args["parent"]
    for trace_id, spans in spans_by_trace.items():
        for sid, parent in spans.items():
            if parent != 0 and parent not in spans:
                fail(f"{path}: trace {trace_id} span {sid} has dangling "
                     f"parent {parent}")
    print(f"  trace.json: {len(events)} events across "
          f"{len(spans_by_trace)} trace(s) -- ok")


def check_events(path):
    lines = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        if event.get("schema") != REPORT_SCHEMA:
            fail(f"{path}:{lineno}: schema {event.get('schema')!r}, "
                 f"expected {REPORT_SCHEMA!r}")
        lines += 1
    if lines == 0:
        fail(f"{path}: no event lines")
    print(f"  events.jsonl: {lines} event(s) -- ok")


def main():
    args = sys.argv[1:]
    require_shards = 0
    if "--require-shards" in args:
        i = args.index("--require-shards")
        if i + 1 >= len(args) or not args[i + 1].isdigit():
            fail("--require-shards requires a count")
        require_shards = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} TELEMETRY_DIR [--require-shards N]")
    directory = Path(args[0])
    if not directory.is_dir():
        fail(f"{directory} is not a directory")
    print(f"checking telemetry under {directory}")
    for name, checker in (
        ("metrics.prom",
         lambda p: check_prometheus(p, require_shards=require_shards)),
        ("trace.json", check_trace),
        ("events.jsonl", check_events),
    ):
        path = directory / name
        if not path.is_file():
            fail(f"missing {path}")
        checker(path)
    print("telemetry ok")


if __name__ == "__main__":
    main()
