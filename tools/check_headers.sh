#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile as its own translation unit (no hidden include-order
# dependencies).  Each header is compiled with -fsyntax-only into a TU
# that includes nothing else.
#
#   $ tools/check_headers.sh            # uses $CXX, default g++
#   $ CXX=clang++ tools/check_headers.sh
#
# Exits non-zero listing every header that failed.

set -u

cxx=${CXX:-g++}
root=$(cd "$(dirname "$0")/.." && pwd)
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

checked=0
failed=0
while IFS= read -r header; do
  rel=${header#src/}
  tu="$tmpdir/tu.cpp"
  printf '#include "%s"\n' "$rel" > "$tu"
  if ! "$cxx" -std=c++20 -fsyntax-only -I "$root/src" \
       -Wall -Wextra -Werror "$tu" 2> "$tmpdir/err"; then
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/  /' "$tmpdir/err"
    failed=$((failed + 1))
  fi
  checked=$((checked + 1))
done < <(cd "$root" && find src -name '*.hpp' | sort)

echo "header self-containment: $checked checked, $failed failed ($cxx)"
test "$failed" -eq 0
