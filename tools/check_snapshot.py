#!/usr/bin/env python3
"""Validate a strt.engine.snapshot.v1 file (engine warm-start cache).

Usage: check_snapshot.py SNAPSHOT_FILE [--min-entries N]

Independent re-implementation of the wire format documented in
src/snapshot/snapshot.hpp, with no dependencies beyond the standard
library, so CI can verify what strt_serve / analyze_file wrote without
rebuilding any C++:

  header     magic "STRTSNAP", u32 version == 1, u32 endianness tag ==
             0x01020304 (little-endian), u32 section count <= 6,
             u32 reserved == 0.
  sections   ids 1..6 (curves, rbf, dbf, sbf, derived, coarse), no
             duplicates, exact payload framing, FNV-1a 64 checksum over
             each payload, no trailing bytes after the last section.
  records    every section payload parses to its record layout exactly
             (no slack); curve records are canonical staircases (times
             strictly increasing from 0, values strictly increasing,
             horizon >= last breakpoint, tail period in [1, horizon]);
             every cached-curve fingerprint (the curve_fp a memo entry
             resolves to) is present in the curves section, and a
             workload entry's horizon matches its curve's horizon.
             Memo-key components (derived-op operands, a coarse entry's
             source curve) are opaque and are NOT required to be
             present -- they identify inputs that need not be interned.

With --min-entries N the snapshot must carry at least N entries in
total (workload records count one entry per cached horizon) -- CI uses
this to assert a serve run actually persisted warmth.

Exit status 0 when everything holds; 1 with a message otherwise.
"""

import struct
import sys
from pathlib import Path

MAGIC = b"STRTSNAP"
VERSION = 1
ENDIAN_TAG = 0x01020304
SECTION_NAMES = {1: "curves", 2: "rbf", 3: "dbf", 4: "sbf",
                 5: "derived", 6: "coarse"}


def fail(msg):
    print(f"check_snapshot: {msg}", file=sys.stderr)
    sys.exit(1)


def fnv1a64(data):
    """FNV-1a 64-bit -- keep in sync with strt::snapshot::fnv1a64."""
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class Cursor:
    """Bounds-checked little-endian reader over one section payload."""

    def __init__(self, data, where):
        self.data = data
        self.pos = 0
        self.where = where

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            fail(f"{self.where}: truncated at byte {self.pos}")
        (value,) = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return value

    def take_bytes(self, n):
        if self.pos + n > len(self.data):
            fail(f"{self.where}: truncated at byte {self.pos}")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take("<B")

    def u64(self):
        return self.take("<Q")

    def i64(self):
        return self.take("<q")

    def done(self):
        if self.pos != len(self.data):
            fail(f"{self.where}: {len(self.data) - self.pos} slack "
                 f"byte(s) after the last record")


def check_curve(rec_index, fp, horizon, has_tail, tail_period,
                tail_increment, times, values, where):
    where = f"{where}: curve {rec_index} (fp {fp:#x})"
    if len(times) != len(values):
        fail(f"{where}: times/values length mismatch")
    if not times:
        fail(f"{where}: empty breakpoint list")
    if times[0] != 0:
        fail(f"{where}: first breakpoint at {times[0]}, expected 0")
    for i in range(1, len(times)):
        if times[i] <= times[i - 1]:
            fail(f"{where}: times not strictly increasing at index {i}")
        if values[i] <= values[i - 1]:
            fail(f"{where}: values not strictly increasing at index {i}")
    if horizon < times[-1]:
        fail(f"{where}: horizon {horizon} below last breakpoint "
             f"{times[-1]}")
    if has_tail not in (0, 1):
        fail(f"{where}: has_tail is {has_tail}, expected 0 or 1")
    if has_tail:
        if not 1 <= tail_period <= horizon:
            fail(f"{where}: tail period {tail_period} outside "
                 f"[1, {horizon}]")
        if tail_increment < 0:
            fail(f"{where}: negative tail increment")
    elif tail_period != 1 or tail_increment != 0:
        fail(f"{where}: tailless curve carries tail fields")


def parse_curves(payload, where):
    c = Cursor(payload, where)
    count = c.u64()
    fps = {}
    for i in range(count):
        fp = c.u64()
        horizon = c.i64()
        has_tail = c.u8()
        tail_period = c.i64()
        tail_increment = c.i64()
        n = c.u64()
        times = [c.i64() for _ in range(n)]
        values = [c.i64() for _ in range(n)]
        check_curve(i, fp, horizon, has_tail, tail_period, tail_increment,
                    times, values, where)
        if fp in fps:
            fail(f"{where}: duplicate curve fingerprint {fp:#x}")
        fps[fp] = horizon
    c.done()
    return fps, count


def parse_workload(payload, where):
    c = Cursor(payload, where)
    count = c.u64()
    refs = []
    entries = 0
    for i in range(count):
        task_fp = c.u64()
        horizons = c.u64()
        if horizons == 0:
            fail(f"{where}: record {i} (task {task_fp:#x}) has no "
                 f"horizons")
        last = None
        for _ in range(horizons):
            horizon = c.i64()
            if last is not None and horizon <= last:
                fail(f"{where}: record {i} horizons not strictly "
                     f"increasing")
            last = horizon
            refs.append((c.u64(), horizon))
            entries += 1
    c.done()
    return refs, entries


def parse_sbf(payload, where):
    c = Cursor(payload, where)
    count = c.u64()
    refs = []
    for _ in range(count):
        key_len = c.u64()
        c.take_bytes(key_len)
        c.i64()  # horizon of the memo key, not of the cached curve
        refs.append((c.u64(), None))
    c.done()
    return refs, count


def parse_derived(payload, where):
    c = Cursor(payload, where)
    count = c.u64()
    refs = []
    for i in range(count):
        op = c.u8()
        if op > 3:  # kAdd, kConv, kLeftover, kHull
            fail(f"{where}: record {i} has unknown derived op {op}")
        c.u64()  # operand a -- opaque input fingerprint
        c.u64()  # operand b (0 for unary ops)
        refs.append((c.u64(), None))  # cached result curve
    c.done()
    return refs, count


def parse_coarse(payload, where):
    c = Cursor(payload, where)
    count = c.u64()
    refs = []
    for i in range(count):
        c.u64()  # source curve fp -- opaque memo-key component
        g = c.i64()
        if g < 1:
            fail(f"{where}: record {i} has granularity {g} < 1")
        side = c.u8()
        if side not in (0, 1):
            fail(f"{where}: record {i} has side {side}, expected 0 or 1")
        refs.append((c.u64(), None))  # cached coarse curve
        max_error = c.i64()
        if max_error < 0:
            fail(f"{where}: record {i} has negative max error")
    c.done()
    return refs, count


def check_snapshot(path, min_entries=0):
    data = path.read_bytes()
    if len(data) < len(MAGIC) + 16:
        fail(f"{path}: too short to hold a header ({len(data)} bytes)")
    if data[:len(MAGIC)] != MAGIC:
        fail(f"{path}: bad magic {data[:len(MAGIC)]!r}")
    version, endian, section_count, reserved = struct.unpack_from(
        "<IIII", data, len(MAGIC))
    if version != VERSION:
        fail(f"{path}: version {version}, expected {VERSION}")
    if endian != ENDIAN_TAG:
        fail(f"{path}: endianness tag {endian:#010x}, expected "
             f"{ENDIAN_TAG:#010x} (byte-swapped writer?)")
    if section_count > len(SECTION_NAMES):
        fail(f"{path}: section count {section_count} > "
             f"{len(SECTION_NAMES)}")
    if reserved != 0:
        fail(f"{path}: header reserved field is {reserved}, expected 0")

    pos = len(MAGIC) + 16
    payloads = {}
    for _ in range(section_count):
        if pos + 16 > len(data):
            fail(f"{path}: truncated section header at byte {pos}")
        sec_id, sec_reserved, length = struct.unpack_from("<IIQ", data, pos)
        pos += 16
        if sec_id not in SECTION_NAMES:
            fail(f"{path}: unknown section id {sec_id}")
        if sec_id in payloads:
            fail(f"{path}: duplicate section {SECTION_NAMES[sec_id]!r}")
        if sec_reserved != 0:
            fail(f"{path}: section {SECTION_NAMES[sec_id]!r} reserved "
                 f"field is {sec_reserved}, expected 0")
        if pos + length + 8 > len(data):
            fail(f"{path}: section {SECTION_NAMES[sec_id]!r} payload "
                 f"overruns the file")
        payload = data[pos:pos + length]
        pos += length
        (checksum,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        if fnv1a64(payload) != checksum:
            fail(f"{path}: section {SECTION_NAMES[sec_id]!r} checksum "
                 f"mismatch")
        payloads[sec_id] = payload
    if pos != len(data):
        fail(f"{path}: {len(data) - pos} trailing byte(s) after the "
             f"last section")

    curve_fps, n_curves = parse_curves(
        payloads.get(1, b"\0" * 8), f"{path}: curves")
    refs = []
    entries = n_curves
    for sec_id, parser in ((2, parse_workload), (3, parse_workload),
                           (4, parse_sbf), (5, parse_derived),
                           (6, parse_coarse)):
        sec_refs, sec_entries = parser(
            payloads.get(sec_id, b"\0" * 8),
            f"{path}: {SECTION_NAMES[sec_id]}")
        refs.extend(sec_refs)
        entries += sec_entries
    for fp, want_horizon in refs:
        if fp not in curve_fps:
            fail(f"{path}: memo record references curve {fp:#x} absent "
                 f"from the curves section")
        if want_horizon is not None and curve_fps[fp] != want_horizon:
            fail(f"{path}: workload entry at horizon {want_horizon} "
                 f"resolves to curve {fp:#x} with horizon "
                 f"{curve_fps[fp]}")

    if entries < min_entries:
        fail(f"{path}: {entries} entries, expected at least "
             f"{min_entries}")
    print(f"  {path.name}: {n_curves} curve(s), {entries} entries, "
          f"{len(payloads)} section(s), {len(data)} bytes -- ok")


def main():
    args = sys.argv[1:]
    min_entries = 0
    if "--min-entries" in args:
        i = args.index("--min-entries")
        if i + 1 >= len(args) or not args[i + 1].isdigit():
            fail("--min-entries requires a count")
        min_entries = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} SNAPSHOT_FILE [--min-entries N]")
    path = Path(args[0])
    if not path.is_file():
        fail(f"{path} is not a file")
    print(f"checking snapshot {path}")
    check_snapshot(path, min_entries=min_entries)
    print("snapshot ok")


if __name__ == "__main__":
    main()
