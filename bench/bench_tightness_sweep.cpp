// Experiment E2 (Figure analogue): tightness of the abstraction spectrum
// as the workload utilization approaches the supply rate.
//
// For each utilization level, random DRT tasks are generated and analyzed
// on a fixed TDMA slice; the series report the mean delay-bound ratio of
// each abstraction to the structural bound, plus the mean simulated lower
// bound as a fraction of the structural bound.
//
// Expected shape: ratios start near 1.0 under light load (the burst
// candidate binds everywhere) and fan out as utilization approaches the
// supply rate; the simulation stays close to 1.0 throughout (the
// structural bound is exact for the minimal conforming adversary).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "core/busy_window.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

using namespace strt;
using namespace strt::bench;

namespace {

Time simulated_worst(const DrtTask& task, const BusyWindow& bw, Rng& rng) {
  const Time span(600);
  std::vector<Trace> traces;
  Work max_work(0);
  for (int run = 0; run < 12; ++run) {
    traces.push_back(trace_dense_walk(task, rng, span));
    Work total(0);
    for (const SimJob& j : traces.back()) total += j.wcet;
    max_work = max(max_work, total);
  }
  const Time horizon = span + bw.sbf.inverse(max_work) + Time(2);
  const ServicePattern adversary =
      pattern_from_sbf(bw.sbf.extended(horizon), horizon);
  Time worst(0);
  for (const Trace& t : traces) {
    worst = max(worst, simulate_fifo(t, adversary).max_delay);
  }
  return worst;
}

}  // namespace

int main() {
  // Fixed supply: rate 1/2 TDMA slice.
  const Supply supply = Supply::tdma(Time(5), Time(10));
  const int kTasksPerLevel = 25;
  const double levels[] = {0.10, 0.20, 0.30, 0.35, 0.40, 0.44, 0.47};

  std::cout << "E2: delay-bound tightness vs utilization on "
            << supply.describe() << " (rate 1/2)\n"
            << kTasksPerLevel
            << " random DRT tasks per level; ratios are means relative to "
               "the structural bound\n\n";

  BenchReport report("tightness_sweep");
  Table table({"target U", "mean U", "sim/struct", "hull/struct",
               "bucket/struct", "mingap finite%", "mean struct delay"});
  std::vector<std::vector<std::string>> csv_rows;
  std::uint64_t level_idx = 0;

  struct TrialOut {
    double u;
    double sim_ratio;
    double hull_ratio;
    double bucket_ratio;
    double struct_delay;
    bool mingap_finite;
  };
  for (const double level : levels) {
    Phase phase("level:" + fmt_ratio(level));
    // Per-trial split streams: the sweep fans out over STRT_THREADS and
    // still produces the serial trial sequence (including the simulation
    // draws, which come from the same per-trial stream).
    const auto outs = trials(
        12345 + level_idx * 7919, kTasksPerLevel,
        [&](Rng& rng, std::size_t) -> TrialOut {
          for (;;) {
            DrtGenParams params;
            params.min_vertices = 3;
            params.max_vertices = 8;
            params.min_separation = Time(4);
            params.max_separation = Time(30);
            params.target_utilization = level;
            const GeneratedTask gen = random_drt(rng, params);
            if (!(gen.exact_utilization < supply.long_run_rate())) continue;

            engine::Workspace ws;
            const auto bw = busy_window(ws, gen.task, supply);
            if (!bw) continue;
            const auto st = delay_with_abstraction(
                ws, gen.task, supply, WorkloadAbstraction::kStructural);
            const auto hull = delay_with_abstraction(
                ws, gen.task, supply, WorkloadAbstraction::kConcaveHull);
            const auto bucket = delay_with_abstraction(
                ws, gen.task, supply, WorkloadAbstraction::kTokenBucket);
            const auto mingap = delay_with_abstraction(
                ws, gen.task, supply, WorkloadAbstraction::kSporadicMinGap);
            const Time sim = simulated_worst(gen.task, *bw, rng);

            const double d = static_cast<double>(st.delay.count());
            return TrialOut{
                gen.exact_utilization.to_double(),
                static_cast<double>(sim.count()) / d,
                static_cast<double>(hull.delay.count()) / d,
                static_cast<double>(bucket.delay.count()) / d,
                d,
                !mingap.delay.is_unbounded()};
          }
        });
    ++level_idx;
    double sum_u = 0;
    double sum_sim = 0;
    double sum_hull = 0;
    double sum_bucket = 0;
    double sum_struct = 0;
    int mingap_finite = 0;
    for (const TrialOut& o : outs) {
      sum_u += o.u;
      sum_sim += o.sim_ratio;
      sum_hull += o.hull_ratio;
      sum_bucket += o.bucket_ratio;
      sum_struct += o.struct_delay;
      if (o.mingap_finite) ++mingap_finite;
    }
    const double inv = 1.0 / kTasksPerLevel;
    table.add_row({fmt_ratio(level), fmt_ratio(sum_u * inv),
                   fmt_ratio(sum_sim * inv), fmt_ratio(sum_hull * inv),
                   fmt_ratio(sum_bucket * inv),
                   fmt_ratio(100.0 * mingap_finite * inv, 0) + "%",
                   fmt_ratio(sum_struct * inv, 1)});
    csv_rows.push_back({fmt_ratio(level), fmt_ratio(sum_u * inv, 4),
                        fmt_ratio(sum_sim * inv, 4),
                        fmt_ratio(sum_hull * inv, 4),
                        fmt_ratio(sum_bucket * inv, 4),
                        fmt_ratio(mingap_finite * inv, 4),
                        fmt_ratio(sum_struct * inv, 2)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout,
                {"target_u", "mean_u", "sim_ratio", "hull_ratio",
                 "bucket_ratio", "mingap_finite_frac", "mean_struct_delay"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("levels", std::size(levels));
  report.metric("tasks_per_level", kTasksPerLevel);
  return 0;
}
