// The pre-overhaul path explorer, kept verbatim in structure -- per-vertex
// std::map skyline, std::priority_queue agenda -- as the ablation baseline
// for bench_runtime.  It lives in a bench-only library so the production
// src/graph target ships exactly one explorer; benchmarks link
// strt_bench_legacy explicitly.
//
// Both implementations must produce the same Pareto frontier (the ablation
// checks that before timing); only the data structures differ.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "base/types.hpp"
#include "graph/drt.hpp"
#include "graph/explore.hpp"

namespace strt::legacy {

class Skyline {
 public:
  bool insert(Time t, Work w, std::int32_t idx) {
    auto it = entries_.upper_bound(t);
    if (it != entries_.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.second.first >= w) return false;  // dominated
    }
    while (it != entries_.end() && it->second.first <= w) {
      it = entries_.erase(it);
    }
    entries_.insert_or_assign(t, std::make_pair(w, idx));
    return true;
  }

  [[nodiscard]] bool is_live(Time t, std::int32_t idx) const {
    auto it = entries_.find(t);
    return it != entries_.end() && it->second.second == idx;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [t, wi] : entries_) fn(t, wi.first, wi.second);
  }

 private:
  std::map<Time, std::pair<Work, std::int32_t>> entries_;
};

struct Result {
  std::vector<PathState> arena;
  std::vector<std::int32_t> frontier;
  std::uint64_t generated = 0;
};

/// Dominance-pruned busy-window exploration of `task` up to
/// `elapsed_limit`, with the pre-overhaul data structures.
[[nodiscard]] Result explore(const DrtTask& task, Time elapsed_limit);

}  // namespace strt::legacy
