// Experiment E1 (Table 1 analogue): delay bounds for named case studies
// across the full abstraction spectrum, next to the observed worst delay
// from randomized simulation (a lower bound on the true worst case).
//
// Expected shape:  sim <= structural = exact < hull <= bucket, and the
// sporadic-min-gap column overloads on the structural (bursty) studies.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "core/busy_window.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/gmf.hpp"
#include "model/recurring.hpp"
#include "model/sporadic.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

using namespace strt;
using namespace strt::bench;

namespace {

struct CaseStudy {
  std::string name;
  DrtTask task;
  Supply supply;
};

std::vector<CaseStudy> case_studies() {
  std::vector<CaseStudy> cs;

  cs.push_back({"sporadic/dedicated",
                SporadicTask{"sp", Work(3), Time(10), Time(10)}.to_drt(),
                Supply::dedicated(1)});

  cs.push_back(
      {"gmf-video/tdma",
       GmfTask("video", {GmfFrame{Work(9), Time(40), Time(12)},   // I frame
                         GmfFrame{Work(3), Time(20), Time(12)},   // P frame
                         GmfFrame{Work(3), Time(20), Time(12)},   // P frame
                         GmfFrame{Work(1), Time(12), Time(12)}})  // B frame
           .to_drt(),
       Supply::tdma(Time(5), Time(12))});

  {
    DrtBuilder b("burst-quiet");
    const VertexId burst = b.add_vertex("burst", Work(10), Time(100));
    const VertexId tail = b.add_vertex("tail", Work(2), Time(30));
    b.add_edge(burst, tail, Time(12));
    b.add_edge(tail, tail, Time(12));
    b.add_edge(tail, burst, Time(110));
    cs.push_back({"burst-quiet/tdma", std::move(b).build(),
                  Supply::tdma(Time(2), Time(11))});
  }

  {
    RecurringTaskBuilder b("mode-switch");
    const VertexId root = b.set_root("sense", Work(2), Time(10));
    b.add_child(root, "steady", Work(3), Time(25), Time(10));
    b.add_child(root, "transient", Work(8), Time(35), Time(10));
    b.with_global_period(Time(42));
    cs.push_back({"mode-switch/server", std::move(b).build(),
                  Supply::periodic(Time(8), Time(18))});
  }

  {
    DrtBuilder b("can-gateway");
    const VertexId hdr = b.add_vertex("hdr", Work(2), Time(20));
    const VertexId data = b.add_vertex("data", Work(5), Time(40));
    const VertexId crc = b.add_vertex("crc", Work(1), Time(10));
    b.add_edge(hdr, data, Time(6));
    b.add_edge(data, data, Time(9));
    b.add_edge(data, crc, Time(7));
    b.add_edge(crc, hdr, Time(55));
    b.add_edge(hdr, crc, Time(8));
    cs.push_back({"can-gateway/bdelay", std::move(b).build(),
                  Supply::bounded_delay(Rational(2, 3), Time(6))});
  }

  return cs;
}

Time simulate_lower_bound(const CaseStudy& cs, Rng& rng) {
  engine::Workspace ws;
  const auto bw = busy_window(ws, cs.task, cs.supply);
  if (!bw) return Time(0);
  // Dense and random legal runs against the minimal conforming pattern.
  const Time span(2000);
  std::vector<Trace> traces;
  Work max_work(0);
  for (int run = 0; run < 60; ++run) {
    traces.push_back(run % 2 == 0
                         ? trace_dense_walk(cs.task, rng, span)
                         : trace_random_walk(cs.task, rng, span, 0.2,
                                             Time(6)));
    Work total(0);
    for (const SimJob& j : traces.back()) total += j.wcet;
    max_work = max(max_work, total);
  }
  const Time horizon = span + bw->sbf.inverse(max_work) + Time(2);
  const ServicePattern adversary =
      pattern_from_sbf(bw->sbf.extended(horizon), horizon);
  Time worst(0);
  for (const Trace& trace : traces) {
    const SimOutcome out = simulate_fifo(trace, adversary);
    worst = max(worst, out.max_delay);
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "E1: case-study delay bounds across the abstraction "
               "spectrum\n"
               "(sim = worst delay observed over randomized runs against "
               "the minimal\n conforming service pattern; a lower bound on "
               "the true worst case)\n\n";

  BenchReport report("case_studies");
  Table table({"case study", "supply", "sim", "structural", "exact-curve",
               "concave-hull", "token-bucket", "min-gap", "hull/struct"});
  std::vector<std::vector<std::string>> csv_rows;
  Rng rng(7);

  for (const CaseStudy& cs : case_studies()) {
    Time sim(0);
    {
      Phase phase("simulate:" + cs.name);
      sim = simulate_lower_bound(cs, rng);
    }
    Time delays[5];
    int i = 0;
    {
      Phase phase("analyze:" + cs.name);
      for (const WorkloadAbstraction a : kAllAbstractions) {
        engine::Workspace ws;
        delays[i++] =
            delay_with_abstraction(ws, cs.task, cs.supply, a).delay;
      }
    }
    report.metric("structural." + cs.name, delays[0]);
    table.add_row({cs.name, cs.supply.describe(), show(sim), show(delays[0]),
                   show(delays[1]), show(delays[2]), show(delays[3]),
                   show(delays[4]), factor(delays[2], delays[0])});
    csv_rows.push_back({cs.name, show(sim), show(delays[0]),
                        show(delays[1]), show(delays[2]), show(delays[3]),
                        show(delays[4])});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"case", "sim", "structural", "exact", "hull",
                            "bucket", "mingap"});
  for (const auto& row : csv_rows) csv.row(row);
  return 0;
}
