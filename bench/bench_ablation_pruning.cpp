// Experiment E6 (ablation): what dominance pruning buys.
//
// The structural exploration is run twice on the same instances -- with
// the per-vertex Pareto skyline (the paper's pruning) and without -- for
// growing busy-window prefixes.  Both produce the same delay bound (a
// test enforces this); the table shows the explored-state counts and wall
// time.
//
// Expected shape: the unpruned state count grows exponentially with the
// window (it enumerates paths), the pruned count stays polynomial (it is
// bounded by vertices x distinct release instants), so the speedup factor
// explodes.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "graph/explore.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  Rng rng(606);
  DrtGenParams params;
  params.min_vertices = 5;
  params.max_vertices = 5;
  params.min_separation = Time(2);
  params.max_separation = Time(8);
  params.chord_probability = 0.3;
  params.target_utilization = 0.5;
  const GeneratedTask gen = random_drt(rng, params);

  std::cout << "E6: dominance-pruning ablation on a 5-vertex task "
               "(branching factor from chords)\n\n";

  BenchReport report("ablation_pruning");
  Table table({"window", "pruned states", "pruned ms", "full states",
               "full ms", "state ratio", "speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  int capped_windows = 0;

  // The unpruned run enumerates paths and explodes with the window; cap
  // it so large windows report a partial (capped) count instead of
  // running for minutes.  Capped rows mark both state count and ratio.
  constexpr std::size_t kFullCap = 2'000'000;

  for (const std::int64_t window : {10, 20, 30, 40, 50, 60}) {
    ExploreOptions pruned_opts;
    pruned_opts.elapsed_limit = Time(window);
    double pruned_ms = 0;
    double full_ms = 0;
    ExploreResult pruned;
    ExploreResult full;
    {
      Phase phase("ablation.pruned");
      pruned = explore_paths(gen.task, pruned_opts);
      pruned_ms = phase.millis();
    }
    {
      ExploreOptions full_opts = pruned_opts;
      full_opts.prune = false;
      full_opts.max_states = kFullCap;
      Phase phase("ablation.full");
      full = explore_paths(gen.task, full_opts);
      full_ms = phase.millis();
    }

    const bool capped = full.stats.aborted;
    if (capped) ++capped_windows;
    const std::string mark = capped ? " (capped)" : "";
    const double state_ratio = static_cast<double>(full.stats.generated) /
                               static_cast<double>(pruned.stats.generated);
    table.add_row({std::to_string(window),
                   std::to_string(pruned.stats.generated),
                   fmt_ratio(pruned_ms, 2),
                   std::to_string(full.stats.generated) + mark,
                   fmt_ratio(full_ms, 2),
                   fmt_ratio(state_ratio, 1) + "x" + mark,
                   fmt_ratio(full_ms / std::max(pruned_ms, 1e-3), 1) + "x"});
    csv_rows.push_back({std::to_string(window),
                        std::to_string(pruned.stats.generated),
                        fmt_ratio(pruned_ms, 3),
                        std::to_string(full.stats.generated),
                        fmt_ratio(full_ms, 3), capped ? "1" : "0"});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"window", "pruned_states", "pruned_ms",
                            "full_states", "full_ms", "full_capped"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("windows", static_cast<std::int64_t>(csv_rows.size()));
  report.metric("capped_windows", capped_windows);
  return 0;
}
