// Shared helpers for the experiment harnesses (bench_*).
//
// Timing goes through obs::Span (phases show up in the run report's span
// tree) with wall-clock readback for table printing.  Each harness opens
// a BenchReport at the top of main and feeds it its headline metrics;
// on destruction the report -- counters, spans, metrics -- is appended
// to BENCH_<name>.json (strt.obs.report.v2 schema, one line per run)
// whenever observability is enabled (STRT_OBS=1) or STRT_BENCH_JSON
// names an output directory.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <type_traits>

#include "base/config.hpp"
#include "base/rng.hpp"
#include "base/types.hpp"
#include "check/check.hpp"
#include "exec/exec.hpp"
#include "graph/drt.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

namespace strt::bench {

/// Runs `n` independent trials over the exec pool and returns the results
/// in trial order.  Trial i draws from Rng::split(seed, i), so the trial
/// sequence -- generated task sets included -- is identical whether the
/// sweep runs serially (STRT_THREADS=1) or across every core.  fn takes
/// (Rng&, trial_index) and returns the trial's result; rejection loops
/// (regenerate until the instance fits the supply) belong inside fn,
/// where they stay deterministic per index.
template <class Fn>
[[nodiscard]] auto trials(std::uint64_t seed, std::size_t n, Fn&& fn) {
  return exec::parallel_map(n, [&](std::size_t i) {
    Rng rng = Rng::split(seed, i);
    return fn(rng, i);
  });
}

/// Front-gates generated instances through the strt::check lint once per
/// harness run: a generator bug (malformed structure, utilization at or
/// above 1) aborts the experiment instead of producing garbage tables,
/// and the check.* counters the passes bump are captured into the
/// harness's BENCH_<name>.json report.
inline void lint_generated(std::span<const DrtTask> tasks) {
  check::CheckResult r;
  for (const DrtTask& t : tasks) r.merge(check::check_task(t));
  r.merge(check::check_task_set(tasks));
  if (!r.ok()) {
    std::cerr << "bench: generated task set failed strt::check:\n";
    r.print(std::cerr);
    std::exit(1);
  }
}

inline std::string show(Time t) {
  return t.is_unbounded() ? "inf" : std::to_string(t.count());
}

inline std::string show(Work w) {
  return w.is_unbounded() ? "inf" : std::to_string(w.count());
}

/// Ratio of two delay bounds as a printable factor ("1.27x", "inf").
inline std::string factor(Time num, Time den) {
  if (num.is_unbounded()) return "inf";
  // An unbounded denominator is a sentinel (max int64), not a number;
  // dividing by its raw count would print a misleading finite factor.
  if (den.is_unbounded()) return "-";
  if (den == Time(0)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx",
                static_cast<double>(num.count()) /
                    static_cast<double>(den.count()));
  return buf;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A timed benchmark phase: an obs::Span (so the phase lands in the span
/// tree of the emitted report) plus a wall clock the harness can read for
/// its tables.  Declaration order matters for RAII: the span closes when
/// the Phase goes out of scope.
class Phase {
 public:
  explicit Phase(std::string_view name) : span_(name) {}
  [[nodiscard]] double seconds() const { return sw_.seconds(); }
  [[nodiscard]] double millis() const { return sw_.millis(); }

 private:
  obs::Span span_;
  Stopwatch sw_;
};

/// Per-binary structured report sink.  Construct once at the top of main;
/// record headline metrics with metric(); the destructor captures the
/// observability state and appends one JSON line to BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : report_(name), name_(std::move(name)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void metric(std::string_view key, std::string value) {
    report_.put(key, std::move(value));
  }
  void metric(std::string_view key, const char* value) {
    report_.put(key, value);
  }
  void metric(std::string_view key, double value) { report_.put(key, value); }
  void metric(std::string_view key, bool value) { report_.put(key, value); }
  template <class V>
    requires std::is_integral_v<V>
  void metric(std::string_view key, V value) {
    report_.put(key, static_cast<std::int64_t>(value));
  }
  void metric(std::string_view key, Time value) {
    report_.put(key, show(value));
  }
  void metric(std::string_view key, Work value) {
    report_.put(key, show(value));
  }
  /// Records a pre-serialized JSON value (array / object) emitted
  /// verbatim -- for structured results like a scaling curve.  `raw`
  /// must be complete, well-formed JSON.
  void metric_json(std::string_view key, std::string raw) {
    report_.put_json(key, std::move(raw));
  }

  ~BenchReport() {
    const std::string dir = cfg::get_string("STRT_BENCH_JSON", "");
    if (!obs::enabled() && dir.empty()) return;
    report_.capture();
    std::string path = "BENCH_" + name_ + ".json";
    if (!dir.empty()) path = dir + "/" + path;
    std::ofstream out(path, std::ios::app);
    if (!out) {
      std::cerr << "bench: cannot open '" << path << "' for the report\n";
      return;
    }
    report_.write_json_line(out);
    std::cerr << "bench: report appended to " << path << '\n';
  }

 private:
  obs::RunReport report_;
  std::string name_;
};

}  // namespace strt::bench
