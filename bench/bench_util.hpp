// Shared helpers for the experiment harnesses (bench_*).
#pragma once

#include <chrono>
#include <string>

#include "base/types.hpp"

namespace strt::bench {

inline std::string show(Time t) {
  return t.is_unbounded() ? "inf" : std::to_string(t.count());
}

inline std::string show(Work w) {
  return w.is_unbounded() ? "inf" : std::to_string(w.count());
}

/// Ratio of two delay bounds as a printable factor ("1.27x", "inf").
inline std::string factor(Time num, Time den) {
  if (num.is_unbounded()) return "inf";
  if (den == Time(0)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx",
                static_cast<double>(num.count()) /
                    static_cast<double>(den.count()));
  return buf;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace strt::bench
