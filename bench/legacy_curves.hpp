// The pre-refactor AoS curve kernels, kept verbatim in structure -- one
// std::vector<Step> per curve, per-step binary searches, sample-vector
// canonicalization through the from_points fold -- as the oracle and the
// ablation baseline for the SoA curve layer (curves/segment_store.hpp).
//
// Like legacy_explore, this lives in the bench-only strt_bench_legacy
// library so the production curve target ships exactly one
// implementation; the property suite (tests/test_curve_kernels) and
// bench_runtime link it explicitly.  Every kernel here must produce
// results bit-identical to its src/curves counterpart -- that is the
// contract the property suite pins.
#pragma once

#include <optional>
#include <vector>

#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt::legacy {

/// The pre-refactor curve representation: canonical breakpoints as an
/// array of (time, value) records plus the horizon and the optional
/// periodic tail.  Member queries reproduce the old Staircase lookups
/// exactly (per-call std::upper_bound / std::lower_bound over the Step
/// array, including the out-of-domain throw of `inverse`).
struct LegacyCurve {
  std::vector<Step> steps;
  Time horizon{0};
  std::optional<Tail> tail;

  [[nodiscard]] Work value(Time t) const;
  [[nodiscard]] Time inverse(Work w) const;
  [[nodiscard]] Work value_at_horizon() const { return steps.back().value; }

 private:
  [[nodiscard]] Work value_in_range(Time t) const;
};

/// Conversions between the two layouts (loss-free: canonical breakpoints
/// are canonical breakpoints, whatever the storage).
[[nodiscard]] LegacyCurve from_staircase(const Staircase& f);
[[nodiscard]] Staircase to_staircase(const LegacyCurve& c);

/// The old from_points fold: sort by time, running-max the values,
/// drop redundant samples.
[[nodiscard]] LegacyCurve from_points(std::vector<Step> points,
                                      Time horizon);

// The old kernels, algorithm for algorithm: piece enumeration plus
// heap-based envelope for (de)convolution, merged-times resampling for
// the pointwise family, per-step inverse/value probes for the
// deviations.
[[nodiscard]] LegacyCurve conv(const LegacyCurve& f, const LegacyCurve& g);
[[nodiscard]] LegacyCurve deconv(const LegacyCurve& f, const LegacyCurve& g);
[[nodiscard]] Time hdev(const LegacyCurve& a, const LegacyCurve& b);
[[nodiscard]] Work vdev(const LegacyCurve& a, const LegacyCurve& b,
                        Time upto);
[[nodiscard]] LegacyCurve pointwise_add(const LegacyCurve& f,
                                        const LegacyCurve& g);
[[nodiscard]] LegacyCurve pointwise_min(const LegacyCurve& f,
                                        const LegacyCurve& g);
[[nodiscard]] LegacyCurve pointwise_max(const LegacyCurve& f,
                                        const LegacyCurve& g);
[[nodiscard]] std::optional<Time> first_catch_up(const LegacyCurve& a,
                                                 const LegacyCurve& b);
[[nodiscard]] LegacyCurve leftover_service(const LegacyCurve& b,
                                           const LegacyCurve& a);

}  // namespace strt::legacy
