// Experiment E7 (extension figure): end-to-end delay over a resource
// chain -- structural / pay-burst-only-once vs the compositional per-hop
// sum, as the chain grows.
//
// Expected shape: the structural (= PBOO) bound grows slowly with the hop
// count (the burst is paid once, each hop adds only its latency), while
// the per-hop sum re-pays the burst at every hop and diverges linearly.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chain.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  // Bursty sensor stream crossing a pipeline of bounded-delay switches.
  DrtBuilder b("sensor");
  const VertexId burst = b.add_vertex("burst", Work(8), Time(100));
  const VertexId idle = b.add_vertex("idle", Work(1), Time(40));
  b.add_edge(burst, idle, Time(10));
  b.add_edge(idle, idle, Time(10));
  b.add_edge(idle, burst, Time(80));
  const DrtTask task = std::move(b).build();

  std::cout << "E7: end-to-end delay vs chain length for task "
            << task.name()
            << "\nhops: identical bounded_delay(rate=3/4, delay=4) "
               "switches\n"
               "structural/pboo assume cut-through forwarding; per-hop sum "
               "is the\nsound bound for store-and-forward relays (see "
               "core/chain.hpp)\n\n";

  BenchReport report("chain");
  Table table({"hops", "structural", "pboo", "per-hop sum", "sum/struct"});
  std::vector<std::vector<std::string>> csv_rows;
  std::vector<Supply> hops;
  ChainResult last{};
  for (int n = 1; n <= 5; ++n) {
    Phase phase("hops:" + std::to_string(n));
    hops.push_back(Supply::bounded_delay(Rational(3, 4), Time(4)));
    engine::Workspace ws;
    const ChainResult res = chain_delay(ws, task, hops);
    last = res;
    table.add_row({std::to_string(n), show(res.structural), show(res.pboo),
                   show(res.per_hop_sum),
                   factor(res.per_hop_sum, res.structural)});
    csv_rows.push_back({std::to_string(n), show(res.structural),
                        show(res.pboo), show(res.per_hop_sum)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"hops", "structural", "pboo", "per_hop_sum"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("hops", csv_rows.size());
  report.metric("structural_at_max_hops", last.structural);
  report.metric("per_hop_sum_at_max_hops", last.per_hop_sum);
  return 0;
}
