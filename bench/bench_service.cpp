// Experiment E12: batch service amortization.
//
// A request mix over a corpus of random task systems -- an interactive
// mix (structural probes, FP/EDF schedulability checks, sensitivity,
// Audsley assignment) repeated per system, plus one joint-FP deep dive
// per system -- is answered two ways: the cold
// per-request baseline (svc::run_request on a fresh private workspace,
// serially, the way a one-shot CLI would) and the warm batch service
// (one long-lived shared workspace, fingerprint batching, parallel batch
// tails).  The bench checks the two outcome streams are bit-identical
// before reporting any timing, then reports the throughput of each path
// and their ratio.
//
// Expected shape: the service amortizes every rbf/dbf/sbf/derived-curve
// memo across the requests that share a task system, so its throughput
// is a multiple of the baseline's (>= 2x is the regression bar; the
// ratio grows with requests-per-system).  The `serial no-batch` ablation
// row isolates how much of the win is cache warmth alone.
//
// A throughput-vs-shards scaling sweep (1/2/4/8 worker shards over the
// same corpus, each configuration bit-identity-gated) lands in
// BENCH_service.json as a "scaling_curve" array together with each
// configuration's cache.lock_wait_ns tail, which is the striped
// workspace's contention evidence.  The scaling bar adapts to the
// machine: shards beyond the core count cannot scale, so the 8-shard
// ratio is required to reach 3x only when >= 8 hardware threads exist
// (0.75x per available core below that).  Setting STRT_BENCH_SMOKE
// shrinks the corpus for CI smoke runs.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "base/config.hpp"
#include "bench_util.hpp"
#include "engine/workspace.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "svc/api.hpp"
#include "svc/service.hpp"

using namespace strt;
using namespace strt::bench;

namespace {

constexpr int kSystems = 8;
constexpr int kRoundsPerSystem = 16;

std::vector<DrtTask> random_system(std::uint64_t seed) {
  Rng rng = Rng::split(seed, 0);
  DrtGenParams params;
  params.min_vertices = 3;
  params.max_vertices = 6;
  params.min_separation = Time(6);
  params.max_separation = Time(24);
  auto gen = random_drt_set(rng, 3, 0.62, params);
  std::vector<DrtTask> tasks;
  for (auto& g : gen) tasks.push_back(std::move(g.task));
  return tasks;
}

/// The interactive request mix for one task system and one round; the
/// first round of a system additionally gets the joint-FP deep dive
/// (path-level analyses dominate its cost and are not memo-bound, so a
/// service sees them rarely relative to schedulability polling).
void push_round(std::vector<svc::AnalysisRequest>& out,
                const std::vector<DrtTask>& tasks, const Supply& supply,
                bool deep_dive, std::uint64_t& next_id) {
  const auto add = [&](svc::AnalysisKind kind, std::vector<DrtTask> ts) {
    svc::AnalysisRequest req;
    req.id = ++next_id;
    req.kind = kind;
    req.supply = supply;
    req.tasks = std::move(ts);
    out.push_back(std::move(req));
  };
  add(svc::AnalysisKind::kStructural, {tasks[0]});
  add(svc::AnalysisKind::kFp, tasks);
  add(svc::AnalysisKind::kEdf, tasks);
  add(svc::AnalysisKind::kEdf, tasks);  // polling: the most repeated query
  add(svc::AnalysisKind::kSensitivity, {tasks[0]});
  add(svc::AnalysisKind::kAudsley, tasks);
  if (deep_dive) {
    add(svc::AnalysisKind::kJointFp, {tasks[0], tasks.back()});
  }
}

/// Bit-identity of the result payloads (statuses, diagnostics, and the
/// kind's native struct); timing stats are excluded by construction.
bool same_outcome(const svc::AnalysisOutcome& a,
                  const svc::AnalysisOutcome& b) {
  if (a.id != b.id || a.kind != b.kind || a.status != b.status ||
      a.error != b.error ||
      a.diagnostics.to_json() != b.diagnostics.to_json() ||
      a.result.index() != b.result.index()) {
    return false;
  }
  if (const StructuralResult* s = a.structural()) {
    const StructuralResult* t = b.structural();
    if (t == nullptr) return false;
    return s->delay == t->delay && s->backlog == t->backlog &&
           s->busy_window == t->busy_window &&
           s->vertex_delays == t->vertex_delays &&
           s->meets_vertex_deadlines == t->meets_vertex_deadlines &&
           s->stats.generated == t->stats.generated &&
           s->stats.expanded == t->stats.expanded;
  }
  if (const FpResult* f = a.fp()) {
    const FpResult* g = b.fp();
    if (g == nullptr) return false;
    if (f->overloaded != g->overloaded ||
        f->system_busy_window != g->system_busy_window ||
        f->tasks.size() != g->tasks.size()) {
      return false;
    }
    for (std::size_t i = 0; i < f->tasks.size(); ++i) {
      if (f->tasks[i].structural_delay != g->tasks[i].structural_delay ||
          f->tasks[i].curve_delay != g->tasks[i].curve_delay ||
          f->tasks[i].busy_window != g->tasks[i].busy_window) {
        return false;
      }
    }
    return true;
  }
  if (const EdfResult* e = a.edf()) {
    const EdfResult* f2 = b.edf();
    if (f2 == nullptr) return false;
    return e->schedulable == f2->schedulable &&
           e->overloaded == f2->overloaded && e->margin == f2->margin &&
           e->horizon_checked == f2->horizon_checked;
  }
  if (const JointFpResult* j = a.joint_fp()) {
    const JointFpResult* k = b.joint_fp();
    if (k == nullptr) return false;
    return j->overloaded == k->overloaded &&
           j->joint_delay == k->joint_delay &&
           j->rbf_delay == k->rbf_delay &&
           j->paths_analyzed == k->paths_analyzed;
  }
  if (const SensitivityReport* r = a.sensitivity()) {
    const SensitivityReport* s2 = b.sensitivity();
    if (s2 == nullptr) return false;
    return r->feasible == s2->feasible &&
           r->wcet_slack == s2->wcet_slack &&
           r->separation_slack == s2->separation_slack;
  }
  if (const AudsleyResult* u = a.audsley()) {
    const AudsleyResult* v = b.audsley();
    if (v == nullptr) return false;
    return u->feasible == v->feasible && u->order == v->order &&
           u->tests_run == v->tests_run;
  }
  return true;  // monostate == monostate
}

/// Serves `reqs` through a Service configured by `sopts`, enqueueing the
/// whole stream before dispatch so batching windows cover it.
std::vector<svc::AnalysisOutcome> serve(const svc::ServiceOptions& sopts,
                                        std::vector<svc::AnalysisRequest> reqs,
                                        svc::ServiceStats& stats_out) {
  svc::Service service(sopts);
  std::vector<std::future<svc::AnalysisOutcome>> futures;
  futures.reserve(reqs.size());
  for (svc::AnalysisRequest& req : reqs) {
    futures.push_back(service.submit(std::move(req)));
  }
  service.resume();
  std::vector<svc::AnalysisOutcome> outs;
  outs.reserve(futures.size());
  for (auto& f : futures) outs.push_back(f.get());
  stats_out = service.stats();
  return outs;
}

}  // namespace

int main() {
  // Observability on for every configuration (uniform overhead, fair
  // ratios): the svc.request_latency_us histogram feeds the per-request
  // p50/p99 metrics below.
  obs::set_enabled(true);

  // STRT_BENCH_SMOKE: a reduced corpus for CI smoke legs -- same phases,
  // same gates, a fraction of the wall time.
  const bool smoke = cfg::get_bool("STRT_BENCH_SMOKE", /*def=*/false);
  const int systems = smoke ? 4 : kSystems;
  const int rounds_per_system = smoke ? 2 : kRoundsPerSystem;

  const Supply supply = Supply::tdma(Time(35), Time(50));

  std::vector<svc::AnalysisRequest> reqs;
  std::uint64_t next_id = 0;
  for (int s = 0; s < systems; ++s) {
    const auto tasks =
        random_system(9000 + static_cast<std::uint64_t>(s));
    lint_generated(tasks);
    for (int r = 0; r < rounds_per_system; ++r) {
      push_round(reqs, tasks, supply, /*deep_dive=*/r == 0, next_id);
    }
  }

  std::cout << "E12: batch service vs cold per-request baseline\n"
            << reqs.size() << " requests over " << systems
            << " task systems (" << rounds_per_system
            << " rounds of every kind per system) on " << supply.describe()
            << (smoke ? " [smoke]" : "") << "\n\n";

  BenchReport report("service");
  report.metric("requests", reqs.size());
  report.metric("task_systems", systems);
  report.metric("rounds_per_system", rounds_per_system);
  report.metric("smoke", smoke);

  // Cold per-request baseline: a fresh private workspace per request,
  // strictly serial (the one-shot CLI usage pattern).
  std::vector<svc::AnalysisOutcome> baseline;
  baseline.reserve(reqs.size());
  double cold_ms = 0;
  {
    Phase phase("cold_baseline");
    for (const svc::AnalysisRequest& req : reqs) {
      baseline.push_back(svc::run_request(req));
    }
    cold_ms = phase.millis();
  }
  obs::Histogram& h_latency = obs::histogram("svc.request_latency_us");
  const obs::HistogramSnapshot cold_latency = h_latency.snapshot();
  // Reset so the warm phase's histogram covers its requests alone.
  obs::Registry::global().reset();

  // Warm batch service (the production configuration) and the serial
  // no-batch ablation (shared warm workspace only).
  svc::ServiceOptions warm_opts;
  warm_opts.start_paused = true;
  warm_opts.queue_capacity = reqs.size() + 1;
  warm_opts.max_batch = 64;
  svc::ServiceOptions ablation_opts = warm_opts;
  ablation_opts.batch_by_fingerprint = false;
  ablation_opts.parallel_batches = false;

  svc::ServiceStats warm_stats;
  std::vector<svc::AnalysisOutcome> served;
  double warm_ms = 0;
  {
    Phase phase("warm_service");
    served = serve(warm_opts, reqs, warm_stats);
    warm_ms = phase.millis();
  }
  const obs::HistogramSnapshot warm_latency = h_latency.snapshot();

  svc::ServiceStats ablation_stats;
  std::vector<svc::AnalysisOutcome> ablated;
  double ablation_ms = 0;
  {
    Phase phase("warm_serial_nobatch");
    ablated = serve(ablation_opts, reqs, ablation_stats);
    ablation_ms = phase.millis();
  }

  // Bit-identity gate: timings mean nothing if the answers moved.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!same_outcome(baseline[i], served[i]) ||
        !same_outcome(baseline[i], ablated[i])) {
      std::cerr << "bench: outcome mismatch vs the cold baseline at "
                   "request id "
                << baseline[i].id << " -- service results must be "
                << "bit-identical; not reporting timings\n";
      return 1;
    }
  }
  std::cout << "bit-identity: all " << reqs.size()
            << " outcomes match the cold baseline\n\n";

  const double n = static_cast<double>(reqs.size());
  const auto throughput = [n](double ms) { return n / (ms / 1e3); };
  const double speedup = cold_ms / warm_ms;

  Table table({"configuration", "wall ms", "req/s", "vs cold",
               "batches", "batched reqs"});
  table.add_row({"cold per-request", fmt_ratio(cold_ms),
                 fmt_ratio(throughput(cold_ms), 0), "1.00x", "-", "-"});
  table.add_row({"warm serial no-batch", fmt_ratio(ablation_ms),
                 fmt_ratio(throughput(ablation_ms), 0),
                 fmt_ratio(cold_ms / ablation_ms) + "x",
                 std::to_string(ablation_stats.batches),
                 std::to_string(ablation_stats.batched_requests)});
  table.add_row({"warm batch service", fmt_ratio(warm_ms),
                 fmt_ratio(throughput(warm_ms), 0),
                 fmt_ratio(speedup) + "x",
                 std::to_string(warm_stats.batches),
                 std::to_string(warm_stats.batched_requests)});
  table.print(std::cout);

  std::cout << "\nwarm batch service vs cold baseline: " << fmt_ratio(speedup)
            << "x (regression bar: >= 2x)\n";

  report.metric("cold_ms", cold_ms);
  report.metric("warm_ms", warm_ms);
  report.metric("warm_serial_nobatch_ms", ablation_ms);
  report.metric("cold_req_per_s", throughput(cold_ms));
  report.metric("warm_req_per_s", throughput(warm_ms));
  report.metric("speedup", speedup);
  report.metric("speedup_ok", speedup >= 2.0);
  report.metric("identical", true);
  report.metric("batches", warm_stats.batches);
  report.metric("batched_requests", warm_stats.batched_requests);

  // Histogram-derived request-latency tails (microseconds; warm includes
  // queue wait, which is why its p99 can exceed the cold tail even when
  // throughput is far higher).
  report.metric("cold_latency_p50_us", cold_latency.quantile(0.50));
  report.metric("cold_latency_p99_us", cold_latency.quantile(0.99));
  report.metric("warm_latency_p50_us", warm_latency.quantile(0.50));
  report.metric("warm_latency_p99_us", warm_latency.quantile(0.99));
  std::cout << "\nrequest latency (us): cold p50 "
            << cold_latency.quantile(0.50) << " / p99 "
            << cold_latency.quantile(0.99) << "; warm p50 "
            << warm_latency.quantile(0.50) << " / p99 "
            << warm_latency.quantile(0.99) << '\n';

  // Throughput-vs-shards scaling sweep over the same corpus.  Every
  // configuration re-runs the bit-identity gate before its timing
  // counts.  The registry is reset per configuration so each row's
  // cache.lock_wait_ns tail covers that configuration alone (striping
  // contention evidence).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double scaling_bar =
      hw >= 8 ? 3.0 : 0.75 * static_cast<double>(hw);
  obs::Histogram& h_lock_wait = obs::histogram("cache.lock_wait_ns");

  std::cout << "\nthroughput-vs-shards scaling sweep (" << hw
            << " hardware thread(s); bar at 8 shards: "
            << fmt_ratio(scaling_bar) << "x)\n";
  Table scaling_table({"shards", "wall ms", "req/s", "vs 1 shard",
                       "lock wait p99 ns"});
  std::string scaling_json = "[";
  double one_shard_ms = 0;
  double ratio_at_max = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    obs::Registry::global().reset();
    svc::ServiceOptions opts;
    opts.start_paused = true;
    opts.shards = shards;
    // Per-shard ring capacity is queue_capacity / shards; the paused
    // enqueue-everything pattern needs any single shard to be able to
    // hold the whole corpus.
    opts.queue_capacity = shards * (reqs.size() + 1);
    opts.max_batch = 64;

    svc::ServiceStats stats;
    std::vector<svc::AnalysisOutcome> outs;
    double ms = 0;
    {
      Phase phase("scaling_shards_" + std::to_string(shards));
      outs = serve(opts, reqs, stats);
      ms = phase.millis();
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!same_outcome(baseline[i], outs[i])) {
        std::cerr << "bench: outcome mismatch vs the cold baseline at "
                  << shards << " shard(s), request id " << baseline[i].id
                  << " -- results must be bit-identical across shard "
                  << "counts; not reporting timings\n";
        return 1;
      }
    }
    if (shards == 1) one_shard_ms = ms;
    const double ratio = one_shard_ms / ms;
    ratio_at_max = ratio;
    const obs::HistogramSnapshot lock_wait = h_lock_wait.snapshot();

    scaling_table.add_row({std::to_string(shards), fmt_ratio(ms),
                           fmt_ratio(throughput(ms), 0),
                           fmt_ratio(ratio) + "x",
                           std::to_string(lock_wait.quantile(0.99))});
    if (scaling_json.size() > 1) scaling_json += ',';
    scaling_json += "{\"shards\":" + std::to_string(shards) +
                    ",\"wall_ms\":" + std::to_string(ms) +
                    ",\"req_per_s\":" + std::to_string(throughput(ms)) +
                    ",\"speedup_vs_1shard\":" + std::to_string(ratio) +
                    ",\"lock_wait_p99_ns\":" +
                    std::to_string(lock_wait.quantile(0.99)) +
                    ",\"lock_wait_count\":" +
                    std::to_string(lock_wait.count) + "}";
  }
  scaling_json += ']';
  scaling_table.print(std::cout);
  std::cout << "scaling at 8 shards: " << fmt_ratio(ratio_at_max)
            << "x vs 1 shard (bar " << fmt_ratio(scaling_bar) << "x on "
            << hw << " hardware thread(s))\n";

  report.metric_json("scaling_curve", scaling_json);
  report.metric("hardware_threads", hw);
  report.metric("scaling_bar", scaling_bar);
  report.metric("scaling_at_8_shards", ratio_at_max);
  report.metric("scaling_ok", ratio_at_max >= scaling_bar);

  // Restart-warm phase: the persistent-snapshot story.  A cold
  // workspace answers the corpus once (restart baseline, memos built
  // from nothing), persists its warmth, and a *fresh* workspace -- the
  // process-restart stand-in -- loads the snapshot and answers the same
  // corpus.  Warm-from-disk must beat the cold restart, and every
  // configuration (snapshot off, snapshot on, corrupted-then-rejected)
  // must stay bit-identical to the cold baseline before the timing is
  // reported.
  const std::string snap_path =
      (std::filesystem::temp_directory_path() /
       ("strt_bench_snapshot_" + std::to_string(::getpid()) + ".bin"))
          .string();
  std::cout << "\nrestart-warm sweep (snapshot " << snap_path << ")\n";

  double restart_cold_ms = 0;
  std::vector<svc::AnalysisOutcome> restart_cold;
  {
    engine::Workspace cold_ws;
    Phase phase("restart_cold");
    restart_cold.reserve(reqs.size());
    for (const svc::AnalysisRequest& req : reqs) {
      restart_cold.push_back(svc::run_request(cold_ws, req));
    }
    restart_cold_ms = phase.millis();
    if (!cold_ws.save_snapshot(snap_path)) {
      std::cerr << "bench: saving the warm-start snapshot failed\n";
      return 1;
    }
  }

  double restart_warm_ms = 0;
  std::vector<svc::AnalysisOutcome> restart_warm;
  std::uint64_t warm_hits = 0;
  {
    engine::Workspace warm_ws;
    if (!warm_ws.load_snapshot(snap_path)) {
      std::cerr << "bench: loading the just-saved snapshot failed\n";
      return 1;
    }
    Phase phase("restart_warm_from_disk");
    restart_warm.reserve(reqs.size());
    for (const svc::AnalysisRequest& req : reqs) {
      restart_warm.push_back(svc::run_request(warm_ws, req));
    }
    restart_warm_ms = phase.millis();
    warm_hits = warm_ws.stats().hits;
  }

  // Corrupted snapshot: flip one payload byte; the load must reject
  // whole and the workspace must cold-start to identical answers.
  {
    std::fstream f(snap_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(48);
    char b = 0;
    f.get(b);
    f.seekp(48);
    f.put(static_cast<char>(b ^ 0x5a));
  }
  std::vector<svc::AnalysisOutcome> rejected_run;
  bool rejected_cleanly = false;
  {
    engine::Workspace rejected_ws;
    rejected_cleanly = !rejected_ws.load_snapshot(snap_path) &&
                       rejected_ws.stats().bytes == 0;
    rejected_run.reserve(reqs.size());
    for (const svc::AnalysisRequest& req : reqs) {
      rejected_run.push_back(svc::run_request(rejected_ws, req));
    }
  }
  std::filesystem::remove(snap_path);
  if (!rejected_cleanly) {
    std::cerr << "bench: corrupted snapshot was not rejected whole\n";
    return 1;
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!same_outcome(baseline[i], restart_cold[i]) ||
        !same_outcome(baseline[i], restart_warm[i]) ||
        !same_outcome(baseline[i], rejected_run[i])) {
      std::cerr << "bench: outcome mismatch vs the cold baseline in the "
                   "restart-warm sweep at request id "
                << baseline[i].id << " -- snapshot on/off/rejected must "
                << "be bit-identical; not reporting timings\n";
      return 1;
    }
  }
  const double warm_speedup = restart_cold_ms / restart_warm_ms;
  Table restart_table({"configuration", "wall ms", "req/s", "vs restart"});
  restart_table.add_row({"cold restart", fmt_ratio(restart_cold_ms),
                         fmt_ratio(throughput(restart_cold_ms), 0),
                         "1.00x"});
  restart_table.add_row({"warm from disk", fmt_ratio(restart_warm_ms),
                         fmt_ratio(throughput(restart_warm_ms), 0),
                         fmt_ratio(warm_speedup) + "x"});
  restart_table.print(std::cout);
  std::cout << "warm-from-disk vs cold restart: " << fmt_ratio(warm_speedup)
            << "x (" << warm_hits
            << " memo hits served from the snapshot; bar: >= 1x, "
               "corrupted file rejected whole)\n";

  report.metric("snapshot_cold_ms", restart_cold_ms);
  report.metric("snapshot_warm_ms", restart_warm_ms);
  report.metric("snapshot_warm_speedup", warm_speedup);
  report.metric("snapshot_warm_ok", warm_speedup >= 1.0);
  report.metric("snapshot_warm_hits", warm_hits);
  report.metric("snapshot_rejected_cleanly", rejected_cleanly);
  report.metric("snapshot_identical", true);
  return 0;
}
