// Experiment E3 (Figure analogue): delay bound vs TDMA share for a fixed
// bursty structural task, per abstraction.
//
// Expected shape: every curve falls monotonically as the slot grows; the
// coarser the abstraction, the larger the minimum share at which its
// bound first becomes finite and the slower it approaches the structural
// curve.  Reading the figure horizontally at a deadline gives the
// per-analysis minimum share (the dimensioning experiment E5).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  // The burst-quiet diagnostics task from the examples.
  DrtBuilder b("diagnostics");
  const VertexId big = b.add_vertex("dump", Work(12), Time(200));
  const VertexId small = b.add_vertex("poll", Work(2), Time(40));
  b.add_edge(big, small, Time(15));
  b.add_edge(small, small, Time(15));
  b.add_edge(small, big, Time(150));
  const DrtTask task = std::move(b).build();

  const Time cycle(25);
  std::cout << "E3: delay bound vs TDMA slot (cycle " << cycle.count()
            << ") for task " << task.name() << "\n\n";

  BenchReport report("resource_share");
  Table table({"slot", "share", "structural", "exact", "hull", "bucket",
               "min-gap"});
  std::vector<std::vector<std::string>> csv_rows;
  Time min_finite_slot = Time::unbounded();
  for (std::int64_t slot = 2; slot <= cycle.count(); ++slot) {
    Phase phase("slot:" + std::to_string(slot));
    std::vector<std::string> cells{
        std::to_string(slot),
        fmt_ratio(static_cast<double>(slot) /
                      static_cast<double>(cycle.count()),
                  2)};
    std::vector<std::string> csv_cells = cells;
    for (const WorkloadAbstraction a : kAllAbstractions) {
      engine::Workspace ws;
      const AbstractionResult r = delay_with_abstraction(
          ws, task, Supply::tdma(Time(slot), cycle), a);
      if (a == WorkloadAbstraction::kStructural && !r.delay.is_unbounded()) {
        min_finite_slot = min(min_finite_slot, Time(slot));
      }
      cells.push_back(show(r.delay));
      csv_cells.push_back(show(r.delay));
    }
    table.add_row(cells);
    csv_rows.push_back(csv_cells);
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"slot", "share", "structural", "exact", "hull",
                            "bucket", "mingap"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("slots", csv_rows.size());
  report.metric("min_finite_structural_slot", min_finite_slot);
  return 0;
}
