#include "legacy_curves.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "base/assert.hpp"
#include "base/checked.hpp"

namespace strt::legacy {

namespace {

/// Merged, deduplicated breakpoint times of two curves, restricted to
/// [0, upto].
std::vector<Time> merged_times(const LegacyCurve& f, const LegacyCurve& g,
                               Time upto) {
  std::vector<Time> ts;
  ts.reserve(f.steps.size() + g.steps.size());
  for (const Step& s : f.steps)
    if (s.time <= upto) ts.push_back(s.time);
  for (const Step& s : g.steps)
    if (s.time <= upto) ts.push_back(s.time);
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  return ts;
}

template <class Combine>
LegacyCurve pointwise_op(const LegacyCurve& f, const LegacyCurve& g,
                         Combine&& op) {
  const Time h = min(f.horizon, g.horizon);
  std::vector<Step> samples;
  for (Time t : merged_times(f, g, h)) {
    samples.push_back(Step{t, op(f.value(t), g.value(t))});
  }
  return from_points(std::move(samples), h);
}

/// A constant-valued piece of a two-operand envelope, covering the
/// inclusive time range [begin, end].
struct Piece {
  Time begin;
  Time end;
  Work value;
};

/// Lower (kMin) or upper (!kMin) envelope of constant pieces, evaluated
/// as a curve on [0, horizon] -- the old heap-based sweep.
template <bool kMin>
LegacyCurve envelope(std::vector<Piece> pieces, Time horizon) {
  std::erase_if(pieces, [&](const Piece& p) {
    return p.end < Time(0) || p.begin > horizon;
  });
  for (Piece& p : pieces) p.begin = max(p.begin, Time(0));
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.begin < b.begin; });

  std::vector<Time> events;
  events.reserve(2 * pieces.size());
  for (const Piece& p : pieces) {
    events.push_back(p.begin);
    if (p.end + Time(1) <= horizon) events.push_back(p.end + Time(1));
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  struct HeapItem {
    Work value;
    Time end;
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    if constexpr (kMin) {
      return a.value > b.value;  // min-heap by value
    } else {
      return a.value < b.value;  // max-heap by value
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);

  std::vector<Step> samples;
  std::size_t i = 0;
  for (Time t : events) {
    while (i < pieces.size() && pieces[i].begin <= t) {
      if (pieces[i].end >= t) {
        heap.push(HeapItem{pieces[i].value, pieces[i].end});
      }
      ++i;
    }
    while (!heap.empty() && heap.top().end < t) heap.pop();
    STRT_ASSERT(!heap.empty(), "legacy envelope has a gap");
    samples.push_back(Step{t, max(heap.top().value, Work(0))});
  }
  return from_points(std::move(samples), horizon);
}

}  // namespace

Work LegacyCurve::value_in_range(Time t) const {
  STRT_ASSERT(t >= Time(0) && t <= horizon, "value_in_range out of range");
  auto it = std::upper_bound(
      steps.begin(), steps.end(), t,
      [](Time x, const Step& s) { return x < s.time; });
  STRT_ASSERT(it != steps.begin(), "no step at or before t");
  return std::prev(it)->value;
}

Work LegacyCurve::value(Time t) const {
  STRT_REQUIRE(t >= Time(0), "curve domain starts at 0");
  if (t <= horizon) return value_in_range(t);
  STRT_REQUIRE(tail.has_value(),
               "value beyond horizon requires a periodic tail");
  const std::int64_t p = tail->period.count();
  const std::int64_t over = (t - horizon).count();
  const std::int64_t m = checked::ceil_div(over, p);
  const Time base = t - Time(checked::mul(m, p));
  return value_in_range(base) + Work(checked::mul(m, tail->increment.count()));
}

Time LegacyCurve::inverse(Work w) const {
  if (w <= steps.front().value) return Time(0);
  if (w <= value_at_horizon()) {
    auto it = std::lower_bound(
        steps.begin(), steps.end(), w,
        [](const Step& s, Work x) { return s.value < x; });
    STRT_ASSERT(it != steps.end(), "legacy inverse lookup failed");
    return it->time;
  }
  if (!tail) {
    throw std::invalid_argument(
        "Staircase::inverse: target value beyond horizon and the curve has "
        "no tail; extend the curve first");
  }
  if (tail->increment == Work(0)) return Time::unbounded();
  const std::int64_t need = checked::sub(w.count(), value_at_horizon().count());
  const std::int64_t periods =
      checked::ceil_div(need, tail->increment.count());
  Time lo = horizon;  // value(horizon) < w here
  Time hi = horizon + Time(checked::mul(periods + 1, tail->period.count()));
  STRT_ASSERT(value(hi) >= w, "legacy inverse upper bracket too small");
  while (lo + Time(1) < hi) {
    const Time mid = Time((lo.count() + hi.count()) / 2);
    if (value(mid) >= w) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

LegacyCurve from_staircase(const Staircase& f) {
  LegacyCurve c;
  const auto ts = f.times();
  const auto vs = f.values();
  c.steps.reserve(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    c.steps.push_back(Step{ts[i], vs[i]});
  }
  c.horizon = f.horizon();
  c.tail = f.tail();
  return c;
}

Staircase to_staircase(const LegacyCurve& c) {
  Staircase r = Staircase::from_points(c.steps, c.horizon);
  if (c.tail) return r.with_tail(*c.tail);
  return r;
}

LegacyCurve from_points(std::vector<Step> points, Time horizon) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  for (const Step& p : points) {
    STRT_REQUIRE(p.time >= Time(0) && p.time <= horizon,
                 "point outside [0, horizon]");
    STRT_REQUIRE(p.value >= Work(0), "point value must be non-negative");
  }
  std::sort(points.begin(), points.end(),
            [](const Step& a, const Step& b) { return a.time < b.time; });
  std::vector<Step> canon;
  canon.push_back(Step{Time(0), Work(0)});
  for (const Step& p : points) {
    const Work v = max(p.value, canon.back().value);
    if (p.time == canon.back().time) {
      canon.back().value = v;
    } else if (v > canon.back().value) {
      canon.push_back(Step{p.time, v});
    }
  }
  return LegacyCurve{std::move(canon), horizon, std::nullopt};
}

LegacyCurve conv(const LegacyCurve& f, const LegacyCurve& g) {
  const Time horizon = f.horizon + g.horizon;
  const auto& fs = f.steps;
  const auto& gs = g.steps;
  std::vector<Piece> pieces;
  pieces.reserve(fs.size() * gs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Time ai = fs[i].time;
    const Time ai1 =
        (i + 1 < fs.size()) ? fs[i + 1].time : f.horizon + Time(1);
    for (std::size_t j = 0; j < gs.size(); ++j) {
      const Time bj = gs[j].time;
      const Time bj1 =
          (j + 1 < gs.size()) ? gs[j + 1].time : g.horizon + Time(1);
      pieces.push_back(Piece{ai + bj, ai1 + bj1 - Time(2),
                             fs[i].value + gs[j].value});
    }
  }
  return envelope</*kMin=*/true>(std::move(pieces), horizon);
}

LegacyCurve deconv(const LegacyCurve& f, const LegacyCurve& g) {
  STRT_REQUIRE(g.horizon <= f.horizon,
               "deconvolution requires Hg <= Hf (extend f first)");
  const Time horizon = f.horizon - g.horizon;
  const auto& fs = f.steps;
  const auto& gs = g.steps;
  std::vector<Piece> pieces;
  pieces.reserve(fs.size() * gs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Time ai = fs[i].time;
    const Time ai1 =
        (i + 1 < fs.size()) ? fs[i + 1].time : f.horizon + Time(1);
    for (std::size_t j = 0; j < gs.size(); ++j) {
      const Time bj = gs[j].time;
      const Time bj1 =
          (j + 1 < gs.size()) ? gs[j + 1].time : g.horizon + Time(1);
      const Work raw = Work(checked::sub(fs[i].value.count(),
                                         gs[j].value.count()));
      pieces.push_back(Piece{ai - (bj1 - Time(1)), (ai1 - Time(1)) - bj,
                             raw});
    }
  }
  return envelope</*kMin=*/false>(std::move(pieces), horizon);
}

Time hdev(const LegacyCurve& a, const LegacyCurve& b) {
  Time worst = Time(0);
  for (const Step& s : a.steps) {
    if (s.value == Work(0)) continue;
    const Time crossing = b.inverse(s.value);
    if (crossing.is_unbounded()) return Time::unbounded();
    const Time release = max(Time(0), s.time - Time(1));
    if (crossing > release) worst = max(worst, crossing - release);
  }
  return worst;
}

Work vdev(const LegacyCurve& a, const LegacyCurve& b, Time upto) {
  STRT_REQUIRE(upto >= Time(0), "vdev horizon must be non-negative");
  Work worst = Work(0);
  for (const Step& s : a.steps) {
    if (s.value == Work(0)) continue;
    const Time t = max(Time(0), s.time - Time(1));
    if (t > upto) break;
    const Work bv = b.value(t);
    if (s.value > bv) worst = max(worst, s.value - bv);
  }
  return worst;
}

LegacyCurve pointwise_add(const LegacyCurve& f, const LegacyCurve& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return a + b; });
}

LegacyCurve pointwise_min(const LegacyCurve& f, const LegacyCurve& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return min(a, b); });
}

LegacyCurve pointwise_max(const LegacyCurve& f, const LegacyCurve& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return max(a, b); });
}

std::optional<Time> first_catch_up(const LegacyCurve& a,
                                   const LegacyCurve& b) {
  const Time h = min(a.horizon, b.horizon);
  std::vector<Time> ts = merged_times(a, b, h);
  if (h >= Time(1)) ts.push_back(Time(1));
  std::sort(ts.begin(), ts.end());
  for (Time t : ts) {
    if (t < Time(1)) continue;
    if (a.value(t) <= b.value(t)) return t;
  }
  return std::nullopt;
}

LegacyCurve leftover_service(const LegacyCurve& b, const LegacyCurve& a) {
  const Time h = min(a.horizon, b.horizon);
  std::vector<Step> samples;
  Work best = Work(0);
  for (Time t : merged_times(a, b, h)) {
    const Work bv = b.value(t);
    const Work av = a.value(t);
    if (bv > av) best = max(best, bv - av);
    samples.push_back(Step{t, best});
  }
  return from_points(std::move(samples), h);
}

}  // namespace strt::legacy
