// Experiment E11 (extension figure): joint two-task fixed-priority
// analysis -- consistent interference paths vs the rbf aggregate.
//
// Part 1 sweeps the TDMA share for the mode-switching interference
// family (a heavy burst XOR a dense light cycle): the rbf leftover
// charges the low-priority task with both behaviours at once, the joint
// analysis knows they are exclusive.
//
// Part 2 measures how often and how much the joint analysis wins on
// random instances.
//
// Expected shape: joint <= rbf everywhere; strict gaps concentrate where
// the supply is tight; gap magnitude grows with the low-priority job
// size (longer exposure to the inconsistent interference).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/joint_fp.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"

using namespace strt;
using namespace strt::bench;

namespace {

DrtTask mode_switch_hp() {
  DrtBuilder hb("hp");
  const VertexId heavy = hb.add_vertex("heavy", Work(6), Time(100));
  const VertexId light = hb.add_vertex("light", Work(1), Time(100));
  hb.add_edge(heavy, heavy, Time(30));
  hb.add_edge(heavy, light, Time(30));
  hb.add_edge(light, light, Time(4));
  hb.add_edge(light, heavy, Time(30));
  return std::move(hb).build();
}

}  // namespace

int main() {
  std::cout << "E11: joint interference-path analysis vs rbf leftover\n\n";

  BenchReport report("joint_fp");

  // --- Part 1: share sweep on the mode-switch family.
  const DrtTask hp = mode_switch_hp();
  const DrtTask lp =
      SporadicTask{"lp", Work(8), Time(60), Time(60)}.to_drt();

  std::uint64_t explored_states = 0;
  Table sweep({"tdma slot/8", "joint", "rbf leftover", "rbf/joint",
               "paths analyzed"});
  std::vector<std::vector<std::string>> csv1;
  {
    Phase phase("joint_fp.sweep");
    for (std::int64_t slot = 3; slot <= 8; ++slot) {
      const Supply supply = Supply::tdma(Time(slot), Time(8));
      engine::Workspace ws;
      const JointFpResult r = joint_two_task_fp(ws, hp, lp, supply);
      explored_states += r.explore_stats.generated;
      if (r.overloaded) {
        sweep.add_row({std::to_string(slot), "inf", "inf", "-", "-"});
        continue;
      }
      sweep.add_row({std::to_string(slot), show(r.joint_delay),
                     show(r.rbf_delay), factor(r.rbf_delay, r.joint_delay),
                     std::to_string(r.paths_analyzed)});
      csv1.push_back({std::to_string(slot), show(r.joint_delay),
                      show(r.rbf_delay)});
    }
  }
  sweep.print(std::cout);

  // --- Part 2: random instances.
  std::cout << "\nRandom two-task instances (hp 2-3 vertices, tight TDMA "
               "supply):\n\n";
  int gaps = 0;
  int n = 0;
  double sum_ratio = 0;
  double worst_ratio = 1.0;
  JointFpOptions jopts;
  jopts.max_paths = 20'000;  // skip path-explosion instances quickly
  {
    Phase phase("joint_fp.random");
    // One split stream per accepted instance; rejection (overload or
    // path-cap throw) retries within the same stream, so the instance
    // set is identical for any STRT_THREADS.
    const auto outs =
        trials(24680, std::size_t{15}, [&](Rng& rng, std::size_t) {
          for (;;) {
            DrtGenParams params;
            params.min_vertices = 2;
            params.max_vertices = 3;
            params.min_separation = Time(5);
            params.max_separation = Time(20);
            params.chord_probability = 0.3;
            params.target_utilization = 0.25;
            const DrtTask h = random_drt(rng, params).task;
            const DrtTask l = random_drt(rng, params).task;
            const Supply supply = Supply::tdma(Time(4), Time(7));
            JointFpResult r;
            try {
              engine::Workspace trial_ws;
              r = joint_two_task_fp(trial_ws, h, l, supply, jopts);
            } catch (const std::runtime_error&) {
              continue;
            }
            if (r.overloaded) continue;
            const double ratio =
                static_cast<double>(r.rbf_delay.count()) /
                static_cast<double>(r.joint_delay.count());
            return ratio;
          }
        });
    for (const double ratio : outs) {
      ++n;
      sum_ratio += ratio;
      worst_ratio = std::max(worst_ratio, ratio);
      if (ratio > 1.0) ++gaps;
    }
  }
  Table stats({"instances", "strict gaps", "mean rbf/joint",
               "max rbf/joint"});
  stats.add_row({std::to_string(n), std::to_string(gaps),
                 fmt_ratio(sum_ratio / n), fmt_ratio(worst_ratio)});
  stats.print(std::cout);

  // --- Part 3: a three-task stack (two interferers above the victim).
  auto make_hp = [](std::int64_t hs, std::int64_t ls, std::int64_t he) {
    DrtBuilder hb("hp");
    const VertexId heavy = hb.add_vertex("heavy", Work(he), Time(200));
    const VertexId light = hb.add_vertex("light", Work(1), Time(200));
    hb.add_edge(heavy, heavy, Time(hs));
    hb.add_edge(heavy, light, Time(hs));
    hb.add_edge(light, light, Time(ls));
    hb.add_edge(light, heavy, Time(hs));
    return std::move(hb).build();
  };
  const std::vector<DrtTask> hps{make_hp(30, 4, 6), make_hp(40, 6, 5)};
  std::cout << "\nThree-task stack (two mode-switch interferers), victim "
               "wcet sweep on tdma(5/8):\n\n";
  Table stack({"victim wcet", "joint", "rbf leftover", "rbf/joint",
               "paths"});
  for (const std::int64_t lw : {4, 8, 12, 16}) {
    const DrtTask victim =
        SporadicTask{"lp", Work(lw), Time(90), Time(90)}.to_drt();
    engine::Workspace ws;
    const JointFpResult r = joint_multi_task_fp(
        ws, hps, victim, Supply::tdma(Time(5), Time(8)));
    if (r.overloaded) {
      stack.add_row({std::to_string(lw), "inf", "inf", "-", "-"});
      continue;
    }
    stack.add_row({std::to_string(lw), show(r.joint_delay),
                   show(r.rbf_delay), factor(r.rbf_delay, r.joint_delay),
                   std::to_string(r.paths_analyzed)});
  }
  stack.print(std::cout);

  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"slot", "joint", "rbf"});
  for (const auto& row : csv1) csv.row(row);

  report.metric("sweep_explored_states", explored_states);
  report.metric("random_instances", n);
  report.metric("random_strict_gaps", gaps);
  return 0;
}
