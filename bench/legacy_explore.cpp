#include "legacy_explore.hpp"

#include <queue>

namespace strt::legacy {

Result explore(const DrtTask& task, Time elapsed_limit) {
  Result res;
  std::vector<Skyline> skylines(task.vertex_count());

  struct QItem {
    Time elapsed;
    Work work;
    std::int32_t idx;
  };
  auto cmp = [](const QItem& a, const QItem& b) {
    if (a.elapsed != b.elapsed) return a.elapsed > b.elapsed;
    return a.work < b.work;
  };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> queue(cmp);

  auto accept = [&](VertexId v, Time elapsed, Work work,
                    std::int32_t parent) {
    ++res.generated;
    const auto idx = static_cast<std::int32_t>(res.arena.size());
    if (!skylines[static_cast<std::size_t>(v)].insert(elapsed, work, idx)) {
      return;
    }
    res.arena.push_back(PathState{v, elapsed, work, parent});
    queue.push(QItem{elapsed, work, idx});
  };

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    accept(v, Time(0), task.vertex(v).wcet, -1);
  }

  while (!queue.empty()) {
    const QItem item = queue.top();
    queue.pop();
    const PathState st = res.arena[static_cast<std::size_t>(item.idx)];
    if (!skylines[static_cast<std::size_t>(st.vertex)].is_live(st.elapsed,
                                                               item.idx)) {
      continue;  // dominated after insertion
    }
    for (std::int32_t ei : task.out_edges(st.vertex)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time elapsed = st.elapsed + e.separation;
      if (elapsed > elapsed_limit) continue;
      accept(e.to, elapsed, st.work + task.vertex(e.to).wcet, item.idx);
    }
  }

  for (const Skyline& s : skylines) {
    s.for_each([&](Time, Work, std::int32_t idx) {
      res.frontier.push_back(idx);
    });
  }
  return res;
}

}  // namespace strt::legacy
