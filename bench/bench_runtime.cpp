// Experiment E4 (Figure analogue): analysis runtime and explored states
// vs graph size and vs supply tightness (busy-window length).
//
// google-benchmark harness; counters report busy-window length and
// explored/pruned state counts alongside wall time.
//
// After the microbenchmarks, a speedup section times the same structural
// sweep serially (STRT_THREADS=1) and on the exec pool, checks the
// results are bit-identical, times the overhauled explorer against the
// pre-overhaul implementation (std::map skyline + std::priority_queue
// agenda, kept as the bench-only strt_bench_legacy library), and times a
// sensitivity sweep with the engine Workspace cache on vs off.  The
// headline numbers land in BENCH_runtime.json: serial_ms / parallel_ms /
// speedup / threads, explorer_legacy_ms / explorer_new_ms /
// explorer_speedup, and sensitivity_uncached_ms / sensitivity_cached_ms /
// cache_speedup.
//
// Expected shape: runtime grows mildly with the vertex count (the
// dominance-pruned frontier is small) and roughly linearly with the
// busy-window length; everything stays in the interactive range for
// DATE-scale graphs.  The parallel speedup tracks the physical core
// count; the explorer overhaul wins a constant factor from flat storage
// and O(1) bucket scheduling.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "engine/workspace.hpp"
#include "graph/explore.hpp"
#include "io/table.hpp"
#include "legacy_explore.hpp"
#include "model/generator.hpp"

namespace strt {
namespace {

GeneratedTask task_with_vertices(std::size_t n, double target_u,
                                 std::uint64_t seed) {
  Rng rng(seed);
  DrtGenParams params;
  params.min_vertices = n;
  params.max_vertices = n;
  params.min_separation = Time(5);
  params.max_separation = Time(40);
  params.chord_probability = 0.10;
  params.target_utilization = target_u;
  return random_drt(rng, params);
}

void BM_StructuralVsVertices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GeneratedTask gen = task_with_vertices(n, 0.35, 1000 + n);
  const Supply supply = Supply::tdma(Time(5), Time(10));
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    engine::Workspace ws;
    last = structural_delay(ws, gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
  state.counters["delay"] = static_cast<double>(last.delay.count());
}
BENCHMARK(BM_StructuralVsVertices)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_StructuralVsSupplyTightness(benchmark::State& state) {
  // Fixed task (U ~ 0.45); the slot shrinks toward the utilization, the
  // busy window (and hence the explored prefix) stretches.
  const GeneratedTask gen = task_with_vertices(10, 0.45, 77);
  const auto slot = state.range(0);
  const Supply supply = Supply::tdma(Time(slot), Time(20));
  if (!(gen.exact_utilization < supply.long_run_rate())) {
    state.SkipWithError("supply below utilization");
    return;
  }
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    engine::Workspace ws;
    last = structural_delay(ws, gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["slot"] = static_cast<double>(slot);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
}
BENCHMARK(BM_StructuralVsSupplyTightness)
    ->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_AbstractionAnalyses(benchmark::State& state) {
  // Cost of each analysis in the spectrum on the same instance.
  const GeneratedTask gen = task_with_vertices(15, 0.40, 4242);
  const Supply supply = Supply::tdma(Time(9), Time(20));
  const auto a = static_cast<WorkloadAbstraction>(state.range(0));
  StructuralOptions opts;
  opts.want_witness = false;
  for (auto _ : state) {
    engine::Workspace ws;
    const AbstractionResult r =
        delay_with_abstraction(ws, gen.task, supply, a, opts);
    benchmark::DoNotOptimize(r.delay);
  }
  state.SetLabel(std::string(abstraction_name(a)));
}
BENCHMARK(BM_AbstractionAnalyses)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

/// The Pareto frontier as a canonical (elapsed -> max work) map -- the
/// semantic content both explorer implementations must agree on.
template <class Arena, class Frontier>
std::map<std::int64_t, std::int64_t> frontier_skyline(
    const Arena& arena, const Frontier& frontier) {
  std::map<std::int64_t, std::int64_t> m;
  for (const std::int32_t idx : frontier) {
    const PathState& st = arena[static_cast<std::size_t>(idx)];
    auto& slot = m[st.elapsed.count()];
    slot = std::max(slot, st.work.count());
  }
  return m;
}

/// Serial vs parallel timing of the same 40-vertex structural sweep plus
/// the explorer-overhaul ablation; emits the headline numbers into
/// BENCH_runtime.json via the report.
int run_speedup_section() {
  using namespace strt::bench;
  BenchReport report("runtime");

  const Supply supply = Supply::tdma(Time(5), Time(10));
  constexpr std::size_t kTrials = 12;
  constexpr std::size_t kVertices = 40;
  StructuralOptions opts;
  opts.want_witness = false;

  // Each trial generates its own task from a split stream and analyzes
  // it; the returned delays must match bit-for-bit across thread counts.
  auto sweep = [&](std::uint64_t seed) {
    return trials(seed, kTrials, [&](Rng& rng, std::size_t) {
      DrtGenParams params;
      params.min_vertices = kVertices;
      params.max_vertices = kVertices;
      params.min_separation = Time(5);
      params.max_separation = Time(40);
      params.chord_probability = 0.10;
      params.target_utilization = 0.35;
      const GeneratedTask gen = random_drt(rng, params);
      engine::Workspace trial_ws;
      const StructuralResult r =
          structural_delay(trial_ws, gen.task, supply, opts);
      return r.delay.count();
    });
  };

  std::cout << "\nSerial vs parallel: " << kTrials << " structural "
            << "analyses of " << kVertices << "-vertex tasks\n";

  exec::set_thread_count(1);
  std::vector<std::int64_t> serial_delays;
  double serial_ms = 0;
  {
    Phase phase("speedup.serial");
    serial_delays = sweep(5151);
    serial_ms = phase.millis();
  }

  exec::set_thread_count(0);  // back to STRT_THREADS / hardware default
  const std::size_t threads = exec::thread_count();
  std::vector<std::int64_t> parallel_delays;
  double parallel_ms = 0;
  {
    Phase phase("speedup.parallel");
    parallel_delays = sweep(5151);
    parallel_ms = phase.millis();
  }

  if (serial_delays != parallel_delays) {
    std::cerr << "speedup section: serial and parallel delay vectors "
                 "differ -- determinism contract broken\n";
    return 1;
  }

  const double speedup = serial_ms / std::max(parallel_ms, 1e-6);
  Table sp({"threads", "serial ms", "parallel ms", "speedup"});
  sp.add_row({std::to_string(threads), fmt_ratio(serial_ms, 1),
              fmt_ratio(parallel_ms, 1), fmt_ratio(speedup, 2) + "x"});
  sp.print(std::cout);

  // --- Explorer overhaul ablation: same exploration, old data
  // structures vs new, results checked equal before timing.
  const GeneratedTask gen = task_with_vertices(20, 0.40, 2026);
  lint_generated({&gen.task, 1});
  const Time window(600);
  constexpr int kReps = 5;

  const ExploreResult once =
      explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
  const legacy::Result legacy_once = legacy::explore(gen.task, window);
  if (frontier_skyline(once.arena, once.frontier) !=
      frontier_skyline(legacy_once.arena, legacy_once.frontier)) {
    std::cerr << "explorer ablation: legacy and overhauled frontiers "
                 "differ\n";
    return 1;
  }

  double new_ms = 0;
  {
    Phase phase("ablation.explorer.new");
    for (int rep = 0; rep < kReps; ++rep) {
      const ExploreResult r =
          explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
      benchmark::DoNotOptimize(r.frontier.size());
    }
    new_ms = phase.millis();
  }
  double legacy_ms = 0;
  {
    Phase phase("ablation.explorer.legacy");
    for (int rep = 0; rep < kReps; ++rep) {
      const legacy::Result r = legacy::explore(gen.task, window);
      benchmark::DoNotOptimize(r.frontier.size());
    }
    legacy_ms = phase.millis();
  }
  const double explorer_speedup = legacy_ms / std::max(new_ms, 1e-6);

  std::cout << "\nExplorer overhaul (20-vertex task, window "
            << window.count() << ", " << kReps << " reps, "
            << once.stats.generated << " states/run):\n";
  Table ab({"legacy ms", "new ms", "speedup"});
  ab.add_row({fmt_ratio(legacy_ms, 1), fmt_ratio(new_ms, 1),
              fmt_ratio(explorer_speedup, 2) + "x"});
  ab.print(std::cout);

  // --- Workspace cache ablation: the same sensitivity sweep (the
  // design-exploration loop that hammers rbf/sbf/inverse lookups) run
  // twice per mode through one shared workspace -- cache off vs on --
  // with the reports checked bit-identical before timing.
  constexpr std::size_t kCacheTasks = 4;
  constexpr int kCacheRounds = 2;
  std::vector<GeneratedTask> cache_tasks;
  for (std::size_t i = 0; i < kCacheTasks; ++i) {
    cache_tasks.push_back(task_with_vertices(8, 0.45, 9000 + i));
  }
  const Supply cache_supply = Supply::tdma(Time(9), Time(20));

  auto sensitivity_sweep = [&](engine::Workspace& ws) {
    std::vector<SensitivityReport> reports;
    for (int round = 0; round < kCacheRounds; ++round) {
      for (const GeneratedTask& g : cache_tasks) {
        reports.push_back(sensitivity_analysis(ws, g.task, cache_supply));
      }
    }
    return reports;
  };
  auto same_reports = [](const std::vector<SensitivityReport>& a,
                         const std::vector<SensitivityReport>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].feasible != b[i].feasible ||
          a[i].wcet_slack != b[i].wcet_slack ||
          a[i].separation_slack != b[i].separation_slack) {
        return false;
      }
    }
    return true;
  };

  engine::Workspace ws_off(false);
  std::vector<SensitivityReport> uncached_reports;
  double uncached_ms = 0;
  {
    Phase phase("ablation.cache.off");
    uncached_reports = sensitivity_sweep(ws_off);
    uncached_ms = phase.millis();
  }
  engine::Workspace ws_on(true);
  std::vector<SensitivityReport> cached_reports;
  double cached_ms = 0;
  {
    Phase phase("ablation.cache.on");
    cached_reports = sensitivity_sweep(ws_on);
    cached_ms = phase.millis();
  }
  if (!same_reports(uncached_reports, cached_reports)) {
    std::cerr << "cache ablation: cached and uncached sensitivity reports "
                 "differ -- bit-identity contract broken\n";
    return 1;
  }
  const double cache_speedup = uncached_ms / std::max(cached_ms, 1e-6);
  const engine::WorkspaceStats cache_stats = ws_on.stats();

  std::cout << "\nWorkspace cache (sensitivity sweep, " << kCacheTasks
            << " tasks x " << kCacheRounds << " rounds):\n";
  Table ct({"uncached ms", "cached ms", "speedup", "hits", "misses"});
  ct.add_row({fmt_ratio(uncached_ms, 1), fmt_ratio(cached_ms, 1),
              fmt_ratio(cache_speedup, 2) + "x",
              std::to_string(cache_stats.hits),
              std::to_string(cache_stats.misses)});
  ct.print(std::cout);

  report.metric("sweep_trials", kTrials);
  report.metric("sweep_vertices", kVertices);
  report.metric("serial_ms", serial_ms);
  report.metric("parallel_ms", parallel_ms);
  report.metric("speedup", speedup);
  report.metric("threads", threads);
  report.metric("explorer_states_per_run", once.stats.generated);
  report.metric("explorer_legacy_ms", legacy_ms);
  report.metric("explorer_new_ms", new_ms);
  report.metric("explorer_speedup", explorer_speedup);
  report.metric("sensitivity_uncached_ms", uncached_ms);
  report.metric("sensitivity_cached_ms", cached_ms);
  report.metric("cache_speedup", cache_speedup);
  report.metric("cache_hits", cache_stats.hits);
  report.metric("cache_misses", cache_stats.misses);
  report.metric("cache_bytes", cache_stats.bytes);
  return 0;
}

}  // namespace
}  // namespace strt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return strt::run_speedup_section();
}
