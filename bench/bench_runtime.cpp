// Experiment E4 (Figure analogue): analysis runtime and explored states
// vs graph size and vs supply tightness (busy-window length).
//
// google-benchmark harness; counters report busy-window length and
// explored/pruned state counts alongside wall time.
//
// Expected shape: runtime grows mildly with the vertex count (the
// dominance-pruned frontier is small) and roughly linearly with the
// busy-window length; everything stays in the interactive range for
// DATE-scale graphs.

#include <benchmark/benchmark.h>

#include "core/abstractions.hpp"
#include "core/structural.hpp"
#include "model/generator.hpp"

namespace strt {
namespace {

GeneratedTask task_with_vertices(std::size_t n, double target_u,
                                 std::uint64_t seed) {
  Rng rng(seed);
  DrtGenParams params;
  params.min_vertices = n;
  params.max_vertices = n;
  params.min_separation = Time(5);
  params.max_separation = Time(40);
  params.chord_probability = 0.10;
  params.target_utilization = target_u;
  return random_drt(rng, params);
}

void BM_StructuralVsVertices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GeneratedTask gen = task_with_vertices(n, 0.35, 1000 + n);
  const Supply supply = Supply::tdma(Time(5), Time(10));
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    last = structural_delay(gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
  state.counters["delay"] = static_cast<double>(last.delay.count());
}
BENCHMARK(BM_StructuralVsVertices)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_StructuralVsSupplyTightness(benchmark::State& state) {
  // Fixed task (U ~ 0.45); the slot shrinks toward the utilization, the
  // busy window (and hence the explored prefix) stretches.
  const GeneratedTask gen = task_with_vertices(10, 0.45, 77);
  const auto slot = state.range(0);
  const Supply supply = Supply::tdma(Time(slot), Time(20));
  if (!(gen.exact_utilization < supply.long_run_rate())) {
    state.SkipWithError("supply below utilization");
    return;
  }
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    last = structural_delay(gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["slot"] = static_cast<double>(slot);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
}
BENCHMARK(BM_StructuralVsSupplyTightness)
    ->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_AbstractionAnalyses(benchmark::State& state) {
  // Cost of each analysis in the spectrum on the same instance.
  const GeneratedTask gen = task_with_vertices(15, 0.40, 4242);
  const Supply supply = Supply::tdma(Time(9), Time(20));
  const auto a = static_cast<WorkloadAbstraction>(state.range(0));
  StructuralOptions opts;
  opts.want_witness = false;
  for (auto _ : state) {
    const AbstractionResult r =
        delay_with_abstraction(gen.task, supply, a, opts);
    benchmark::DoNotOptimize(r.delay);
  }
  state.SetLabel(std::string(abstraction_name(a)));
}
BENCHMARK(BM_AbstractionAnalyses)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace strt

BENCHMARK_MAIN();
