// Experiment E4 (Figure analogue): analysis runtime and explored states
// vs graph size and vs supply tightness (busy-window length).
//
// google-benchmark harness; counters report busy-window length and
// explored/pruned state counts alongside wall time.
//
// After the microbenchmarks, a speedup section times the same structural
// sweep serially (STRT_THREADS=1) and on the exec pool, checks the
// results are bit-identical, and times the overhauled explorer against
// the pre-overhaul implementation (std::map skyline + std::priority_queue
// agenda, kept below as `legacy`).  The headline numbers land in
// BENCH_runtime.json: serial_ms / parallel_ms / speedup / threads and
// explorer_legacy_ms / explorer_new_ms / explorer_speedup.
//
// Expected shape: runtime grows mildly with the vertex count (the
// dominance-pruned frontier is small) and roughly linearly with the
// busy-window length; everything stays in the interactive range for
// DATE-scale graphs.  The parallel speedup tracks the physical core
// count; the explorer overhaul wins a constant factor from flat storage
// and O(1) bucket scheduling.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "core/structural.hpp"
#include "graph/explore.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"

namespace strt {
namespace {

GeneratedTask task_with_vertices(std::size_t n, double target_u,
                                 std::uint64_t seed) {
  Rng rng(seed);
  DrtGenParams params;
  params.min_vertices = n;
  params.max_vertices = n;
  params.min_separation = Time(5);
  params.max_separation = Time(40);
  params.chord_probability = 0.10;
  params.target_utilization = target_u;
  return random_drt(rng, params);
}

void BM_StructuralVsVertices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GeneratedTask gen = task_with_vertices(n, 0.35, 1000 + n);
  const Supply supply = Supply::tdma(Time(5), Time(10));
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    last = structural_delay(gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
  state.counters["delay"] = static_cast<double>(last.delay.count());
}
BENCHMARK(BM_StructuralVsVertices)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_StructuralVsSupplyTightness(benchmark::State& state) {
  // Fixed task (U ~ 0.45); the slot shrinks toward the utilization, the
  // busy window (and hence the explored prefix) stretches.
  const GeneratedTask gen = task_with_vertices(10, 0.45, 77);
  const auto slot = state.range(0);
  const Supply supply = Supply::tdma(Time(slot), Time(20));
  if (!(gen.exact_utilization < supply.long_run_rate())) {
    state.SkipWithError("supply below utilization");
    return;
  }
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    last = structural_delay(gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["slot"] = static_cast<double>(slot);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
}
BENCHMARK(BM_StructuralVsSupplyTightness)
    ->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_AbstractionAnalyses(benchmark::State& state) {
  // Cost of each analysis in the spectrum on the same instance.
  const GeneratedTask gen = task_with_vertices(15, 0.40, 4242);
  const Supply supply = Supply::tdma(Time(9), Time(20));
  const auto a = static_cast<WorkloadAbstraction>(state.range(0));
  StructuralOptions opts;
  opts.want_witness = false;
  for (auto _ : state) {
    const AbstractionResult r =
        delay_with_abstraction(gen.task, supply, a, opts);
    benchmark::DoNotOptimize(r.delay);
  }
  state.SetLabel(std::string(abstraction_name(a)));
}
BENCHMARK(BM_AbstractionAnalyses)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Explorer-overhaul baseline: the pre-overhaul implementation, verbatim
// in structure -- per-vertex std::map skyline, std::priority_queue agenda
// -- so the ablation times data structures, not algorithmic drift.  Both
// implementations must produce the same Pareto frontier; the ablation
// checks that before timing.

namespace legacy {

class Skyline {
 public:
  bool insert(Time t, Work w, std::int32_t idx) {
    auto it = entries_.upper_bound(t);
    if (it != entries_.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.second.first >= w) return false;  // dominated
    }
    while (it != entries_.end() && it->second.first <= w) {
      it = entries_.erase(it);
    }
    entries_.insert_or_assign(t, std::make_pair(w, idx));
    return true;
  }

  [[nodiscard]] bool is_live(Time t, std::int32_t idx) const {
    auto it = entries_.find(t);
    return it != entries_.end() && it->second.second == idx;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [t, wi] : entries_) fn(t, wi.first, wi.second);
  }

 private:
  std::map<Time, std::pair<Work, std::int32_t>> entries_;
};

struct Result {
  std::vector<PathState> arena;
  std::vector<std::int32_t> frontier;
  std::uint64_t generated = 0;
};

Result explore(const DrtTask& task, Time elapsed_limit) {
  Result res;
  std::vector<Skyline> skylines(task.vertex_count());

  struct QItem {
    Time elapsed;
    Work work;
    std::int32_t idx;
  };
  auto cmp = [](const QItem& a, const QItem& b) {
    if (a.elapsed != b.elapsed) return a.elapsed > b.elapsed;
    return a.work < b.work;
  };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> queue(cmp);

  auto accept = [&](VertexId v, Time elapsed, Work work,
                    std::int32_t parent) {
    ++res.generated;
    const auto idx = static_cast<std::int32_t>(res.arena.size());
    if (!skylines[static_cast<std::size_t>(v)].insert(elapsed, work, idx)) {
      return;
    }
    res.arena.push_back(PathState{v, elapsed, work, parent});
    queue.push(QItem{elapsed, work, idx});
  };

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    accept(v, Time(0), task.vertex(v).wcet, -1);
  }

  while (!queue.empty()) {
    const QItem item = queue.top();
    queue.pop();
    const PathState st = res.arena[static_cast<std::size_t>(item.idx)];
    if (!skylines[static_cast<std::size_t>(st.vertex)].is_live(st.elapsed,
                                                               item.idx)) {
      continue;  // dominated after insertion
    }
    for (std::int32_t ei : task.out_edges(st.vertex)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time elapsed = st.elapsed + e.separation;
      if (elapsed > elapsed_limit) continue;
      accept(e.to, elapsed, st.work + task.vertex(e.to).wcet, item.idx);
    }
  }

  for (const Skyline& s : skylines) {
    s.for_each([&](Time, Work, std::int32_t idx) {
      res.frontier.push_back(idx);
    });
  }
  return res;
}

}  // namespace legacy

/// The Pareto frontier as a canonical (elapsed -> max work) map -- the
/// semantic content both explorer implementations must agree on.
template <class Arena, class Frontier>
std::map<std::int64_t, std::int64_t> frontier_skyline(
    const Arena& arena, const Frontier& frontier) {
  std::map<std::int64_t, std::int64_t> m;
  for (const std::int32_t idx : frontier) {
    const PathState& st = arena[static_cast<std::size_t>(idx)];
    auto& slot = m[st.elapsed.count()];
    slot = std::max(slot, st.work.count());
  }
  return m;
}

/// Serial vs parallel timing of the same 40-vertex structural sweep plus
/// the explorer-overhaul ablation; emits the headline numbers into
/// BENCH_runtime.json via the report.
int run_speedup_section() {
  using namespace strt::bench;
  BenchReport report("runtime");

  const Supply supply = Supply::tdma(Time(5), Time(10));
  constexpr std::size_t kTrials = 12;
  constexpr std::size_t kVertices = 40;
  StructuralOptions opts;
  opts.want_witness = false;

  // Each trial generates its own task from a split stream and analyzes
  // it; the returned delays must match bit-for-bit across thread counts.
  auto sweep = [&](std::uint64_t seed) {
    return trials(seed, kTrials, [&](Rng& rng, std::size_t) {
      DrtGenParams params;
      params.min_vertices = kVertices;
      params.max_vertices = kVertices;
      params.min_separation = Time(5);
      params.max_separation = Time(40);
      params.chord_probability = 0.10;
      params.target_utilization = 0.35;
      const GeneratedTask gen = random_drt(rng, params);
      const StructuralResult r = structural_delay(gen.task, supply, opts);
      return r.delay.count();
    });
  };

  std::cout << "\nSerial vs parallel: " << kTrials << " structural "
            << "analyses of " << kVertices << "-vertex tasks\n";

  exec::set_thread_count(1);
  std::vector<std::int64_t> serial_delays;
  double serial_ms = 0;
  {
    Phase phase("speedup.serial");
    serial_delays = sweep(5151);
    serial_ms = phase.millis();
  }

  exec::set_thread_count(0);  // back to STRT_THREADS / hardware default
  const std::size_t threads = exec::thread_count();
  std::vector<std::int64_t> parallel_delays;
  double parallel_ms = 0;
  {
    Phase phase("speedup.parallel");
    parallel_delays = sweep(5151);
    parallel_ms = phase.millis();
  }

  if (serial_delays != parallel_delays) {
    std::cerr << "speedup section: serial and parallel delay vectors "
                 "differ -- determinism contract broken\n";
    return 1;
  }

  const double speedup = serial_ms / std::max(parallel_ms, 1e-6);
  Table sp({"threads", "serial ms", "parallel ms", "speedup"});
  sp.add_row({std::to_string(threads), fmt_ratio(serial_ms, 1),
              fmt_ratio(parallel_ms, 1), fmt_ratio(speedup, 2) + "x"});
  sp.print(std::cout);

  // --- Explorer overhaul ablation: same exploration, old data
  // structures vs new, results checked equal before timing.
  const GeneratedTask gen = task_with_vertices(20, 0.40, 2026);
  const Time window(600);
  constexpr int kReps = 5;

  const ExploreResult once =
      explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
  const legacy::Result legacy_once = legacy::explore(gen.task, window);
  if (frontier_skyline(once.arena, once.frontier) !=
      frontier_skyline(legacy_once.arena, legacy_once.frontier)) {
    std::cerr << "explorer ablation: legacy and overhauled frontiers "
                 "differ\n";
    return 1;
  }

  double new_ms = 0;
  {
    Phase phase("ablation.explorer.new");
    for (int rep = 0; rep < kReps; ++rep) {
      const ExploreResult r =
          explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
      benchmark::DoNotOptimize(r.frontier.size());
    }
    new_ms = phase.millis();
  }
  double legacy_ms = 0;
  {
    Phase phase("ablation.explorer.legacy");
    for (int rep = 0; rep < kReps; ++rep) {
      const legacy::Result r = legacy::explore(gen.task, window);
      benchmark::DoNotOptimize(r.frontier.size());
    }
    legacy_ms = phase.millis();
  }
  const double explorer_speedup = legacy_ms / std::max(new_ms, 1e-6);

  std::cout << "\nExplorer overhaul (20-vertex task, window "
            << window.count() << ", " << kReps << " reps, "
            << once.stats.generated << " states/run):\n";
  Table ab({"legacy ms", "new ms", "speedup"});
  ab.add_row({fmt_ratio(legacy_ms, 1), fmt_ratio(new_ms, 1),
              fmt_ratio(explorer_speedup, 2) + "x"});
  ab.print(std::cout);

  report.metric("sweep_trials", kTrials);
  report.metric("sweep_vertices", kVertices);
  report.metric("serial_ms", serial_ms);
  report.metric("parallel_ms", parallel_ms);
  report.metric("speedup", speedup);
  report.metric("threads", threads);
  report.metric("explorer_states_per_run", once.stats.generated);
  report.metric("explorer_legacy_ms", legacy_ms);
  report.metric("explorer_new_ms", new_ms);
  report.metric("explorer_speedup", explorer_speedup);
  return 0;
}

}  // namespace
}  // namespace strt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return strt::run_speedup_section();
}
