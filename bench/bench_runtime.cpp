// Experiment E4 (Figure analogue): analysis runtime and explored states
// vs graph size and vs supply tightness (busy-window length).
//
// google-benchmark harness; counters report busy-window length and
// explored/pruned state counts alongside wall time.
//
// After the microbenchmarks, a speedup section times the same structural
// sweep serially (STRT_THREADS=1) and on the exec pool, checks the
// results are bit-identical, times the overhauled explorer against the
// pre-overhaul implementation (std::map skyline + std::priority_queue
// agenda, kept as the bench-only strt_bench_legacy library), and times a
// sensitivity sweep with the engine Workspace cache on vs off.  The
// headline numbers land in BENCH_runtime.json: serial_ms / parallel_ms /
// speedup / threads, explorer_legacy_ms / explorer_new_ms /
// explorer_speedup, and sensitivity_uncached_ms / sensitivity_cached_ms /
// cache_speedup.
//
// Expected shape: runtime grows mildly with the vertex count (the
// dominance-pruned frontier is small) and roughly linearly with the
// busy-window length; everything stays in the interactive range for
// DATE-scale graphs.  The parallel speedup tracks the physical core
// count; the explorer overhaul wins a constant factor from flat storage
// and O(1) bucket scheduling.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "core/certified.hpp"
#include "core/curve_based.hpp"
#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "curves/minplus.hpp"
#include "curves/staircase.hpp"
#include "engine/workspace.hpp"
#include "graph/explore.hpp"
#include "io/table.hpp"
#include "legacy_curves.hpp"
#include "legacy_explore.hpp"
#include "model/generator.hpp"

namespace strt {
namespace {

GeneratedTask task_with_vertices(std::size_t n, double target_u,
                                 std::uint64_t seed) {
  Rng rng(seed);
  DrtGenParams params;
  params.min_vertices = n;
  params.max_vertices = n;
  params.min_separation = Time(5);
  params.max_separation = Time(40);
  params.chord_probability = 0.10;
  params.target_utilization = target_u;
  return random_drt(rng, params);
}

void BM_StructuralVsVertices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GeneratedTask gen = task_with_vertices(n, 0.35, 1000 + n);
  const Supply supply = Supply::tdma(Time(5), Time(10));
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    engine::Workspace ws;
    last = structural_delay(ws, gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
  state.counters["delay"] = static_cast<double>(last.delay.count());
}
BENCHMARK(BM_StructuralVsVertices)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_StructuralVsSupplyTightness(benchmark::State& state) {
  // Fixed task (U ~ 0.45); the slot shrinks toward the utilization, the
  // busy window (and hence the explored prefix) stretches.
  const GeneratedTask gen = task_with_vertices(10, 0.45, 77);
  const auto slot = state.range(0);
  const Supply supply = Supply::tdma(Time(slot), Time(20));
  if (!(gen.exact_utilization < supply.long_run_rate())) {
    state.SkipWithError("supply below utilization");
    return;
  }
  StructuralOptions opts;
  opts.want_witness = false;
  StructuralResult last;
  for (auto _ : state) {
    engine::Workspace ws;
    last = structural_delay(ws, gen.task, supply, opts);
    benchmark::DoNotOptimize(last.delay);
  }
  state.counters["slot"] = static_cast<double>(slot);
  state.counters["busy_window"] =
      static_cast<double>(last.busy_window.count());
  state.counters["states"] = static_cast<double>(last.stats.generated);
}
BENCHMARK(BM_StructuralVsSupplyTightness)
    ->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_AbstractionAnalyses(benchmark::State& state) {
  // Cost of each analysis in the spectrum on the same instance.
  const GeneratedTask gen = task_with_vertices(15, 0.40, 4242);
  const Supply supply = Supply::tdma(Time(9), Time(20));
  const auto a = static_cast<WorkloadAbstraction>(state.range(0));
  StructuralOptions opts;
  opts.want_witness = false;
  for (auto _ : state) {
    engine::Workspace ws;
    const AbstractionResult r =
        delay_with_abstraction(ws, gen.task, supply, a, opts);
    benchmark::DoNotOptimize(r.delay);
  }
  state.SetLabel(std::string(abstraction_name(a)));
}
BENCHMARK(BM_AbstractionAnalyses)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

/// The Pareto frontier as a canonical (elapsed -> max work) map -- the
/// semantic content both explorer implementations must agree on.
template <class Arena, class Frontier>
std::map<std::int64_t, std::int64_t> frontier_skyline(
    const Arena& arena, const Frontier& frontier) {
  std::map<std::int64_t, std::int64_t> m;
  for (const std::int32_t idx : frontier) {
    const PathState& st = arena[static_cast<std::size_t>(idx)];
    auto& slot = m[st.elapsed.count()];
    slot = std::max(slot, st.work.count());
  }
  return m;
}

/// One random canonical staircase for the kernel microbench (the test
/// suite's random_staircase shape, regenerated here so the harness stays
/// self-contained).
Staircase random_curve(Rng& rng, Time horizon, double step_prob,
                       std::int64_t max_jump) {
  std::vector<Step> pts;
  std::int64_t v = 0;
  for (std::int64_t t = 1; t <= horizon.count(); ++t) {
    if (rng.chance(step_prob)) {
      v += rng.uniform_int(1, max_jump);
      pts.push_back(Step{Time(t), Work(v)});
    }
  }
  return Staircase::from_points(std::move(pts), horizon);
}

/// SoA-vs-AoS curve kernel ablation plus the certified-coarsening
/// ablation.  The microbench mix mirrors the analysis hot path:
/// min-plus convolution on ~300-breakpoint curves (joint-FP / leftover
/// territory) and hdev / pointwise / pseudo-inverse on busy-window-sized
/// curves (every structural and curve-based run hammers those).  Both
/// layouts are checked bit-identical before any timing; the aggregate
/// mix must clear the 1.5x gate.  The coarsening ablation runs the
/// certified coarse-first driver against the exact curve analysis on
/// generated tasks and reports the worst certified bracket width.
/// Headline numbers land in BENCH_runtime.json as kernel_speedup and
/// max_certified_error.
int run_kernel_section(bench::BenchReport& report) {
  using namespace strt::bench;
  Rng rng(7070);

  // conv operands: ~300 breakpoints each.
  const Staircase cf = random_curve(rng, Time(1'000), 0.3, 4);
  const Staircase cg = random_curve(rng, Time(1'000), 0.3, 4);
  // hdev / pointwise / inverse operands: busy-window-scale curves.
  const Staircase big_a = random_curve(rng, Time(20'000), 0.3, 4);
  Staircase big_b = random_curve(rng, Time(20'000), 0.3, 5);
  big_b = big_b.with_tail(
      Tail{big_b.horizon(), big_b.value_at_horizon() + Work(1)});

  const legacy::LegacyCurve lcf = legacy::from_staircase(cf);
  const legacy::LegacyCurve lcg = legacy::from_staircase(cg);
  const legacy::LegacyCurve lba = legacy::from_staircase(big_a);
  const legacy::LegacyCurve lbb = legacy::from_staircase(big_b);

  // Bit-identity gate: every kernel must agree across layouts before the
  // stopwatch starts.
  if (minplus_conv(cf, cg) != legacy::to_staircase(legacy::conv(lcf, lcg)) ||
      pointwise_add(big_a, big_b) !=
          legacy::to_staircase(legacy::pointwise_add(lba, lbb)) ||
      hdev(big_a, big_b) != legacy::hdev(lba, lbb)) {
    std::cerr << "kernel ablation: SoA and AoS kernels disagree -- "
                 "bit-identity contract broken\n";
    return 1;
  }
  const Work inv_top = big_b.value_at_horizon() * 2;
  const Work inv_stride = max(Work(1), Work(inv_top.count() / 4'000));
  for (Work w(0); w <= inv_top; w += inv_stride) {
    if (big_b.inverse(w) != lbb.inverse(w)) {
      std::cerr << "kernel ablation: pseudo-inverse disagrees at w="
                << w.count() << "\n";
      return 1;
    }
  }

  // Rep counts approximate the kernel mix of the analysis hot path: one
  // convolution serves many hdev / pointwise / inverse probes (the
  // busy-window iteration and every curve-based bound re-query the
  // latter).  Each kernel is also timed on its own so the table shows
  // where the layout wins.
  constexpr int kConvReps = 2;
  constexpr int kHdevReps = 100;
  constexpr int kAddReps = 20;
  constexpr int kInvSweeps = 6;

  auto timed = [](int reps, auto&& fn) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) fn();
    return sw.millis();
  };

  struct KernelRow {
    const char* name;
    double legacy_ms;
    double soa_ms;
  };
  std::vector<KernelRow> rows;
  {
    Phase phase("ablation.kernels.soa");
    rows.push_back(
        {"minplus_conv", 0,
         timed(kConvReps,
               [&] { benchmark::DoNotOptimize(minplus_conv(cf, cg)); })});
    rows.push_back(
        {"hdev", 0, timed(kHdevReps, [&] {
           benchmark::DoNotOptimize(hdev(big_a, big_b));
         })});
    rows.push_back(
        {"pointwise_add", 0, timed(kAddReps, [&] {
           benchmark::DoNotOptimize(pointwise_add(big_a, big_b));
         })});
    rows.push_back({"pseudo_inverse", 0, timed(kInvSweeps, [&] {
                      for (Work w(0); w <= inv_top; w += inv_stride) {
                        benchmark::DoNotOptimize(big_b.inverse(w));
                      }
                    })});
  }
  {
    Phase phase("ablation.kernels.legacy");
    rows[0].legacy_ms = timed(kConvReps, [&] {
      benchmark::DoNotOptimize(legacy::conv(lcf, lcg));
    });
    rows[1].legacy_ms = timed(kHdevReps, [&] {
      benchmark::DoNotOptimize(legacy::hdev(lba, lbb));
    });
    rows[2].legacy_ms = timed(kAddReps, [&] {
      benchmark::DoNotOptimize(legacy::pointwise_add(lba, lbb));
    });
    rows[3].legacy_ms = timed(kInvSweeps, [&] {
      for (Work w(0); w <= inv_top; w += inv_stride) {
        benchmark::DoNotOptimize(lbb.inverse(w));
      }
    });
  }

  double legacy_ms = 0;
  double soa_ms = 0;
  std::cout << "\nCurve kernel layout (AoS oracle vs SoA; conv "
            << cf.breakpoint_count() << "x" << cg.breakpoint_count()
            << " bp, hdev/pointwise/inverse " << big_a.breakpoint_count()
            << "x" << big_b.breakpoint_count() << " bp):\n";
  Table kt({"kernel", "legacy ms", "soa ms", "speedup"});
  for (const KernelRow& row : rows) {
    legacy_ms += row.legacy_ms;
    soa_ms += row.soa_ms;
    kt.add_row({row.name, fmt_ratio(row.legacy_ms, 1),
                fmt_ratio(row.soa_ms, 1),
                fmt_ratio(row.legacy_ms / std::max(row.soa_ms, 1e-6), 2) +
                    "x"});
  }
  const double kernel_speedup = legacy_ms / std::max(soa_ms, 1e-6);
  kt.add_row({"mix", fmt_ratio(legacy_ms, 1), fmt_ratio(soa_ms, 1),
              fmt_ratio(kernel_speedup, 2) + "x"});
  kt.print(std::cout);

  // --- Certified coarsening ablation: exact curve analysis vs the
  // coarse-first driver, bracket containment checked per task, the worst
  // certified bracket width reported.
  constexpr std::size_t kCertTasks = 6;
  const Supply cert_supply = Supply::tdma(Time(5), Time(10));
  std::vector<GeneratedTask> cert_tasks;
  for (std::size_t i = 0; i < kCertTasks; ++i) {
    cert_tasks.push_back(task_with_vertices(12, 0.35, 3300 + i));
  }

  std::vector<CurveResult> exact_results;
  double exact_ms = 0;
  {
    Phase phase("ablation.coarsen.exact");
    for (const GeneratedTask& g : cert_tasks) {
      engine::Workspace ws;
      exact_results.push_back(curve_delay(ws, g.task, cert_supply));
    }
    exact_ms = phase.millis();
  }

  CertifiedDelayOptions copts;
  copts.granularity = Time(64);
  std::vector<CertifiedDelayResult> coarse_results;
  double coarse_ms = 0;
  {
    Phase phase("ablation.coarsen.first");
    for (const GeneratedTask& g : cert_tasks) {
      engine::Workspace ws;
      coarse_results.push_back(
          certified_curve_delay(ws, g.task, cert_supply, copts));
    }
    coarse_ms = phase.millis();
  }

  Time max_certified_error(0);
  for (std::size_t i = 0; i < kCertTasks; ++i) {
    const CurveResult& ex = exact_results[i];
    const CertifiedDelayResult& c = coarse_results[i];
    if (ex.delay.is_unbounded() != c.delay.is_unbounded() ||
        (!ex.delay.is_unbounded() &&
         (c.delay_lower > ex.delay || c.delay < ex.delay))) {
      std::cerr << "coarsen ablation: certified bracket misses the exact "
                   "delay on task "
                << i << "\n";
      return 1;
    }
    max_certified_error = max(max_certified_error, c.certified_error);
  }

  std::cout << "\nCertified coarsening (" << kCertTasks
            << " tasks, starting granularity "
            << copts.granularity.count() << "):\n";
  Table ctbl({"exact ms", "coarse-first ms", "max certified error"});
  ctbl.add_row({fmt_ratio(exact_ms, 1), fmt_ratio(coarse_ms, 1),
                show(max_certified_error)});
  ctbl.print(std::cout);

  report.metric("kernel_legacy_ms", legacy_ms);
  report.metric("kernel_soa_ms", soa_ms);
  report.metric("kernel_speedup", kernel_speedup);
  report.metric("kernel_conv_speedup",
                rows[0].legacy_ms / std::max(rows[0].soa_ms, 1e-6));
  report.metric("kernel_hdev_speedup",
                rows[1].legacy_ms / std::max(rows[1].soa_ms, 1e-6));
  report.metric("kernel_pointwise_speedup",
                rows[2].legacy_ms / std::max(rows[2].soa_ms, 1e-6));
  report.metric("kernel_inverse_speedup",
                rows[3].legacy_ms / std::max(rows[3].soa_ms, 1e-6));
  report.metric("certified_exact_ms", exact_ms);
  report.metric("certified_coarse_ms", coarse_ms);
  report.metric("max_certified_error", max_certified_error);

  if (kernel_speedup < 1.5) {
    std::cerr << "kernel ablation: SoA speedup " << kernel_speedup
              << "x is below the 1.5x gate\n";
    return 1;
  }
  return 0;
}

/// Serial vs parallel timing of the same 40-vertex structural sweep plus
/// the explorer-overhaul ablation; emits the headline numbers into
/// BENCH_runtime.json via the report.
int run_speedup_section() {
  using namespace strt::bench;
  BenchReport report("runtime");

  const Supply supply = Supply::tdma(Time(5), Time(10));
  constexpr std::size_t kTrials = 12;
  constexpr std::size_t kVertices = 40;
  StructuralOptions opts;
  opts.want_witness = false;

  // Each trial generates its own task from a split stream and analyzes
  // it; the returned delays must match bit-for-bit across thread counts.
  auto sweep = [&](std::uint64_t seed) {
    return trials(seed, kTrials, [&](Rng& rng, std::size_t) {
      DrtGenParams params;
      params.min_vertices = kVertices;
      params.max_vertices = kVertices;
      params.min_separation = Time(5);
      params.max_separation = Time(40);
      params.chord_probability = 0.10;
      params.target_utilization = 0.35;
      const GeneratedTask gen = random_drt(rng, params);
      engine::Workspace trial_ws;
      const StructuralResult r =
          structural_delay(trial_ws, gen.task, supply, opts);
      return r.delay.count();
    });
  };

  std::cout << "\nSerial vs parallel: " << kTrials << " structural "
            << "analyses of " << kVertices << "-vertex tasks\n";

  exec::set_thread_count(1);
  std::vector<std::int64_t> serial_delays;
  double serial_ms = 0;
  {
    Phase phase("speedup.serial");
    serial_delays = sweep(5151);
    serial_ms = phase.millis();
  }

  exec::set_thread_count(0);  // back to STRT_THREADS / hardware default
  const std::size_t threads = exec::thread_count();
  std::vector<std::int64_t> parallel_delays;
  double parallel_ms = 0;
  {
    Phase phase("speedup.parallel");
    parallel_delays = sweep(5151);
    parallel_ms = phase.millis();
  }

  if (serial_delays != parallel_delays) {
    std::cerr << "speedup section: serial and parallel delay vectors "
                 "differ -- determinism contract broken\n";
    return 1;
  }

  const double speedup = serial_ms / std::max(parallel_ms, 1e-6);
  Table sp({"threads", "serial ms", "parallel ms", "speedup"});
  sp.add_row({std::to_string(threads), fmt_ratio(serial_ms, 1),
              fmt_ratio(parallel_ms, 1), fmt_ratio(speedup, 2) + "x"});
  sp.print(std::cout);

  // --- Explorer overhaul ablation: same exploration, old data
  // structures vs new, results checked equal before timing.
  const GeneratedTask gen = task_with_vertices(20, 0.40, 2026);
  lint_generated({&gen.task, 1});
  const Time window(600);
  constexpr int kReps = 5;

  const ExploreResult once =
      explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
  const legacy::Result legacy_once = legacy::explore(gen.task, window);
  if (frontier_skyline(once.arena, once.frontier) !=
      frontier_skyline(legacy_once.arena, legacy_once.frontier)) {
    std::cerr << "explorer ablation: legacy and overhauled frontiers "
                 "differ\n";
    return 1;
  }

  double new_ms = 0;
  {
    Phase phase("ablation.explorer.new");
    for (int rep = 0; rep < kReps; ++rep) {
      const ExploreResult r =
          explore_paths(gen.task, ExploreOptions{.elapsed_limit = window});
      benchmark::DoNotOptimize(r.frontier.size());
    }
    new_ms = phase.millis();
  }
  double legacy_ms = 0;
  {
    Phase phase("ablation.explorer.legacy");
    for (int rep = 0; rep < kReps; ++rep) {
      const legacy::Result r = legacy::explore(gen.task, window);
      benchmark::DoNotOptimize(r.frontier.size());
    }
    legacy_ms = phase.millis();
  }
  const double explorer_speedup = legacy_ms / std::max(new_ms, 1e-6);

  std::cout << "\nExplorer overhaul (20-vertex task, window "
            << window.count() << ", " << kReps << " reps, "
            << once.stats.generated << " states/run):\n";
  Table ab({"legacy ms", "new ms", "speedup"});
  ab.add_row({fmt_ratio(legacy_ms, 1), fmt_ratio(new_ms, 1),
              fmt_ratio(explorer_speedup, 2) + "x"});
  ab.print(std::cout);

  // --- Workspace cache ablation: the same sensitivity sweep (the
  // design-exploration loop that hammers rbf/sbf/inverse lookups) run
  // twice per mode through one shared workspace -- cache off vs on --
  // with the reports checked bit-identical before timing.
  constexpr std::size_t kCacheTasks = 4;
  constexpr int kCacheRounds = 2;
  std::vector<GeneratedTask> cache_tasks;
  for (std::size_t i = 0; i < kCacheTasks; ++i) {
    cache_tasks.push_back(task_with_vertices(8, 0.45, 9000 + i));
  }
  const Supply cache_supply = Supply::tdma(Time(9), Time(20));

  auto sensitivity_sweep = [&](engine::Workspace& ws) {
    std::vector<SensitivityReport> reports;
    for (int round = 0; round < kCacheRounds; ++round) {
      for (const GeneratedTask& g : cache_tasks) {
        reports.push_back(sensitivity_analysis(ws, g.task, cache_supply));
      }
    }
    return reports;
  };
  auto same_reports = [](const std::vector<SensitivityReport>& a,
                         const std::vector<SensitivityReport>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].feasible != b[i].feasible ||
          a[i].wcet_slack != b[i].wcet_slack ||
          a[i].separation_slack != b[i].separation_slack) {
        return false;
      }
    }
    return true;
  };

  engine::Workspace ws_off(false);
  std::vector<SensitivityReport> uncached_reports;
  double uncached_ms = 0;
  {
    Phase phase("ablation.cache.off");
    uncached_reports = sensitivity_sweep(ws_off);
    uncached_ms = phase.millis();
  }
  engine::Workspace ws_on(true);
  std::vector<SensitivityReport> cached_reports;
  double cached_ms = 0;
  {
    Phase phase("ablation.cache.on");
    cached_reports = sensitivity_sweep(ws_on);
    cached_ms = phase.millis();
  }
  if (!same_reports(uncached_reports, cached_reports)) {
    std::cerr << "cache ablation: cached and uncached sensitivity reports "
                 "differ -- bit-identity contract broken\n";
    return 1;
  }
  const double cache_speedup = uncached_ms / std::max(cached_ms, 1e-6);
  const engine::WorkspaceStats cache_stats = ws_on.stats();

  std::cout << "\nWorkspace cache (sensitivity sweep, " << kCacheTasks
            << " tasks x " << kCacheRounds << " rounds):\n";
  Table ct({"uncached ms", "cached ms", "speedup", "hits", "misses"});
  ct.add_row({fmt_ratio(uncached_ms, 1), fmt_ratio(cached_ms, 1),
              fmt_ratio(cache_speedup, 2) + "x",
              std::to_string(cache_stats.hits),
              std::to_string(cache_stats.misses)});
  ct.print(std::cout);

  report.metric("sweep_trials", kTrials);
  report.metric("sweep_vertices", kVertices);
  report.metric("serial_ms", serial_ms);
  report.metric("parallel_ms", parallel_ms);
  report.metric("speedup", speedup);
  report.metric("threads", threads);
  report.metric("explorer_states_per_run", once.stats.generated);
  report.metric("explorer_legacy_ms", legacy_ms);
  report.metric("explorer_new_ms", new_ms);
  report.metric("explorer_speedup", explorer_speedup);
  report.metric("sensitivity_uncached_ms", uncached_ms);
  report.metric("sensitivity_cached_ms", cached_ms);
  report.metric("cache_speedup", cache_speedup);
  report.metric("cache_hits", cache_stats.hits);
  report.metric("cache_misses", cache_stats.misses);
  report.metric("cache_bytes", cache_stats.bytes);
  return run_kernel_section(report);
}

}  // namespace
}  // namespace strt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return strt::run_speedup_section();
}
