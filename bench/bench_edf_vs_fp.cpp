// Experiment E9 (extension table): EDF demand-bound test vs fixed
// priority with structural per-task delay bounds, acceptance across load.
//
// A set is FP-accepted when every task's structural delay bound on its
// leftover supply is at most the task's smallest relative deadline
// (conservative: jobs with larger vertex deadlines only have more slack).
// A set is EDF-accepted when the exact demand criterion holds per vertex
// deadline.  Expected shape: both fall with load; EDF dominates FP on a
// shared slice because it uses the per-vertex deadlines exactly and EDF
// is optimal on a fully preemptive resource.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/edf.hpp"
#include "core/fixed_priority.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  const Supply supply = Supply::tdma(Time(6), Time(10));
  const int kSetsPerLevel = 40;
  const double levels[] = {0.20, 0.30, 0.38, 0.45, 0.50, 0.55};

  std::cout << "E9: EDF vs fixed-priority acceptance on "
            << supply.describe() << ", deadline = min outgoing separation "
            << "(frame-separated sets), " << kSetsPerLevel
            << " sets of 3 per level\n\n";

  BenchReport report("edf_vs_fp");
  Table table({"target U", "EDF accept", "FP accept"});
  std::vector<std::vector<std::string>> csv_rows;
  std::uint64_t level_idx = 0;
  StructuralOptions opts;
  opts.want_witness = false;

  for (const double level : levels) {
    Phase phase("level:" + fmt_ratio(level));
    struct SetOut {
      bool edf_ok;
      bool fp_ok;
    };
    // Split streams make the sweep parallel over STRT_THREADS while
    // reproducing the serial set sequence per level.
    const auto outs = trials(
        616161 + level_idx * 7919, static_cast<std::size_t>(kSetsPerLevel),
        [&](Rng& rng, std::size_t) -> SetOut {
          for (;;) {
            DrtGenParams params;
            params.min_vertices = 2;
            params.max_vertices = 5;
            params.min_separation = Time(6);
            params.max_separation = Time(30);
            params.deadline_factor = 1.0;  // frame separated
            auto gen = random_drt_set(rng, 3, level, params);
            std::vector<DrtTask> tasks;
            Rational total(0);
            for (auto& g : gen) {
              total += g.exact_utilization;
              tasks.push_back(std::move(g.task));
            }
            if (!(total < supply.long_run_rate())) continue;
            bool frame_separated = true;
            for (const DrtTask& t : tasks) {
              frame_separated = frame_separated && t.has_frame_separation();
            }
            if (!frame_separated) continue;

            // Rate-monotonic-ish priority order: shortest min-deadline
            // first.
            std::sort(tasks.begin(), tasks.end(),
                      [](const DrtTask& a, const DrtTask& b) {
                        auto min_d = [](const DrtTask& t) {
                          Time d = Time::unbounded();
                          for (const DrtVertex& v : t.vertices()) {
                            d = min(d, v.deadline);
                          }
                          return d;
                        };
                        return min_d(a) < min_d(b);
                      });

            engine::Workspace edf_ws;
            const EdfResult edf = edf_schedulable(edf_ws, tasks, supply);

            engine::Workspace fp_ws;
            const FpResult fp =
                fixed_priority_analysis(fp_ws, tasks, supply, opts);
            bool ok = !fp.overloaded;
            for (std::size_t i = 0; ok && i < tasks.size(); ++i) {
              Time min_d = Time::unbounded();
              for (const DrtVertex& v : tasks[i].vertices()) {
                min_d = min(min_d, v.deadline);
              }
              ok = fp.tasks[i].structural_delay <= min_d;
            }
            return SetOut{edf.schedulable, ok};
          }
        });
    ++level_idx;
    int edf_ok = 0;
    int fp_ok = 0;
    for (const SetOut& o : outs) {
      if (o.edf_ok) ++edf_ok;
      if (o.fp_ok) ++fp_ok;
    }
    auto pct = [&](int a) {
      return fmt_ratio(100.0 * a / kSetsPerLevel, 0) + "%";
    };
    table.add_row({fmt_ratio(level), pct(edf_ok), pct(fp_ok)});
    csv_rows.push_back({fmt_ratio(level, 2),
                        fmt_ratio(1.0 * edf_ok / kSetsPerLevel, 4),
                        fmt_ratio(1.0 * fp_ok / kSetsPerLevel, 4)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"target_u", "edf_accept", "fp_accept"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("levels", std::size(levels));
  report.metric("sets_per_level", kSetsPerLevel);
  return 0;
}
