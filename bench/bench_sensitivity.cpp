// Experiment E10 (extension figure): provisioning headroom vs resource
// share.
//
// For the telemetry case-study task on growing TDMA slots, the table
// reports the deadline verdict and the slack landscape: the smallest
// per-vertex wcet slack (the binding job type) and the smallest
// separation slack (the binding release constraint).
//
// Expected shape: below some share the verdict fails (zero slack); above
// it both slacks grow monotonically -- the exact share where each job
// type stops being the bottleneck is visible as a kink.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  DrtBuilder b("telemetry");
  const VertexId snap = b.add_vertex("snapshot", Work(6), Time(30));
  const VertexId delta = b.add_vertex("delta", Work(2), Time(12));
  b.add_edge(snap, delta, Time(12));
  b.add_edge(delta, delta, Time(8));
  b.add_edge(delta, snap, Time(40));
  const DrtTask task = std::move(b).build();

  const Time cycle(9);
  std::cout << "E10: slack landscape vs TDMA share for task "
            << task.name() << " (cycle " << cycle.count() << ")\n\n";

  BenchReport report("sensitivity");
  Table table({"slot", "verdict", "worst delay", "min wcet slack",
               "min sep slack"});
  std::vector<std::vector<std::string>> csv_rows;
  StructuralOptions sopts;
  sopts.want_witness = false;
  int feasible_slots = 0;

  for (std::int64_t slot = 1; slot <= cycle.count(); ++slot) {
    Phase phase("slot:" + std::to_string(slot));
    const Supply supply = Supply::tdma(Time(slot), cycle);
    engine::Workspace base_ws;
    const StructuralResult base =
        structural_delay(base_ws, task, supply, sopts);
    engine::Workspace sens_ws;
    const SensitivityReport rep =
        sensitivity_analysis(sens_ws, task, supply);

    std::string min_wcet = "-";
    std::string min_sep = "-";
    if (rep.feasible) {
      ++feasible_slots;
      Work w = Work::unbounded();
      for (const Work s : rep.wcet_slack) w = min(w, s);
      Time t = Time::unbounded();
      for (const Time s : rep.separation_slack) t = min(t, s);
      min_wcet = w.is_unbounded() ? "inf" : std::to_string(w.count());
      min_sep = t.is_unbounded() ? "inf" : std::to_string(t.count());
    }
    table.add_row({std::to_string(slot),
                   rep.feasible ? "PASS" : "FAIL",
                   show(base.delay), min_wcet, min_sep});
    csv_rows.push_back({std::to_string(slot),
                        rep.feasible ? "1" : "0", show(base.delay),
                        min_wcet, min_sep});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"slot", "feasible", "worst_delay",
                            "min_wcet_slack", "min_sep_slack"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("slots", csv_rows.size());
  report.metric("feasible_slots", feasible_slots);
  return 0;
}
