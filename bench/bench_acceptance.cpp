// Experiment E5 (Table analogue): acceptance ratio under a fixed resource
// share, per abstraction.
//
// A task "is accepted" by an analysis if the analysis certifies its
// worst-case delay within the deadline (3x the task's longest separation
// here).  For each utilization level, the table reports the fraction of
// random tasks each abstraction accepts on the same TDMA slice.
//
// Expected shape: acceptance falls with load for every analysis, and at
// every level  structural >= hull >= bucket >= min-gap, with the largest
// spread in the mid-load range (at light load everything is accepted, in
// overload nothing is).

#include <array>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/abstractions.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  const Supply supply = Supply::tdma(Time(5), Time(10));
  const int kTasksPerLevel = 60;
  const double levels[] = {0.15, 0.25, 0.33, 0.40, 0.44, 0.47};

  std::cout << "E5: acceptance ratio on " << supply.describe()
            << ", deadline = max separation, " << kTasksPerLevel
            << " random tasks per level\n\n";

  BenchReport report("acceptance");

  // Front gate: lint a sample set from the same generator family before
  // burning the sweep -- a generator regression fails loudly here, and
  // the check.* counters land in the emitted report.
  {
    Rng rng = Rng::split(424242, 0);
    std::vector<DrtTask> sample;
    for (int i = 0; i < 4; ++i) {
      DrtGenParams params;
      params.min_vertices = 3;
      params.max_vertices = 8;
      params.min_separation = Time(4);
      params.max_separation = Time(30);
      params.target_utilization = levels[0];
      sample.push_back(random_drt(rng, params).task);
    }
    lint_generated(sample);
  }

  Table table({"target U", "structural", "hull", "bucket", "min-gap"});
  std::vector<std::vector<std::string>> csv_rows;
  std::uint64_t level_idx = 0;

  for (const double level : levels) {
    Phase phase("level:" + fmt_ratio(level));
    // One independent trial per task: trial i of level l draws from
    // Rng::split, so the sweep parallelizes over STRT_THREADS with
    // results identical to a serial run.
    const auto outcomes = trials(
        909090 + level_idx * 7919, kTasksPerLevel,
        [&](Rng& rng, std::size_t) {
          std::array<bool, 4> acc{};
          for (;;) {
            DrtGenParams params;
            params.min_vertices = 3;
            params.max_vertices = 8;
            params.min_separation = Time(4);
            params.max_separation = Time(30);
            params.target_utilization = level;
            const GeneratedTask gen = random_drt(rng, params);
            if (!(gen.exact_utilization < supply.long_run_rate())) continue;
            Time max_sep(0);
            for (const DrtEdge& e : gen.task.edges()) {
              max_sep = max(max_sep, e.separation);
            }
            const Time deadline = max_sep;

            const WorkloadAbstraction kinds[] = {
                WorkloadAbstraction::kStructural,
                WorkloadAbstraction::kConcaveHull,
                WorkloadAbstraction::kTokenBucket,
                WorkloadAbstraction::kSporadicMinGap,
            };
            StructuralOptions opts;
            opts.want_witness = false;
            for (int k = 0; k < 4; ++k) {
              engine::Workspace ws;
              const AbstractionResult r = delay_with_abstraction(
                  ws, gen.task, supply, kinds[k], opts);
              acc[static_cast<std::size_t>(k)] =
                  !r.delay.is_unbounded() && r.delay <= deadline;
            }
            return acc;
          }
        });
    ++level_idx;
    int accept[4] = {0, 0, 0, 0};
    for (const auto& acc : outcomes) {
      for (int k = 0; k < 4; ++k) {
        if (acc[static_cast<std::size_t>(k)]) ++accept[k];
      }
    }
    auto pct = [&](int a) {
      return fmt_ratio(100.0 * a / kTasksPerLevel, 0) + "%";
    };
    table.add_row({fmt_ratio(level), pct(accept[0]), pct(accept[1]),
                   pct(accept[2]), pct(accept[3])});
    csv_rows.push_back({fmt_ratio(level, 2),
                        fmt_ratio(1.0 * accept[0] / kTasksPerLevel, 4),
                        fmt_ratio(1.0 * accept[1] / kTasksPerLevel, 4),
                        fmt_ratio(1.0 * accept[2] / kTasksPerLevel, 4),
                        fmt_ratio(1.0 * accept[3] / kTasksPerLevel, 4)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"target_u", "structural", "hull", "bucket",
                            "mingap"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("levels", std::size(levels));
  report.metric("tasks_per_level", kTasksPerLevel);
  return 0;
}
