// Experiment E8 (extension table): multi-task fixed priority -- what the
// interference abstraction costs each priority level.
//
// The same random task sets are analyzed three times, abstracting the
// higher-priority interference as exact request-bound staircases (what
// structural workload models enable), concave hulls, and token buckets.
// Reported: the mean delay-bound inflation per priority level relative to
// the exact-interference analysis.
//
// Expected shape: priority 0 is unaffected (no interference); lower
// levels suffer increasingly because abstraction errors of every
// higher-priority stream accumulate in the leftover curve.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/fixed_priority.hpp"
#include "engine/workspace.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "model/generator.hpp"

using namespace strt;
using namespace strt::bench;

int main() {
  const Supply supply = Supply::dedicated(1);
  const std::size_t kSetSize = 4;
  const int kSets = 20;
  const double kTotalUtil = 0.72;

  std::cout << "E8: fixed-priority delay bounds vs interference "
               "abstraction\n"
            << kSets << " random sets of " << kSetSize
            << " tasks, total utilization ~" << kTotalUtil << " on "
            << supply.describe() << "\n\n";

  BenchReport report("fp_interference");
  std::vector<double> sum_hull(kSetSize, 0.0);
  std::vector<double> sum_bucket(kSetSize, 0.0);
  std::vector<double> sum_exact_delay(kSetSize, 0.0);
  int used = 0;

  StructuralOptions opts;
  opts.want_witness = false;

  struct SetOut {
    std::vector<double> exact_delay;
    std::vector<double> hull_ratio;
    std::vector<double> bucket_ratio;
  };
  {
    Phase phase("fp_interference.sets");
    // One split RNG stream per set: the sweep runs on every core with
    // results identical to STRT_THREADS=1.
    const auto outs = trials(
        181818, static_cast<std::size_t>(kSets),
        [&](Rng& rng, std::size_t) -> SetOut {
          for (;;) {
            DrtGenParams params;
            params.min_vertices = 2;
            params.max_vertices = 5;
            params.min_separation = Time(8);
            params.max_separation = Time(40);
            auto gen = random_drt_set(rng, kSetSize, kTotalUtil, params);
            std::vector<DrtTask> tasks;
            Rational total(0);
            for (auto& g : gen) {
              total += g.exact_utilization;
              tasks.push_back(std::move(g.task));
            }
            if (!(total < supply.long_run_rate())) continue;

            engine::Workspace ws_exact;
            const FpResult exact = fixed_priority_analysis(
                ws_exact, tasks, supply, opts,
                WorkloadAbstraction::kExactCurve);
            engine::Workspace ws_hull;
            const FpResult hull = fixed_priority_analysis(
                ws_hull, tasks, supply, opts,
                WorkloadAbstraction::kConcaveHull);
            engine::Workspace ws_bucket;
            const FpResult bucket = fixed_priority_analysis(
                ws_bucket, tasks, supply, opts,
                WorkloadAbstraction::kTokenBucket);
            if (exact.overloaded || hull.overloaded || bucket.overloaded) {
              continue;
            }

            SetOut out;
            for (std::size_t i = 0; i < kSetSize; ++i) {
              const double d = static_cast<double>(
                  exact.tasks[i].structural_delay.count());
              out.exact_delay.push_back(d);
              out.hull_ratio.push_back(
                  static_cast<double>(
                      hull.tasks[i].structural_delay.count()) /
                  d);
              out.bucket_ratio.push_back(
                  static_cast<double>(
                      bucket.tasks[i].structural_delay.count()) /
                  d);
            }
            return out;
          }
        });
    for (const SetOut& out : outs) {
      for (std::size_t i = 0; i < kSetSize; ++i) {
        sum_exact_delay[i] += out.exact_delay[i];
        sum_hull[i] += out.hull_ratio[i];
        sum_bucket[i] += out.bucket_ratio[i];
      }
      ++used;
    }
  }

  Table table({"priority", "mean exact delay", "hull-interf ratio",
               "bucket-interf ratio"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < kSetSize; ++i) {
    table.add_row({std::to_string(i), fmt_ratio(sum_exact_delay[i] / kSets, 1),
                   fmt_ratio(sum_hull[i] / kSets),
                   fmt_ratio(sum_bucket[i] / kSets)});
    csv_rows.push_back({std::to_string(i),
                        fmt_ratio(sum_exact_delay[i] / kSets, 2),
                        fmt_ratio(sum_hull[i] / kSets, 4),
                        fmt_ratio(sum_bucket[i] / kSets, 4)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  CsvWriter csv(std::cout, {"priority", "mean_exact_delay", "hull_ratio",
                            "bucket_ratio"});
  for (const auto& row : csv_rows) csv.row(row);
  report.metric("sets", used);
  report.metric("set_size", kSetSize);
  return 0;
}
