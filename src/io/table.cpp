#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/assert.hpp"

namespace strt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  STRT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  STRT_REQUIRE(cells.size() == headers_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string fmt_ratio(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

namespace {

std::string field_to_string(const obs::RunReport::FieldValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return fmt_ratio(*d, 3);
  if (const auto* r = std::get_if<obs::RunReport::RawJson>(&v)) return r->text;
  return std::get<bool>(v) ? "true" : "false";
}

void add_span_rows(Table& table, const std::vector<obs::SpanSample>& spans,
                   int depth) {
  for (const obs::SpanSample& s : spans) {
    table.add_row({std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                       s.name,
                   std::to_string(s.count),
                   fmt_ratio(static_cast<double>(s.total_ns) / 1e6, 3)});
    add_span_rows(table, s.children, depth + 1);
  }
}

}  // namespace

void print_report_table(std::ostream& os, const obs::RunReport& report) {
  os << "Run report: " << report.name() << '\n';

  if (!report.fields().empty()) {
    Table fields({"field", "value"});
    for (const auto& [k, v] : report.fields()) {
      fields.add_row({k, field_to_string(v)});
    }
    fields.print(os);
    os << '\n';
  }

  Table cells({"counter", "value"});
  for (const obs::CounterSample& c : report.counters()) {
    if (c.value != 0) cells.add_row({c.name, std::to_string(c.value)});
  }
  for (const obs::GaugeSample& g : report.gauges()) {
    if (g.value != 0 || g.max_value != 0) {
      cells.add_row({g.name + " (gauge, max " + std::to_string(g.max_value) +
                         ")",
                     std::to_string(g.value)});
    }
  }
  if (cells.row_count() > 0) {
    cells.print(os);
    os << '\n';
  }

  if (!report.spans().empty()) {
    Table spans({"phase", "count", "ms"});
    add_span_rows(spans, report.spans(), 0);
    spans.print(os);
  }
}

}  // namespace strt
