#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/assert.hpp"

namespace strt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  STRT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  STRT_REQUIRE(cells.size() == headers_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string fmt_ratio(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace strt
