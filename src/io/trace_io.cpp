#include "io/trace_io.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "base/assert.hpp"

namespace strt {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "trace parse error at line " << line_no << ": " << msg;
  throw std::invalid_argument(os.str());
}

std::int64_t parse_int(std::string_view tok, std::size_t line_no) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
  if (ec != std::errc{} || p != tok.end()) {
    fail(line_no, "expected an integer, got '" + std::string(tok) + "'");
  }
  return v;
}

}  // namespace

std::string serialize_trace(const Trace& trace) {
  std::ostringstream os;
  for (const SimJob& j : trace) {
    os << "job release " << j.release.count() << " wcet " << j.wcet.count()
       << " vertex " << j.vertex << '\n';
  }
  return os.str();
}

Trace parse_trace(std::string_view text) {
  Trace trace;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    // Tokenize (same rules as the task format).
    std::vector<std::string_view> toks;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      if (i >= line.size() || line[i] == '#') break;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
             line[j] != '#') {
        ++j;
      }
      toks.push_back(line.substr(i, j - i));
      i = j;
    }
    if (toks.empty()) continue;
    if (toks[0] != "job" || toks.size() != 7 || toks[1] != "release" ||
        toks[3] != "wcet" || toks[5] != "vertex") {
      fail(line_no, "usage: job release <n> wcet <n> vertex <n>");
    }
    SimJob job;
    job.release = Time(parse_int(toks[2], line_no));
    job.wcet = Work(parse_int(toks[4], line_no));
    job.vertex = static_cast<VertexId>(parse_int(toks[6], line_no));
    if (job.release < Time(0)) fail(line_no, "negative release");
    if (job.wcet < Work(0)) fail(line_no, "negative wcet");
    if (job.vertex < 0) fail(line_no, "negative vertex id");
    if (!trace.empty() && job.release < trace.back().release) {
      fail(line_no, "releases must be non-decreasing");
    }
    trace.push_back(job);
  }
  return trace;
}

}  // namespace strt
