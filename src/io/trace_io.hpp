// Text serialization of release traces (record a run, replay it later,
// attach it to a bug report).
//
// Format: one job per line, '#' comments and blank lines ignored:
//
//     job release 0 wcet 4 vertex 0
//     job release 3 wcet 1 vertex 1
#pragma once

#include <string>
#include <string_view>

#include "sim/trace.hpp"

namespace strt {

[[nodiscard]] std::string serialize_trace(const Trace& trace);

/// Throws std::invalid_argument with a line-numbered message on
/// malformed input; validates monotone releases and non-negative fields.
[[nodiscard]] Trace parse_trace(std::string_view text);

}  // namespace strt
