#include "io/parse.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "base/assert.hpp"

namespace strt {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '#') {
      ++j;
    }
    toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "parse error at line " << line_no << ": " << msg;
  throw std::invalid_argument(os.str());
}

std::int64_t parse_int(std::string_view tok, std::size_t line_no) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
  if (ec != std::errc{} || p != tok.end()) {
    fail(line_no, "expected an integer, got '" + std::string(tok) + "'");
  }
  return v;
}

Rational parse_rational(std::string_view tok, std::size_t line_no) {
  const std::size_t slash = tok.find('/');
  if (slash == std::string_view::npos) {
    return Rational(parse_int(tok, line_no));
  }
  return Rational(parse_int(tok.substr(0, slash), line_no),
                  parse_int(tok.substr(slash + 1), line_no));
}

/// Expects tokens of the form  key1 v1 key2 v2 ...  starting at `from`.
std::map<std::string_view, std::string_view> parse_kv(
    const std::vector<std::string_view>& toks, std::size_t from,
    std::size_t line_no) {
  if ((toks.size() - from) % 2 != 0) {
    fail(line_no, "expected key/value pairs");
  }
  std::map<std::string_view, std::string_view> kv;
  for (std::size_t i = from; i < toks.size(); i += 2) {
    kv[toks[i]] = toks[i + 1];
  }
  return kv;
}

std::string_view require_key(
    const std::map<std::string_view, std::string_view>& kv,
    std::string_view key, std::size_t line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) fail(line_no, "missing '" + std::string(key) + "'");
  return it->second;
}

}  // namespace

DrtTask parse_task(std::string_view text) {
  std::optional<DrtBuilder> builder;
  std::map<std::string, VertexId, std::less<>> ids;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "task") {
      if (builder) fail(line_no, "duplicate 'task' directive");
      if (toks.size() != 2) fail(line_no, "usage: task <name>");
      builder.emplace(std::string(toks[1]));
    } else if (toks[0] == "vertex") {
      if (!builder) fail(line_no, "'vertex' before 'task'");
      if (toks.size() != 6) {
        fail(line_no, "usage: vertex <name> wcet <n> deadline <n>");
      }
      const auto kv = parse_kv(toks, 2, line_no);
      const std::string name(toks[1]);
      if (ids.contains(name)) fail(line_no, "duplicate vertex " + name);
      ids[name] = builder->add_vertex(
          name, Work(parse_int(require_key(kv, "wcet", line_no), line_no)),
          Time(parse_int(require_key(kv, "deadline", line_no), line_no)));
    } else if (toks[0] == "edge") {
      if (!builder) fail(line_no, "'edge' before 'task'");
      if (toks.size() != 5) fail(line_no, "usage: edge <from> <to> sep <n>");
      const auto kv = parse_kv(toks, 3, line_no);
      const auto from = ids.find(toks[1]);
      const auto to = ids.find(toks[2]);
      if (from == ids.end()) {
        fail(line_no, "unknown vertex '" + std::string(toks[1]) + "'");
      }
      if (to == ids.end()) {
        fail(line_no, "unknown vertex '" + std::string(toks[2]) + "'");
      }
      builder->add_edge(
          from->second, to->second,
          Time(parse_int(require_key(kv, "sep", line_no), line_no)));
    } else {
      fail(line_no, "unknown directive '" + std::string(toks[0]) + "'");
    }
  }
  if (!builder) throw std::invalid_argument("no 'task' directive found");
  return std::move(*builder).build();
}

std::string serialize_task(const DrtTask& task) {
  std::ostringstream os;
  os << "task " << task.name() << '\n';
  for (const DrtVertex& v : task.vertices()) {
    os << "vertex " << v.name << " wcet " << v.wcet.count() << " deadline "
       << v.deadline.count() << '\n';
  }
  for (const DrtEdge& e : task.edges()) {
    os << "edge " << task.vertex(e.from).name << ' '
       << task.vertex(e.to).name << " sep " << e.separation.count() << '\n';
  }
  return os.str();
}

Supply parse_supply(std::string_view text) {
  const auto toks = tokenize(text);
  if (toks.empty()) throw std::invalid_argument("empty supply description");
  const auto kv = parse_kv(toks, 1, 1);
  if (toks[0] == "dedicated") {
    return Supply::dedicated(parse_int(require_key(kv, "rate", 1), 1));
  }
  if (toks[0] == "bounded_delay") {
    return Supply::bounded_delay(
        parse_rational(require_key(kv, "rate", 1), 1),
        Time(parse_int(require_key(kv, "delay", 1), 1)));
  }
  if (toks[0] == "periodic") {
    return Supply::periodic(
        Time(parse_int(require_key(kv, "budget", 1), 1)),
        Time(parse_int(require_key(kv, "period", 1), 1)));
  }
  if (toks[0] == "tdma") {
    return Supply::tdma(Time(parse_int(require_key(kv, "slot", 1), 1)),
                        Time(parse_int(require_key(kv, "cycle", 1), 1)));
  }
  if (toks[0] == "schedule") {
    const std::string_view mask = require_key(kv, "mask", 1);
    std::vector<bool> active;
    for (const char c : mask) {
      if (c != '0' && c != '1') {
        throw std::invalid_argument("schedule mask must be 0/1 digits");
      }
      active.push_back(c == '1');
    }
    return Supply::schedule(std::move(active));
  }
  throw std::invalid_argument("unknown supply kind '" + std::string(toks[0]) +
                              "'");
}

std::string serialize_supply(const Supply& supply) {
  std::ostringstream os;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          os << "dedicated rate " << m.rate;
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          os << "bounded_delay rate " << m.rate << " delay "
             << m.delay.count();
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          os << "periodic budget " << m.budget.count() << " period "
             << m.period.count();
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          os << "tdma slot " << m.slot.count() << " cycle "
             << m.cycle.count();
        } else {
          os << "schedule mask ";
          for (const bool a : m.active) os << (a ? '1' : '0');
        }
      },
      supply.model());
  return os.str();
}

}  // namespace strt
