#include "io/parse.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/assert.hpp"
#include "check/check.hpp"

namespace strt {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '#') {
      ++j;
    }
    toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "parse error at line " << line_no << ": " << msg;
  throw std::invalid_argument(os.str());
}

std::optional<std::int64_t> try_parse_int(std::string_view tok) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(tok.begin(), tok.end(), v);
  if (ec != std::errc{} || p != tok.end()) return std::nullopt;
  return v;
}

std::int64_t parse_int(std::string_view tok, std::size_t line_no) {
  const auto v = try_parse_int(tok);
  if (!v) {
    fail(line_no, "expected an integer, got '" + std::string(tok) + "'");
  }
  return *v;
}

Rational parse_rational(std::string_view tok, std::size_t line_no) {
  const std::size_t slash = tok.find('/');
  if (slash == std::string_view::npos) {
    return Rational(parse_int(tok, line_no));
  }
  return Rational(parse_int(tok.substr(0, slash), line_no),
                  parse_int(tok.substr(slash + 1), line_no));
}

/// Expects tokens of the form  key1 v1 key2 v2 ...  starting at `from`.
std::map<std::string_view, std::string_view> parse_kv(
    const std::vector<std::string_view>& toks, std::size_t from,
    std::size_t line_no) {
  if ((toks.size() - from) % 2 != 0) {
    fail(line_no, "expected key/value pairs");
  }
  std::map<std::string_view, std::string_view> kv;
  for (std::size_t i = from; i < toks.size(); i += 2) {
    kv[toks[i]] = toks[i + 1];
  }
  return kv;
}

std::string_view require_key(
    const std::map<std::string_view, std::string_view>& kv,
    std::string_view key, std::size_t line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) fail(line_no, "missing '" + std::string(key) + "'");
  return it->second;
}

/// Diagnostic-collecting field lookup + integer parse: emits
/// parse.missing-field / parse.invalid-value and returns `fallback` so the
/// caller can keep scanning the rest of the input.
std::int64_t read_int_field(
    const std::map<std::string_view, std::string_view>& kv,
    std::string_view key, const std::string& loc, std::int64_t fallback,
    check::CheckResult& r) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    std::string msg = "missing '";
    msg.append(key);
    msg += '\'';
    r.add(check::Severity::kError, "parse.missing-field", loc,
          std::move(msg));
    return fallback;
  }
  const auto v = try_parse_int(it->second);
  if (!v) {
    std::string msg = "'";
    msg.append(key);
    msg += "' expects an integer, got '";
    msg.append(it->second);
    msg += '\'';
    r.add(check::Severity::kError, "parse.invalid-value", loc,
          std::move(msg));
    return fallback;
  }
  return *v;
}

}  // namespace

ParseResult parse_task_checked(std::string_view text) {
  constexpr auto kError = check::Severity::kError;
  ParseResult out;
  check::CheckResult& r = out.diagnostics;
  check::TaskSpec spec;
  bool have_task = false;
  std::map<std::string, std::int32_t, std::less<>> ids;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string loc = "line " + std::to_string(line_no);

    if (toks[0] == "task") {
      if (have_task) {
        r.add(kError, "parse.syntax", loc, "duplicate 'task' directive");
      } else if (toks.size() != 2) {
        r.add(kError, "parse.syntax", loc, "usage: task <name>");
      } else {
        have_task = true;
        spec.name = std::string(toks[1]);
      }
    } else if (toks[0] == "vertex") {
      if (!have_task) {
        r.add(kError, "parse.syntax", loc, "'vertex' before 'task'");
        continue;
      }
      if (toks.size() != 6) {
        r.add(kError, "parse.syntax", loc,
              "usage: vertex <name> wcet <n> deadline <n>");
        continue;
      }
      std::map<std::string_view, std::string_view> kv;
      for (std::size_t i = 2; i + 1 < toks.size(); i += 2) {
        kv[toks[i]] = toks[i + 1];
      }
      const std::string name(toks[1]);
      if (ids.contains(name)) {
        r.add(kError, "parse.duplicate-vertex", loc,
              "duplicate vertex " + name);
        continue;
      }
      check::TaskSpec::Vertex v;
      v.name = name;
      v.wcet = read_int_field(kv, "wcet", loc, 1, r);
      v.deadline = read_int_field(kv, "deadline", loc, 1, r);
      ids.emplace(name, static_cast<std::int32_t>(spec.vertices.size()));
      spec.vertices.push_back(std::move(v));
    } else if (toks[0] == "edge") {
      if (!have_task) {
        r.add(kError, "parse.syntax", loc, "'edge' before 'task'");
        continue;
      }
      if (toks.size() != 5) {
        r.add(kError, "parse.syntax", loc, "usage: edge <from> <to> sep <n>");
        continue;
      }
      std::map<std::string_view, std::string_view> kv;
      for (std::size_t i = 3; i + 1 < toks.size(); i += 2) {
        kv[toks[i]] = toks[i + 1];
      }
      const auto from = ids.find(toks[1]);
      const auto to = ids.find(toks[2]);
      bool resolved = true;
      if (from == ids.end()) {
        r.add(kError, "parse.unknown-vertex", loc,
              "unknown vertex '" + std::string(toks[1]) + "'");
        resolved = false;
      }
      if (to == ids.end()) {
        r.add(kError, "parse.unknown-vertex", loc,
              "unknown vertex '" + std::string(toks[2]) + "'");
        resolved = false;
      }
      const std::int64_t sep = read_int_field(kv, "sep", loc, 1, r);
      if (resolved) {
        spec.edges.push_back(
            check::TaskSpec::Edge{from->second, to->second, sep});
      }
    } else {
      r.add(kError, "parse.syntax", loc,
            "unknown directive '" + std::string(toks[0]) + "'");
    }
  }

  if (!have_task) {
    r.add(kError, "parse.no-task", "input", "no 'task' directive found");
  }
  if (r.ok()) out.task = check::build_task(spec, r);
  return out;
}

DrtTask parse_task(std::string_view text) {
  ParseResult res = parse_task_checked(text);
  if (res.task.has_value()) return std::move(*res.task);
  for (const check::Diagnostic& d : res.diagnostics.diagnostics()) {
    if (d.severity == check::Severity::kError) {
      throw std::invalid_argument("parse error at " + d.location + ": " +
                                  d.message);
    }
  }
  throw std::invalid_argument("parse error: task construction failed");
}

std::string serialize_task(const DrtTask& task) {
  std::ostringstream os;
  os << "task " << task.name() << '\n';
  for (const DrtVertex& v : task.vertices()) {
    os << "vertex " << v.name << " wcet " << v.wcet.count() << " deadline "
       << v.deadline.count() << '\n';
  }
  for (const DrtEdge& e : task.edges()) {
    os << "edge " << task.vertex(e.from).name << ' '
       << task.vertex(e.to).name << " sep " << e.separation.count() << '\n';
  }
  return os.str();
}

Supply parse_supply(std::string_view text) {
  const auto toks = tokenize(text);
  if (toks.empty()) throw std::invalid_argument("empty supply description");
  const auto kv = parse_kv(toks, 1, 1);
  if (toks[0] == "dedicated") {
    return Supply::dedicated(parse_int(require_key(kv, "rate", 1), 1));
  }
  if (toks[0] == "bounded_delay") {
    return Supply::bounded_delay(
        parse_rational(require_key(kv, "rate", 1), 1),
        Time(parse_int(require_key(kv, "delay", 1), 1)));
  }
  if (toks[0] == "periodic") {
    return Supply::periodic(
        Time(parse_int(require_key(kv, "budget", 1), 1)),
        Time(parse_int(require_key(kv, "period", 1), 1)));
  }
  if (toks[0] == "tdma") {
    return Supply::tdma(Time(parse_int(require_key(kv, "slot", 1), 1)),
                        Time(parse_int(require_key(kv, "cycle", 1), 1)));
  }
  if (toks[0] == "schedule") {
    const std::string_view mask = require_key(kv, "mask", 1);
    std::vector<bool> active;
    for (const char c : mask) {
      if (c != '0' && c != '1') {
        throw std::invalid_argument("schedule mask must be 0/1 digits");
      }
      active.push_back(c == '1');
    }
    return Supply::schedule(std::move(active));
  }
  throw std::invalid_argument("unknown supply kind '" + std::string(toks[0]) +
                              "'");
}

std::string serialize_supply(const Supply& supply) {
  std::ostringstream os;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          os << "dedicated rate " << m.rate;
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          os << "bounded_delay rate " << m.rate << " delay "
             << m.delay.count();
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          os << "periodic budget " << m.budget.count() << " period "
             << m.period.count();
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          os << "tdma slot " << m.slot.count() << " cycle "
             << m.cycle.count();
        } else {
          os << "schedule mask ";
          for (const bool a : m.active) os << (a ? '1' : '0');
        }
      },
      supply.model());
  return os.str();
}

SupplyParseResult parse_supply_checked(std::string_view text) {
  SupplyParseResult out;
  try {
    out.supply = parse_supply(text);
  } catch (const std::invalid_argument& e) {
    out.diagnostics.add(check::Severity::kError, "parse.syntax", "supply",
                        e.what());
  }
  return out;
}

}  // namespace strt
