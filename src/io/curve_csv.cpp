#include "io/curve_csv.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <utility>

#include "base/assert.hpp"
#include "check/check.hpp"
#include "io/csv.hpp"

namespace strt {

void write_curves_csv(std::ostream& os,
                      const std::vector<CurveSeries>& series, Time upto) {
  STRT_REQUIRE(!series.empty(), "need at least one curve");
  STRT_REQUIRE(upto >= Time(0), "upto must be non-negative");
  for (const CurveSeries& s : series) {
    STRT_REQUIRE(s.curve != nullptr, "null curve in series");
  }

  std::vector<Time> ts{Time(0), upto};
  for (const CurveSeries& s : series) {
    for (const Time bt : s.curve->times()) {
      if (bt <= upto) ts.push_back(bt);
      // Sample just before each jump too, so staircase plots are sharp.
      if (bt > Time(0) && bt - Time(1) <= upto) {
        ts.push_back(bt - Time(1));
      }
    }
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

  std::vector<std::string> header{"time"};
  for (const CurveSeries& s : series) header.push_back(s.name);
  CsvWriter csv(os, header);
  // The sample times are sorted, so one forward cursor per series walks
  // the breakpoint arrays instead of binary-searching every cell; only
  // samples past a curve's horizon fall back to the tail-folding value().
  std::vector<std::size_t> cursor(series.size(), 0);
  for (const Time t : ts) {
    std::vector<std::string> row{std::to_string(t.count())};
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Staircase& c = *series[i].curve;
      Work v{0};
      if (t <= c.horizon()) {
        const auto bts = c.times();
        std::size_t& cur = cursor[i];
        while (cur + 1 < bts.size() && bts[cur + 1] <= t) ++cur;
        v = c.values()[cur];
      } else {
        v = c.value(t);
      }
      row.push_back(std::to_string(v.count()));
    }
    csv.row(row);
  }
}

namespace {

std::optional<std::int64_t> csv_int(std::string_view field) {
  while (!field.empty() && (field.front() == ' ' || field.front() == '\t')) {
    field.remove_prefix(1);
  }
  while (!field.empty() && (field.back() == ' ' || field.back() == '\t' ||
                            field.back() == '\r')) {
    field.remove_suffix(1);
  }
  if (field.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(field.begin(), field.end(), v);
  if (ec != std::errc{} || p != field.end()) return std::nullopt;
  return v;
}

}  // namespace

CurveReadResult read_curve_points_csv(std::string_view text) {
  constexpr auto kError = check::Severity::kError;
  CurveReadResult out;
  check::CheckResult& r = out.diagnostics;
  std::vector<Step> points;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string_view body = line;
    if (!body.empty() && body.back() == '\r') body.remove_suffix(1);
    if (body.empty() || body.front() == '#') continue;
    const std::string loc = "line " + std::to_string(line_no);

    const std::size_t comma = body.find(',');
    if (comma == std::string_view::npos) {
      r.add(kError, "parse.syntax", loc,
            "expected 'time,value', got '" + std::string(body) + "'");
      continue;
    }
    if (body.find(',', comma + 1) != std::string_view::npos) {
      r.add(kError, "parse.syntax", loc,
            "expected exactly two columns 'time,value'");
      continue;
    }
    const auto t = csv_int(body.substr(0, comma));
    const auto v = csv_int(body.substr(comma + 1));
    if (!t || !v) {
      // A non-numeric leading row is the header; anything later is bad.
      if (points.empty() && r.clean() && !t && !v) continue;
      r.add(kError, "parse.invalid-value", loc,
            "both columns must be integers, got '" + std::string(body) + "'");
      continue;
    }
    points.push_back(Step{Time(*t), Work(*v)});
  }

  r.merge(check::check_curve_points(points));
  if (r.ok()) out.points = std::move(points);
  return out;
}

}  // namespace strt
