#include "io/curve_csv.hpp"

#include <algorithm>
#include <ostream>

#include "base/assert.hpp"
#include "io/csv.hpp"

namespace strt {

void write_curves_csv(std::ostream& os,
                      const std::vector<CurveSeries>& series, Time upto) {
  STRT_REQUIRE(!series.empty(), "need at least one curve");
  STRT_REQUIRE(upto >= Time(0), "upto must be non-negative");
  for (const CurveSeries& s : series) {
    STRT_REQUIRE(s.curve != nullptr, "null curve in series");
  }

  std::vector<Time> ts{Time(0), upto};
  for (const CurveSeries& s : series) {
    for (const Step& st : s.curve->steps()) {
      if (st.time <= upto) ts.push_back(st.time);
      // Sample just before each jump too, so staircase plots are sharp.
      if (st.time > Time(0) && st.time - Time(1) <= upto) {
        ts.push_back(st.time - Time(1));
      }
    }
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

  std::vector<std::string> header{"time"};
  for (const CurveSeries& s : series) header.push_back(s.name);
  CsvWriter csv(os, header);
  for (const Time t : ts) {
    std::vector<std::string> row{std::to_string(t.count())};
    for (const CurveSeries& s : series) {
      row.push_back(std::to_string(s.curve->value(t).count()));
    }
    csv.row(row);
  }
}

}  // namespace strt
