// Plain-text task & supply descriptions.
//
// Task format (one directive per line, '#' comments, blank lines ignored):
//
//     task engine_control
//     vertex A wcet 2 deadline 10
//     vertex B wcet 5 deadline 20
//     edge A B sep 15
//     edge B A sep 30
//
// Supply format (single line):
//
//     dedicated rate 1
//     bounded_delay rate 3/4 delay 10
//     periodic budget 5 period 20
//     tdma slot 5 cycle 20
#pragma once

#include <string>
#include <string_view>

#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

/// Parses a task description; throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] DrtTask parse_task(std::string_view text);

/// Inverse of parse_task (round-trips exactly).
[[nodiscard]] std::string serialize_task(const DrtTask& task);

/// Parses a one-line supply description.
[[nodiscard]] Supply parse_supply(std::string_view text);

/// Inverse of parse_supply.
[[nodiscard]] std::string serialize_supply(const Supply& supply);

}  // namespace strt
