// Plain-text task & supply descriptions.
//
// Task format (one directive per line, '#' comments, blank lines ignored):
//
//     task engine_control
//     vertex A wcet 2 deadline 10
//     vertex B wcet 5 deadline 20
//     edge A B sep 15
//     edge B A sep 30
//
// Supply format (single line):
//
//     dedicated rate 1
//     bounded_delay rate 3/4 delay 10
//     periodic budget 5 period 20
//     tdma slot 5 cycle 20
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "check/diagnostics.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

/// Outcome of a diagnostic-collecting parse: the model (absent when
/// errors prevented construction) plus every problem found.  The parser
/// never hands back a partially-built model: `task` is only set once the
/// whole input round-tripped through the strt::check spec pass.
struct ParseResult {
  std::optional<DrtTask> task;
  check::CheckResult diagnostics;
};

/// Parses a task description, collecting *all* problems as parse.* / drt.*
/// diagnostics ("line N" locations) instead of stopping at the first.
/// `task` is set when parse- and spec-level errors are absent; semantic
/// findings from strt::check::check_task on the built model are then
/// appended without clearing `task` -- gate on diagnostics.ok() to treat
/// those as fatal too.
[[nodiscard]] ParseResult parse_task_checked(std::string_view text);

/// Parses a one-line supply description into diagnostics instead of an
/// exception; `supply` is set iff diagnostics.ok().
struct SupplyParseResult {
  std::optional<Supply> supply;
  check::CheckResult diagnostics;
};
[[nodiscard]] SupplyParseResult parse_supply_checked(std::string_view text);

/// Parses a task description; throws std::invalid_argument with a
/// line-numbered message on malformed input (the first error of
/// parse_task_checked).
[[nodiscard]] DrtTask parse_task(std::string_view text);

/// Inverse of parse_task (round-trips exactly).
[[nodiscard]] std::string serialize_task(const DrtTask& task);

/// Parses a one-line supply description.
[[nodiscard]] Supply parse_supply(std::string_view text);

/// Inverse of parse_supply.
[[nodiscard]] std::string serialize_supply(const Supply& supply);

}  // namespace strt
