// CSV emission of curves (for plotting rbf/sbf/abstraction figures).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "curves/staircase.hpp"

namespace strt {

/// One named series over a shared time axis.
struct CurveSeries {
  std::string name;
  const Staircase* curve{nullptr};
};

/// Writes `time,name1,name2,...` rows with each curve sampled at every
/// breakpoint of any series (plus t = 0 and t = upto).  All curves must
/// be evaluable on [0, upto].
void write_curves_csv(std::ostream& os, const std::vector<CurveSeries>& series,
                      Time upto);

}  // namespace strt
