// CSV emission of curves (for plotting rbf/sbf/abstraction figures) and
// diagnostic-collecting ingestion of raw curve samples.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "check/diagnostics.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// One named series over a shared time axis.
struct CurveSeries {
  std::string name;
  const Staircase* curve{nullptr};
};

/// Writes `time,name1,name2,...` rows with each curve sampled at every
/// breakpoint of any series (plus t = 0 and t = upto).  All curves must
/// be evaluable on [0, upto].
void write_curves_csv(std::ostream& os, const std::vector<CurveSeries>& series,
                      Time upto);

/// Outcome of reading raw curve samples: every problem is a diagnostic
/// (never a partially-usable sample list -- `points` is empty unless
/// diagnostics.ok()).
struct CurveReadResult {
  std::vector<Step> points;
  check::CheckResult diagnostics;
};

/// Reads `time,value` CSV rows (an optional non-numeric header line is
/// skipped; '#' lines and blank lines ignored) into curve samples.
/// Syntax problems surface as parse.syntax / parse.invalid-value with
/// "line N" locations; well-formed samples are then linted with
/// strt::check::check_curve_points (curve.negative, curve.non-monotone).
[[nodiscard]] CurveReadResult read_curve_points_csv(std::string_view text);

}  // namespace strt
