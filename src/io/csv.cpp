#include "io/csv.hpp"

#include <ostream>

#include "base/assert.hpp"

namespace strt {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), columns_(columns.size()) {
  STRT_REQUIRE(!columns.empty(), "CSV needs at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(columns[i]);
  }
  os_ << '\n';
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  STRT_REQUIRE(cells.size() == columns_, "row width must match the header");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
  return *this;
}

}  // namespace strt
