// Minimal aligned-ASCII table printer for the benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace strt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Prints with column alignment and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers shared by benches/examples.
[[nodiscard]] std::string fmt_ratio(double value, int decimals = 2);

/// Human-readable rendering of an observability run report: one table of
/// fields, one of (non-zero) counters and gauges, and the span profile
/// tree with indented phase names, entry counts, and milliseconds.
void print_report_table(std::ostream& os, const obs::RunReport& report);

}  // namespace strt
