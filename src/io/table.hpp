// Minimal aligned-ASCII table printer for the benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace strt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Prints with column alignment and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers shared by benches/examples.
[[nodiscard]] std::string fmt_ratio(double value, int decimals = 2);

}  // namespace strt
