// CSV emission for benchmark series (one block per figure, consumed by
// any plotting tool), plus the line splitter the svc request-stream
// reader uses.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace strt {

class CsvWriter {
 public:
  /// Writes to `os`; emits the header immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  CsvWriter& row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  std::size_t columns_;
};

/// RFC-4180-style escaping (quotes fields containing separators/quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Inverse of one csv_escape()d row: splits `line` on unquoted commas and
/// unescapes quoted fields ("" -> ").  Surrounding whitespace of unquoted
/// fields is kept verbatim; an empty line yields one empty field.
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

}  // namespace strt
