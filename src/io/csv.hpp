// CSV emission for benchmark series (one block per figure, consumed by
// any plotting tool).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace strt {

class CsvWriter {
 public:
  /// Writes to `os`; emits the header immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  CsvWriter& row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  std::size_t columns_;
};

/// RFC-4180-style escaping (quotes fields containing separators/quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace strt
