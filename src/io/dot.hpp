// Graphviz export of DRT tasks (documentation / debugging aid).
#pragma once

#include <string>

#include "graph/drt.hpp"

namespace strt {

/// DOT digraph with one node per job type, labelled "name e/d", and one
/// edge per separation constraint labelled with the separation.
[[nodiscard]] std::string to_dot(const DrtTask& task);

}  // namespace strt
