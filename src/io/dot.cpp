#include "io/dot.hpp"

#include <sstream>

namespace strt {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_dot(const DrtTask& task) {
  std::ostringstream os;
  os << "digraph " << quote(task.name()) << " {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    const DrtVertex& vert = task.vertex(v);
    os << "  n" << v << " [label="
       << quote(vert.name + "\\ne=" + std::to_string(vert.wcet.count()) +
                " d=" + std::to_string(vert.deadline.count()))
       << "];\n";
  }
  for (const DrtEdge& e : task.edges()) {
    os << "  n" << e.from << " -> n" << e.to << " [label=\""
       << e.separation.count() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace strt
