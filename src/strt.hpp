// Umbrella header: the whole public API of the strt library.
//
// Fine-grained includes are preferred inside the library itself; this
// header is a convenience for applications and quick experiments.
#pragma once

#include "base/checked.hpp"
#include "base/rational.hpp"
#include "base/rng.hpp"
#include "base/types.hpp"

#include "curves/builders.hpp"
#include "curves/hull.hpp"
#include "curves/minplus.hpp"
#include "curves/staircase.hpp"

#include "graph/cycle_ratio.hpp"
#include "graph/drt.hpp"
#include "graph/explore.hpp"
#include "graph/scc.hpp"
#include "graph/workload.hpp"

#include "model/generator.hpp"
#include "model/gmf.hpp"
#include "model/recurring.hpp"
#include "model/sporadic.hpp"

#include "resource/supply.hpp"

#include "engine/fingerprint.hpp"
#include "engine/workspace.hpp"

#include "core/abstractions.hpp"
#include "core/audsley.hpp"
#include "core/busy_window.hpp"
#include "core/chain.hpp"
#include "core/curve_based.hpp"
#include "core/dimensioning.hpp"
#include "core/edf.hpp"
#include "core/fixed_priority.hpp"
#include "core/joint_fp.hpp"
#include "core/sensitivity.hpp"
#include "core/structural.hpp"

#include "svc/api.hpp"
#include "svc/request_stream.hpp"
#include "svc/service.hpp"

#include "sim/edf_sim.hpp"
#include "sim/fifo.hpp"
#include "sim/oracle.hpp"
#include "sim/pipeline.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

#include "io/csv.hpp"
#include "io/curve_csv.hpp"
#include "io/dot.hpp"
#include "io/parse.hpp"
#include "io/table.hpp"
#include "io/trace_io.hpp"
