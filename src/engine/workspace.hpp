// strt::engine -- a memoizing analysis workspace.
//
// Every core analysis is built from the same few expensive artifacts: the
// exploration-backed request/demand-bound staircases rbf/dbf, materialized
// supply curves, pointwise sums, leftover-service curves, concave hulls,
// min-plus convolutions, and pseudo-inverse lookups on service curves.
// Sweeping callers (sensitivity probing, Audsley priority search, the
// joint-FP candidate loop, bench trial sweeps) recompute those artifacts
// with identical arguments over and over.
//
// A Workspace is the cache that makes curves first-class reusable
// artifacts:
//
//   * Hash-consing: every curve the workspace produces is interned by a
//     64-bit content fingerprint (full equality confirmed on fingerprint
//     match), so identical curves share one allocation and cache keys can
//     be compared cheaply.
//   * Workload curves rbf/dbf are memoized per task fingerprint
//     (graph/drt computes it at build time) with *horizon-extension
//     reuse*: a cached curve materialized to H' >= H answers the H query
//     by truncation.  Both rbf and dbf are exact canonical staircases of
//     a horizon-independent function, so the truncated answer is
//     bit-identical to a fresh computation (enforced by
//     tests/test_engine_equivalence.cpp).
//   * Supply curves, pointwise sums, leftover service, concave hulls, and
//     min-plus convolutions are memoized by operand fingerprints (exact
//     match).
//   * Pseudo-inverse lookups -- the hot loop of the structural analysis
//     -- are memoized per (curve, value) via inverse_of().
//
// Concurrency: a Workspace is safe to share across strt::exec parallel
// regions and across svc::Service shard workers.  Every memo-table
// family is striped: 16 (mutex, table) pairs selected by the key's
// fingerprint hash, so lookups about different systems almost never
// share a lock.  A probe takes only its stripe's mutex; computations run
// outside the locks, so two threads may race to fill the same slot --
// both compute the identical canonical artifact and the intern table
// collapses the results (first insert wins), keeping cache-on results
// bit-identical to cache-off, to STRT_THREADS=1 runs, and to any shard
// count.  Stripe acquisition time is recorded in the cache.lock_wait_ns
// histogram, so residual contention is measurable.
//
// Switching off: Workspace(false) -- or the environment variable
// STRT_CACHE=0 for workspaces built with the default constructor -- turns
// every method into a pass-through that computes fresh (counted as
// misses).  Results are bit-identical either way.
//
// Persistence: save_snapshot() serializes the curve-bearing memo
// families (interned curves, rbf/dbf with full horizon metadata, sbf,
// derived ops, coarse curves) into the versioned on-disk format
// strt.engine.snapshot.v1 (src/snapshot/), written crash-safe via
// tmp+rename; load_snapshot() validates and replays a snapshot into the
// striped tables through the normal first-insert-wins inserts, so a
// restarted server answers a known corpus at warm speed from request
// one.  A malformed or corrupted snapshot is rejected whole (the
// snapshot.rejected counter) and the workspace cold-starts clean --
// loading never throws and never partially applies.  Because every
// entry is revalidated (record-level canonical form plus a recomputed
// content fingerprint per curve), warm-from-disk results stay
// bit-identical to cold computation.
//
// Eviction: set_cache_bytes_budget() bounds the interned-curve bytes.
// When the budget is exceeded (online after an insert, and again at
// save time), whole per-fingerprint entry groups -- a task's rbf/dbf
// horizons, a supply's sbf materializations, one operand's derived
// entries -- are dropped oldest-touch first (LRU).  Groups touched
// since the oldest live pin_batch() started are never evicted, so a
// batch leader's freshly warmed memos survive until its group is done.
//
// Observability: cache.hits / cache.misses / cache.bytes /
// cache.evictions / cache.evicted_bytes (plus cache.inverse_hits /
// cache.inverse_misses) are bumped on the global obs registry, so run
// reports and BENCH_*.json pick them up; stats() returns the same
// numbers per workspace.  Snapshot I/O reports snapshot.load_ns /
// snapshot.save_ns / snapshot.entries / snapshot.rejected.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hpp"
#include "check/diagnostics.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt::engine {

/// Shared immutable curve handle: the unit of hash-consing.
using CurvePtr = std::shared_ptr<const Staircase>;

struct WorkspaceStats {
  /// Curve-level queries answered from the cache (including horizon
  /// truncations of a larger cached curve).
  std::uint64_t hits{0};
  /// Curve-level queries that had to compute (all queries when caching is
  /// off).
  std::uint64_t misses{0};
  /// Approximate bytes of interned curve storage currently held.
  std::uint64_t bytes{0};
  /// Pseudo-inverse point lookups answered from / added to the memo.
  std::uint64_t inverse_hits{0};
  std::uint64_t inverse_misses{0};
  /// Coarse-curve queries answered from the (fingerprint, g, side) memo.
  std::uint64_t coarse_hits{0};
  /// Entry groups dropped by the bytes-budget eviction policy, and the
  /// interned-curve bytes they released.
  std::uint64_t evictions{0};
  std::uint64_t evicted_bytes{0};
};

/// True unless STRT_CACHE resolves to "0" via strt::cfg (resolved once,
/// on first use).
[[nodiscard]] bool cache_enabled_default();

class Workspace {
 public:
  /// Caching per STRT_CACHE (default: on).
  Workspace();
  /// Explicit caching switch (tests, ablations, --no-cache flags).
  explicit Workspace(bool caching);
  /// Caching switch plus a bytes budget for the interned-curve storage
  /// (0 = unlimited); see set_cache_bytes_budget().
  Workspace(bool caching, std::uint64_t cache_bytes_budget);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  [[nodiscard]] bool caching() const { return caching_; }

  /// Bounds the interned-curve bytes (stats().bytes).  0 = unlimited
  /// (the default; touch tracking is off and hit paths keep their
  /// lock-free cost).  When an insert pushes past the budget, the
  /// least-recently-touched per-fingerprint entry groups are evicted
  /// until the storage fits; save_snapshot() applies the same policy
  /// before writing.  Results are never affected -- an evicted entry is
  /// simply recomputed on its next query (bit-identity contract).
  void set_cache_bytes_budget(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t cache_bytes_budget() const;

  /// While alive, entry groups touched since this pin was taken are
  /// exempt from eviction -- the batch leader's freshly warmed memos
  /// cannot be evicted out from under the group's tail.  Movable,
  /// released on destruction.
  class BatchPin {
   public:
    BatchPin(BatchPin&& other) noexcept
        : ws_(other.ws_), start_(other.start_) {
      other.ws_ = nullptr;
    }
    BatchPin(const BatchPin&) = delete;
    BatchPin& operator=(const BatchPin&) = delete;
    BatchPin& operator=(BatchPin&&) = delete;
    ~BatchPin();

   private:
    friend class Workspace;
    BatchPin(Workspace* ws, std::uint64_t start) : ws_(ws), start_(start) {}

    Workspace* ws_;  // null => no-op pin (budget off or caching off)
    std::uint64_t start_;
  };
  [[nodiscard]] BatchPin pin_batch();

  /// Serializes the curve-bearing memo families to `path` in the
  /// versioned strt.engine.snapshot.v1 format, crash-safe (tmp+rename).
  /// Applies the bytes-budget eviction first when a budget is set.
  /// False (reason in *error) on I/O failure; false with no entries
  /// written is still a valid snapshot of an empty workspace.
  bool save_snapshot(const std::string& path, std::string* error = nullptr);

  /// Validates and replays a snapshot into the memo tables (normal
  /// first-insert-wins inserts; safe concurrently with serving).  A
  /// missing file returns false quietly (cold start); a malformed file
  /// is rejected whole -- snapshot.rejected is bumped, *error gets the
  /// reason, no entry is applied, and the workspace stays clean.  Never
  /// throws.
  bool load_snapshot(const std::string& path, std::string* error = nullptr);

  /// Front gate: strt::check::check_task diagnostics for `task`, memoized
  /// by task fingerprint (the lint pass is pure, so one result serves
  /// every later query).  Callers gate on result->ok() before running the
  /// analyses; checking never changes what rbf/dbf return.
  [[nodiscard]] std::shared_ptr<const check::CheckResult> validate(
      const DrtTask& task);

  /// Exact request-bound staircase of `task` on [0, horizon]; memoized by
  /// task fingerprint with horizon-extension reuse.
  [[nodiscard]] CurvePtr rbf(const DrtTask& task, Time horizon);

  /// Exact demand-bound staircase (frame-separated tasks only; throws
  /// like strt::dbf otherwise); memoized like rbf().
  [[nodiscard]] CurvePtr dbf(const DrtTask& task, Time horizon);

  /// supply.sbf(horizon), memoized by (supply description, horizon).
  [[nodiscard]] CurvePtr sbf(const Supply& supply, Time horizon);

  /// Memoized granularity coarsening (curves/coarsen.hpp), keyed by
  /// (curve fingerprint, g, side).  The certified-bound driver re-probes
  /// the same (curve, g) pair on every refinement round and across
  /// request sweeps, so these hits are tracked separately as
  /// cache.coarse_hits / WorkspaceStats::coarse_hits.
  struct CoarseCurvePtr {
    CurvePtr curve;
    Work max_error{0};
  };
  [[nodiscard]] CoarseCurvePtr coarse_upper(const Staircase& f, Time g);
  [[nodiscard]] CoarseCurvePtr coarse_lower(const Staircase& f, Time g);

  /// Memoized curve algebra (operand-fingerprint keyed, exact match).
  [[nodiscard]] CurvePtr pointwise_add(const Staircase& f,
                                       const Staircase& g);
  [[nodiscard]] CurvePtr minplus_conv(const Staircase& f, const Staircase& g);
  [[nodiscard]] CurvePtr leftover_service(const Staircase& b,
                                          const Staircase& a);
  [[nodiscard]] CurvePtr concave_hull_staircase(const Staircase& f);

  /// Memoized pseudo-inverse view of one curve: obtain once per curve
  /// (pays one content hash), then call per value.  `curve` must outlive
  /// the returned object.  Thread-safe; lookups on the same curve share
  /// one memo across the workspace.
  class PseudoInverse {
   public:
    [[nodiscard]] Time operator()(Work w) const;

   private:
    friend class Workspace;
    struct Entry;
    PseudoInverse(const Staircase* curve, std::shared_ptr<Entry> entry,
                  Workspace* owner)
        : curve_(curve), entry_(std::move(entry)), owner_(owner) {}

    const Staircase* curve_;
    std::shared_ptr<Entry> entry_;  // null => pass-through (caching off)
    Workspace* owner_;
  };
  [[nodiscard]] PseudoInverse inverse_of(const Staircase& curve);

  /// Hash-conses `c`: returns the workspace's canonical shared instance
  /// (full equality checked on fingerprint collision).
  [[nodiscard]] CurvePtr intern(Staircase c);

  [[nodiscard]] WorkspaceStats stats() const;

 private:
  enum class DerivedOp : std::uint8_t;
  [[nodiscard]] CurvePtr derived(DerivedOp op, const Staircase& f,
                                 const Staircase* g);
  [[nodiscard]] CoarseCurvePtr coarse(const Staircase& f, Time g, bool upper);
  [[nodiscard]] CurvePtr workload_curve(const DrtTask& task, Time horizon,
                                        bool demand);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool caching_;
};

}  // namespace strt::engine
