#include "engine/workspace.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#if STRT_LOCKDEP
#include <source_location>
#endif

#include "base/assert.hpp"
#include "base/mutex.hpp"
#include "check/check.hpp"
#include "curves/coarsen.hpp"
#include "curves/hull.hpp"
#include "curves/minplus.hpp"
#include "engine/fingerprint.hpp"
#include "graph/workload.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace strt::engine {

namespace {

/// Times one memo-table probe into the cache.lookup_ns histogram.  When
/// observability is disabled the constructor skips the clock read, so the
/// lookup paths keep their one-relaxed-load cost.
class LookupTimer {
 public:
  LookupTimer() : armed_(obs::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~LookupTimer() {
    if (!armed_) return;
    static obs::Histogram& h = obs::histogram("cache.lookup_ns");
    h.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  LookupTimer(const LookupTimer&) = delete;
  LookupTimer& operator=(const LookupTimer&) = delete;

 private:
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Stripes per memo-table family (power of two; fp & (kStripes - 1)
/// selects).  16 stripes keep the tables effectively contention-free for
/// any plausible shard count while costing ~16 mutexes per family.
inline constexpr std::size_t kStripes = 16;

/// Scoped stripe lock: MutexLock plus acquisition timing into the
/// cache.lock_wait_ns histogram, so striping's effect on contention is
/// measurable (a contended stripe shows up as a fat tail).  When
/// observability is disabled the clock reads are skipped.
class STRT_SCOPED_CAPABILITY StripeLock {
 public:
#if STRT_LOCKDEP
  // Lockdep labels lock-order edges by acquisition site: forward the
  // StripeLock *construction* site, so a witness chain names the
  // memo-family call site instead of this ctor's line -- and the
  // same-site nesting check sees each family as its own site.
  explicit StripeLock(Mutex& mu, const std::source_location& loc =
                                     std::source_location::current())
      STRT_ACQUIRE(mu) : mu_(mu) {
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock(loc);
      static obs::Histogram& h = obs::histogram("cache.lock_wait_ns");
      h.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      mu_.lock(loc);
    }
  }
#else
  explicit StripeLock(Mutex& mu) STRT_ACQUIRE(mu) : mu_(mu) {
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      static obs::Histogram& h = obs::histogram("cache.lock_wait_ns");
      h.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      mu_.lock();
    }
  }
#endif
  ~StripeLock() STRT_RELEASE() { mu_.unlock(); }

  StripeLock(const StripeLock&) = delete;
  StripeLock& operator=(const StripeLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace

bool cache_enabled_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("STRT_CACHE");
    return v == nullptr || std::string_view(v) != "0";
  }();
  return enabled;
}

enum class Workspace::DerivedOp : std::uint8_t {
  kAdd,
  kConv,
  kLeftover,
  kHull,
};

struct Workspace::PseudoInverse::Entry {
  Mutex m;
  std::unordered_map<std::int64_t, Time> memo STRT_GUARDED_BY(m);
};

struct Workspace::Impl {
  struct TaskEntry {
    /// The largest-horizon materialization so far (source of truncations).
    CurvePtr max_curve;
    /// Every horizon already answered, for exact re-hits.
    std::map<std::int64_t, CurvePtr> by_horizon;
  };

  struct DerivedKey {
    std::uint8_t op;
    std::uint64_t a;
    std::uint64_t b;
    friend bool operator==(const DerivedKey&, const DerivedKey&) = default;
  };
  struct DerivedKeyHash {
    std::size_t operator()(const DerivedKey& k) const {
      return static_cast<std::size_t>(
          hash_combine(hash_combine(k.a, k.b), k.op));
    }
  };

  /// One stripe family: kStripes (mutex, table) pairs selected by a
  /// 64-bit key hash, so lookups about different keys almost never share
  /// a lock.  Every path keeps compute-outside-lock and first-insert-wins
  /// semantics, so striping is invisible to results -- two keys landing
  /// on the same stripe only cost contention, never correctness.
  template <class Table>
  struct Striped {
    struct Stripe {
      Mutex m;
      Table table STRT_GUARDED_BY(m);
    };
    std::array<Stripe, kStripes> stripes;
    [[nodiscard]] Stripe& of(std::uint64_t key_hash) {
      return stripes[key_hash & (kStripes - 1)];
    }
  };

  Striped<std::unordered_map<std::uint64_t, std::vector<CurvePtr>>> interned;

  Striped<std::unordered_map<std::uint64_t, TaskEntry>> rbfs;
  Striped<std::unordered_map<std::uint64_t, TaskEntry>> dbfs;

  Striped<std::map<std::pair<std::string, std::int64_t>, CurvePtr>> sbfs;

  Striped<std::unordered_map<DerivedKey, CurvePtr, DerivedKeyHash>> derived;

  struct CoarseKey {
    std::uint64_t fp;
    std::int64_t g;
    std::uint8_t side;  // 0 = lower, 1 = upper
    friend bool operator==(const CoarseKey&, const CoarseKey&) = default;
  };
  struct CoarseKeyHash {
    std::size_t operator()(const CoarseKey& k) const {
      return static_cast<std::size_t>(hash_combine(
          hash_combine(k.fp, static_cast<std::uint64_t>(k.g)), k.side));
    }
  };
  struct CoarseEntry {
    CurvePtr curve;
    Work max_error{0};
  };
  Striped<std::unordered_map<CoarseKey, CoarseEntry, CoarseKeyHash>> coarse;

  Striped<std::unordered_map<std::uint64_t,
                             std::shared_ptr<PseudoInverse::Entry>>>
      inverses;

  Striped<std::unordered_map<std::uint64_t,
                             std::shared_ptr<const check::CheckResult>>>
      validations;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> inverse_hits{0};
  std::atomic<std::uint64_t> inverse_misses{0};
  std::atomic<std::uint64_t> coarse_hits{0};

  void note_hit() {
    hits.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.hits");
    c.add(1);
  }
  void note_miss() {
    misses.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.misses");
    c.add(1);
  }
  void note_bytes(std::uint64_t n) {
    bytes.fetch_add(n, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.bytes");
    c.add(n);
  }
  void note_coarse_hit() {
    coarse_hits.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.coarse_hits");
    c.add(1);
  }
  void note_inverse(bool hit) {
    (hit ? inverse_hits : inverse_misses)
        .fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& ch = obs::counter("cache.inverse_hits");
    static obs::Counter& cm = obs::counter("cache.inverse_misses");
    (hit ? ch : cm).add(1);
  }
};

Workspace::Workspace() : Workspace(cache_enabled_default()) {}

Workspace::Workspace(bool caching)
    : impl_(std::make_unique<Impl>()), caching_(caching) {}

Workspace::~Workspace() = default;

CurvePtr Workspace::intern(Staircase c) {
  if (!caching_) return std::make_shared<const Staircase>(std::move(c));
  const std::uint64_t fp = fingerprint(c);
  auto& stripe = impl_->interned.of(fp);
  const StripeLock lock(stripe.m);
  std::vector<CurvePtr>& bucket = stripe.table[fp];
  for (const CurvePtr& p : bucket) {
    if (*p == c) return p;
  }
  // A non-empty bucket here means two unequal curves share a 64-bit
  // content fingerprint.  Hash-consing stays correct (full equality above
  // decides), but every fingerprint-keyed memo table would then conflate
  // them -- flag it under STRT_VALIDATE.
  STRT_DCHECK(bucket.empty(),
              "curve fingerprint collision: unequal curves share a hash");
  auto p = std::make_shared<const Staircase>(std::move(c));
  impl_->note_bytes(sizeof(Staircase) + p->store_bytes());
  bucket.push_back(p);
  return p;
}

std::shared_ptr<const check::CheckResult> Workspace::validate(
    const DrtTask& task) {
  if (!caching_) {
    return std::make_shared<const check::CheckResult>(check::check_task(task));
  }
  const std::uint64_t fp = task.fingerprint();
  auto& stripe = impl_->validations.of(fp);
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(fp); it != stripe.table.end()) {
      impl_->note_hit();
      return it->second;
    }
  }
  // Lint outside the lock; racers produce identical results (the pass is
  // pure) and the emplace below keeps the first one.
  auto result =
      std::make_shared<const check::CheckResult>(check::check_task(task));
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(fp, result);
    if (!inserted) result = it->second;
  }
  return result;
}

CurvePtr Workspace::workload_curve(const DrtTask& task, Time horizon,
                                   bool demand) {
  const auto compute = [&] {
    return demand ? strt::dbf(task, horizon) : strt::rbf(task, horizon);
  };
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(compute());
  }
  auto& family = demand ? impl_->dbfs : impl_->rbfs;
  const std::uint64_t fp = task.fingerprint();
  auto& stripe = family.of(fp);

  CurvePtr base;  // cached curve on a larger horizon, if any
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    Impl::TaskEntry& e = stripe.table[fp];
    if (const auto hit = e.by_horizon.find(horizon.count());
        hit != e.by_horizon.end()) {
      impl_->note_hit();
      return hit->second;
    }
    if (e.max_curve && e.max_curve->horizon() > horizon) base = e.max_curve;
  }

  // Compute outside the lock: either truncate the wider materialization
  // (bit-identical to a fresh computation -- both are the canonical
  // staircase of the same horizon-independent function) or explore fresh.
  CurvePtr result;
  if (base) {
    result = intern(base->truncated(horizon));
    impl_->note_hit();
  } else {
    result = intern(compute());
    impl_->note_miss();
  }
  {
    const StripeLock lock(stripe.m);
    Impl::TaskEntry& e = stripe.table[fp];
    const auto [it, inserted] =
        e.by_horizon.emplace(horizon.count(), result);
    if (!inserted) result = it->second;  // a racer filled it; same bits
    if (!e.max_curve || e.max_curve->horizon() < horizon) {
      e.max_curve = result;
    }
  }
  return result;
}

CurvePtr Workspace::rbf(const DrtTask& task, Time horizon) {
  return workload_curve(task, horizon, /*demand=*/false);
}

CurvePtr Workspace::dbf(const DrtTask& task, Time horizon) {
  return workload_curve(task, horizon, /*demand=*/true);
}

CurvePtr Workspace::sbf(const Supply& supply, Time horizon) {
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(supply.sbf(horizon));
  }
  // Exact-match keying only: sbf curves carry a periodic tail, which
  // truncation would drop, so horizon-extension reuse does not apply.
  auto key = std::make_pair(supply.describe(), horizon.count());
  auto& stripe = impl_->sbfs.of(hash_combine(
      std::hash<std::string>{}(key.first),
      static_cast<std::uint64_t>(key.second)));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      return it->second;
    }
  }
  CurvePtr result = intern(supply.sbf(horizon));
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(std::move(key), result);
    if (!inserted) result = it->second;
  }
  return result;
}

CurvePtr Workspace::derived(DerivedOp op, const Staircase& f,
                            const Staircase* g) {
  const auto compute = [&]() -> Staircase {
    switch (op) {
      case DerivedOp::kAdd:
        return strt::pointwise_add(f, *g);
      case DerivedOp::kConv:
        return strt::minplus_conv(f, *g);
      case DerivedOp::kLeftover:
        return strt::leftover_service(f, *g);
      case DerivedOp::kHull:
        return strt::concave_hull_staircase(f);
    }
    throw std::logic_error("unreachable");
  };
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(compute());
  }
  const Impl::DerivedKey key{static_cast<std::uint8_t>(op), fingerprint(f),
                             g != nullptr ? fingerprint(*g) : 0};
  auto& stripe = impl_->derived.of(Impl::DerivedKeyHash{}(key));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      return it->second;
    }
  }
  CurvePtr result = intern(compute());
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(key, result);
    if (!inserted) result = it->second;
  }
  return result;
}

CurvePtr Workspace::pointwise_add(const Staircase& f, const Staircase& g) {
  return derived(DerivedOp::kAdd, f, &g);
}

CurvePtr Workspace::minplus_conv(const Staircase& f, const Staircase& g) {
  return derived(DerivedOp::kConv, f, &g);
}

CurvePtr Workspace::leftover_service(const Staircase& b,
                                     const Staircase& a) {
  return derived(DerivedOp::kLeftover, b, &a);
}

CurvePtr Workspace::concave_hull_staircase(const Staircase& f) {
  return derived(DerivedOp::kHull, f, nullptr);
}

Workspace::CoarseCurvePtr Workspace::coarse(const Staircase& f, Time g,
                                            bool upper) {
  const auto compute = [&] {
    return upper ? strt::coarsen_upper(f, g) : strt::coarsen_lower(f, g);
  };
  if (!caching_) {
    impl_->note_miss();
    CoarseCurve c = compute();
    return CoarseCurvePtr{
        std::make_shared<const Staircase>(std::move(c.curve)), c.max_error};
  }
  const Impl::CoarseKey key{fingerprint(f), g.count(),
                            static_cast<std::uint8_t>(upper ? 1 : 0)};
  auto& stripe = impl_->coarse.of(Impl::CoarseKeyHash{}(key));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      impl_->note_coarse_hit();
      return CoarseCurvePtr{it->second.curve, it->second.max_error};
    }
  }
  // Coarsen outside the lock; racers produce the identical canonical
  // curve and the emplace keeps the first entry.
  CoarseCurve c = compute();
  impl_->note_miss();
  CoarseCurvePtr result{intern(std::move(c.curve)), c.max_error};
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(
        key, Impl::CoarseEntry{result.curve, result.max_error});
    if (!inserted) {
      result = CoarseCurvePtr{it->second.curve, it->second.max_error};
    }
  }
  return result;
}

Workspace::CoarseCurvePtr Workspace::coarse_upper(const Staircase& f,
                                                  Time g) {
  return coarse(f, g, /*upper=*/true);
}

Workspace::CoarseCurvePtr Workspace::coarse_lower(const Staircase& f,
                                                  Time g) {
  return coarse(f, g, /*upper=*/false);
}

Workspace::PseudoInverse Workspace::inverse_of(const Staircase& curve) {
  if (!caching_) return PseudoInverse(&curve, nullptr, this);
  const std::uint64_t fp = fingerprint(curve);
  std::shared_ptr<PseudoInverse::Entry> entry;
  {
    auto& stripe = impl_->inverses.of(fp);
    const StripeLock lock(stripe.m);
    auto& slot = stripe.table[fp];
    if (!slot) slot = std::make_shared<PseudoInverse::Entry>();
    entry = slot;
  }
  return PseudoInverse(&curve, std::move(entry), this);
}

Time Workspace::PseudoInverse::operator()(Work w) const {
  if (!entry_) return curve_->inverse(w);
  {
    const MutexLock lock(entry_->m);
    if (const auto it = entry_->memo.find(w.count());
        it != entry_->memo.end()) {
      owner_->impl_->note_inverse(true);
      return it->second;
    }
  }
  const Time t = curve_->inverse(w);
  owner_->impl_->note_inverse(false);
  const MutexLock lock(entry_->m);
  entry_->memo.emplace(w.count(), t);
  return t;
}

WorkspaceStats Workspace::stats() const {
  WorkspaceStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.bytes = impl_->bytes.load(std::memory_order_relaxed);
  s.inverse_hits = impl_->inverse_hits.load(std::memory_order_relaxed);
  s.inverse_misses = impl_->inverse_misses.load(std::memory_order_relaxed);
  s.coarse_hits = impl_->coarse_hits.load(std::memory_order_relaxed);
  return s;
}

}  // namespace strt::engine
