#include "engine/workspace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#if STRT_LOCKDEP
#include <source_location>
#endif

#include "base/assert.hpp"
#include "base/config.hpp"
#include "base/mutex.hpp"
#include "check/check.hpp"
#include "curves/coarsen.hpp"
#include "curves/hull.hpp"
#include "curves/minplus.hpp"
#include "engine/fingerprint.hpp"
#include "graph/workload.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "snapshot/snapshot.hpp"

namespace strt::engine {

namespace {

/// Times one memo-table probe into the cache.lookup_ns histogram.  When
/// observability is disabled the constructor skips the clock read, so the
/// lookup paths keep their one-relaxed-load cost.
class LookupTimer {
 public:
  LookupTimer() : armed_(obs::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~LookupTimer() {
    if (!armed_) return;
    static obs::Histogram& h = obs::histogram("cache.lookup_ns");
    h.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  LookupTimer(const LookupTimer&) = delete;
  LookupTimer& operator=(const LookupTimer&) = delete;

 private:
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Stripes per memo-table family (power of two; fp & (kStripes - 1)
/// selects).  16 stripes keep the tables effectively contention-free for
/// any plausible shard count while costing ~16 mutexes per family.
inline constexpr std::size_t kStripes = 16;

/// Scoped stripe lock: MutexLock plus acquisition timing into the
/// cache.lock_wait_ns histogram, so striping's effect on contention is
/// measurable (a contended stripe shows up as a fat tail).  When
/// observability is disabled the clock reads are skipped.
class STRT_SCOPED_CAPABILITY StripeLock {
 public:
#if STRT_LOCKDEP
  // Lockdep labels lock-order edges by acquisition site: forward the
  // StripeLock *construction* site, so a witness chain names the
  // memo-family call site instead of this ctor's line -- and the
  // same-site nesting check sees each family as its own site.
  explicit StripeLock(Mutex& mu, const std::source_location& loc =
                                     std::source_location::current())
      STRT_ACQUIRE(mu) : mu_(mu) {
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock(loc);
      static obs::Histogram& h = obs::histogram("cache.lock_wait_ns");
      h.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      mu_.lock(loc);
    }
  }
#else
  explicit StripeLock(Mutex& mu) STRT_ACQUIRE(mu) : mu_(mu) {
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      static obs::Histogram& h = obs::histogram("cache.lock_wait_ns");
      h.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      mu_.lock();
    }
  }
#endif
  ~StripeLock() STRT_RELEASE() { mu_.unlock(); }

  StripeLock(const StripeLock&) = delete;
  StripeLock& operator=(const StripeLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace

bool cache_enabled_default() {
  static const bool enabled = cfg::get_bool("STRT_CACHE", true);
  return enabled;
}

enum class Workspace::DerivedOp : std::uint8_t {
  kAdd,
  kConv,
  kLeftover,
  kHull,
};

struct Workspace::PseudoInverse::Entry {
  Mutex m;
  std::unordered_map<std::int64_t, Time> memo STRT_GUARDED_BY(m);
};

struct Workspace::Impl {
  struct TaskEntry {
    /// The largest-horizon materialization so far (source of truncations).
    CurvePtr max_curve;
    /// Every horizon already answered, for exact re-hits.
    std::map<std::int64_t, CurvePtr> by_horizon;
  };

  struct DerivedKey {
    std::uint8_t op;
    std::uint64_t a;
    std::uint64_t b;
    friend bool operator==(const DerivedKey&, const DerivedKey&) = default;
  };
  struct DerivedKeyHash {
    std::size_t operator()(const DerivedKey& k) const {
      return static_cast<std::size_t>(
          hash_combine(hash_combine(k.a, k.b), k.op));
    }
  };

  /// One stripe family: kStripes (mutex, table) pairs selected by a
  /// 64-bit key hash, so lookups about different keys almost never share
  /// a lock.  Every path keeps compute-outside-lock and first-insert-wins
  /// semantics, so striping is invisible to results -- two keys landing
  /// on the same stripe only cost contention, never correctness.
  template <class Table>
  struct Striped {
    struct Stripe {
      Mutex m;
      Table table STRT_GUARDED_BY(m);
    };
    std::array<Stripe, kStripes> stripes;
    [[nodiscard]] Stripe& of(std::uint64_t key_hash) {
      return stripes[key_hash & (kStripes - 1)];
    }
  };

  Striped<std::unordered_map<std::uint64_t, std::vector<CurvePtr>>> interned;

  Striped<std::unordered_map<std::uint64_t, TaskEntry>> rbfs;
  Striped<std::unordered_map<std::uint64_t, TaskEntry>> dbfs;

  Striped<std::map<std::pair<std::string, std::int64_t>, CurvePtr>> sbfs;

  Striped<std::unordered_map<DerivedKey, CurvePtr, DerivedKeyHash>> derived;

  struct CoarseKey {
    std::uint64_t fp;
    std::int64_t g;
    std::uint8_t side;  // 0 = lower, 1 = upper
    friend bool operator==(const CoarseKey&, const CoarseKey&) = default;
  };
  struct CoarseKeyHash {
    std::size_t operator()(const CoarseKey& k) const {
      return static_cast<std::size_t>(hash_combine(
          hash_combine(k.fp, static_cast<std::uint64_t>(k.g)), k.side));
    }
  };
  struct CoarseEntry {
    CurvePtr curve;
    Work max_error{0};
  };
  Striped<std::unordered_map<CoarseKey, CoarseEntry, CoarseKeyHash>> coarse;

  Striped<std::unordered_map<std::uint64_t,
                             std::shared_ptr<PseudoInverse::Entry>>>
      inverses;

  Striped<std::unordered_map<std::uint64_t,
                             std::shared_ptr<const check::CheckResult>>>
      validations;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> inverse_hits{0};
  std::atomic<std::uint64_t> inverse_misses{0};
  std::atomic<std::uint64_t> coarse_hits{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> evicted_bytes{0};

  /// Bytes-budget eviction state.  A "group" is a top-level memo key --
  /// a task fingerprint (all its rbf/dbf horizons), a curve fingerprint
  /// (its interned storage, derived ops, coarse curves, inverses), or a
  /// supply-description hash (its sbf materializations) -- so one LRU
  /// decision drops a coherent unit of warmth.  Touch order is a relaxed
  /// atomic clock; the registry itself is a plain std::mutex (never
  /// strt::Mutex: it is a leaf lock consulted from inside the memo hot
  /// paths only while a budget is armed, and it must not feed lockdep
  /// edges).  Lock discipline: the registry lock is never held while a
  /// stripe lock is acquired, so it cannot participate in a cycle with
  /// the memo stripes.
  struct Group {
    std::uint64_t bytes = 0;       // interned-curve bytes attributed here
    std::uint64_t last_touch = 0;  // clock value of the latest hit/insert
  };
  struct EvictState {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Group> groups;
    /// Clock values at which currently-live BatchPins started: groups
    /// touched at or after the oldest pin are exempt from eviction.
    std::multiset<std::uint64_t> pins;
  };
  EvictState evict;
  std::atomic<std::uint64_t> touch_clock{0};
  std::atomic<std::uint64_t> budget{0};  // 0 = unlimited

  [[nodiscard]] bool budget_on() const {
    return budget.load(std::memory_order_relaxed) != 0;
  }

  /// Records activity on a group (and optionally attributes interned
  /// bytes to it).  No-op while no budget is armed, so the hit paths
  /// keep their lock-free cost in the default configuration.
  void touch_group(std::uint64_t group, std::uint64_t add_bytes = 0) {
    if (!budget_on()) return;
    const std::uint64_t now =
        touch_clock.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::lock_guard<std::mutex> lock(evict.mu);
    Group& g = evict.groups[group];
    g.last_touch = now;
    g.bytes += add_bytes;
  }

  void evict_to_budget(std::uint64_t target);
  void backfill_groups();
  void maybe_evict() {
    const std::uint64_t b = budget.load(std::memory_order_relaxed);
    if (b != 0 && bytes.load(std::memory_order_relaxed) > b) {
      evict_to_budget(b);
    }
  }

  void note_hit() {
    hits.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.hits");
    c.add(1);
  }
  void note_miss() {
    misses.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.misses");
    c.add(1);
  }
  void note_bytes(std::uint64_t n) {
    bytes.fetch_add(n, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.bytes");
    c.add(n);
  }
  void note_coarse_hit() {
    coarse_hits.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& c = obs::counter("cache.coarse_hits");
    c.add(1);
  }
  void note_inverse(bool hit) {
    (hit ? inverse_hits : inverse_misses)
        .fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& ch = obs::counter("cache.inverse_hits");
    static obs::Counter& cm = obs::counter("cache.inverse_misses");
    (hit ? ch : cm).add(1);
  }
};

/// Drops least-recently-touched groups until the interned storage fits
/// `target` bytes (or every unpinned group is gone).  Victim selection
/// runs under the registry lock; the erase sweep then walks every
/// family stripe by stripe, so no two locks are ever held together.
/// Races with concurrent touches are benign: an entry inserted into a
/// victim group after selection survives the sweep of earlier stripes
/// or is recomputed on its next query -- results are unaffected either
/// way (bit-identity contract).
void Workspace::Impl::evict_to_budget(std::uint64_t target) {
  for (;;) {
    std::vector<std::uint64_t> victims;
    {
      const std::lock_guard<std::mutex> lock(evict.mu);
      const std::uint64_t held = bytes.load(std::memory_order_relaxed);
      if (held <= target || evict.groups.empty()) return;
      const std::uint64_t min_pin =
          evict.pins.empty() ? std::numeric_limits<std::uint64_t>::max()
                             : *evict.pins.begin();
      std::vector<std::pair<std::uint64_t, std::uint64_t>> order;
      order.reserve(evict.groups.size());
      for (const auto& [group, info] : evict.groups) {
        // A group touched at or after the oldest live pin may be a batch
        // leader's in-flight warmth: never evict it.
        if (info.last_touch < min_pin) order.emplace_back(info.last_touch, group);
      }
      if (order.empty()) return;  // everything live is pinned
      std::sort(order.begin(), order.end());
      const std::uint64_t need = held - target;
      std::uint64_t covered = 0;
      for (const auto& [touch, group] : order) {
        victims.push_back(group);
        covered += evict.groups[group].bytes;
        if (covered >= need) break;
      }
      for (const std::uint64_t group : victims) evict.groups.erase(group);
    }

    const std::unordered_set<std::uint64_t> vset(victims.begin(),
                                                 victims.end());
    const auto hit = [&vset](std::uint64_t group) {
      return vset.find(group) != vset.end();
    };
    std::uint64_t freed = 0;
    for (auto& stripe : interned.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        if (hit(it->first)) {
          for (const CurvePtr& p : it->second) {
            freed += sizeof(Staircase) + p->store_bytes();
          }
          it = stripe.table.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto* family : {&rbfs, &dbfs}) {
      for (auto& stripe : family->stripes) {
        const StripeLock lock(stripe.m);
        for (auto it = stripe.table.begin(); it != stripe.table.end();) {
          it = hit(it->first) ? stripe.table.erase(it) : std::next(it);
        }
      }
    }
    for (auto& stripe : sbfs.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        const std::uint64_t group = std::hash<std::string>{}(it->first.first);
        it = hit(group) ? stripe.table.erase(it) : std::next(it);
      }
    }
    for (auto& stripe : derived.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        it = hit(it->first.a) ? stripe.table.erase(it) : std::next(it);
      }
    }
    for (auto& stripe : coarse.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        it = hit(it->first.fp) ? stripe.table.erase(it) : std::next(it);
      }
    }
    for (auto& stripe : inverses.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        it = hit(it->first) ? stripe.table.erase(it) : std::next(it);
      }
    }
    for (auto& stripe : validations.stripes) {
      const StripeLock lock(stripe.m);
      for (auto it = stripe.table.begin(); it != stripe.table.end();) {
        it = hit(it->first) ? stripe.table.erase(it) : std::next(it);
      }
    }

    bytes.fetch_sub(freed, std::memory_order_relaxed);
    evictions.fetch_add(victims.size(), std::memory_order_relaxed);
    evicted_bytes.fetch_add(freed, std::memory_order_relaxed);
    static obs::Counter& c_evictions = obs::counter("cache.evictions");
    static obs::Counter& c_evicted = obs::counter("cache.evicted_bytes");
    c_evictions.add(victims.size());
    c_evicted.add(freed);
  }
}

/// Rebuilds the eviction registry from the live memo tables.  While no
/// budget is armed, touch_group() is a no-op (the memo hot paths stay
/// lock-free in the default configuration), so warmth accumulated in
/// that state has no group attribution.  On the unlimited -> budgeted
/// transition this walks every family and registers each top-level key
/// with last_touch = 0: older than any subsequent touch, so pre-budget
/// warmth is the first LRU victim.  Same lock discipline as the evict
/// sweep -- stripes are scanned one at a time, and the registry lock is
/// only taken afterwards with no stripe lock held.
void Workspace::Impl::backfill_groups() {
  std::unordered_map<std::uint64_t, std::uint64_t> found;  // group -> bytes
  for (auto& stripe : interned.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [fp, bucket] : stripe.table) {
      std::uint64_t sz = 0;
      for (const CurvePtr& p : bucket) sz += sizeof(Staircase) + p->store_bytes();
      found[fp] += sz;
    }
  }
  for (auto* family : {&rbfs, &dbfs}) {
    for (auto& stripe : family->stripes) {
      const StripeLock lock(stripe.m);
      for (const auto& [fp, entry] : stripe.table) found.emplace(fp, 0);
    }
  }
  for (auto& stripe : sbfs.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, curve] : stripe.table) {
      found.emplace(std::hash<std::string>{}(key.first), 0);
    }
  }
  for (auto& stripe : derived.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, curve] : stripe.table) found.emplace(key.a, 0);
  }
  for (auto& stripe : coarse.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, entry] : stripe.table) found.emplace(key.fp, 0);
  }
  for (auto& stripe : inverses.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [fp, entry] : stripe.table) found.emplace(fp, 0);
  }
  for (auto& stripe : validations.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [fp, entry] : stripe.table) found.emplace(fp, 0);
  }
  const std::lock_guard<std::mutex> lock(evict.mu);
  evict.groups.clear();
  for (const auto& [group, sz] : found) {
    evict.groups.emplace(group, Group{sz, 0});
  }
}

Workspace::Workspace() : Workspace(cache_enabled_default()) {}

Workspace::Workspace(bool caching)
    : impl_(std::make_unique<Impl>()), caching_(caching) {}

Workspace::Workspace(bool caching, std::uint64_t cache_bytes_budget)
    : Workspace(caching) {
  set_cache_bytes_budget(cache_bytes_budget);
}

Workspace::~Workspace() = default;

void Workspace::set_cache_bytes_budget(std::uint64_t bytes) {
  const std::uint64_t prev =
      impl_->budget.exchange(bytes, std::memory_order_relaxed);
  // Arming a budget over warmth accumulated while unlimited: that
  // warmth carries no group attribution yet, so rebuild the registry
  // before the first eviction decision.
  if (prev == 0 && bytes != 0) impl_->backfill_groups();
  impl_->maybe_evict();
}

std::uint64_t Workspace::cache_bytes_budget() const {
  return impl_->budget.load(std::memory_order_relaxed);
}

Workspace::BatchPin::~BatchPin() {
  if (ws_ == nullptr) return;
  Impl& impl = *ws_->impl_;
  const std::lock_guard<std::mutex> lock(impl.evict.mu);
  if (const auto it = impl.evict.pins.find(start_);
      it != impl.evict.pins.end()) {
    impl.evict.pins.erase(it);
  }
}

Workspace::BatchPin Workspace::pin_batch() {
  if (!caching_ || !impl_->budget_on()) return BatchPin(nullptr, 0);
  const std::uint64_t start =
      impl_->touch_clock.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    const std::lock_guard<std::mutex> lock(impl_->evict.mu);
    impl_->evict.pins.insert(start);
  }
  return BatchPin(this, start);
}

CurvePtr Workspace::intern(Staircase c) {
  if (!caching_) return std::make_shared<const Staircase>(std::move(c));
  const std::uint64_t fp = fingerprint(c);
  auto& stripe = impl_->interned.of(fp);
  CurvePtr result;
  bool inserted = false;
  {
    const StripeLock lock(stripe.m);
    std::vector<CurvePtr>& bucket = stripe.table[fp];
    for (const CurvePtr& p : bucket) {
      if (*p == c) {
        result = p;
        break;
      }
    }
    if (!result) {
      // A non-empty bucket here means two unequal curves share a 64-bit
      // content fingerprint.  Hash-consing stays correct (full equality
      // above decides), but every fingerprint-keyed memo table would then
      // conflate them -- flag it under STRT_VALIDATE.
      STRT_DCHECK(bucket.empty(),
                  "curve fingerprint collision: unequal curves share a hash");
      result = std::make_shared<const Staircase>(std::move(c));
      bucket.push_back(result);
      inserted = true;
    }
  }
  if (inserted) {
    const std::uint64_t sz = sizeof(Staircase) + result->store_bytes();
    impl_->note_bytes(sz);
    impl_->touch_group(fp, sz);
    // Online eviction: triggered outside the stripe lock, so the sweep
    // can take each stripe in turn without nesting.
    impl_->maybe_evict();
  } else {
    impl_->touch_group(fp);
  }
  return result;
}

std::shared_ptr<const check::CheckResult> Workspace::validate(
    const DrtTask& task) {
  if (!caching_) {
    return std::make_shared<const check::CheckResult>(check::check_task(task));
  }
  const std::uint64_t fp = task.fingerprint();
  auto& stripe = impl_->validations.of(fp);
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(fp); it != stripe.table.end()) {
      impl_->note_hit();
      impl_->touch_group(fp);
      return it->second;
    }
  }
  // Lint outside the lock; racers produce identical results (the pass is
  // pure) and the emplace below keeps the first one.
  auto result =
      std::make_shared<const check::CheckResult>(check::check_task(task));
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(fp, result);
    if (!inserted) result = it->second;
  }
  impl_->touch_group(fp);
  return result;
}

CurvePtr Workspace::workload_curve(const DrtTask& task, Time horizon,
                                   bool demand) {
  const auto compute = [&] {
    return demand ? strt::dbf(task, horizon) : strt::rbf(task, horizon);
  };
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(compute());
  }
  auto& family = demand ? impl_->dbfs : impl_->rbfs;
  const std::uint64_t fp = task.fingerprint();
  auto& stripe = family.of(fp);

  CurvePtr base;  // cached curve on a larger horizon, if any
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    Impl::TaskEntry& e = stripe.table[fp];
    if (const auto hit = e.by_horizon.find(horizon.count());
        hit != e.by_horizon.end()) {
      impl_->note_hit();
      impl_->touch_group(fp);
      return hit->second;
    }
    if (e.max_curve && e.max_curve->horizon() > horizon) base = e.max_curve;
  }

  // Compute outside the lock: either truncate the wider materialization
  // (bit-identical to a fresh computation -- both are the canonical
  // staircase of the same horizon-independent function) or explore fresh.
  CurvePtr result;
  if (base) {
    result = intern(base->truncated(horizon));
    impl_->note_hit();
  } else {
    result = intern(compute());
    impl_->note_miss();
  }
  {
    const StripeLock lock(stripe.m);
    Impl::TaskEntry& e = stripe.table[fp];
    const auto [it, inserted] =
        e.by_horizon.emplace(horizon.count(), result);
    if (!inserted) result = it->second;  // a racer filled it; same bits
    if (!e.max_curve || e.max_curve->horizon() < horizon) {
      e.max_curve = result;
    }
  }
  impl_->touch_group(fp);
  return result;
}

CurvePtr Workspace::rbf(const DrtTask& task, Time horizon) {
  return workload_curve(task, horizon, /*demand=*/false);
}

CurvePtr Workspace::dbf(const DrtTask& task, Time horizon) {
  return workload_curve(task, horizon, /*demand=*/true);
}

CurvePtr Workspace::sbf(const Supply& supply, Time horizon) {
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(supply.sbf(horizon));
  }
  // Exact-match keying only: sbf curves carry a periodic tail, which
  // truncation would drop, so horizon-extension reuse does not apply.
  auto key = std::make_pair(supply.describe(), horizon.count());
  // Eviction group: the supply description alone, so every horizon of
  // one supply ages (and is dropped) as a unit.
  const std::uint64_t group = std::hash<std::string>{}(key.first);
  auto& stripe = impl_->sbfs.of(hash_combine(
      group, static_cast<std::uint64_t>(key.second)));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      impl_->touch_group(group);
      return it->second;
    }
  }
  CurvePtr result = intern(supply.sbf(horizon));
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(std::move(key), result);
    if (!inserted) result = it->second;
  }
  impl_->touch_group(group);
  return result;
}

CurvePtr Workspace::derived(DerivedOp op, const Staircase& f,
                            const Staircase* g) {
  const auto compute = [&]() -> Staircase {
    switch (op) {
      case DerivedOp::kAdd:
        return strt::pointwise_add(f, *g);
      case DerivedOp::kConv:
        return strt::minplus_conv(f, *g);
      case DerivedOp::kLeftover:
        return strt::leftover_service(f, *g);
      case DerivedOp::kHull:
        return strt::concave_hull_staircase(f);
    }
    throw std::logic_error("unreachable");
  };
  if (!caching_) {
    impl_->note_miss();
    return std::make_shared<const Staircase>(compute());
  }
  const Impl::DerivedKey key{static_cast<std::uint8_t>(op), fingerprint(f),
                             g != nullptr ? fingerprint(*g) : 0};
  auto& stripe = impl_->derived.of(Impl::DerivedKeyHash{}(key));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      impl_->touch_group(key.a);
      return it->second;
    }
  }
  CurvePtr result = intern(compute());
  impl_->note_miss();
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(key, result);
    if (!inserted) result = it->second;
  }
  impl_->touch_group(key.a);
  return result;
}

CurvePtr Workspace::pointwise_add(const Staircase& f, const Staircase& g) {
  return derived(DerivedOp::kAdd, f, &g);
}

CurvePtr Workspace::minplus_conv(const Staircase& f, const Staircase& g) {
  return derived(DerivedOp::kConv, f, &g);
}

CurvePtr Workspace::leftover_service(const Staircase& b,
                                     const Staircase& a) {
  return derived(DerivedOp::kLeftover, b, &a);
}

CurvePtr Workspace::concave_hull_staircase(const Staircase& f) {
  return derived(DerivedOp::kHull, f, nullptr);
}

Workspace::CoarseCurvePtr Workspace::coarse(const Staircase& f, Time g,
                                            bool upper) {
  const auto compute = [&] {
    return upper ? strt::coarsen_upper(f, g) : strt::coarsen_lower(f, g);
  };
  if (!caching_) {
    impl_->note_miss();
    CoarseCurve c = compute();
    return CoarseCurvePtr{
        std::make_shared<const Staircase>(std::move(c.curve)), c.max_error};
  }
  const Impl::CoarseKey key{fingerprint(f), g.count(),
                            static_cast<std::uint8_t>(upper ? 1 : 0)};
  auto& stripe = impl_->coarse.of(Impl::CoarseKeyHash{}(key));
  {
    const LookupTimer timer;
    const StripeLock lock(stripe.m);
    if (const auto it = stripe.table.find(key); it != stripe.table.end()) {
      impl_->note_hit();
      impl_->note_coarse_hit();
      impl_->touch_group(key.fp);
      return CoarseCurvePtr{it->second.curve, it->second.max_error};
    }
  }
  // Coarsen outside the lock; racers produce the identical canonical
  // curve and the emplace keeps the first entry.
  CoarseCurve c = compute();
  impl_->note_miss();
  CoarseCurvePtr result{intern(std::move(c.curve)), c.max_error};
  {
    const StripeLock lock(stripe.m);
    const auto [it, inserted] = stripe.table.emplace(
        key, Impl::CoarseEntry{result.curve, result.max_error});
    if (!inserted) {
      result = CoarseCurvePtr{it->second.curve, it->second.max_error};
    }
  }
  impl_->touch_group(key.fp);
  return result;
}

Workspace::CoarseCurvePtr Workspace::coarse_upper(const Staircase& f,
                                                  Time g) {
  return coarse(f, g, /*upper=*/true);
}

Workspace::CoarseCurvePtr Workspace::coarse_lower(const Staircase& f,
                                                  Time g) {
  return coarse(f, g, /*upper=*/false);
}

Workspace::PseudoInverse Workspace::inverse_of(const Staircase& curve) {
  if (!caching_) return PseudoInverse(&curve, nullptr, this);
  const std::uint64_t fp = fingerprint(curve);
  std::shared_ptr<PseudoInverse::Entry> entry;
  {
    auto& stripe = impl_->inverses.of(fp);
    const StripeLock lock(stripe.m);
    auto& slot = stripe.table[fp];
    if (!slot) slot = std::make_shared<PseudoInverse::Entry>();
    entry = slot;
  }
  impl_->touch_group(fp);
  return PseudoInverse(&curve, std::move(entry), this);
}

Time Workspace::PseudoInverse::operator()(Work w) const {
  if (!entry_) return curve_->inverse(w);
  {
    const MutexLock lock(entry_->m);
    if (const auto it = entry_->memo.find(w.count());
        it != entry_->memo.end()) {
      owner_->impl_->note_inverse(true);
      return it->second;
    }
  }
  const Time t = curve_->inverse(w);
  owner_->impl_->note_inverse(false);
  const MutexLock lock(entry_->m);
  entry_->memo.emplace(w.count(), t);
  return t;
}

namespace {

/// Translates one shared curve into the wire representation.
snapshot::CurveRecord to_record(std::uint64_t fp, const Staircase& c) {
  snapshot::CurveRecord rec;
  rec.fp = fp;
  rec.horizon = c.horizon().count();
  if (c.tail().has_value()) {
    rec.has_tail = true;
    rec.tail_period = c.tail()->period.count();
    rec.tail_increment = c.tail()->increment.count();
  }
  rec.times.reserve(c.times().size());
  rec.values.reserve(c.values().size());
  for (const Time t : c.times()) rec.times.push_back(t.count());
  for (const Work v : c.values()) rec.values.push_back(v.count());
  return rec;
}

}  // namespace

bool Workspace::save_snapshot(const std::string& path, std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!caching_) {
    if (error != nullptr) *error = "caching is off; nothing to snapshot";
    return false;
  }
  if (const std::uint64_t b = impl_->budget.load(std::memory_order_relaxed);
      b != 0) {
    impl_->evict_to_budget(b);  // the snapshot must itself fit the budget
  }

  snapshot::Snapshot snap;
  // Every curve any exported entry references, keyed by fingerprint.
  // add_curve() returns nullopt on a fingerprint collision between
  // unequal curves (astronomically rare): the colliding entry is simply
  // not exported, which only costs warmth.
  std::unordered_map<std::uint64_t, CurvePtr> exported;
  const auto add_curve =
      [&exported](const CurvePtr& p) -> std::optional<std::uint64_t> {
    const std::uint64_t fp = fingerprint(*p);
    const auto [it, inserted] = exported.emplace(fp, p);
    if (!inserted && *it->second != *p) return std::nullopt;
    return fp;
  };

  for (auto& stripe : impl_->interned.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [fp, bucket] : stripe.table) {
      if (bucket.size() == 1) (void)add_curve(bucket.front());
    }
  }
  for (const bool demand : {false, true}) {
    auto& family = demand ? impl_->dbfs : impl_->rbfs;
    auto& out = demand ? snap.dbf : snap.rbf;
    for (auto& stripe : family.stripes) {
      const StripeLock lock(stripe.m);
      for (const auto& [task_fp, entry] : stripe.table) {
        snapshot::WorkloadRecord rec;
        rec.task_fp = task_fp;
        rec.by_horizon.reserve(entry.by_horizon.size());
        for (const auto& [horizon, curve] : entry.by_horizon) {
          if (const auto fp = add_curve(curve)) {
            rec.by_horizon.emplace_back(horizon, *fp);
          }
        }
        if (!rec.by_horizon.empty()) out.push_back(std::move(rec));
      }
    }
  }
  for (auto& stripe : impl_->sbfs.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, curve] : stripe.table) {
      if (const auto fp = add_curve(curve)) {
        snap.sbf.push_back(snapshot::SupplyRecord{key.first, key.second, *fp});
      }
    }
  }
  for (auto& stripe : impl_->derived.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, curve] : stripe.table) {
      if (const auto fp = add_curve(curve)) {
        snap.derived.push_back(
            snapshot::DerivedRecord{key.op, key.a, key.b, *fp});
      }
    }
  }
  for (auto& stripe : impl_->coarse.stripes) {
    const StripeLock lock(stripe.m);
    for (const auto& [key, entry] : stripe.table) {
      if (const auto fp = add_curve(entry.curve)) {
        snap.coarse.push_back(snapshot::CoarseRecord{
            key.fp, key.g, key.side, *fp, entry.max_error.count()});
      }
    }
  }

  snap.curves.reserve(exported.size());
  for (const auto& [fp, curve] : exported) {
    snap.curves.push_back(to_record(fp, *curve));
  }
  // Deterministic file bytes: hash-map walk order must not leak into
  // the snapshot (two saves of identical warmth produce identical
  // files, which CI diffs rely on).
  std::sort(snap.curves.begin(), snap.curves.end(),
            [](const auto& a, const auto& b) { return a.fp < b.fp; });
  std::sort(snap.rbf.begin(), snap.rbf.end(),
            [](const auto& a, const auto& b) { return a.task_fp < b.task_fp; });
  std::sort(snap.dbf.begin(), snap.dbf.end(),
            [](const auto& a, const auto& b) { return a.task_fp < b.task_fp; });
  std::sort(snap.sbf.begin(), snap.sbf.end(), [](const auto& a, const auto& b) {
    return std::tie(a.key, a.horizon) < std::tie(b.key, b.horizon);
  });
  std::sort(snap.derived.begin(), snap.derived.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.op, a.a, a.b) < std::tie(b.op, b.a, b.b);
            });
  std::sort(snap.coarse.begin(), snap.coarse.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.fp, a.g, a.side) <
                     std::tie(b.fp, b.g, b.side);
            });

  if (!snapshot::write_file(path, snap, error)) return false;

  static obs::Counter& c_save_ns = obs::counter("snapshot.save_ns");
  c_save_ns.add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  obs::gauge("snapshot.entries").set(
      static_cast<std::int64_t>(snap.entry_count()));
  return true;
}

bool Workspace::load_snapshot(const std::string& path, std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  static obs::Counter& c_rejected = obs::counter("snapshot.rejected");
  const auto reject = [&](std::string reason) {
    c_rejected.add(1);
    if (error != nullptr) *error = std::move(reason);
    return false;
  };

  snapshot::LoadResult loaded = snapshot::read_file(path);
  if (loaded.status == snapshot::LoadResult::Status::kMissing) {
    if (error != nullptr) *error = "no snapshot at " + path;
    return false;  // a cold start, not a rejection
  }
  if (loaded.status == snapshot::LoadResult::Status::kRejected) {
    return reject(std::move(loaded.error));
  }
  if (!caching_) {
    if (error != nullptr) *error = "caching is off; snapshot not loaded";
    return false;
  }

  try {
    const snapshot::Snapshot& snap = loaded.snap;

    // Stage 1 -- validate and materialize everything before touching
    // the live tables, so a rejection leaves the workspace untouched
    // (clean cold start).  Every curve is rebuilt from its canonical
    // breakpoints and its content fingerprint recomputed: an entry only
    // enters a memo table under a key the engine itself would derive.
    std::unordered_map<std::uint64_t, CurvePtr> staged;
    staged.reserve(snap.curves.size());
    for (const snapshot::CurveRecord& rec : snap.curves) {
      std::string why;
      if (!snapshot::validate_curve(rec, &why)) {
        return reject("invalid curve record: " + why);
      }
      SegmentStore store;
      store.reserve(rec.times.size());
      for (std::size_t i = 0; i < rec.times.size(); ++i) {
        store.append(Time(rec.times[i]), Work(rec.values[i]));
      }
      std::optional<Tail> tail;
      if (rec.has_tail) {
        tail = Tail{Time(rec.tail_period), Work(rec.tail_increment)};
      }
      Staircase curve = Staircase::from_segments(std::move(store),
                                                 Time(rec.horizon), tail);
      if (fingerprint(curve) != rec.fp) {
        return reject("curve fingerprint mismatch");
      }
      const auto [it, inserted] = staged.emplace(
          rec.fp, std::make_shared<const Staircase>(std::move(curve)));
      if (!inserted) return reject("duplicate curve fingerprint");
    }
    const auto resolve = [&staged](std::uint64_t fp) -> const CurvePtr& {
      const auto it = staged.find(fp);
      if (it == staged.end()) {
        throw std::runtime_error("dangling curve reference");
      }
      return it->second;
    };
    for (const auto* family : {&snap.rbf, &snap.dbf}) {
      for (const snapshot::WorkloadRecord& rec : *family) {
        if (rec.by_horizon.empty()) return reject("empty workload record");
        for (const auto& [horizon, fp] : rec.by_horizon) {
          // The memo contract: the curve cached for horizon H is the
          // canonical staircase *on* [0, H] -- anything else would
          // poison horizon-extension truncation after reload.
          if (resolve(fp)->horizon().count() != horizon) {
            return reject("workload curve horizon mismatch");
          }
        }
      }
    }
    for (const snapshot::SupplyRecord& rec : snap.sbf) (void)resolve(rec.curve_fp);
    for (const snapshot::DerivedRecord& rec : snap.derived) {
      if (rec.op > static_cast<std::uint8_t>(DerivedOp::kHull)) {
        return reject("unknown derived op");
      }
      (void)resolve(rec.curve_fp);
    }
    for (const snapshot::CoarseRecord& rec : snap.coarse) {
      (void)resolve(rec.curve_fp);
    }

    // Stage 2 -- apply through the normal first-insert-wins inserts
    // (safe concurrently with serving and with other loaders/savers).
    std::unordered_map<std::uint64_t, CurvePtr> canon;
    canon.reserve(staged.size());
    for (const auto& [fp, curve] : staged) {
      canon.emplace(fp, intern(Staircase(*curve)));
    }
    for (const bool demand : {false, true}) {
      auto& family = demand ? impl_->dbfs : impl_->rbfs;
      const auto& recs = demand ? snap.dbf : snap.rbf;
      for (const snapshot::WorkloadRecord& rec : recs) {
        {
          auto& stripe = family.of(rec.task_fp);
          const StripeLock lock(stripe.m);
          Impl::TaskEntry& e = stripe.table[rec.task_fp];
          for (const auto& [horizon, fp] : rec.by_horizon) {
            e.by_horizon.emplace(horizon, canon.at(fp));
          }
          const CurvePtr& widest = e.by_horizon.rbegin()->second;
          if (!e.max_curve || e.max_curve->horizon() < widest->horizon()) {
            e.max_curve = widest;
          }
        }
        impl_->touch_group(rec.task_fp);
      }
    }
    for (const snapshot::SupplyRecord& rec : snap.sbf) {
      const std::uint64_t group = std::hash<std::string>{}(rec.key);
      {
        auto key = std::make_pair(rec.key, rec.horizon);
        auto& stripe = impl_->sbfs.of(hash_combine(
            group, static_cast<std::uint64_t>(key.second)));
        const StripeLock lock(stripe.m);
        stripe.table.emplace(std::move(key), canon.at(rec.curve_fp));
      }
      impl_->touch_group(group);
    }
    for (const snapshot::DerivedRecord& rec : snap.derived) {
      {
        const Impl::DerivedKey key{rec.op, rec.a, rec.b};
        auto& stripe = impl_->derived.of(Impl::DerivedKeyHash{}(key));
        const StripeLock lock(stripe.m);
        stripe.table.emplace(key, canon.at(rec.curve_fp));
      }
      impl_->touch_group(rec.a);
    }
    for (const snapshot::CoarseRecord& rec : snap.coarse) {
      {
        const Impl::CoarseKey key{rec.fp, rec.g, rec.side};
        auto& stripe = impl_->coarse.of(Impl::CoarseKeyHash{}(key));
        const StripeLock lock(stripe.m);
        stripe.table.emplace(key, Impl::CoarseEntry{canon.at(rec.curve_fp),
                                                    Work(rec.max_error)});
      }
      impl_->touch_group(rec.fp);
    }

    static obs::Counter& c_load_ns = obs::counter("snapshot.load_ns");
    c_load_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    obs::gauge("snapshot.entries").set(
        static_cast<std::int64_t>(snap.entry_count()));
    return true;
  } catch (const std::exception& e) {
    return reject(std::string("snapshot load failed: ") + e.what());
  } catch (...) {
    return reject("snapshot load failed");
  }
}

WorkspaceStats Workspace::stats() const {
  WorkspaceStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.bytes = impl_->bytes.load(std::memory_order_relaxed);
  s.inverse_hits = impl_->inverse_hits.load(std::memory_order_relaxed);
  s.inverse_misses = impl_->inverse_misses.load(std::memory_order_relaxed);
  s.coarse_hits = impl_->coarse_hits.load(std::memory_order_relaxed);
  s.evictions = impl_->evictions.load(std::memory_order_relaxed);
  s.evicted_bytes = impl_->evicted_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace strt::engine
