#include "engine/fingerprint.hpp"

namespace strt::engine {

std::uint64_t fingerprint(const Staircase& c) {
  std::uint64_t fp = mix64(0x5374616972636173ULL);  // "Staircas"
  fp = hash_combine(fp, static_cast<std::uint64_t>(c.horizon().count()));
  if (const auto& tail = c.tail()) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(tail->period.count()));
    fp = hash_combine(fp,
                      static_cast<std::uint64_t>(tail->increment.count()));
  } else {
    fp = hash_combine(fp, 0xffffffffffffffffULL);
  }
  fp = hash_combine(fp, c.breakpoint_count());
  const auto ts = c.times();
  const auto vs = c.values();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(ts[i].count()));
    fp = hash_combine(fp, static_cast<std::uint64_t>(vs[i].count()));
  }
  return fp;
}

std::uint64_t fingerprint(std::string_view bytes) {
  std::uint64_t fp = mix64(0x5374724279746573ULL);  // "StrBytes"
  fp = hash_combine(fp, bytes.size());
  // Fold 8 bytes per lane; the trailing partial lane is zero-padded.
  std::uint64_t lane = 0;
  unsigned filled = 0;
  for (const char ch : bytes) {
    lane |= static_cast<std::uint64_t>(static_cast<unsigned char>(ch))
            << (8 * filled);
    if (++filled == 8) {
      fp = hash_combine(fp, lane);
      lane = 0;
      filled = 0;
    }
  }
  if (filled != 0) fp = hash_combine(fp, lane);
  return fp;
}

std::uint64_t fingerprint(const Supply& supply) {
  return hash_combine(mix64(0x537570706c794670ULL),  // "SupplyFp"
                      fingerprint(supply.describe()));
}

}  // namespace strt::engine
