#include "engine/fingerprint.hpp"

namespace strt::engine {

std::uint64_t fingerprint(const Staircase& c) {
  std::uint64_t fp = mix64(0x5374616972636173ULL);  // "Staircas"
  fp = hash_combine(fp, static_cast<std::uint64_t>(c.horizon().count()));
  if (const auto& tail = c.tail()) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(tail->period.count()));
    fp = hash_combine(fp,
                      static_cast<std::uint64_t>(tail->increment.count()));
  } else {
    fp = hash_combine(fp, 0xffffffffffffffffULL);
  }
  fp = hash_combine(fp, c.steps().size());
  for (const Step& s : c.steps()) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(s.time.count()));
    fp = hash_combine(fp, static_cast<std::uint64_t>(s.value.count()));
  }
  return fp;
}

}  // namespace strt::engine
