// Content fingerprints for curves and analysis artifacts.
//
// A fingerprint is a 64-bit content hash (splitmix64 lane mixing over the
// canonical representation).  engine::Workspace uses fingerprints to key
// its memoization tables: two Staircases compare equal iff they have the
// same canonical breakpoints, horizon, and tail, so hashing exactly those
// fields gives a collision-resistant cache key.  Where aliasing would be
// unacceptable (the hash-consing intern table), the Workspace confirms a
// fingerprint match with a full equality compare.
#pragma once

#include <cstdint>
#include <string_view>

#include "curves/staircase.hpp"
#include "resource/supply.hpp"

namespace strt::engine {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit lane.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

/// Content fingerprint of a staircase: breakpoints, horizon, and tail.
/// O(breakpoint_count); equal curves hash equal by construction.
[[nodiscard]] std::uint64_t fingerprint(const Staircase& c);

/// Fingerprint of a byte string (mix64 lane chaining).
[[nodiscard]] std::uint64_t fingerprint(std::string_view bytes);

/// Content fingerprint of a supply model, keyed on the same canonical
/// description string the Workspace sbf memo uses: two supplies with one
/// fingerprint share every cached sbf materialization.
[[nodiscard]] std::uint64_t fingerprint(const Supply& supply);

}  // namespace strt::engine
