// Observability: named monotonic counters and gauges.
//
// A process-global Registry maps names to Counter / Gauge cells.  Cells
// are created on first use (registration takes a mutex) and never move,
// so the returned references stay valid for the process lifetime --
// instrumented code looks a cell up once (function-local static) and
// bumps it lock-free afterwards.
//
// Cost model: every mutation first checks the global enabled flag, a
// relaxed atomic load plus a branch; with STRT_OBS unset that is the
// *entire* cost of an instrumented site.  Enabled mutations are relaxed
// atomic read-modify-writes.  Snapshots return samples sorted by name,
// so report JSON and report diffs are deterministic across runs,
// platforms, and registration interleavings.
//
// Enabling: set the environment variable STRT_OBS (any value other than
// "0" or empty) before the first instrumented call, or call
// obs::set_enabled(true) at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace strt::obs {

/// True when instrumentation is live.  Relaxed load + branch; this is the
/// only cost a disabled counter bump or span pays.
[[nodiscard]] bool enabled();

/// Flip instrumentation at runtime (overrides the STRT_OBS env default).
void set_enabled(bool on);

/// A named monotonic counter.  Obtain via Registry::counter(); never
/// constructed directly by instrumented code.
class Counter {
 public:
  /// Adds `n` if observability is enabled; no-op (load + branch) if not.
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;

  void reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<std::uint64_t> value_{0};
};

/// A named gauge: an instantaneous signed level plus the maximum level
/// ever set (high-water mark).  Same cost model as Counter.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;

  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value;
};

struct GaugeSample {
  std::string name;
  std::int64_t value;
  std::int64_t max_value;
};

/// The process-global name -> cell map.  Thread-safe; cells never move.
class Registry {
 public:
  /// The global registry (all library instrumentation uses this one).
  static Registry& global();

  /// Finds or creates the counter / gauge / histogram named `name`.  The
  /// reference is valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All counters / gauges / histograms, sorted by name (deterministic
  /// snapshots whatever the registration interleaving).  Includes
  /// zero-valued cells (a registered name is part of the schema of a
  /// run).
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;

  /// Zeroes every cell; registrations (and their order) are kept.
  void reset();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// Shorthand for Registry::global().counter(name) -- intended use:
///   static obs::Counter& c = obs::counter("explore.generated");
///   c.add(stats.generated);
[[nodiscard]] Counter& counter(const std::string& name);
[[nodiscard]] Gauge& gauge(const std::string& name);
// obs::histogram(name) lives in obs/histogram.hpp.

}  // namespace strt::obs
