#include "obs/counters.hpp"

#include <cstdlib>
#include <deque>
#include <map>

#include "base/config.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace strt::obs {

namespace {

bool env_default() { return cfg::get_bool("STRT_OBS", /*def=*/false); }

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_default()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable Mutex mu;
  // Deques never relocate elements, so the references handed out stay
  // valid as the registry grows.  Snapshots walk the sorted name
  // indexes, so sample order is independent of registration order.
  std::deque<std::pair<std::string, Counter>> counters STRT_GUARDED_BY(mu);
  std::deque<std::pair<std::string, Gauge>> gauges STRT_GUARDED_BY(mu);
  std::deque<std::pair<std::string, Histogram>> histograms
      STRT_GUARDED_BY(mu);
  std::map<std::string, Counter*> counter_index STRT_GUARDED_BY(mu);
  std::map<std::string, Gauge*> gauge_index STRT_GUARDED_BY(mu);
  std::map<std::string, Histogram*> histogram_index STRT_GUARDED_BY(mu);
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked intentionally: instrumented code may run during static
  // destruction of other translation units.
  static Registry* reg = new Registry;
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(impl_->mu);
  if (auto it = impl_->counter_index.find(name);
      it != impl_->counter_index.end()) {
    return *it->second;
  }
  impl_->counters.emplace_back(std::piecewise_construct,
                               std::forward_as_tuple(name),
                               std::forward_as_tuple());
  Counter* cell = &impl_->counters.back().second;
  impl_->counter_index.emplace(name, cell);
  return *cell;
}

Gauge& Registry::gauge(const std::string& name) {
  const MutexLock lock(impl_->mu);
  if (auto it = impl_->gauge_index.find(name);
      it != impl_->gauge_index.end()) {
    return *it->second;
  }
  impl_->gauges.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
  Gauge* cell = &impl_->gauges.back().second;
  impl_->gauge_index.emplace(name, cell);
  return *cell;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(impl_->mu);
  if (auto it = impl_->histogram_index.find(name);
      it != impl_->histogram_index.end()) {
    return *it->second;
  }
  impl_->histograms.emplace_back(std::piecewise_construct,
                                 std::forward_as_tuple(name),
                                 std::forward_as_tuple());
  Histogram* cell = &impl_->histograms.back().second;
  impl_->histogram_index.emplace(name, cell);
  return *cell;
}

std::vector<CounterSample> Registry::counters() const {
  const MutexLock lock(impl_->mu);
  std::vector<CounterSample> out;
  out.reserve(impl_->counter_index.size());
  // The index map is name-ordered: deterministic snapshot order.
  for (const auto& [name, cell] : impl_->counter_index) {
    out.push_back(CounterSample{name, cell->value()});
  }
  return out;
}

std::vector<GaugeSample> Registry::gauges() const {
  const MutexLock lock(impl_->mu);
  std::vector<GaugeSample> out;
  out.reserve(impl_->gauge_index.size());
  for (const auto& [name, cell] : impl_->gauge_index) {
    out.push_back(GaugeSample{name, cell->value(), cell->max_value()});
  }
  return out;
}

std::vector<HistogramSample> Registry::histograms() const {
  // Collect the cells under the registry lock, then snapshot outside it:
  // Histogram::snapshot() takes the histogram's own shard lock, and
  // cells never move once registered.
  std::vector<std::pair<std::string, Histogram*>> cells;
  {
    const MutexLock lock(impl_->mu);
    cells.reserve(impl_->histogram_index.size());
    for (const auto& [name, cell] : impl_->histogram_index) {
      cells.emplace_back(name, cell);
    }
  }
  std::vector<HistogramSample> out;
  out.reserve(cells.size());
  for (const auto& [name, cell] : cells) {
    out.push_back(HistogramSample{name, cell->snapshot()});
  }
  return out;
}

void Registry::reset() {
  const MutexLock lock(impl_->mu);
  for (auto& [name, cell] : impl_->counters) cell.reset();
  for (auto& [name, cell] : impl_->gauges) cell.reset();
  for (auto& [name, cell] : impl_->histograms) cell.reset();
}

Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}

}  // namespace strt::obs
