// Observability: log-bucketed latency/size histograms.
//
// A Histogram records non-negative 64-bit samples into HDR-style
// log-linear buckets: values 0..3 land in exact unit buckets, and every
// larger power-of-two octave is split into 4 linear sub-buckets, so any
// recorded value is attributed to a bucket whose width is at most 25% of
// its lower bound.  Quantile estimates read back the bucket upper edge,
// which bounds the relative overshoot by the same 25%.
//
// Recording is sharded per thread: each recording thread owns a private
// bucket array per histogram (created once, under the registry-style
// mutex), so the hot path is a relaxed atomic increment on memory no
// other recorder touches -- no lock, no contention, safe concurrent
// snapshots.  Shards of exited threads are retained and keep counting
// toward snapshots.
//
// Cost model matches counters.hpp: when observability is disabled a
// record() is one relaxed atomic load plus a branch; enabled records are
// a thread-local slot load plus three relaxed atomic RMWs.
//
// Obtain histograms via Registry::histogram() / obs::histogram(); like
// Counter cells they never move, so instrumented sites cache the
// reference in a function-local static.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace strt::obs {

/// Number of log-linear buckets (covers the full uint64 range).
inline constexpr std::size_t kHistogramBuckets = 256;

/// Bucket index of value `v` (0-based, < kHistogramBuckets).
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t v) {
  if (v < 4) return static_cast<std::size_t>(v);
  // Octave = bit width - 1 (>= 2); 4 linear sub-buckets per octave.
  int msb = 0;
  for (std::uint64_t x = v; x > 1; x >>= 1) ++msb;
  const std::uint64_t sub = (v >> (msb - 2)) & 3u;
  return static_cast<std::size_t>((msb - 1) * 4 + static_cast<int>(sub));
}

/// Inclusive lower edge of bucket `i`.
[[nodiscard]] constexpr std::uint64_t histogram_bucket_lower(std::size_t i) {
  if (i < 4) return static_cast<std::uint64_t>(i);
  const int msb = static_cast<int>(i / 4) + 1;
  const std::uint64_t sub = static_cast<std::uint64_t>(i % 4);
  return (4u + sub) << (msb - 2);
}

/// Inclusive upper edge of bucket `i` (the largest value it can hold).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_upper(std::size_t i) {
  if (i < 3) return static_cast<std::uint64_t>(i);
  if (i + 1 >= kHistogramBuckets * 2) return ~std::uint64_t{0};
  const std::uint64_t next = histogram_bucket_lower(i + 1);
  return next == 0 ? ~std::uint64_t{0} : next - 1;
}

/// A mergeable point-in-time view of one histogram: total count/sum/max
/// plus the raw bucket counts, with quantile readback.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Upper edge of the bucket holding the q-quantile sample (rank
  /// ceil(q*count)); 0 when empty.  Overshoots the exact order statistic
  /// by at most 25% (one bucket width).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Mean of the recorded samples; 0 when empty.
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Pointwise accumulation (shard/worker rollup).
  void merge(const HistogramSnapshot& other);
};

/// A named sharded histogram.  Obtain via Registry::histogram(); never
/// constructed directly by instrumented code.
class Histogram {
 public:
  /// Records one sample if observability is enabled; no-op otherwise.
  void record(std::uint64_t value);

  /// Merged view over every thread shard.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  Histogram();
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;

  struct Shard;

  /// Zeroes every shard (registration and shard ownership kept).
  void reset();

  /// The calling thread's shard, created on first use.
  [[nodiscard]] Shard& local_shard();

  struct Impl;
  Impl* impl_;
};

struct HistogramSample {
  std::string name;
  HistogramSnapshot snapshot;
};

/// Shorthand for Registry::global().histogram(name) -- intended use:
///   static obs::Histogram& h = obs::histogram("svc.request_latency_us");
///   h.record(us);
[[nodiscard]] Histogram& histogram(const std::string& name);

}  // namespace strt::obs
