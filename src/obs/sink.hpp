// Observability: exportable live telemetry.
//
// A TelemetrySink periodically snapshots the global Registry into files
// under one directory, so a running service can be scraped / tailed
// without stopping it:
//
//   metrics.prom   Prometheus text exposition format (version 0.0.4),
//                  rewritten atomically (tmp + rename) on every flush:
//                  counters as `counter`, gauges as `gauge` (plus a
//                  `<name>_max` high-water gauge), histograms as native
//                  `histogram` metrics with cumulative le-buckets.
//   events.jsonl   append-only event log: one strt.obs.report.v2 line
//                  per flush (counters + histogram summaries + the
//                  flush sequence number), diffable across flushes.
//   trace.json     Chrome Trace Event Format (strt.obs.trace.v1) over
//                  every request trace added so far; loads directly in
//                  chrome://tracing or https://ui.perfetto.dev.
//
// Labels: a registry name carrying a `{label="value",...}` suffix (the
// service's per-shard cells, e.g. svc.shard_served{shard="0"}) exports
// as one labeled series per cell under a single metric family, with the
// `# TYPE` line emitted once per family; for labeled histograms the
// labels join `le` inside the bucket braces.
//
// The sink is thread-safe: service shard workers flush per round while
// others add traces; whole flushes are serialized internally, so
// concurrent flushers never interleave their file writes.  Flushing with
// observability disabled still writes files (the snapshots are just
// zero); callers normally enable obs when constructing a sink
// (strt_serve --telemetry-dir does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace strt::obs {

/// Prometheus-legal metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; '.' and every
/// other illegal character become '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// One Registry snapshot as a Prometheus text exposition document.
/// Registry names with a `{label="value",...}` suffix become labeled
/// series of the (sanitized) base family.
[[nodiscard]] std::string prometheus_exposition();

class TelemetrySink {
 public:
  /// Writes under `dir` (created if missing; throws std::runtime_error
  /// when creation fails).
  explicit TelemetrySink(std::string dir);
  ~TelemetrySink();  // final flush

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Buffers one finished request trace for trace.json.
  void add_trace(RequestTrace trace);

  /// Snapshots the registry into metrics.prom (atomic rewrite), appends
  /// one event line to events.jsonl, and rewrites trace.json with every
  /// buffered trace.
  void flush();

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t flushes() const;

 private:
  struct Impl;
  std::string dir_;
  Impl* impl_;
};

}  // namespace strt::obs
