// Observability: structured run reports.
//
// A RunReport gathers the inputs and outputs of one analysis run (typed
// key/value fields) together with a snapshot of the counter registry,
// latency histogram summaries, the calling thread's span profile, and --
// for request-scoped reports -- the request's trace, and serializes
// everything to a single line of JSON -- one run per line,
// append-friendly, no external dependencies.
//
// Schema (version "strt.obs.report.v2"; v1 lacked "histograms"/"trace"
// and snapshotted counters in registration order):
//
//   {
//     "schema":     "strt.obs.report.v2",
//     "name":       "<run name>",
//     "fields":     { "<key>": <string | integer | float | bool |
//                       raw JSON sub-document (put_json)>, ... },
//     "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": {"value": <int>, "max": <int>}, ... },
//     "histograms": { "<name>": {"count": <int>, "sum": <int>,
//                     "max": <int>, "mean": <float>, "p50": <int>,
//                     "p90": <int>, "p99": <int>}, ... },
//     "spans":      [ {"name": "<phase>", "count": <int>, "ns": <int>,
//                      "children": [ ... ]}, ... ],
//     "trace":      { "trace_id": <int>, "spans": [ {"id": <int>,
//                     "parent": <int>, "name": "<phase>", "ts": <us>,
//                     "dur": <us>, "attrs": { ... }}, ... ] }   [optional]
//   }
//
// Field insertion order is preserved; counters/gauges/histograms are
// sorted by name (deterministic report diffs); spans in first-entered
// order; trace spans by start time.  A minimal JSON reader
// (JsonValue::parse) is included so tools -- and the round-trip tests --
// can consume reports without a JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace strt::obs {

/// The report schema emitted by RunReport::to_json().
inline constexpr std::string_view kReportSchema = "strt.obs.report.v2";

/// Escapes `s` as the contents of a JSON string literal (quotes not
/// included): ", \, and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view s);

class RunReport {
 public:
  /// A field holding pre-serialized JSON, emitted verbatim (no quoting).
  /// The caller vouches for well-formedness; put_json() is the door.
  struct RawJson {
    std::string text;
  };

  using FieldValue =
      std::variant<std::string, std::int64_t, double, bool, RawJson>;

  explicit RunReport(std::string name);

  /// Records an input/output of the run.  Re-putting a key overwrites in
  /// place (original position kept).
  void put(std::string_view key, std::string value);
  void put(std::string_view key, const char* value);
  void put(std::string_view key, std::int64_t value);
  void put(std::string_view key, std::uint64_t value);
  void put(std::string_view key, double value);
  void put(std::string_view key, bool value);

  /// Records a field whose value is `raw` emitted verbatim -- for
  /// structured sub-documents (arrays, nested objects) such as a bench
  /// scaling curve.  `raw` must be a complete, well-formed JSON value.
  void put_json(std::string_view key, std::string raw);

  /// Snapshots the global counter/gauge/histogram registry and the
  /// calling thread's span tree into the report (replacing any earlier
  /// capture).
  void capture();

  /// Embeds a request trace (emitted as the "trace" member; absent when
  /// never set or empty).
  void set_trace(RequestTrace trace);

  /// One line of JSON (no trailing newline), per the schema above.
  [[nodiscard]] std::string to_json() const;

  /// to_json() plus '\n'.
  void write_json_line(std::ostream& os) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<std::string, FieldValue>>&
  fields() const {
    return fields_;
  }
  [[nodiscard]] const std::vector<CounterSample>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<GaugeSample>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::vector<HistogramSample>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::vector<SpanSample>& spans() const {
    return spans_;
  }
  [[nodiscard]] const RequestTrace& trace() const { return trace_; }

 private:
  std::string name_;
  std::vector<std::pair<std::string, FieldValue>> fields_;
  std::vector<CounterSample> counters_;
  std::vector<GaugeSample> gauges_;
  std::vector<HistogramSample> histograms_;
  std::vector<SpanSample> spans_;
  RequestTrace trace_;
};

/// Minimal JSON document model + recursive-descent parser, sufficient for
/// reading RunReport output back (objects, arrays, strings, numbers,
/// booleans, null; no surrogate-pair decoding -- \u escapes outside the
/// BMP round-trip as-is is not supported, and this library never emits
/// them).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;            // always set for Kind::Number
  bool is_integer = false;        // true when the token had no '.'/'e'
  std::int64_t integer = 0;       // valid when is_integer
  std::string string;             // Kind::String
  std::vector<JsonValue> array;   // Kind::Array
  std::vector<std::pair<std::string, JsonValue>> object;  // Kind::Object

  /// Parses a complete JSON document; throws std::invalid_argument on
  /// malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

}  // namespace strt::obs
