// Observability: RAII timing spans building a nested phase profile.
//
// A Span marks a phase of the analysis ("explore", "minplus.conv", ...).
// Spans nest lexically: a span opened while another is live becomes its
// child in the profile tree, and re-entering the same phase name under
// the same parent accumulates into one node (count + total time) instead
// of growing the tree.  The tree is therefore bounded by the number of
// distinct phase *paths*, not the number of phase entries -- safe to put
// on per-operation boundaries such as each min-plus convolution.
//
// The profile tree is per-thread (thread_local): spans never contend, and
// a worker thread's profile does not interleave into the main thread's.
// Snapshot / reset act on the calling thread's tree.
//
// Tracing: while an obs::TraceSpanScope is live on the thread (the
// service layer opens one per request run), every Span additionally
// appends a timestamped span to that request's trace, so per-request
// traces reach the kernel phases through the instrumentation that
// already exists.
//
// When observability is disabled (see counters.hpp) constructing a Span
// costs one relaxed atomic load and a branch; no clock is read.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace strt::obs {

namespace detail {
struct SpanNode;
}  // namespace detail

/// RAII phase marker.  `name` must outlive the constructor call only (it
/// is copied on first use of a given phase path).
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

 private:
  detail::SpanNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t trace_id_ = 0;      // request-trace mirror (see trace.hpp)
  std::uint64_t trace_parent_ = 0;
};

/// One node of a profile snapshot.
struct SpanSample {
  std::string name;
  std::uint64_t count = 0;    // times the phase was entered
  std::int64_t total_ns = 0;  // accumulated wall time, nanoseconds
  std::vector<SpanSample> children;
};

/// Snapshot of the calling thread's profile tree: the top-level phases in
/// first-entered order, children nested.  Live (unclosed) spans report
/// the time accumulated by their already-closed entries only.
[[nodiscard]] std::vector<SpanSample> span_tree();

/// Clears the calling thread's profile tree.  Must not be called while a
/// span is live on this thread (the live span would dangle); the library
/// never holds spans across public API boundaries, so resetting between
/// analyses is safe.
void reset_spans();

}  // namespace strt::obs
