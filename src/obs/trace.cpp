#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "obs/report.hpp"

namespace strt::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t next_trace_id() {
  // Distinct, stable ids without consulting a wall clock or RNG: a
  // splitmix64-style scramble of a process-wide sequence number, kept in
  // 63 bits so the id is representable as a JSON integer everywhere.
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t z = seq.fetch_add(1, std::memory_order_relaxed) +
                    0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = (z ^ (z >> 31)) & 0x7FFFFFFFFFFFFFFFULL;
  return z == 0 ? 1 : z;
}

}  // namespace

std::int64_t trace_now_us() {
  return trace_time_us(std::chrono::steady_clock::now());
}

std::int64_t trace_time_us(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t - trace_epoch())
      .count();
}

struct TraceContext::Data {
  mutable Mutex mu;
  std::uint64_t trace_id = 0;
  std::vector<TraceSpanRecord> spans STRT_GUARDED_BY(mu);

  std::uint64_t append(TraceSpanRecord rec) {
    const MutexLock lock(mu);
    rec.id = spans.size() + 1;
    spans.push_back(std::move(rec));
    return spans.back().id;
  }

  TraceSpanRecord* find_open(std::uint64_t id) STRT_REQUIRES(mu) {
    // Ids are append positions, so the record sits at index id - 1.
    if (id == 0 || id > spans.size()) return nullptr;
    return &spans[id - 1];
  }
};

namespace {

/// The calling thread's active trace position; data == nullptr when no
/// TraceSpanScope is live on this thread.
struct ActiveTrace {
  TraceContext::Data* data = nullptr;
  std::uint64_t current_parent = 0;
};

thread_local ActiveTrace tls_active;  // NOLINT(misc-use-anonymous-namespace)

}  // namespace

// ---------------------------------------------------------------------------
// RequestTrace
// ---------------------------------------------------------------------------

void RequestTrace::sort_spans() {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpanRecord& a, const TraceSpanRecord& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.id < b.id;
                   });
}

const TraceSpanRecord* RequestTrace::find(std::string_view name) const {
  for (const TraceSpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------------

TraceContext TraceContext::make() {
  TraceContext ctx;
  ctx.data_ = std::make_shared<Data>();
  ctx.data_->trace_id = next_trace_id();
  return ctx;
}

std::uint64_t TraceContext::trace_id() const {
  return data_ ? data_->trace_id : 0;
}

std::uint64_t TraceContext::add_complete_span(
    std::string_view name, std::int64_t start_us, std::int64_t end_us,
    std::uint64_t parent,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!data_) return 0;
  TraceSpanRecord rec;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.start_us = start_us;
  rec.dur_us = end_us >= start_us ? end_us - start_us : 0;
  rec.attrs = std::move(attrs);
  return data_->append(std::move(rec));
}

bool TraceContext::has_span(std::string_view name) const {
  if (!data_) return false;
  const MutexLock lock(data_->mu);
  for (const TraceSpanRecord& s : data_->spans) {
    if (s.name == name) return true;
  }
  return false;
}

RequestTrace TraceContext::snapshot() const {
  RequestTrace out;
  if (!data_) return out;
  {
    const MutexLock lock(data_->mu);
    out.trace_id = data_->trace_id;
    out.spans = data_->spans;
  }
  out.sort_spans();
  return out;
}

// ---------------------------------------------------------------------------
// TraceSpanScope + the thread-local mirror hook
// ---------------------------------------------------------------------------

TraceSpanScope::TraceSpanScope(const TraceContext& ctx, std::string_view name)
    : ctx_(ctx) {
  if (!ctx_) return;
  TraceContext::Data* data = ctx_.data_.get();
  // Nest under the innermost scope of the *same* trace; a scope over a
  // different trace starts its own root chain.
  const std::uint64_t parent =
      tls_active.data == data ? tls_active.current_parent : 0;
  TraceSpanRecord rec;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.start_us = trace_now_us();
  rec.dur_us = -1;  // open; closed by the destructor
  id_ = data->append(std::move(rec));

  saved_data_ = tls_active.data;
  saved_parent_ = tls_active.current_parent;
  tls_active.data = data;
  tls_active.current_parent = id_;
}

TraceSpanScope::~TraceSpanScope() {
  if (id_ == 0) return;
  TraceContext::Data* data = ctx_.data_.get();
  const std::int64_t now = trace_now_us();
  {
    const MutexLock lock(data->mu);
    if (TraceSpanRecord* rec = data->find_open(id_)) {
      rec->dur_us = now >= rec->start_us ? now - rec->start_us : 0;
    }
  }
  tls_active.data = static_cast<TraceContext::Data*>(saved_data_);
  tls_active.current_parent = saved_parent_;
}

void TraceSpanScope::attr(std::string_view key, std::string_view value) {
  if (id_ == 0) return;
  TraceContext::Data* data = ctx_.data_.get();
  const MutexLock lock(data->mu);
  if (TraceSpanRecord* rec = data->find_open(id_)) {
    rec->attrs.emplace_back(std::string(key), std::string(value));
  }
}

void TraceSpanScope::attr(std::string_view key, std::uint64_t value) {
  attr(key, std::string_view(std::to_string(value)));
}

namespace detail {

std::uint64_t active_trace_begin(std::string_view name,
                                 std::uint64_t* saved_parent) {
  if (tls_active.data == nullptr) return 0;
  TraceSpanRecord rec;
  rec.parent = tls_active.current_parent;
  rec.name = std::string(name);
  rec.start_us = trace_now_us();
  rec.dur_us = -1;
  const std::uint64_t id = tls_active.data->append(std::move(rec));
  *saved_parent = tls_active.current_parent;
  tls_active.current_parent = id;
  return id;
}

void active_trace_end(std::uint64_t id, std::uint64_t saved_parent) {
  if (id == 0 || tls_active.data == nullptr) return;
  const std::int64_t now = trace_now_us();
  {
    const MutexLock lock(tls_active.data->mu);
    if (TraceSpanRecord* rec = tls_active.data->find_open(id)) {
      rec->dur_us = now >= rec->start_us ? now - rec->start_us : 0;
    }
  }
  tls_active.current_parent = saved_parent;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Chrome Trace Event Format (strt.obs.trace.v1)
// ---------------------------------------------------------------------------

std::string trace_to_chrome_json(const std::vector<RequestTrace>& traces) {
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t tid = 0;
  for (const RequestTrace& trace : traces) {
    ++tid;
    for (const TraceSpanRecord& s : trace.spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += json_escape(s.name);
      out += "\",\"cat\":\"strt\",\"ph\":\"X\",\"ts\":";
      out += std::to_string(s.start_us);
      out += ",\"dur\":";
      out += std::to_string(s.dur_us < 0 ? 0 : s.dur_us);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"trace_id\":\"";
      out += std::to_string(trace.trace_id);
      out += "\",\"span_id\":";
      out += std::to_string(s.id);
      out += ",\"parent\":";
      out += std::to_string(s.parent);
      for (const auto& [k, v] : s.attrs) {
        out += ",\"";
        out += json_escape(k);
        out += "\":\"";
        out += json_escape(v);
        out += '"';
      }
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
         "\"strt.obs.trace.v1\"}}";
  return out;
}

std::vector<RequestTrace> parse_chrome_trace(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const JsonValue* other = doc.find("otherData");
  const JsonValue* schema = other ? other->find("schema") : nullptr;
  if (schema == nullptr || schema->string != "strt.obs.trace.v1") {
    throw std::invalid_argument(
        "parse_chrome_trace: missing or unknown schema");
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::Array) {
    throw std::invalid_argument("parse_chrome_trace: no traceEvents array");
  }

  std::vector<RequestTrace> traces;
  for (const JsonValue& ev : events->array) {
    const JsonValue* args = ev.find("args");
    const JsonValue* tid = args ? args->find("trace_id") : nullptr;
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    const JsonValue* span_id = args ? args->find("span_id") : nullptr;
    const JsonValue* parent = args ? args->find("parent") : nullptr;
    if (tid == nullptr || name == nullptr || ts == nullptr ||
        dur == nullptr || span_id == nullptr || parent == nullptr) {
      throw std::invalid_argument("parse_chrome_trace: malformed event");
    }
    const std::uint64_t trace_id = std::stoull(tid->string);
    RequestTrace* trace = nullptr;
    for (RequestTrace& t : traces) {
      if (t.trace_id == trace_id) {
        trace = &t;
        break;
      }
    }
    if (trace == nullptr) {
      traces.emplace_back();
      traces.back().trace_id = trace_id;
      trace = &traces.back();
    }
    TraceSpanRecord rec;
    rec.id = static_cast<std::uint64_t>(span_id->integer);
    rec.parent = static_cast<std::uint64_t>(parent->integer);
    rec.name = name->string;
    rec.start_us = ts->integer;
    rec.dur_us = dur->integer;
    for (const auto& [k, v] : args->object) {
      if (k == "trace_id" || k == "span_id" || k == "parent") continue;
      if (v.kind == JsonValue::Kind::String) rec.attrs.emplace_back(k, v.string);
    }
    trace->spans.push_back(std::move(rec));
  }
  return traces;
}

}  // namespace strt::obs
