#include "obs/report.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace strt::obs {

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_field(std::string& out, const RunReport::FieldValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) {
    out += '"';
    out += json_escape(*s);
    out += '"';
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    append_number(out, *d);
  } else if (const auto* r = std::get_if<RunReport::RawJson>(&v)) {
    out += r->text;  // pre-serialized by contract (put_json)
  } else {
    out += std::get<bool>(v) ? "true" : "false";
  }
}

void append_spans(std::string& out, const std::vector<SpanSample>& spans) {
  out += '[';
  bool first = true;
  for (const SpanSample& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"count\":";
    out += std::to_string(s.count);
    out += ",\"ns\":";
    out += std::to_string(s.total_ns);
    out += ",\"children\":";
    append_spans(out, s.children);
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

RunReport::RunReport(std::string name) : name_(std::move(name)) {}

void RunReport::put(std::string_view key, std::string value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::string(key), std::move(value));
}

void RunReport::put(std::string_view key, const char* value) {
  put(key, std::string(value));
}

void RunReport::put(std::string_view key, std::int64_t value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(std::string(key), value);
}

void RunReport::put(std::string_view key, std::uint64_t value) {
  put(key, static_cast<std::int64_t>(value));
}

void RunReport::put(std::string_view key, double value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(std::string(key), value);
}

void RunReport::put(std::string_view key, bool value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(std::string(key), value);
}

void RunReport::put_json(std::string_view key, std::string raw) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = RawJson{std::move(raw)};
      return;
    }
  }
  fields_.emplace_back(std::string(key), RawJson{std::move(raw)});
}

void RunReport::capture() {
  counters_ = Registry::global().counters();
  gauges_ = Registry::global().gauges();
  histograms_ = Registry::global().histograms();
  spans_ = span_tree();
}

void RunReport::set_trace(RequestTrace trace) { trace_ = std::move(trace); }

std::string RunReport::to_json() const {
  std::string out;
  out += "{\"schema\":\"";
  out += kReportSchema;
  out += "\",\"name\":\"";
  out += json_escape(name_);
  out += "\",\"fields\":{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    append_field(out, v);
  }
  out += "},\"counters\":{";
  first = true;
  for (const CounterSample& c : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(g.name);
    out += "\":{\"value\":";
    out += std::to_string(g.value);
    out += ",\"max\":";
    out += std::to_string(g.max_value);
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.snapshot.count);
    out += ",\"sum\":";
    out += std::to_string(h.snapshot.sum);
    out += ",\"max\":";
    out += std::to_string(h.snapshot.max);
    out += ",\"mean\":";
    append_number(out, h.snapshot.mean());
    out += ",\"p50\":";
    out += std::to_string(h.snapshot.quantile(0.50));
    out += ",\"p90\":";
    out += std::to_string(h.snapshot.quantile(0.90));
    out += ",\"p99\":";
    out += std::to_string(h.snapshot.quantile(0.99));
    out += '}';
  }
  out += "},\"spans\":";
  append_spans(out, spans_);
  if (!trace_.empty()) {
    out += ",\"trace\":{\"trace_id\":";
    out += std::to_string(trace_.trace_id);
    out += ",\"spans\":[";
    first = true;
    for (const TraceSpanRecord& s : trace_.spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"id\":";
      out += std::to_string(s.id);
      out += ",\"parent\":";
      out += std::to_string(s.parent);
      out += ",\"name\":\"";
      out += json_escape(s.name);
      out += "\",\"ts\":";
      out += std::to_string(s.start_us);
      out += ",\"dur\":";
      out += std::to_string(s.dur_us);
      out += ",\"attrs\":{";
      bool first_attr = true;
      for (const auto& [k, v] : s.attrs) {
        if (!first_attr) out += ',';
        first_attr = false;
        out += '"';
        out += json_escape(k);
        out += "\":\"";
        out += json_escape(v);
        out += '"';
      }
      out += "}}";
    }
    out += "]}";
  }
  out += '}';
  return out;
}

void RunReport::write_json_line(std::ostream& os) const {
  os << to_json() << '\n';
}

// ---------------------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("JsonValue::parse: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      default: return literal_or_number();
    }
  }

  JsonValue literal_or_number() {
    JsonValue v;
    if (consume_word("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = false;
      return v;
    }
    if (consume_word("null")) return v;  // Kind::Null

    const std::size_t start = pos_;
    bool integral = true;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_])) &&
          text_[pos_] != '-') {
        integral = false;
      }
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view tok = text_.substr(start, pos_ - start);
    v.kind = JsonValue::Kind::Number;
    v.is_integer = integral;
    if (integral) {
      auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v.integer);
      if (ec != std::errc() || p != tok.data() + tok.size()) {
        fail("malformed integer");
      }
      v.number = static_cast<double>(v.integer);
    } else {
      auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v.number);
      if (ec != std::errc() || p != tok.data() + tok.size()) {
        fail("malformed number");
      }
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (reports only ever emit
          // escapes for control characters, which are single bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      skip_ws();
      v.array.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).document();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace strt::obs
