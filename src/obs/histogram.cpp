#include "obs/histogram.hpp"

#include <algorithm>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "obs/counters.hpp"

namespace strt::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.9999999);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The max sample pins the top bucket's edge to an observed value.
      return std::min(histogram_bucket_upper(i), max);
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

/// One recording thread's private bucket array.  Only the owning thread
/// writes; snapshots read concurrently, hence the relaxed atomics.
struct Histogram::Shard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};
};

struct Histogram::Impl {
  mutable Mutex mu;
  std::vector<std::unique_ptr<Shard>> shards STRT_GUARDED_BY(mu);
  /// Distinct id per histogram instance, indexing the thread-local
  /// shard-pointer cache (see local_shard()).
  std::size_t id = 0;
};

namespace {

std::atomic<std::size_t> g_next_histogram_id{0};

}  // namespace

Histogram::Histogram() : impl_(new Impl) {
  impl_->id = g_next_histogram_id.fetch_add(1, std::memory_order_relaxed);
}

// Shards are leaked deliberately along with the Impl when the process
// tears down a registry-owned histogram: recording threads may still
// hold cached shard pointers during static destruction.  Registry cells
// are never destroyed in practice (the global registry leaks itself);
// this destructor exists for completeness only.
Histogram::~Histogram() = default;

Histogram::Shard& Histogram::local_shard() {
  // Per-thread cache: histogram id -> this thread's shard.  Raw pointers
  // stay valid because histogram cells live for the process lifetime
  // (registry cells are never destroyed) and shards are never deleted.
  thread_local std::vector<Shard*> tls_shards;
  if (tls_shards.size() <= impl_->id) tls_shards.resize(impl_->id + 1);
  Shard*& slot = tls_shards[impl_->id];
  if (slot == nullptr) {
    const MutexLock lock(impl_->mu);
    impl_->shards.push_back(std::make_unique<Shard>());
    slot = impl_->shards.back().get();
  }
  return *slot;
}

void Histogram::record(std::uint64_t value) {
  if (!enabled()) return;
  Shard& s = local_shard();
  s.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (prev < value && !s.max.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  const MutexLock lock(impl_->mu);
  for (const auto& shard : impl_->shards) {
    std::uint64_t shard_count = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      const std::uint64_t n = shard->buckets[i].load(std::memory_order_relaxed);
      out.buckets[i] += n;
      shard_count += n;
    }
    out.count += shard_count;
    out.sum += shard->sum.load(std::memory_order_relaxed);
    out.max =
        std::max(out.max, shard->max.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() {
  const MutexLock lock(impl_->mu);
  for (const auto& shard : impl_->shards) {
    for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
  }
}

Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace strt::obs
