#include "obs/span.hpp"

#include <memory>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace strt::obs {

namespace detail {

struct SpanNode {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  SpanNode* parent = nullptr;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* child(std::string_view child_name) {
    for (const auto& c : children) {
      if (c->name == child_name) return c.get();
    }
    auto node = std::make_unique<SpanNode>();
    node->name = std::string(child_name);
    node->parent = this;
    children.push_back(std::move(node));
    return children.back().get();
  }
};

namespace {

struct ThreadTree {
  SpanNode root;       // name left empty; holds the top-level phases
  SpanNode* current = &root;
};

ThreadTree& tls_tree() {
  thread_local ThreadTree tree;
  return tree;
}

void sample_into(const SpanNode& node, std::vector<SpanSample>& out) {
  for (const auto& c : node.children) {
    SpanSample s;
    s.name = c->name;
    s.count = c->count;
    s.total_ns = c->total_ns;
    sample_into(*c, s.children);
    out.push_back(std::move(s));
  }
}

}  // namespace

}  // namespace detail

Span::Span(std::string_view name) {
  if (!enabled()) return;
  detail::ThreadTree& tree = detail::tls_tree();
  node_ = tree.current->child(name);
  tree.current = node_;
  // Mirror into the request trace when one is active on this thread.
  trace_id_ = detail::active_trace_begin(name, &trace_parent_);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->total_ns +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  ++node_->count;
  detail::tls_tree().current = node_->parent;
  detail::active_trace_end(trace_id_, trace_parent_);
}

std::vector<SpanSample> span_tree() {
  std::vector<SpanSample> out;
  detail::sample_into(detail::tls_tree().root, out);
  return out;
}

void reset_spans() {
  detail::ThreadTree& tree = detail::tls_tree();
  tree.root.children.clear();
  tree.current = &tree.root;
}

}  // namespace strt::obs
