// Observability: per-request tracing.
//
// A TraceContext owns one request's span tree: a 64-bit trace id plus a
// flat list of spans (hierarchical span ids, parent links, start time and
// duration in microseconds on a process-wide steady-clock epoch, and
// key:value attributes such as fingerprint / kind / cache.hits).  The
// service layer opens the coarse phases (queue -> validate -> run); while
// a TraceSpanScope is live on a thread, every obs::Span the analyses
// already emit (explore, minplus.conv, hull, ...) is additionally
// recorded as a child span with real timestamps, so a request's trace
// reaches down to the kernel phases without new instrumentation.
//
// Concurrency: a TraceContext is a shared handle; span appends take the
// context's mutex (requests are served by one thread at a time, so the
// lock is uncontended -- it exists so a service thread can snapshot a
// trace another worker built).
//
// Export: trace_to_chrome_json() serializes one or more traces as
// schema "strt.obs.trace.v1" -- the Chrome Trace Event Format (JSON
// object format, complete "X" events), loadable in chrome://tracing and
// Perfetto.  parse_chrome_trace() reads it back for round-trip tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace strt::obs {

/// Microseconds since the process trace epoch (the first call in the
/// process pins the epoch; all traces share it, so Perfetto lays
/// concurrent requests out on one timeline).
[[nodiscard]] std::int64_t trace_now_us();

/// The same epoch conversion for an already-taken steady_clock reading
/// (e.g. a request's admission time captured before its trace existed).
[[nodiscard]] std::int64_t trace_time_us(
    std::chrono::steady_clock::time_point t);

/// One finished span.  Ids are 1-based per trace; parent 0 = root.
struct TraceSpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// A finished request trace: the value embedded in AnalysisOutcome and
/// report lines.  Spans appear in completion order; sort_spans() orders
/// them by start time (ties: by id) for stable output.
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::vector<TraceSpanRecord> spans;

  void sort_spans();
  [[nodiscard]] bool empty() const { return spans.empty(); }
  /// First span with this name, nullptr when absent.
  [[nodiscard]] const TraceSpanRecord* find(std::string_view name) const;
};

/// Shared handle to an in-progress trace.  Default-constructed contexts
/// are disengaged (tracing off, every call a no-op); make() starts a
/// fresh trace.  Copies share the underlying buffer.
class TraceContext {
 public:
  /// Opaque span buffer (defined in trace.cpp; public so the
  /// implementation's thread-local hook can hold a Data*).
  struct Data;

  TraceContext() = default;

  /// A fresh trace with a process-unique trace id.
  [[nodiscard]] static TraceContext make();

  [[nodiscard]] explicit operator bool() const { return data_ != nullptr; }
  [[nodiscard]] std::uint64_t trace_id() const;

  /// Appends a complete span covering [start_us, end_us]; returns its id
  /// (0 when disengaged).
  std::uint64_t add_complete_span(
      std::string_view name, std::int64_t start_us, std::int64_t end_us,
      std::uint64_t parent = 0,
      std::vector<std::pair<std::string, std::string>> attrs = {});

  [[nodiscard]] bool has_span(std::string_view name) const;

  /// Copies the finished spans out (sorted by start time).
  [[nodiscard]] RequestTrace snapshot() const;

 private:
  friend class TraceSpanScope;
  std::shared_ptr<Data> data_;
};

/// RAII phase span: opens a span on construction, appends the finished
/// record on destruction.  While the innermost scope on a thread is
/// live, it is installed as the thread's active trace position, so
/// nested obs::Span instrumentation (and nested TraceSpanScopes) attach
/// as children automatically.  A scope over a disengaged context costs a
/// branch and nothing else.
class TraceSpanScope {
 public:
  TraceSpanScope(const TraceContext& ctx, std::string_view name);
  ~TraceSpanScope();

  TraceSpanScope(const TraceSpanScope&) = delete;
  TraceSpanScope& operator=(const TraceSpanScope&) = delete;

  /// Attaches a key:value attribute to this span.
  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, std::uint64_t value);

  /// This span's id within the trace (0 over a disengaged context).
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  TraceContext ctx_;
  std::uint64_t id_ = 0;
  void* saved_data_ = nullptr;     // previous thread-local trace position
  std::uint64_t saved_parent_ = 0;
};

namespace detail {
/// Opens a child span at the calling thread's active trace position (the
/// innermost live TraceSpanScope).  Returns the new span's id, or 0 when
/// no trace is active on this thread; `*saved_parent` receives the
/// previous parent id to pass back to active_trace_end().  obs::Span uses
/// this pair to mirror profile spans into the request trace.
std::uint64_t active_trace_begin(std::string_view name,
                                 std::uint64_t* saved_parent);
void active_trace_end(std::uint64_t id, std::uint64_t saved_parent);
}  // namespace detail

/// Serializes traces as schema "strt.obs.trace.v1": a Chrome Trace Event
/// Format JSON object ({"traceEvents": [...], "otherData": {...}}) with
/// one complete ("ph":"X") event per span.  Each trace's spans share a
/// tid equal to a sequence number so requests stack separately in
/// Perfetto; span/parent ids and attributes ride in "args".
[[nodiscard]] std::string trace_to_chrome_json(
    const std::vector<RequestTrace>& traces);

/// Parses trace_to_chrome_json() output back (schema check included);
/// throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<RequestTrace> parse_chrome_trace(
    std::string_view json);

}  // namespace strt::obs
