#include "obs/sink.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"

namespace strt::obs {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 5);
  out += "strt_";
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

namespace {

/// A registry name split at its optional `{label="value",...}` suffix:
/// the base becomes the sanitized metric family, the label body (without
/// braces) passes through verbatim.  Labeled cells like
/// svc.shard_served{shard="0"} thus export as one labeled series per
/// shard under a single family, rather than having the braces mangled to
/// underscores.
struct SplitName {
  std::string family;
  std::string labels;  // without braces; empty when unlabeled
};

SplitName split_labels(std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {prometheus_name(name), {}};
  }
  return {prometheus_name(name.substr(0, brace)),
          std::string(name.substr(brace + 1, name.size() - brace - 2))};
}

}  // namespace

std::string prometheus_exposition() {
  // Counters and gauges are flattened into scalar rows and sorted by
  // family, so samples of one family stay contiguous under a single
  // `# TYPE` line however their labeled cells interleave in the registry.
  struct Scalar {
    std::string family;
    std::string labels;
    const char* type;
    std::string value;
  };
  std::vector<Scalar> scalars;
  for (const CounterSample& c : Registry::global().counters()) {
    SplitName n = split_labels(c.name);
    scalars.push_back({std::move(n.family), std::move(n.labels), "counter",
                       std::to_string(c.value)});
  }
  for (const GaugeSample& g : Registry::global().gauges()) {
    SplitName n = split_labels(g.name);
    scalars.push_back(
        {n.family, n.labels, "gauge", std::to_string(g.value)});
    scalars.push_back({n.family + "_max", std::move(n.labels), "gauge",
                       std::to_string(g.max_value)});
  }
  std::stable_sort(scalars.begin(), scalars.end(),
                   [](const Scalar& a, const Scalar& b) {
                     return a.family < b.family;
                   });

  std::string out;
  std::string_view last_family;
  for (const Scalar& s : scalars) {
    if (s.family != last_family) {
      out += "# TYPE " + s.family + " " + s.type + "\n";
      last_family = s.family;
    }
    out += s.family;
    if (!s.labels.empty()) out += "{" + s.labels + "}";
    out += " " + s.value + "\n";
  }

  std::vector<HistogramSample> hists = Registry::global().histograms();
  struct HRow {
    SplitName n;
    const HistogramSample* h;
  };
  std::vector<HRow> hrows;
  hrows.reserve(hists.size());
  for (const HistogramSample& h : hists) hrows.push_back({split_labels(h.name), &h});
  std::stable_sort(hrows.begin(), hrows.end(),
                   [](const HRow& a, const HRow& b) {
                     return a.n.family < b.n.family;
                   });
  last_family = {};
  for (const HRow& r : hrows) {
    const std::string& name = r.n.family;
    const HistogramSample& h = *r.h;
    if (name != last_family) {
      out += "# TYPE " + name + " histogram\n";
      last_family = name;
    }
    // Extra labels go before `le` inside the bucket braces.
    const std::string bucket_prefix =
        r.n.labels.empty() ? "" : r.n.labels + ",";
    const std::string suffix =
        r.n.labels.empty() ? "" : "{" + r.n.labels + "}";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.snapshot.buckets[i] == 0) continue;
      cumulative += h.snapshot.buckets[i];
      out += name + "_bucket{" + bucket_prefix + "le=\"" +
             std::to_string(histogram_bucket_upper(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{" + bucket_prefix + "le=\"+Inf\"} " +
           std::to_string(h.snapshot.count) + "\n";
    out += name + "_sum" + suffix + " " + std::to_string(h.snapshot.sum) +
           "\n";
    out += name + "_count" + suffix + " " +
           std::to_string(h.snapshot.count) + "\n";
  }
  return out;
}

struct TelemetrySink::Impl {
  mutable Mutex mu;
  std::vector<RequestTrace> traces STRT_GUARDED_BY(mu);
  std::uint64_t flushes STRT_GUARDED_BY(mu) = 0;
  /// Serializes whole flushes: service shards flush concurrently, and
  /// the tmp+rename, append, and rewrite steps of two flushes must not
  /// interleave on the same files.
  Mutex flush_mu;
};

TelemetrySink::TelemetrySink(std::string dir)
    : dir_(std::move(dir)), impl_(new Impl) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    delete impl_;
    throw std::runtime_error("TelemetrySink: cannot create directory '" +
                             dir_ + "'");
  }
}

TelemetrySink::~TelemetrySink() {
  flush();
  delete impl_;
}

void TelemetrySink::add_trace(RequestTrace trace) {
  if (trace.empty()) return;
  const MutexLock lock(impl_->mu);
  impl_->traces.push_back(std::move(trace));
}

std::uint64_t TelemetrySink::flushes() const {
  const MutexLock lock(impl_->mu);
  return impl_->flushes;
}

void TelemetrySink::flush() {
  const MutexLock io_lock(impl_->flush_mu);
  std::uint64_t seq = 0;
  std::vector<RequestTrace> traces;
  {
    const MutexLock lock(impl_->mu);
    seq = ++impl_->flushes;
    traces = impl_->traces;  // copy: keep accumulating across flushes
  }

  // metrics.prom: write-to-tmp + rename, so scrapers never read a
  // half-written exposition.
  const std::string prom = prometheus_exposition();
  const std::string prom_path = dir_ + "/metrics.prom";
  const std::string tmp_path = prom_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (out) {
      out << prom;
      out.close();
      std::error_code ec;
      std::filesystem::rename(tmp_path, prom_path, ec);
    }
  }

  // events.jsonl: one report line per flush (append-only).
  {
    std::ofstream out(dir_ + "/events.jsonl", std::ios::app);
    if (out) {
      RunReport event("telemetry.flush");
      event.put("seq", seq);
      event.put("traces", static_cast<std::int64_t>(traces.size()));
      event.capture();
      event.write_json_line(out);
    }
  }

  // trace.json: the full Chrome trace so far (rewritten whole so the
  // file is always a complete, loadable JSON document).
  {
    std::ofstream out(dir_ + "/trace.json", std::ios::trunc);
    if (out) out << trace_to_chrome_json(traces);
  }
}

}  // namespace strt::obs
