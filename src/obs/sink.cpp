#include "obs/sink.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"

namespace strt::obs {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 5);
  out += "strt_";
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string prometheus_exposition() {
  std::string out;
  for (const CounterSample& c : Registry::global().counters()) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : Registry::global().gauges()) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
    out += "# TYPE " + name + "_max gauge\n";
    out += name + "_max " + std::to_string(g.max_value) + "\n";
  }
  for (const HistogramSample& h : Registry::global().histograms()) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.snapshot.buckets[i] == 0) continue;
      cumulative += h.snapshot.buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(histogram_bucket_upper(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           std::to_string(h.snapshot.count) + "\n";
    out += name + "_sum " + std::to_string(h.snapshot.sum) + "\n";
    out += name + "_count " + std::to_string(h.snapshot.count) + "\n";
  }
  return out;
}

struct TelemetrySink::Impl {
  mutable Mutex mu;
  std::vector<RequestTrace> traces STRT_GUARDED_BY(mu);
  std::uint64_t flushes STRT_GUARDED_BY(mu) = 0;
};

TelemetrySink::TelemetrySink(std::string dir)
    : dir_(std::move(dir)), impl_(new Impl) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    delete impl_;
    throw std::runtime_error("TelemetrySink: cannot create directory '" +
                             dir_ + "'");
  }
}

TelemetrySink::~TelemetrySink() {
  flush();
  delete impl_;
}

void TelemetrySink::add_trace(RequestTrace trace) {
  if (trace.empty()) return;
  const MutexLock lock(impl_->mu);
  impl_->traces.push_back(std::move(trace));
}

std::uint64_t TelemetrySink::flushes() const {
  const MutexLock lock(impl_->mu);
  return impl_->flushes;
}

void TelemetrySink::flush() {
  std::uint64_t seq = 0;
  std::vector<RequestTrace> traces;
  {
    const MutexLock lock(impl_->mu);
    seq = ++impl_->flushes;
    traces = impl_->traces;  // copy: keep accumulating across flushes
  }

  // metrics.prom: write-to-tmp + rename, so scrapers never read a
  // half-written exposition.
  const std::string prom = prometheus_exposition();
  const std::string prom_path = dir_ + "/metrics.prom";
  const std::string tmp_path = prom_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (out) {
      out << prom;
      out.close();
      std::error_code ec;
      std::filesystem::rename(tmp_path, prom_path, ec);
    }
  }

  // events.jsonl: one report line per flush (append-only).
  {
    std::ofstream out(dir_ + "/events.jsonl", std::ios::app);
    if (out) {
      RunReport event("telemetry.flush");
      event.put("seq", seq);
      event.put("traces", static_cast<std::int64_t>(traces.size()));
      event.capture();
      event.write_json_line(out);
    }
  }

  // trace.json: the full Chrome trace so far (rewritten whole so the
  // file is always a complete, loadable JSON document).
  {
    std::ofstream out(dir_ + "/trace.json", std::ios::trunc);
    if (out) out << trace_to_chrome_json(traces);
  }
}

}  // namespace strt::obs
