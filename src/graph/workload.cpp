#include "graph/workload.hpp"

#include <unordered_map>
#include <vector>

#include "base/assert.hpp"

namespace strt {

Staircase rbf(const DrtTask& task, Time horizon, ExploreStats* stats) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  if (horizon == Time(0)) return Staircase(horizon);
  ExploreOptions opts;
  opts.elapsed_limit = horizon - Time(1);
  ExploreResult res = explore_paths(task, opts);
  if (stats) *stats = res.stats;
  std::vector<Step> pts;
  pts.reserve(res.frontier.size());
  for (std::int32_t idx : res.frontier) {
    const PathState& s = res.arena[static_cast<std::size_t>(idx)];
    pts.push_back(Step{s.elapsed + Time(1), s.work});
  }
  return Staircase::from_points(std::move(pts), horizon);
}

Work dbf_point(const DrtTask& task, Time t) {
  STRT_REQUIRE(t >= Time(0), "dbf point must be non-negative");
  // g(v, tau) = demand of the best run starting at vertex v with tau ticks
  // of slack until the analysis deadline:
  //   g(v, tau) = [deadline(v) <= tau] * wcet(v)
  //             + max over edges (v -> u) of g(u, tau - separation).
  // Memoized, evaluated with an explicit stack (tau can be large).
  struct Frame {
    VertexId v;
    Time tau;
    std::size_t next_edge;
    Work best_children;
  };
  std::unordered_map<std::uint64_t, Work> memo;
  auto key = [&](VertexId v, Time tau) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))
            << 40) ^
           static_cast<std::uint64_t>(tau.count());
  };
  auto solved = [&](VertexId v, Time tau, Work* out) {
    if (tau <= Time(0)) {
      *out = Work(0);
      return true;
    }
    auto it = memo.find(key(v, tau));
    if (it == memo.end()) return false;
    *out = it->second;
    return true;
  };

  Work best = Work(0);
  for (VertexId root = 0;
       static_cast<std::size_t>(root) < task.vertex_count(); ++root) {
    Work rv;
    if (solved(root, t, &rv)) {
      best = max(best, rv);
      continue;
    }
    std::vector<Frame> stack{Frame{root, t, 0, Work(0)}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto out = task.out_edges(f.v);
      bool descended = false;
      while (f.next_edge < out.size()) {
        const DrtEdge& e =
            task.edges()[static_cast<std::size_t>(out[f.next_edge])];
        ++f.next_edge;
        const Time child_tau = f.tau - e.separation;
        Work cv;
        if (solved(e.to, child_tau, &cv)) {
          f.best_children = max(f.best_children, cv);
        } else {
          stack.push_back(Frame{e.to, child_tau, 0, Work(0)});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      const DrtVertex& vert = task.vertex(f.v);
      const Work own = vert.deadline <= f.tau ? vert.wcet : Work(0);
      const Work total = own + f.best_children;
      memo[key(f.v, f.tau)] = total;
      const Frame done = f;
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().best_children =
            max(stack.back().best_children, total);
      } else {
        best = max(best, total);
      }
      (void)done;
    }
  }
  return best;
}

Staircase dbf(const DrtTask& task, Time horizon, ExploreStats* stats) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  STRT_REQUIRE(task.has_frame_separation(),
               "exact dbf staircase requires the frame separation "
               "property; use dbf_point for general deadlines");
  if (horizon == Time(0)) return Staircase(horizon);
  ExploreOptions opts;
  opts.elapsed_limit = max(Time(0), horizon - Time(1));
  ExploreResult res = explore_paths(task, opts);
  if (stats) *stats = res.stats;
  std::vector<Step> pts;
  for (std::int32_t idx : res.frontier) {
    const PathState& s = res.arena[static_cast<std::size_t>(idx)];
    const Time t = s.elapsed + task.vertex(s.vertex).deadline;
    if (t <= horizon) pts.push_back(Step{t, s.work});
  }
  return Staircase::from_points(std::move(pts), horizon);
}

}  // namespace strt
