#include "graph/scc.hpp"

#include <algorithm>

#include "base/assert.hpp"
#include "graph/cycle_ratio.hpp"

namespace strt {

SccResult strongly_connected_components(const DrtTask& task) {
  const auto n = static_cast<std::int32_t>(task.vertex_count());
  SccResult res;
  res.component.assign(static_cast<std::size_t>(n), -1);

  // Iterative Tarjan.
  std::vector<std::int32_t> index(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<VertexId> stack;
  std::int32_t next_index = 0;

  struct Frame {
    VertexId v;
    std::size_t next_edge;
  };
  std::vector<Frame> call;

  for (VertexId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call.push_back(Frame{root, 0});
    index[static_cast<std::size_t>(root)] = next_index;
    lowlink[static_cast<std::size_t>(root)] = next_index;
    ++next_index;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const auto out = task.out_edges(f.v);
      bool descended = false;
      while (f.next_edge < out.size()) {
        const DrtEdge& e =
            task.edges()[static_cast<std::size_t>(out[f.next_edge])];
        ++f.next_edge;
        const auto w = static_cast<std::size_t>(e.to);
        if (index[w] == -1) {
          index[w] = next_index;
          lowlink[w] = next_index;
          ++next_index;
          stack.push_back(e.to);
          on_stack[w] = true;
          call.push_back(Frame{e.to, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          auto& low = lowlink[static_cast<std::size_t>(f.v)];
          low = std::min(low, index[w]);
        }
      }
      if (descended) continue;
      const VertexId v = f.v;
      call.pop_back();
      if (!call.empty()) {
        auto& parent_low =
            lowlink[static_cast<std::size_t>(call.back().v)];
        parent_low = std::min(parent_low,
                              lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        // v is the root of an SCC: pop the stack down to v.
        std::vector<VertexId> members;
        for (;;) {
          const VertexId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          res.component[static_cast<std::size_t>(w)] = res.component_count;
          members.push_back(w);
          if (w == v) break;
        }
        std::sort(members.begin(), members.end());
        res.members.push_back(std::move(members));
        ++res.component_count;
      }
    }
  }
  return res;
}

bool is_strongly_connected(const DrtTask& task) {
  return strongly_connected_components(task).component_count == 1;
}

std::vector<std::optional<Rational>> scc_utilizations(const DrtTask& task) {
  const SccResult scc = strongly_connected_components(task);
  std::vector<std::optional<Rational>> result(
      static_cast<std::size_t>(scc.component_count));
  for (std::int32_t c = 0; c < scc.component_count; ++c) {
    const auto& members = scc.members[static_cast<std::size_t>(c)];
    // Build the induced sub-task.
    DrtBuilder b(task.name() + "#scc" + std::to_string(c));
    std::vector<VertexId> remap(task.vertex_count(), -1);
    for (const VertexId v : members) {
      remap[static_cast<std::size_t>(v)] = b.add_vertex(
          task.vertex(v).name, task.vertex(v).wcet, task.vertex(v).deadline);
    }
    bool has_edge = false;
    for (const DrtEdge& e : task.edges()) {
      const VertexId from = remap[static_cast<std::size_t>(e.from)];
      const VertexId to = remap[static_cast<std::size_t>(e.to)];
      if (from >= 0 && to >= 0) {
        b.add_edge(from, to, e.separation);
        has_edge = true;
      }
    }
    if (!has_edge) {
      result[static_cast<std::size_t>(c)] = std::nullopt;  // trivial SCC
      continue;
    }
    result[static_cast<std::size_t>(c)] =
        utilization(std::move(b).build());
  }
  return result;
}

}  // namespace strt
