// Dominance-pruned exploration of DRT release paths.
//
// The states of the exploration are triples (vertex, elapsed, work): some
// legal path releases its last job of type `vertex` exactly `elapsed`
// ticks after the path's first release, having released `work` total
// execution demand (including the last job).  Separations are taken at
// their minimum -- for every analysis in this library (request bounds,
// busy-window delay) denser is worse, so minimum-separation paths
// dominate their stretched variants.
//
// Dominance: at the same vertex, a state (elapsed', work') subsumes
// (elapsed, work) if elapsed' <= elapsed and work' >= work.  Both states
// have identical continuations (the DRT walk is memoryless), so every
// delay / request-bound candidate produced by the dominated state is
// matched or beaten by the dominator.  The surviving states per vertex
// form a Pareto skyline, kept sorted by elapsed time.
//
// This engine backs the structural delay analysis (core/structural) and
// the request-bound function computation (graph/workload); the ablation
// benchmark E6 runs it with pruning disabled to measure the effect.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hpp"
#include "graph/drt.hpp"

namespace strt {

/// One surviving exploration state.  `parent` indexes the arena
/// (ExploreResult::arena); -1 for path-initial states.
struct PathState {
  VertexId vertex{0};
  Time elapsed{0};
  Work work{0};
  std::int32_t parent{-1};
};

struct ExploreStats {
  std::uint64_t generated{0};  // states created (before dominance check)
  std::uint64_t expanded{0};   // states whose successors were generated
  std::uint64_t pruned{0};     // states discarded by dominance
  /// True when the exploration was cut short -- cancelled by the progress
  /// callback or stopped at the max_states cap.  Results derived from an
  /// aborted run cover only the explored prefix: every reported bound is
  /// a sound *lower* bound on the worst case, not the worst case itself.
  bool aborted{false};
};

/// Periodic progress snapshot handed to ExploreOptions::on_progress.
struct ExploreProgress {
  std::uint64_t generated{0};
  std::uint64_t expanded{0};
  std::uint64_t pruned{0};
  /// States accepted into the arena so far (memory proxy).
  std::size_t arena_size{0};
  /// States queued awaiting expansion (frontier width).
  std::size_t frontier_width{0};
  /// Wall time since the exploration started, seconds.
  double elapsed_seconds{0.0};
  /// Expansion throughput over the whole run so far.
  double states_per_second{0.0};
};

/// Return true to continue, false to cancel the exploration (the partial
/// result is returned with stats.aborted set).
using ExploreProgressFn = std::function<bool(const ExploreProgress&)>;

struct ExploreOptions {
  /// Inclusive bound on `elapsed`; paths are not extended past it.
  Time elapsed_limit{0};
  /// Disable dominance pruning (every distinct (vertex, elapsed, work)
  /// reachable state is kept).  Exponential; ablation/testing only.
  bool prune{true};
  /// Hard cap on arena size to keep unpruned runs from exhausting memory.
  /// Reaching it stops the exploration and returns the partial result
  /// with stats.aborted set (the same contract as a progress-callback
  /// cancellation), so capped ablation runs report their explored prefix
  /// instead of dying.
  std::size_t max_states{50'000'000};
  /// Invoke `on_progress` every this many expanded states (0 = never).
  /// Long unpruned/ablation runs become observable and cancellable at
  /// the cost of one branch per expansion.
  std::uint64_t progress_every{0};
  ExploreProgressFn on_progress{};
};

struct ExploreResult {
  /// All states ever accepted, in expansion order; parents index into
  /// this arena, enabling witness-path reconstruction.
  std::vector<PathState> arena;
  /// Indices into `arena` of the final (undominated) states.
  std::vector<std::int32_t> frontier;
  ExploreStats stats;

  /// Reconstructs the release path ending in `arena[state]`, in release
  /// order (first job first).
  [[nodiscard]] std::vector<PathState> path_to(std::int32_t state) const;
};

/// Explores all legal minimum-separation release paths of `task` whose
/// span fits within `opts.elapsed_limit`.
[[nodiscard]] ExploreResult explore_paths(const DrtTask& task,
                                          const ExploreOptions& opts);

}  // namespace strt
