#include "graph/drt.hpp"

#include <algorithm>
#include <ostream>

#include "base/assert.hpp"

namespace strt {

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit lane.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

}  // namespace

const DrtVertex& DrtTask::vertex(VertexId v) const {
  STRT_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
               "vertex id out of range");
  return vertices_[static_cast<std::size_t>(v)];
}

std::span<const std::int32_t> DrtTask::out_edges(VertexId v) const {
  STRT_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
               "vertex id out of range");
  const auto lo = static_cast<std::size_t>(out_index_[static_cast<std::size_t>(v)]);
  const auto hi =
      static_cast<std::size_t>(out_index_[static_cast<std::size_t>(v) + 1]);
  return {out_edges_.data() + lo, hi - lo};
}

Work DrtTask::max_wcet() const {
  Work m = Work(0);
  for (const DrtVertex& v : vertices_) m = max(m, v.wcet);
  return m;
}

bool DrtTask::has_frame_separation() const {
  for (const DrtEdge& e : edges_) {
    if (vertex(e.from).deadline > e.separation) return false;
  }
  return true;
}

bool DrtTask::is_cyclic() const {
  // Iterative three-color DFS over the CSR adjacency.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(vertex_count(), Color::kWhite);
  std::vector<std::pair<VertexId, std::size_t>> stack;
  for (VertexId s = 0; static_cast<std::size_t>(s) < vertex_count(); ++s) {
    if (color[static_cast<std::size_t>(s)] != Color::kWhite) continue;
    stack.emplace_back(s, 0);
    color[static_cast<std::size_t>(s)] = Color::kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto out = out_edges(v);
      if (next < out.size()) {
        const VertexId u = edges_[static_cast<std::size_t>(out[next])].to;
        ++next;
        auto& cu = color[static_cast<std::size_t>(u)];
        if (cu == Color::kGray) return true;
        if (cu == Color::kWhite) {
          cu = Color::kGray;
          stack.emplace_back(u, 0);
        }
      } else {
        color[static_cast<std::size_t>(v)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

DrtBuilder::DrtBuilder(std::string name) : name_(std::move(name)) {}

VertexId DrtBuilder::add_vertex(std::string name, Work wcet, Time deadline) {
  STRT_REQUIRE(wcet >= Work(1), "vertex wcet must be >= 1");
  STRT_REQUIRE(deadline >= Time(1), "vertex deadline must be >= 1");
  vertices_.push_back(DrtVertex{std::move(name), wcet, deadline});
  return static_cast<VertexId>(vertices_.size() - 1);
}

DrtBuilder& DrtBuilder::add_edge(VertexId from, VertexId to, Time separation) {
  STRT_REQUIRE(separation >= Time(1), "edge separation must be >= 1");
  const auto n = static_cast<std::int64_t>(vertices_.size());
  STRT_REQUIRE(from >= 0 && from < n, "edge source out of range");
  STRT_REQUIRE(to >= 0 && to < n, "edge target out of range");
  edges_.push_back(DrtEdge{from, to, separation});
  return *this;
}

DrtTask DrtBuilder::build() && {
  STRT_REQUIRE(!vertices_.empty(), "a DRT task needs at least one vertex");
  DrtTask task;
  task.name_ = std::move(name_);
  task.vertices_ = std::move(vertices_);
  task.edges_ = std::move(edges_);

  const std::size_t nv = task.vertices_.size();
  task.out_index_.assign(nv + 1, 0);
  for (const DrtEdge& e : task.edges_) {
    ++task.out_index_[static_cast<std::size_t>(e.from) + 1];
  }
  for (std::size_t i = 1; i <= nv; ++i) {
    task.out_index_[i] += task.out_index_[i - 1];
  }
  task.out_edges_.resize(task.edges_.size());
  std::vector<std::int32_t> cursor(task.out_index_.begin(),
                                   task.out_index_.end() - 1);
  for (std::size_t i = 0; i < task.edges_.size(); ++i) {
    const auto v = static_cast<std::size_t>(task.edges_[i].from);
    task.out_edges_[static_cast<std::size_t>(cursor[v]++)] =
        static_cast<std::int32_t>(i);
  }

  std::uint64_t fp = mix64(0x537472745461736bULL);  // "StrtTask"
  fp = hash_combine(fp, task.vertices_.size());
  for (const DrtVertex& v : task.vertices_) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(v.wcet.count()));
    fp = hash_combine(fp, static_cast<std::uint64_t>(v.deadline.count()));
  }
  fp = hash_combine(fp, task.edges_.size());
  for (const DrtEdge& e : task.edges_) {
    fp = hash_combine(fp, static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(e.from)));
    fp = hash_combine(fp, static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(e.to)));
    fp = hash_combine(fp, static_cast<std::uint64_t>(e.separation.count()));
  }
  task.fingerprint_ = fp;
  return task;
}

std::ostream& operator<<(std::ostream& os, const DrtTask& task) {
  os << "DrtTask " << task.name() << " {";
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    const DrtVertex& vert = task.vertex(v);
    os << ' ' << vert.name << "(e=" << vert.wcet << ",d=" << vert.deadline
       << ')';
  }
  os << " |";
  for (const DrtEdge& e : task.edges()) {
    os << ' ' << task.vertex(e.from).name << "->" << task.vertex(e.to).name
       << '[' << e.separation << ']';
  }
  return os << " }";
}

}  // namespace strt
