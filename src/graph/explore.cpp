#include "graph/explore.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <stdexcept>

#include "base/assert.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

/// Per-vertex Pareto skyline: elapsed -> (work, arena index), with work
/// strictly increasing in elapsed.
class Skyline {
 public:
  /// Returns false if (t, w) is dominated by an existing entry; otherwise
  /// inserts it (evicting entries it dominates) and returns true.
  bool insert(Time t, Work w, std::int32_t idx) {
    auto it = entries_.upper_bound(t);
    if (it != entries_.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.second.first >= w) return false;  // dominated
    }
    // Evict entries at time >= t with work <= w.
    while (it != entries_.end() && it->second.first <= w) {
      it = entries_.erase(it);
    }
    entries_.insert_or_assign(t, std::make_pair(w, idx));
    return true;
  }

  /// True if arena index `idx` is still the live entry at time t.
  [[nodiscard]] bool is_live(Time t, std::int32_t idx) const {
    auto it = entries_.find(t);
    return it != entries_.end() && it->second.second == idx;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [t, wi] : entries_) fn(t, wi.first, wi.second);
  }

 private:
  std::map<Time, std::pair<Work, std::int32_t>> entries_;
};

}  // namespace

std::vector<PathState> ExploreResult::path_to(std::int32_t state) const {
  STRT_REQUIRE(state >= 0 &&
                   static_cast<std::size_t>(state) < arena.size(),
               "state index out of range");
  std::vector<PathState> path;
  for (std::int32_t i = state; i >= 0;
       i = arena[static_cast<std::size_t>(i)].parent) {
    path.push_back(arena[static_cast<std::size_t>(i)]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ExploreResult explore_paths(const DrtTask& task, const ExploreOptions& opts) {
  STRT_REQUIRE(opts.elapsed_limit >= Time(0),
               "elapsed_limit must be non-negative");
  const obs::Span span("explore");
  ExploreResult res;
  // The clock is only consulted on the progress path; a run without a
  // callback never reads it.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point started =
      opts.progress_every != 0 ? Clock::now() : Clock::time_point{};
  std::vector<Skyline> skylines(opts.prune ? task.vertex_count() : 0);

  // Queue ordered by (elapsed ascending, work descending): children always
  // have strictly larger elapsed than their parent, so when a state is
  // popped the skyline below its elapsed is final and the liveness check
  // is exact.
  struct QItem {
    Time elapsed;
    Work work;
    std::int32_t idx;
  };
  auto cmp = [](const QItem& a, const QItem& b) {
    if (a.elapsed != b.elapsed) return a.elapsed > b.elapsed;
    return a.work < b.work;
  };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> queue(cmp);

  auto accept = [&](VertexId v, Time elapsed, Work work,
                    std::int32_t parent) {
    ++res.stats.generated;
    if (res.arena.size() >= opts.max_states) {
      throw std::runtime_error(
          "explore_paths: state cap exceeded (disable-pruning run?)");
    }
    const auto idx = static_cast<std::int32_t>(res.arena.size());
    if (opts.prune) {
      if (!skylines[static_cast<std::size_t>(v)].insert(elapsed, work, idx)) {
        ++res.stats.pruned;
        return;
      }
    }
    res.arena.push_back(PathState{v, elapsed, work, parent});
    queue.push(QItem{elapsed, work, idx});
  };

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    accept(v, Time(0), task.vertex(v).wcet, -1);
  }

  while (!queue.empty()) {
    const QItem item = queue.top();
    queue.pop();
    const PathState st = res.arena[static_cast<std::size_t>(item.idx)];
    if (opts.prune &&
        !skylines[static_cast<std::size_t>(st.vertex)].is_live(st.elapsed,
                                                               item.idx)) {
      continue;  // dominated after insertion
    }
    ++res.stats.expanded;
    if (opts.progress_every != 0 &&
        res.stats.expanded % opts.progress_every == 0 && opts.on_progress) {
      ExploreProgress p;
      p.generated = res.stats.generated;
      p.expanded = res.stats.expanded;
      p.pruned = res.stats.pruned;
      p.arena_size = res.arena.size();
      p.frontier_width = queue.size();
      p.elapsed_seconds =
          std::chrono::duration<double>(Clock::now() - started).count();
      p.states_per_second =
          p.elapsed_seconds > 0.0
              ? static_cast<double>(p.expanded) / p.elapsed_seconds
              : 0.0;
      if (!opts.on_progress(p)) {
        res.stats.aborted = true;
        break;
      }
    }
    for (std::int32_t ei : task.out_edges(st.vertex)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time elapsed = st.elapsed + e.separation;
      if (elapsed > opts.elapsed_limit) continue;
      accept(e.to, elapsed, st.work + task.vertex(e.to).wcet, item.idx);
    }
  }

  if (opts.prune) {
    for (const Skyline& s : skylines) {
      s.for_each([&](Time, Work, std::int32_t idx) {
        res.frontier.push_back(idx);
      });
    }
  } else {
    res.frontier.resize(res.arena.size());
    for (std::size_t i = 0; i < res.arena.size(); ++i) {
      res.frontier[i] = static_cast<std::int32_t>(i);
    }
  }

  // Registry totals are bumped once per run (not per state), so the hot
  // loop carries no instrumentation cost at all.
  static obs::Counter& c_runs = obs::counter("explore.runs");
  static obs::Counter& c_generated = obs::counter("explore.generated");
  static obs::Counter& c_expanded = obs::counter("explore.expanded");
  static obs::Counter& c_pruned = obs::counter("explore.pruned");
  static obs::Counter& c_aborted = obs::counter("explore.aborted");
  static obs::Gauge& g_arena = obs::gauge("explore.arena_size");
  static obs::Gauge& g_frontier = obs::gauge("explore.frontier_width");
  c_runs.add(1);
  c_generated.add(res.stats.generated);
  c_expanded.add(res.stats.expanded);
  c_pruned.add(res.stats.pruned);
  if (res.stats.aborted) c_aborted.add(1);
  g_arena.set(static_cast<std::int64_t>(res.arena.size()));
  g_frontier.set(static_cast<std::int64_t>(res.frontier.size()));
  return res;
}

}  // namespace strt
