#include "graph/explore.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "base/assert.hpp"
#include "graph/skyline.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

/// Arena size of the most recent run, used to pre-size the next run's
/// arena: explorations repeat with near-identical state counts inside
/// sensitivity sweeps, joint-FP candidate loops, and bench trials, so
/// last run's size is a good reservation hint.  Atomic because runs
/// execute concurrently under exec::parallel_for.
std::atomic<std::size_t> g_arena_hint{0};

/// Never reserve more than this many states up front (a one-off huge
/// ablation run must not make every later small run allocate big).
constexpr std::size_t kMaxReserve = std::size_t{1} << 22;

}  // namespace

std::vector<PathState> ExploreResult::path_to(std::int32_t state) const {
  STRT_REQUIRE(state >= 0 &&
                   static_cast<std::size_t>(state) < arena.size(),
               "state index out of range");
  std::vector<PathState> path;
  for (std::int32_t i = state; i >= 0;
       i = arena[static_cast<std::size_t>(i)].parent) {
    path.push_back(arena[static_cast<std::size_t>(i)]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ExploreResult explore_paths(const DrtTask& task, const ExploreOptions& opts) {
  STRT_REQUIRE(opts.elapsed_limit >= Time(0),
               "elapsed_limit must be non-negative");
  const obs::Span span("explore");
  ExploreResult res;
  res.arena.reserve(std::min({g_arena_hint.load(std::memory_order_relaxed),
                              opts.max_states, kMaxReserve}));
  // The clock is only consulted on the progress path; a run without a
  // callback never reads it.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point started =
      opts.progress_every != 0 ? Clock::now() : Clock::time_point{};
  std::vector<FlatSkyline> skylines(opts.prune ? task.vertex_count() : 0);

  // Monotone bucket queue over elapsed: children always have strictly
  // larger elapsed than their parent (separations are >= 1), so buckets
  // pop in order.  Within a bucket the queue hands out work-descending
  // order, so when a state is popped the skyline below its elapsed is
  // final and the liveness check is exact.
  BucketQueue queue(opts.elapsed_limit);

  // Hitting the state cap stops the exploration and marks the result
  // aborted (same contract as a progress-callback cancellation): the
  // explored prefix is sound, its bounds are lower bounds.
  bool capped = false;
  auto accept = [&](VertexId v, Time elapsed, Work work,
                    std::int32_t parent) {
    if (res.arena.size() >= opts.max_states) {
      capped = true;
      res.stats.aborted = true;
      return;
    }
    ++res.stats.generated;
    const auto idx = static_cast<std::int32_t>(res.arena.size());
    if (opts.prune) {
      if (!skylines[static_cast<std::size_t>(v)].insert(elapsed, work, idx)) {
        ++res.stats.pruned;
        return;
      }
    }
    res.arena.push_back(PathState{v, elapsed, work, parent});
    queue.push(elapsed, work, idx);
  };

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    accept(v, Time(0), task.vertex(v).wcet, -1);
  }

  Time elapsed(0);
  BucketQueue::Item item{};
  while (!capped && queue.pop(elapsed, item)) {
    const PathState st = res.arena[static_cast<std::size_t>(item.idx)];
    if (opts.prune &&
        !skylines[static_cast<std::size_t>(st.vertex)].is_live(st.elapsed,
                                                               item.idx)) {
      continue;  // dominated after insertion
    }
    ++res.stats.expanded;
    if (opts.progress_every != 0 &&
        res.stats.expanded % opts.progress_every == 0 && opts.on_progress) {
      ExploreProgress p;
      p.generated = res.stats.generated;
      p.expanded = res.stats.expanded;
      p.pruned = res.stats.pruned;
      p.arena_size = res.arena.size();
      p.frontier_width = queue.size();
      p.elapsed_seconds =
          std::chrono::duration<double>(Clock::now() - started).count();
      p.states_per_second =
          p.elapsed_seconds > 0.0
              ? static_cast<double>(p.expanded) / p.elapsed_seconds
              : 0.0;
      if (!opts.on_progress(p)) {
        res.stats.aborted = true;
        break;
      }
    }
    for (std::int32_t ei : task.out_edges(st.vertex)) {
      if (capped) break;
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time next = st.elapsed + e.separation;
      if (next > opts.elapsed_limit) continue;
      accept(e.to, next, st.work + task.vertex(e.to).wcet, item.idx);
    }
  }

  if (opts.prune) {
    for (const FlatSkyline& s : skylines) {
      s.for_each([&](Time, Work, std::int32_t idx) {
        res.frontier.push_back(idx);
      });
    }
  } else {
    res.frontier.resize(res.arena.size());
    for (std::size_t i = 0; i < res.arena.size(); ++i) {
      res.frontier[i] = static_cast<std::int32_t>(i);
    }
  }
  g_arena_hint.store(res.arena.size(), std::memory_order_relaxed);

  // Registry totals are bumped once per run (not per state), so the hot
  // loop carries no instrumentation cost at all.
  static obs::Counter& c_runs = obs::counter("explore.runs");
  static obs::Counter& c_generated = obs::counter("explore.generated");
  static obs::Counter& c_expanded = obs::counter("explore.expanded");
  static obs::Counter& c_pruned = obs::counter("explore.pruned");
  static obs::Counter& c_aborted = obs::counter("explore.aborted");
  static obs::Gauge& g_arena = obs::gauge("explore.arena_size");
  static obs::Gauge& g_frontier = obs::gauge("explore.frontier_width");
  static obs::Histogram& h_states = obs::histogram("explore.states");
  c_runs.add(1);
  c_generated.add(res.stats.generated);
  h_states.record(res.stats.generated);
  c_expanded.add(res.stats.expanded);
  c_pruned.add(res.stats.pruned);
  if (res.stats.aborted) c_aborted.add(1);
  g_arena.set(static_cast<std::int64_t>(res.arena.size()));
  g_frontier.set(static_cast<std::int64_t>(res.frontier.size()));
  return res;
}

}  // namespace strt
