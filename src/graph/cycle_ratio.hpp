// Long-run utilization of a DRT task: the maximum cycle ratio
//
//     U = max over cycles C of  (sum of wcet(v) for v in C)
//                             / (sum of separation(e) for e in C)
//
// computed exactly over the rationals.  U is the asymptotic slope of the
// request-bound function; the finitary busy-window analysis is feasible
// iff U is strictly below the long-run supply rate.
#pragma once

#include <optional>

#include "base/rational.hpp"
#include "graph/drt.hpp"

namespace strt {

/// Exact maximum cycle ratio; nullopt for acyclic graphs (the task can
/// only release finitely many jobs, long-run rate zero).
///
/// Algorithm: parametric search.  For a candidate ratio q = a/b, the test
/// graph with edge weights b*wcet(u) - a*separation(u,v) has a positive
/// cycle iff U > q and a zero-weight (but no positive) cycle iff U == q.
/// Candidates are driven by Stern-Brocot "simplest rational in the
/// interval" probes, which converges in O(log) probes because U's
/// continued-fraction expansion has logarithmic length.  Each probe is a
/// Bellman-Ford longest-path sweep, O(V * E).
[[nodiscard]] std::optional<Rational> utilization(const DrtTask& task);

namespace detail {

enum class CycleSign { kNegative, kZero, kPositive };

/// Sign of the best cycle of the parametric test graph at ratio a/b.
[[nodiscard]] CycleSign best_cycle_sign(const DrtTask& task,
                                        std::int64_t a, std::int64_t b);

/// Simplest rational strictly between lo and hi (both exclusive);
/// requires lo < hi.  "Simplest" = smallest denominator, then smallest
/// numerator.  Exposed for testing.
[[nodiscard]] Rational simplest_between(const Rational& lo,
                                        const Rational& hi);

}  // namespace detail
}  // namespace strt
