// Hot-path containers of the exploration engine (graph/explore).
//
// FlatSkyline: the per-vertex Pareto frontier as a flat sorted vector
// instead of a std::map.  The skyline invariant (elapsed strictly
// increasing => work strictly increasing) makes the entries sorted by
// *both* keys, so a dominance check is one binary search on elapsed and
// an eviction is one binary search on work plus a contiguous erase --
// no per-node allocation, no pointer chasing, and the whole frontier of
// a vertex sits in a few cache lines.
//
// BucketQueue: the exploration frontier as a monotone bucket queue
// indexed by elapsed ticks.  Every child state has strictly larger
// elapsed than its parent (edge separations are >= 1), so the pop cursor
// only moves forward and a bucket is complete by the time the cursor
// reaches it: push and pop are O(1) amortized, replacing per-state
// binary-heap churn.  Within a bucket, states are handed out in (work
// descending, insertion ascending) order -- the same order the previous
// priority-queue implementation used -- which expands heavy states first
// and maximizes the skyline evictions their children cause.
//
// Both containers are exercised directly by tests/test_skyline.cpp
// against the previous std::map / std::priority_queue implementations as
// oracles.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "base/types.hpp"

namespace strt {

/// Pareto skyline over (elapsed, work) with an arena index payload:
/// entries sorted by elapsed, work strictly increasing.
class FlatSkyline {
 public:
  struct Entry {
    Time t;
    Work w;
    std::int32_t idx;
  };

  /// Returns false if (t, w) is dominated by an existing entry; otherwise
  /// inserts it (evicting entries it dominates) and returns true.
  bool insert(Time t, Work w, std::int32_t idx) {
    // First entry strictly later than t.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), t,
        [](Time key, const Entry& e) { return key < e.t; });
    auto evict_from = it;
    if (it != entries_.begin()) {
      const Entry& prev = *std::prev(it);
      if (prev.w >= w) return false;  // dominated (covers equal t too)
      // An equal-elapsed entry with less work is itself dominated.
      if (prev.t == t) --evict_from;
    }
    // Entries at time >= t with work <= w form a contiguous run (work is
    // sorted); locate its end by binary search on work.
    const auto evict_to = std::upper_bound(
        evict_from, entries_.end(), w,
        [](Work key, const Entry& e) { return key < e.w; });
    if (evict_from != evict_to) {
      *evict_from = Entry{t, w, idx};
      entries_.erase(evict_from + 1, evict_to);
    } else {
      entries_.insert(evict_from, Entry{t, w, idx});
    }
    return true;
  }

  /// True if arena index `idx` is still the live entry at time t.
  [[nodiscard]] bool is_live(Time t, std::int32_t idx) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const Entry& e, Time key) { return e.t < key; });
    return it != entries_.end() && it->t == t && it->idx == idx;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.t, e.w, e.idx);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

/// Monotone bucket queue over elapsed ticks in [0, limit].  Pops ascend
/// in elapsed; pushes at or below the pop cursor are illegal (asserted by
/// construction in the explorer: children are strictly later than their
/// parent).  Buckets are direct-indexed up to kDenseLimit ticks and fall
/// back to an ordered map of buckets beyond it, so a pathological
/// elapsed_limit cannot allocate an arbitrarily large empty array.
class BucketQueue {
 public:
  struct Item {
    Work work;
    std::int32_t idx;
  };

  static constexpr std::int64_t kDenseLimit = std::int64_t{1} << 20;

  explicit BucketQueue(Time limit) {
    const std::int64_t n = limit.count() < 0 ? 0 : limit.count() + 1;
    if (n <= kDenseLimit) {
      dense_.resize(static_cast<std::size_t>(n));
    }
  }

  void push(Time elapsed, Work work, std::int32_t idx) {
    if (!dense_.empty()) {
      dense_[static_cast<std::size_t>(elapsed.count())].push_back(
          Item{work, idx});
    } else {
      sparse_[elapsed.count()].push_back(Item{work, idx});
    }
    ++size_;
  }

  /// Pops the next item in (elapsed asc, work desc, insertion asc) order.
  /// Returns false when the queue is empty.
  bool pop(Time& elapsed, Item& out) {
    if (size_ == 0) return false;
    if (!dense_.empty()) {
      while (drained_ == dense_[cursor_].size()) {
        dense_[cursor_].clear();
        drained_ = 0;
        ++cursor_;
      }
      std::vector<Item>& bucket = dense_[cursor_];
      if (drained_ == 0) order(bucket);  // first access; bucket is complete
      elapsed = Time(static_cast<std::int64_t>(cursor_));
      out = bucket[drained_++];
    } else {
      auto it = sparse_.begin();
      while (drained_ == it->second.size()) {
        it = sparse_.erase(it);
        drained_ = 0;
      }
      if (drained_ == 0) order(it->second);
      elapsed = Time(it->first);
      out = it->second[drained_++];
    }
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  // A bucket is complete when the cursor reaches it (pushes only go
  // forward), so it is ordered lazily, exactly once.
  static void order(std::vector<Item>& bucket) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Item& a, const Item& b) {
                if (a.work != b.work) return a.work > b.work;
                return a.idx < b.idx;
              });
  }

  std::vector<std::vector<Item>> dense_;
  std::map<std::int64_t, std::vector<Item>> sparse_;
  std::size_t cursor_ = 0;   // dense: current bucket
  std::size_t drained_ = 0;  // items already handed out of current bucket
  std::size_t size_ = 0;
};

}  // namespace strt
