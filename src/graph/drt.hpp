// The digraph real-time task model (DRT), the "structural workload" of
// the paper: a directed graph whose vertices are job types and whose
// edges constrain consecutive releases.
//
// A run of the task is a walk v1 -> v2 -> ... through the graph; job i
// has WCET wcet(vi) and relative deadline deadline(vi), and consecutive
// releases are separated by at least separation(vi, vi+1) ticks.  The
// classical models (periodic, sporadic, generalized multiframe,
// recurring branching) are all special cases -- see src/model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace strt {

using VertexId = std::int32_t;

/// One job type of a DRT task.
struct DrtVertex {
  std::string name;
  Work wcet{1};
  Time deadline{1};
};

/// Minimum-separation edge between consecutive job releases.
struct DrtEdge {
  VertexId from{0};
  VertexId to{0};
  Time separation{1};
};

/// A validated DRT task.  Build with DrtBuilder; instances are immutable.
class DrtTask {
 public:
  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const DrtVertex& vertex(VertexId v) const;
  [[nodiscard]] std::span<const DrtVertex> vertices() const {
    return vertices_;
  }
  [[nodiscard]] std::span<const DrtEdge> edges() const { return edges_; }

  /// Out-edges of `v` (indices into edges()).
  [[nodiscard]] std::span<const std::int32_t> out_edges(VertexId v) const;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Largest single-job execution demand.
  [[nodiscard]] Work max_wcet() const;

  /// True if every vertex deadline is at most every outgoing separation
  /// ("frame separation" property).  Under it, absolute deadlines along
  /// any path are non-decreasing, which the exact dbf staircase relies on.
  [[nodiscard]] bool has_frame_separation() const;

  /// True if the graph has at least one cycle (i.e. the task can release
  /// unboundedly many jobs).
  [[nodiscard]] bool is_cyclic() const;

  /// Content fingerprint over the analysis-relevant structure: vertex
  /// (wcet, deadline) lists and (from, to, separation) edge lists, in
  /// order.  Names are deliberately excluded -- they never influence a
  /// curve or a delay bound -- so structurally identical tasks share one
  /// fingerprint.  Computed once at build(); used by engine::Workspace to
  /// key memoized rbf/dbf curves.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  friend class DrtBuilder;
  DrtTask() = default;

  std::string name_;
  std::vector<DrtVertex> vertices_;
  std::vector<DrtEdge> edges_;
  std::vector<std::int32_t> out_index_;   // CSR offsets, size V+1
  std::vector<std::int32_t> out_edges_;   // CSR edge indices
  std::uint64_t fingerprint_{0};
};

/// Incremental construction of a DrtTask with validation at build().
class DrtBuilder {
 public:
  explicit DrtBuilder(std::string name);

  /// Adds a job type; wcet >= 1, deadline >= 1.  Returns its id.
  VertexId add_vertex(std::string name, Work wcet, Time deadline);

  /// Adds a release constraint; separation >= 1.  Parallel edges and
  /// self-loops are allowed (a self-loop models a sporadic recurrence).
  DrtBuilder& add_edge(VertexId from, VertexId to, Time separation);

  /// Validates and produces the task.  Throws std::invalid_argument on
  /// inconsistent input (bad ids, empty graph, non-positive parameters).
  [[nodiscard]] DrtTask build() &&;

 private:
  std::string name_;
  std::vector<DrtVertex> vertices_;
  std::vector<DrtEdge> edges_;
};

std::ostream& operator<<(std::ostream& os, const DrtTask& task);

}  // namespace strt
