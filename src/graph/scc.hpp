// Strongly connected components of a DRT task graph (Tarjan, iterative).
//
// Used to reason about a task's long-run structure: only vertices on or
// reachable into cycles matter asymptotically; per-SCC utilizations show
// which mode cluster is the bottleneck; the generator uses it to verify
// connectivity.
#pragma once

#include <optional>
#include <vector>

#include "base/rational.hpp"
#include "graph/drt.hpp"

namespace strt {

struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (id 0 has no incoming edges from other components... precisely:
  /// Tarjan emission order, every edge goes from a higher id to a lower
  /// or equal id).
  std::vector<std::int32_t> component;
  std::int32_t component_count{0};

  /// Vertices of each component, indexed by component id.
  std::vector<std::vector<VertexId>> members;
};

[[nodiscard]] SccResult strongly_connected_components(const DrtTask& task);

/// True if the whole graph is one strongly connected component.
[[nodiscard]] bool is_strongly_connected(const DrtTask& task);

/// Exact utilization (max cycle ratio) of each SCC, nullopt for trivial
/// components (single vertex without a self-loop).  The task utilization
/// is the max over components.
[[nodiscard]] std::vector<std::optional<Rational>> scc_utilizations(
    const DrtTask& task);

}  // namespace strt
