// Workload functions of a DRT task: request-bound and demand-bound.
#pragma once

#include <optional>

#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "graph/explore.hpp"

namespace strt {

/// Request-bound function on [0, horizon]:
///   rbf(t) = max work released by any legal run in a half-open window of
///            length t (i.e. over paths whose span is at most t - 1).
/// Exact; computed by dominance-pruned path exploration.  The result has
/// no tail -- finitary callers extend the horizon and recompute.
[[nodiscard]] Staircase rbf(const DrtTask& task, Time horizon,
                            ExploreStats* stats = nullptr);

/// Demand-bound function at a single point:
///   dbf(t) = max over legal runs starting at 0 of the total work of jobs
///            with release >= 0 and absolute deadline <= t.
/// Exact for arbitrary deadlines (memoized DP over (vertex, slack)).
[[nodiscard]] Work dbf_point(const DrtTask& task, Time t);

/// Exact demand-bound staircase on [0, horizon] for tasks with the frame
/// separation property (deadline <= every outgoing separation); throws
/// std::invalid_argument otherwise.  Under frame separation the absolute
/// deadlines along a path are non-decreasing, so each explored path
/// contributes the single point (span + deadline(last), total work).
[[nodiscard]] Staircase dbf(const DrtTask& task, Time horizon,
                            ExploreStats* stats = nullptr);

}  // namespace strt
