#include "graph/cycle_ratio.hpp"

#include <vector>

#include "base/assert.hpp"
#include "base/checked.hpp"

namespace strt {
namespace detail {

CycleSign best_cycle_sign(const DrtTask& task, std::int64_t a,
                          std::int64_t b) {
  STRT_REQUIRE(b > 0, "ratio denominator must be positive");
  const std::size_t nv = task.vertex_count();
  const auto edges = task.edges();

  std::vector<std::int64_t> w(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    w[i] = checked::sub(
        checked::mul(b, task.vertex(edges[i].from).wcet.count()),
        checked::mul(a, edges[i].separation.count()));
  }

  // Longest-path Bellman-Ford from a virtual source connected to every
  // vertex with weight 0 (equivalently: all distances start at 0, which
  // also makes every cycle reachable).
  std::vector<std::int64_t> d(nv, 0);
  bool changed = false;
  for (std::size_t pass = 0; pass <= nv; ++pass) {
    changed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto u = static_cast<std::size_t>(edges[i].from);
      const auto v = static_cast<std::size_t>(edges[i].to);
      const std::int64_t cand = checked::add(d[u], w[i]);
      if (cand > d[v]) {
        d[v] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (changed) return CycleSign::kPositive;  // still improving after V passes

  // Zero cycle iff the tight subgraph (edges with d[u] + w == d[v]) has a
  // cycle; any cycle's weight is -sum(slack), so zero exactly when all its
  // edges are tight.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(nv, Color::kWhite);
  std::vector<std::pair<VertexId, std::size_t>> stack;
  for (VertexId s = 0; static_cast<std::size_t>(s) < nv; ++s) {
    if (color[static_cast<std::size_t>(s)] != Color::kWhite) continue;
    stack.emplace_back(s, 0);
    color[static_cast<std::size_t>(s)] = Color::kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto out = task.out_edges(v);
      bool descended = false;
      while (next < out.size()) {
        const auto ei = static_cast<std::size_t>(out[next]);
        ++next;
        const DrtEdge& e = task.edges()[ei];
        if (d[static_cast<std::size_t>(e.from)] + w[ei] !=
            d[static_cast<std::size_t>(e.to)]) {
          continue;  // slack edge, not in the tight subgraph
        }
        auto& cu = color[static_cast<std::size_t>(e.to)];
        if (cu == Color::kGray) return CycleSign::kZero;
        if (cu == Color::kWhite) {
          cu = Color::kGray;
          stack.emplace_back(e.to, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      color[static_cast<std::size_t>(v)] = Color::kBlack;
      stack.pop_back();
    }
  }
  return CycleSign::kNegative;
}

Rational simplest_between(const Rational& lo, const Rational& hi) {
  STRT_REQUIRE(lo < hi, "simplest_between requires lo < hi");
  // Continued-fraction descent: if an integer lies strictly inside, it is
  // the simplest; otherwise both bounds share the integer part and we
  // recurse on the reciprocal of the fractional parts (order swaps).
  const std::int64_t fl = lo.floor();
  const Rational next_int(checked::add(fl, 1));
  if (next_int < hi) return next_int;
  const Rational frac_lo = lo - Rational(fl);
  const Rational frac_hi = hi - Rational(fl);
  if (frac_lo.is_zero()) {
    // Interval (fl, hi): the simplest is fl + 1/k with minimal k such
    // that fl + 1/k < hi, i.e. k = floor(1 / (hi - fl)) + 1.
    const Rational inv = Rational(1) / frac_hi;
    std::int64_t k = checked::add(inv.floor(), 1);
    if (Rational(1) / Rational(k) >= frac_hi) k = checked::add(k, 1);
    return Rational(fl) + Rational(1, k);
  }
  const Rational inner =
      simplest_between(Rational(1) / frac_hi, Rational(1) / frac_lo);
  return Rational(fl) + Rational(1) / inner;
}

}  // namespace detail

std::optional<Rational> utilization(const DrtTask& task) {
  if (!task.is_cyclic()) return std::nullopt;
  using detail::CycleSign;

  // Invariant: best_cycle_sign(lo) == positive (U > lo) and
  //            best_cycle_sign(hi) == negative (U < hi).
  Rational lo(0);  // wcets are >= 1 and a cycle exists, so U > 0
  STRT_ASSERT(detail::best_cycle_sign(task, 0, 1) == CycleSign::kPositive,
              "a cyclic task must have positive utilization");
  Rational hi(task.max_wcet().count() + 1);  // U <= max wcet / min sep <= max
  STRT_ASSERT(
      detail::best_cycle_sign(task, hi.num(), hi.den()) ==
          CycleSign::kNegative,
      "utilization upper bound violated");

  for (;;) {
    const Rational mid = detail::simplest_between(lo, hi);
    switch (detail::best_cycle_sign(task, mid.num(), mid.den())) {
      case CycleSign::kPositive:
        lo = mid;
        break;
      case CycleSign::kNegative:
        hi = mid;
        break;
      case CycleSign::kZero:
        return mid;
    }
  }
}

}  // namespace strt
