#include "snapshot/snapshot.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace strt::snapshot {

namespace {

/// Appends one little-endian fixed-width integer to the wire buffer.
template <class T>
void put(std::string& out, T v) {
  char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                                 0xff);
  }
  out.append(bytes, sizeof(T));
}

void put_i64(std::string& out, std::int64_t v) {
  put(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over one payload (or the whole
/// file).  All take() overloads return false on truncation and never
/// read past the end.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  template <class T>
  [[nodiscard]] bool take(T& out) {
    if (remaining() < sizeof(T)) return false;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    out = static_cast<T>(v);
    pos_ += sizeof(T);
    return true;
  }

  [[nodiscard]] bool take_i64(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!take(v)) return false;
    std::memcpy(&out, &v, sizeof(out));
    return true;
  }

  [[nodiscard]] bool take_bytes(std::size_t n, std::string_view& out) {
    if (remaining() < n) return false;
    out = bytes_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Caps a wire-declared element count against the bytes actually left:
/// a hostile count can promise at most remaining/min_elem_size elements,
/// so a reserve() can never balloon past the input size.
[[nodiscard]] bool plausible_count(std::uint64_t count, const Cursor& c,
                                   std::size_t min_elem_size) {
  return count <= c.remaining() / min_elem_size;
}

void encode_curves(std::string& out, const std::vector<CurveRecord>& recs) {
  put(out, static_cast<std::uint64_t>(recs.size()));
  for (const CurveRecord& r : recs) {
    put(out, r.fp);
    put_i64(out, r.horizon);
    put(out, static_cast<std::uint8_t>(r.has_tail ? 1 : 0));
    put_i64(out, r.tail_period);
    put_i64(out, r.tail_increment);
    put(out, static_cast<std::uint64_t>(r.times.size()));
    for (const std::int64_t t : r.times) put_i64(out, t);
    for (const std::int64_t v : r.values) put_i64(out, v);
  }
}

void encode_workload(std::string& out,
                     const std::vector<WorkloadRecord>& recs) {
  put(out, static_cast<std::uint64_t>(recs.size()));
  for (const WorkloadRecord& r : recs) {
    put(out, r.task_fp);
    put(out, static_cast<std::uint64_t>(r.by_horizon.size()));
    for (const auto& [horizon, fp] : r.by_horizon) {
      put_i64(out, horizon);
      put(out, fp);
    }
  }
}

void encode_sbf(std::string& out, const std::vector<SupplyRecord>& recs) {
  put(out, static_cast<std::uint64_t>(recs.size()));
  for (const SupplyRecord& r : recs) {
    put(out, static_cast<std::uint64_t>(r.key.size()));
    out += r.key;
    put_i64(out, r.horizon);
    put(out, r.curve_fp);
  }
}

void encode_derived(std::string& out, const std::vector<DerivedRecord>& recs) {
  put(out, static_cast<std::uint64_t>(recs.size()));
  for (const DerivedRecord& r : recs) {
    put(out, r.op);
    put(out, r.a);
    put(out, r.b);
    put(out, r.curve_fp);
  }
}

void encode_coarse(std::string& out, const std::vector<CoarseRecord>& recs) {
  put(out, static_cast<std::uint64_t>(recs.size()));
  for (const CoarseRecord& r : recs) {
    put(out, r.fp);
    put_i64(out, r.g);
    put(out, r.side);
    put(out, r.curve_fp);
    put_i64(out, r.max_error);
  }
}

[[nodiscard]] bool decode_curves(Cursor& c, std::vector<CurveRecord>& out) {
  std::uint64_t count = 0;
  if (!c.take(count) || !plausible_count(count, c, 8 + 8 + 1 + 8 + 8 + 8)) {
    return false;
  }
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CurveRecord r;
    std::uint8_t has_tail = 0;
    std::uint64_t n = 0;
    if (!c.take(r.fp) || !c.take_i64(r.horizon) || !c.take(has_tail) ||
        !c.take_i64(r.tail_period) || !c.take_i64(r.tail_increment) ||
        !c.take(n)) {
      return false;
    }
    if (has_tail > 1) return false;
    r.has_tail = has_tail == 1;
    if (!plausible_count(n, c, 16)) return false;  // 16 bytes per breakpoint
    r.times.reserve(n);
    r.values.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      std::int64_t t = 0;
      if (!c.take_i64(t)) return false;
      r.times.push_back(t);
    }
    for (std::uint64_t k = 0; k < n; ++k) {
      std::int64_t v = 0;
      if (!c.take_i64(v)) return false;
      r.values.push_back(v);
    }
    out.push_back(std::move(r));
  }
  return c.remaining() == 0;
}

[[nodiscard]] bool decode_workload(Cursor& c,
                                   std::vector<WorkloadRecord>& out) {
  std::uint64_t count = 0;
  if (!c.take(count) || !plausible_count(count, c, 16)) return false;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    WorkloadRecord r;
    std::uint64_t n = 0;
    if (!c.take(r.task_fp) || !c.take(n)) return false;
    if (!plausible_count(n, c, 16)) return false;
    r.by_horizon.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      std::int64_t horizon = 0;
      std::uint64_t fp = 0;
      if (!c.take_i64(horizon) || !c.take(fp)) return false;
      r.by_horizon.emplace_back(horizon, fp);
    }
    out.push_back(std::move(r));
  }
  return c.remaining() == 0;
}

[[nodiscard]] bool decode_sbf(Cursor& c, std::vector<SupplyRecord>& out) {
  std::uint64_t count = 0;
  if (!c.take(count) || !plausible_count(count, c, 8 + 8 + 8)) return false;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SupplyRecord r;
    std::uint64_t len = 0;
    std::string_view key;
    if (!c.take(len) || len > c.remaining() || !c.take_bytes(len, key) ||
        !c.take_i64(r.horizon) || !c.take(r.curve_fp)) {
      return false;
    }
    r.key = std::string(key);
    out.push_back(std::move(r));
  }
  return c.remaining() == 0;
}

[[nodiscard]] bool decode_derived(Cursor& c, std::vector<DerivedRecord>& out) {
  std::uint64_t count = 0;
  if (!c.take(count) || !plausible_count(count, c, 1 + 8 + 8 + 8)) {
    return false;
  }
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DerivedRecord r;
    if (!c.take(r.op) || !c.take(r.a) || !c.take(r.b) || !c.take(r.curve_fp)) {
      return false;
    }
    out.push_back(r);
  }
  return c.remaining() == 0;
}

[[nodiscard]] bool decode_coarse(Cursor& c, std::vector<CoarseRecord>& out) {
  std::uint64_t count = 0;
  if (!c.take(count) || !plausible_count(count, c, 8 + 8 + 1 + 8 + 8)) {
    return false;
  }
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CoarseRecord r;
    if (!c.take(r.fp) || !c.take_i64(r.g) || !c.take(r.side) ||
        !c.take(r.curve_fp) || !c.take_i64(r.max_error)) {
      return false;
    }
    if (r.side > 1) return false;
    out.push_back(r);
  }
  return c.remaining() == 0;
}

}  // namespace

std::uint64_t Snapshot::entry_count() const {
  std::uint64_t n = curves.size() + sbf.size() + derived.size() + coarse.size();
  for (const WorkloadRecord& r : rbf) n += r.by_horizon.size();
  for (const WorkloadRecord& r : dbf) n += r.by_horizon.size();
  return n;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string encode(const Snapshot& snap) {
  // Render the six section payloads first so the header can carry exact
  // lengths and checksums.
  std::string payloads[6];
  encode_curves(payloads[0], snap.curves);
  encode_workload(payloads[1], snap.rbf);
  encode_workload(payloads[2], snap.dbf);
  encode_sbf(payloads[3], snap.sbf);
  encode_derived(payloads[4], snap.derived);
  encode_coarse(payloads[5], snap.coarse);
  constexpr SectionId kIds[6] = {SectionId::kCurves, SectionId::kRbf,
                                 SectionId::kDbf,    SectionId::kSbf,
                                 SectionId::kDerived, SectionId::kCoarse};

  std::string out;
  std::size_t total = kMagic.size() + 16;
  for (const std::string& p : payloads) total += 24 + p.size();
  out.reserve(total);

  out += kMagic;
  put(out, kVersion);
  put(out, kEndianTag);
  put(out, static_cast<std::uint32_t>(6));
  put(out, static_cast<std::uint32_t>(0));
  for (std::size_t i = 0; i < 6; ++i) {
    put(out, static_cast<std::uint32_t>(kIds[i]));
    put(out, static_cast<std::uint32_t>(0));
    put(out, static_cast<std::uint64_t>(payloads[i].size()));
    out += payloads[i];
    put(out, fnv1a64(payloads[i]));
  }
  return out;
}

DecodeResult decode(std::string_view bytes) {
  DecodeResult result;
  const auto reject = [&result](std::string reason) {
    result.ok = false;
    result.error = std::move(reason);
    result.snap = Snapshot{};
    return result;
  };

  Cursor c(bytes);
  std::string_view magic;
  if (!c.take_bytes(kMagic.size(), magic)) return reject("truncated header");
  if (magic != kMagic) return reject("bad magic");
  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint32_t section_count = 0;
  std::uint32_t reserved = 0;
  if (!c.take(version) || !c.take(endian) || !c.take(section_count) ||
      !c.take(reserved)) {
    return reject("truncated header");
  }
  if (version != kVersion) {
    return reject("unsupported version " + std::to_string(version));
  }
  if (endian != kEndianTag) return reject("endianness mismatch");
  if (reserved != 0) return reject("nonzero reserved header field");
  if (section_count > 6) return reject("too many sections");

  bool seen[7] = {};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::uint32_t id = 0;
    std::uint32_t sec_reserved = 0;
    std::uint64_t len = 0;
    if (!c.take(id) || !c.take(sec_reserved) || !c.take(len)) {
      return reject("truncated section header");
    }
    if (sec_reserved != 0) return reject("nonzero reserved section field");
    if (id < 1 || id > 6) return reject("unknown section id");
    if (seen[id]) return reject("duplicate section");
    seen[id] = true;
    std::string_view payload;
    std::uint64_t checksum = 0;
    if (!c.take_bytes(len, payload) || !c.take(checksum)) {
      return reject("truncated section payload");
    }
    if (checksum != fnv1a64(payload)) {
      return reject("section checksum mismatch");
    }
    Cursor pc(payload);
    bool ok = false;
    switch (static_cast<SectionId>(id)) {
      case SectionId::kCurves:
        ok = decode_curves(pc, result.snap.curves);
        break;
      case SectionId::kRbf:
        ok = decode_workload(pc, result.snap.rbf);
        break;
      case SectionId::kDbf:
        ok = decode_workload(pc, result.snap.dbf);
        break;
      case SectionId::kSbf:
        ok = decode_sbf(pc, result.snap.sbf);
        break;
      case SectionId::kDerived:
        ok = decode_derived(pc, result.snap.derived);
        break;
      case SectionId::kCoarse:
        ok = decode_coarse(pc, result.snap.coarse);
        break;
    }
    if (!ok) return reject("malformed section payload");
  }
  if (c.remaining() != 0) return reject("trailing bytes after last section");
  result.ok = true;
  return result;
}

bool validate_curve(const CurveRecord& rec, std::string* error) {
  const auto fail = [error](const char* reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (rec.times.size() != rec.values.size()) {
    return fail("breakpoint arrays disagree in length");
  }
  if (rec.times.empty()) return fail("curve has no breakpoints");
  if (rec.times.front() != 0) return fail("first breakpoint not at t = 0");
  for (std::size_t i = 1; i < rec.times.size(); ++i) {
    if (rec.times[i] <= rec.times[i - 1]) {
      return fail("breakpoint times not strictly increasing");
    }
    if (rec.values[i] <= rec.values[i - 1]) {
      return fail("breakpoint values not strictly increasing");
    }
  }
  if (rec.horizon < rec.times.back()) {
    return fail("horizon below the last breakpoint");
  }
  if (rec.has_tail) {
    if (rec.tail_period < 1) return fail("tail period below 1");
    if (rec.tail_period > rec.horizon) return fail("tail period > horizon");
    if (rec.tail_increment < 0) return fail("negative tail increment");
  } else if (rec.tail_period != 1 || rec.tail_increment != 0) {
    return fail("tail fields set without a tail");
  }
  return true;
}

bool write_file(const std::string& path, const Snapshot& snap,
                std::string* error) {
  const std::string encoded = encode(snap);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp_path;
      return false;
    }
    out.write(encoded.data(),
              static_cast<std::streamsize>(encoded.size()));
    out.close();
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp_path;
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "rename to " + path + " failed: " + ec.message();
    }
    std::error_code rm_ec;
    std::filesystem::remove(tmp_path, rm_ec);
    return false;
  }
  return true;
}

LoadResult read_file(const std::string& path) {
  LoadResult result;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    result.status = LoadResult::Status::kMissing;
    return result;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.status = LoadResult::Status::kRejected;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    result.status = LoadResult::Status::kRejected;
    result.error = "read error on " + path;
    return result;
  }
  const std::string bytes = std::move(buf).str();
  DecodeResult decoded = decode(bytes);
  if (!decoded.ok) {
    result.status = LoadResult::Status::kRejected;
    result.error = std::move(decoded.error);
    return result;
  }
  result.status = LoadResult::Status::kOk;
  result.snap = std::move(decoded.snap);
  return result;
}

}  // namespace strt::snapshot
