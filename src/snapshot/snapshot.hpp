// strt::snapshot -- the versioned on-disk memo cache format
// (`strt.engine.snapshot.v1`).
//
// A snapshot persists an engine::Workspace's fingerprint-keyed memo
// families across process lifetimes: the interned curves themselves plus
// the rbf/dbf (with their full horizon metadata, so horizon-extension
// reuse works after reload), sbf, derived-op, and coarse-curve entries
// that reference them.  Entries are keyed by name-blind structural
// fingerprints, so a snapshot written by one server warms any other
// server analyzing the same systems -- the cross-lifetime analogue of
// the in-memory warm-batch speedup.
//
// Layout (all integers little-endian, fixed width):
//
//   header   8 bytes magic "STRTSNAP"
//            u32 version (= 1)
//            u32 endianness tag (= 0x01020304, written natively: a
//                byte-swapped reader sees 0x04030201 and rejects)
//            u32 section count
//            u32 reserved (= 0)
//   section  u32 section id   (1 curves, 2 rbf, 3 dbf, 4 sbf,
//                              5 derived, 6 coarse)
//            u32 reserved (= 0)
//            u64 payload length in bytes
//            payload
//            u64 FNV-1a checksum of the payload bytes
//
// Section payloads are a u64 record count followed by that many records
// (see the *Record structs below for field order).  Memo records
// reference curves by the curve's content fingerprint; every referenced
// fingerprint must appear in the curves section.
//
// The decoder is written for hostile input (it is libFuzzer-hardened):
// every read is bounds-checked, counts are sanity-capped against the
// remaining payload, and any violation yields a clean DecodeResult
// error -- never a crash, never a partial snapshot.  Semantic
// validation (canonical staircase shape, fingerprint authenticity) is
// layered: validate_curve() here checks record-level canonical form;
// the engine loader re-fingerprints every curve before trusting a key.
//
// Writing is crash-safe: write_file() streams to `<path>.tmp` and
// renames into place, so a reader never observes a torn snapshot and a
// crashed writer leaves the previous snapshot intact.
//
// This library is deliberately std-only (no strt dependencies), so it
// sits below the engine in the link order and tools can reuse it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace strt::snapshot {

inline constexpr std::string_view kMagic = "STRTSNAP";
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// Section ids, in the order sections are written.
enum class SectionId : std::uint32_t {
  kCurves = 1,
  kRbf = 2,
  kDbf = 3,
  kSbf = 4,
  kDerived = 5,
  kCoarse = 6,
};

/// One interned curve: canonical breakpoints, horizon, optional periodic
/// tail, keyed by its content fingerprint.
struct CurveRecord {
  std::uint64_t fp = 0;
  std::int64_t horizon = 0;
  bool has_tail = false;
  std::int64_t tail_period = 1;
  std::int64_t tail_increment = 0;
  std::vector<std::int64_t> times;
  std::vector<std::int64_t> values;

  friend bool operator==(const CurveRecord&, const CurveRecord&) = default;
};

/// One task's rbf or dbf memo group: every horizon already answered,
/// each mapping to a curve fingerprint.  The largest horizon doubles as
/// the truncation source after reload (horizon-extension reuse).
struct WorkloadRecord {
  std::uint64_t task_fp = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> by_horizon;

  friend bool operator==(const WorkloadRecord&, const WorkloadRecord&) =
      default;
};

/// One sbf memo entry: (supply description, horizon) -> curve.
struct SupplyRecord {
  std::string key;
  std::int64_t horizon = 0;
  std::uint64_t curve_fp = 0;

  friend bool operator==(const SupplyRecord&, const SupplyRecord&) = default;
};

/// One derived-op memo entry: (op, operand fingerprints) -> curve.
struct DerivedRecord {
  std::uint8_t op = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t curve_fp = 0;

  friend bool operator==(const DerivedRecord&, const DerivedRecord&) = default;
};

/// One coarse-curve memo entry: (curve fp, granularity, side) -> curve
/// plus its certified max error.
struct CoarseRecord {
  std::uint64_t fp = 0;
  std::int64_t g = 0;
  std::uint8_t side = 0;  // 0 = lower, 1 = upper
  std::uint64_t curve_fp = 0;
  std::int64_t max_error = 0;

  friend bool operator==(const CoarseRecord&, const CoarseRecord&) = default;
};

/// A decoded (or to-be-encoded) snapshot: one vector per section.
struct Snapshot {
  std::vector<CurveRecord> curves;
  std::vector<WorkloadRecord> rbf;
  std::vector<WorkloadRecord> dbf;
  std::vector<SupplyRecord> sbf;
  std::vector<DerivedRecord> derived;
  std::vector<CoarseRecord> coarse;

  /// Total entries across every section (the snapshot.entries gauge);
  /// workload records count one entry per cached horizon.
  [[nodiscard]] std::uint64_t entry_count() const;
};

/// FNV-1a 64-bit over a byte string (the per-section checksum; also
/// implemented in tools/check_snapshot.py -- keep the two in sync).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Serializes `snap` into the v1 wire format.
[[nodiscard]] std::string encode(const Snapshot& snap);

struct DecodeResult {
  bool ok = false;
  Snapshot snap;
  std::string error;  // human-readable rejection reason when !ok
};

/// Parses the v1 wire format.  Never throws; any malformation (bad
/// magic, wrong version or endianness, truncation, checksum mismatch,
/// out-of-bounds count) yields ok = false and a reason.
[[nodiscard]] DecodeResult decode(std::string_view bytes);

/// Record-level canonical-form check for one curve: times strictly
/// increasing and starting at 0, values strictly increasing, parallel
/// arrays, horizon >= the last breakpoint, tail period in [1, horizon]
/// with increment >= 0.  Returns false (with a reason when `error` is
/// non-null) instead of trusting hostile input.
[[nodiscard]] bool validate_curve(const CurveRecord& rec,
                                  std::string* error = nullptr);

/// Crash-safe write: encode + stream to `<path>.tmp` + rename into
/// place.  False (with a reason) on any filesystem failure; the
/// previous snapshot at `path`, if any, is left intact.
[[nodiscard]] bool write_file(const std::string& path, const Snapshot& snap,
                              std::string* error = nullptr);

struct LoadResult {
  enum class Status : std::uint8_t {
    kOk,        // decoded snapshot in `snap`
    kMissing,   // no file at `path` (a cold start, not an error)
    kRejected,  // unreadable or malformed (reason in `error`)
  };
  Status status = Status::kMissing;
  Snapshot snap;
  std::string error;
};

/// Reads and decodes a snapshot file.  Never throws.
[[nodiscard]] LoadResult read_file(const std::string& path);

}  // namespace strt::snapshot
