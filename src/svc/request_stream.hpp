// strt::svc -- reading AnalysisRequest streams from text.
//
// Two wire formats, both one request per line ('#' comments and blank
// lines ignored), designed for the strt_serve driver but reusable by any
// front end:
//
//   JSONL -- one JSON object per line:
//
//     {"id": 7, "kind": "structural",
//      "task": "task t\nvertex A wcet 2 deadline 10\nedge A A sep 10",
//      "supply": "tdma slot 3 cycle 8",
//      "max_states": 100000, "deadline_ms": 50}
//
//     Multi-task kinds pass "tasks": [<text>, ...] instead of "task"
//     (slot conventions per kind: see svc/api.hpp).  Optional knobs:
//     id, supply, max_states, progress_every, prune, want_witness,
//     max_paths, delay_cap, max_wcet_growth, deadline_ms.  Unknown keys
//     are ignored.
//
//   CSV -- `id,kind,supply,task_file[,task_file...]` per line; task
//     files are read relative to `task_dir` and hold the plain-text task
//     format of io/parse.hpp.  Fields follow csv_escape() quoting.
//
// Parsing collects req.* / parse.* diagnostics instead of throwing;
// `request` is set iff the line round-tripped without errors.  Semantic
// lint findings on well-formed tasks are *not* duplicated here -- the
// run_request() validate front gate re-derives them on the built model.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "check/diagnostics.hpp"
#include "svc/api.hpp"

namespace strt::svc {

/// Outcome of parsing one request line.
struct RequestParse {
  std::optional<AnalysisRequest> request;  // set iff diagnostics.ok()
  check::CheckResult diagnostics;
};

/// Parses one JSONL request line.  `lineno` (1-based; 0 = unknown) seeds
/// the diagnostic locations ("line 7: ...").
[[nodiscard]] RequestParse parse_request_json(std::string_view line,
                                              std::size_t lineno = 0);

/// Parses one CSV request line; task-file paths resolve under `task_dir`
/// (empty = the working directory).
[[nodiscard]] RequestParse parse_request_csv(std::string_view line,
                                             std::size_t lineno = 0,
                                             std::string_view task_dir = {});

enum class StreamFormat : std::uint8_t { kJsonl, kCsv };

/// "jsonl" / "csv"; nullopt for anything else.
[[nodiscard]] std::optional<StreamFormat> format_from_name(
    std::string_view name);

/// Reads a whole request stream: one RequestParse per non-blank,
/// non-comment line, in stream order (malformed lines included, with
/// their diagnostics).
[[nodiscard]] std::vector<RequestParse> read_request_stream(
    std::istream& is, StreamFormat format, std::string_view task_dir = {});

}  // namespace strt::svc
