// strt::svc -- the sharded batch analysis service.
//
// A Service owns one long-lived engine::Workspace (striped intern/memo
// tables, see engine/workspace.hpp) shared by N worker shards, each
// behind its own bounded lock-free MPMC admission ring
// (svc/mpmc_queue.hpp), and serves AnalysisRequests submitted from any
// thread:
//
//   * Routing: requests are routed by request_fingerprint() -- task set
//     plus supply -- so every request about the same system lands on the
//     shard that owns its memo warmth.  Distinct fingerprints are
//     assigned to shards round-robin in order of first appearance, which
//     balances distinct systems across shards deterministically (a plain
//     fp % shards split would leave shards idle whenever fingerprints
//     collide modulo N).
//   * Admission: each shard's ring holds queue_capacity / shards
//     requests (>= 1).  submit() blocks while the routed shard is full
//     (backpressure); try_submit() sheds load instead, answering
//     kRejected and bumping the svc.shed counter.  The svc.queue_depth
//     gauge is sampled at every admission.
//   * Batching: each shard's dispatch round drains up to max_batch
//     queued requests and groups them by fingerprint in arrival order.
//     The first request of a group runs first and warms every
//     rbf/dbf/sbf/derived-curve memo the group shares; the rest of the
//     group answers mostly from the cache.  With one shard the warm tail
//     fans out across the strt::exec pool; with several shards the tail
//     runs on the shard worker itself -- the shards *are* the
//     parallelism, and nested pool runs would serialize on the pool's
//     run lock.
//   * Deadlines/cancellation: a request whose wall-clock budget expired
//     while queued is answered kDeadlineExpired without running; budgets
//     and CancelTokens of running requests are checked at every explorer
//     progress callback (see svc/api.hpp).
//   * Results are bit-identical to run_request() on a private workspace
//     whatever the shard count: the Workspace cache-on/off, striping,
//     and thread-count contracts guarantee warmth never changes an
//     answer (enforced by tests/test_svc.cpp and bench/bench_service.cpp
//     for shards=1 vs shards=N).
//
// Shutdown: the destructor stops admission, drains every queued request
// on every shard, and joins the shard workers.
//
// Observability: svc.submitted / svc.rejected / svc.shed / svc.batches /
// svc.batched_requests global counters on top of the per-request
// counters run_request() bumps, plus per-shard rollups published with
// Prometheus-style labels -- svc.shard_served{shard="K"},
// svc.shard_batches{shard="K"}, svc.shard_queue_depth{shard="K"} -- that
// the run report captures and obs::TelemetrySink exports as labeled
// series.  stats() returns this service's numbers, including a per-shard
// breakdown.  Every outcome carries its request trace (queue wait
// measured from admission), and svc.request_latency_us /
// svc.queue_wait_us / svc.batch_size latency histograms accumulate in
// the global registry.  Setting ServiceOptions::telemetry_dir attaches
// an obs::TelemetrySink that shard workers flush after every round
// (metrics.prom + events.jsonl + trace.json, see obs/sink.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/api.hpp"

namespace strt::engine {
class Workspace;
}  // namespace strt::engine

namespace strt::svc {

struct ServiceOptions {
  /// Bounded admission capacity across all shards; each shard's ring
  /// holds queue_capacity / shards (>= 1) requests.  submit() blocks /
  /// try_submit() rejects when the routed shard is full.  Must be >= 1.
  std::size_t queue_capacity = 1024;
  /// Requests drained per shard dispatch round (the batching window).
  std::size_t max_batch = 64;
  /// Worker shard count.  0 (the default) resolves the environment
  /// variable STRT_SHARDS (falling back to 1).  Each shard is one worker
  /// thread with its own admission ring; requests are routed to shards
  /// by fingerprint, so memo warmth stays shard-local.  Pick roughly one
  /// shard per core serving distinct systems; more shards than distinct
  /// request fingerprints leaves the excess idle.
  std::size_t shards = 0;
  /// Group a round by request_fingerprint() before running.  Off =>
  /// strict arrival order, one batch per request (ablation switch;
  /// results are identical either way).
  bool batch_by_fingerprint = true;
  /// Fan a group's cache-warm tail across the exec pool.  Only effective
  /// with one shard: multi-shard services always run tails on the shard
  /// worker (ablation switch; results are identical either way).
  bool parallel_batches = true;
  /// Workspace memoization (the warm-cache amortization this service
  /// exists for; off is the cold ablation).
  bool caching = true;
  /// Construct paused: requests queue up (backpressure observable
  /// deterministically) until resume().
  bool start_paused = false;
  /// When non-empty, live telemetry is exported under this directory
  /// (created if missing; the constructor throws std::runtime_error when
  /// that fails): metrics.prom, events.jsonl, and trace.json, flushed
  /// after every dispatch round and once more at shutdown.  Telemetry
  /// never affects analysis results (bit-identity contract).
  std::string telemetry_dir;
  /// Persistent warm-start cache (strt.engine.snapshot.v1).  Empty (the
  /// default) resolves the STRT_SNAPSHOT environment variable; when the
  /// resolved path is non-empty the constructor loads it into the
  /// shared workspace (a missing or rejected file cold-starts clean)
  /// and the service saves back to it crash-safe (tmp+rename) on every
  /// drain() and at shutdown.  Results are bit-identical with the
  /// snapshot on, off, or rejected (Workspace contract).
  std::string snapshot_path;
  /// Bytes budget for the workspace's interned-curve storage.  0 (the
  /// default) resolves STRT_CACHE_BUDGET ("64M"-style suffixes allowed),
  /// else unlimited.  See engine::Workspace::set_cache_bytes_budget().
  std::uint64_t cache_bytes_budget = 0;
};

/// The shard count `opts` resolves to: opts.shards when non-zero, else
/// the STRT_SHARDS environment variable (>= 1), else 1 (strt::cfg
/// precedence).
[[nodiscard]] std::size_t resolved_shards(const ServiceOptions& opts);

/// One shard's slice of the service counters (stats().per_shard).
struct ShardStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t deadline_expired = 0;
  std::size_t queue_depth = 0;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // try_submit sheds + shutdown rejections
  std::uint64_t served = 0;
  std::uint64_t deadline_expired = 0;  // expired while queued
  std::uint64_t batches = 0;           // fingerprint groups dispatched
  std::uint64_t batched_requests = 0;  // requests sharing a group of >= 2
  std::size_t queue_depth = 0;         // currently queued, all shards
  /// Per-shard rollup, indexed by shard; the scalar fields above are the
  /// sums over this vector (plus shutdown rejections, which no shard
  /// owns).
  std::vector<ShardStats> per_shard;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits one request; blocks while the routed shard's admission ring
  /// is full (backpressure).  The future resolves when the request is
  /// served.
  [[nodiscard]] std::future<AnalysisOutcome> submit(AnalysisRequest req);

  /// Non-blocking admission: nullopt when the routed shard is full (the
  /// caller sheds load; svc.rejected and svc.shed are bumped).
  [[nodiscard]] std::optional<std::future<AnalysisOutcome>> try_submit(
      AnalysisRequest req);

  /// Convenience: submits every request (blocking admission) and waits;
  /// outcomes are returned in request order.
  [[nodiscard]] std::vector<AnalysisOutcome> run_all(
      std::vector<AnalysisRequest> reqs);

  /// Pauses/resumes dispatch on every shard (admission stays open).
  /// While paused the rings fill up and submit() exerts backpressure.
  void pause();
  void resume();

  /// Blocks until every shard's ring is empty and no request is in
  /// flight.  Resumes a paused service first (a paused drain would
  /// deadlock).
  void drain();

  /// The shared workspace (its stats() are the service-wide cache
  /// numbers; also handy for seeding warmth in benchmarks).
  [[nodiscard]] engine::Workspace& workspace();

  /// The resolved shard count (>= 1).
  [[nodiscard]] std::size_t shard_count() const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace strt::svc
