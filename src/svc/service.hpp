// strt::svc -- the batch analysis service.
//
// A Service owns one long-lived engine::Workspace and a dispatcher
// thread behind a bounded admission queue, and serves AnalysisRequests
// submitted from any thread:
//
//   * Admission: the queue holds at most queue_capacity requests.
//     submit() blocks while the queue is full (backpressure);
//     try_submit() sheds load instead, answering kRejected.
//   * Batching: each dispatch round drains up to max_batch queued
//     requests and groups them by request_fingerprint() -- task set plus
//     supply -- in arrival order.  The first request of a group runs
//     first and warms every rbf/dbf/sbf/derived-curve memo the group
//     shares; the rest of the group then fans out across the strt::exec
//     pool and answers mostly from the cache.
//   * Deadlines/cancellation: a request whose wall-clock budget expired
//     while queued is answered kDeadlineExpired without running; budgets
//     and CancelTokens of running requests are checked at every explorer
//     progress callback (see svc/api.hpp).
//   * Results are bit-identical to run_request() on a private workspace:
//     the Workspace cache-on/off and thread-count contracts guarantee
//     warmth never changes an answer (enforced by tests/test_svc.cpp and
//     bench/bench_service.cpp).
//
// Shutdown: the destructor stops admission, drains every queued request,
// and joins the dispatcher.
//
// Observability: svc.submitted / svc.rejected / svc.batches /
// svc.batched_requests global counters on top of the per-request
// counters run_request() bumps; stats() returns this service's numbers.
// Every outcome carries its request trace (queue wait measured from
// admission), and svc.request_latency_us / svc.queue_wait_us /
// svc.batch_size latency histograms accumulate in the global registry.
// Setting ServiceOptions::telemetry_dir attaches an obs::TelemetrySink
// that the dispatcher flushes after every round (metrics.prom +
// events.jsonl + trace.json, see obs/sink.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/api.hpp"

namespace strt::engine {
class Workspace;
}  // namespace strt::engine

namespace strt::svc {

struct ServiceOptions {
  /// Bounded admission queue length; submit() blocks / try_submit()
  /// rejects when full.  Must be >= 1.
  std::size_t queue_capacity = 1024;
  /// Requests drained per dispatch round (the batching window).
  std::size_t max_batch = 64;
  /// Group a round by request_fingerprint() before running.  Off =>
  /// strict arrival order, one batch per request (ablation switch;
  /// results are identical either way).
  bool batch_by_fingerprint = true;
  /// Fan a group's cache-warm tail across the exec pool.  Off => the
  /// whole round runs serially on the dispatcher (ablation switch;
  /// results are identical either way).
  bool parallel_batches = true;
  /// Workspace memoization (the warm-cache amortization this service
  /// exists for; off is the cold ablation).
  bool caching = true;
  /// Construct paused: requests queue up (backpressure observable
  /// deterministically) until resume().
  bool start_paused = false;
  /// When non-empty, live telemetry is exported under this directory
  /// (created if missing; the constructor throws std::runtime_error when
  /// that fails): metrics.prom, events.jsonl, and trace.json, flushed
  /// after every dispatch round and once more at shutdown.  Telemetry
  /// never affects analysis results (bit-identity contract).
  std::string telemetry_dir;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t served = 0;
  std::uint64_t deadline_expired = 0;  // expired while queued
  std::uint64_t batches = 0;           // fingerprint groups dispatched
  std::uint64_t batched_requests = 0;  // requests sharing a group of >= 2
  std::size_t queue_depth = 0;         // currently queued
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits one request; blocks while the admission queue is full
  /// (backpressure).  The future resolves when the request is served.
  [[nodiscard]] std::future<AnalysisOutcome> submit(AnalysisRequest req);

  /// Non-blocking admission: nullopt when the queue is full (the caller
  /// sheds load; svc.rejected is bumped).
  [[nodiscard]] std::optional<std::future<AnalysisOutcome>> try_submit(
      AnalysisRequest req);

  /// Convenience: submits every request (blocking admission) and waits;
  /// outcomes are returned in request order.
  [[nodiscard]] std::vector<AnalysisOutcome> run_all(
      std::vector<AnalysisRequest> reqs);

  /// Pauses/resumes dispatch (admission stays open).  While paused the
  /// queue fills up and submit() exerts backpressure.
  void pause();
  void resume();

  /// Blocks until the queue is empty and no request is in flight.
  /// Resumes a paused service first (a paused drain would deadlock).
  void drain();

  /// The shared workspace (its stats() are the service-wide cache
  /// numbers; also handy for seeding warmth in benchmarks).
  [[nodiscard]] engine::Workspace& workspace();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace strt::svc
