// strt::svc -- the unified analysis request/outcome API.
//
// Every analysis in the library is reachable through one entry point: an
// AnalysisRequest names the analysis kind, carries the task model(s) and
// the supply, one shared CommonOptions block, and the few kind-specific
// knobs; run_request() answers it with an AnalysisOutcome -- a tagged
// union of the kind's native result struct plus the validation
// diagnostics and per-request execution statistics.  The batch Service
// (svc/service.hpp) serves streams of these requests from a long-lived
// shared engine::Workspace; run_request() on a private workspace is the
// serial one-shot reference the service is bit-identical to.
//
// Request lifecycle (the same for one-shot and served requests):
//
//   validate -> (batch ->) dispatch -> outcome
//
//   * validate: every task passes the strt::check lint through the
//     memoized Workspace::validate front gate, plus the cross-task and
//     task-versus-supply passes.  Lint errors yield kInvalid without
//     running the analysis.
//   * dispatch: the kind's Workspace-overload analysis runs with options
//     assembled from the request's CommonOptions block.  A wall-clock
//     deadline and/or CancelToken is wired into the explorer's
//     progress/cancel hook, so long explorations stop mid-run.
//   * outcome: the native result struct, tagged by kind, with the
//     workspace cache hit/miss delta and wall times attached.
//
// Task-slot conventions per kind (extra tasks are a kInvalid outcome):
//
//   kStructural   tasks[0] on `supply`
//   kFp           tasks in priority order (index 0 highest)
//   kEdf          the whole set (frame-separated tasks)
//   kJointFp      tasks.back() is the low-priority task under analysis;
//                 every earlier task interferes at higher priority
//   kSensitivity  tasks[0] on `supply`
//   kAudsley      the candidate set (any order; the result is an order)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "base/types.hpp"
#include "check/diagnostics.hpp"
#include "obs/trace.hpp"
#include "core/audsley.hpp"
#include "core/common_options.hpp"
#include "core/edf.hpp"
#include "core/fixed_priority.hpp"
#include "core/joint_fp.hpp"
#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt::engine {
class Workspace;
}  // namespace strt::engine

namespace strt::obs {
class RunReport;
}  // namespace strt::obs

namespace strt::svc {

enum class AnalysisKind : std::uint8_t {
  kStructural,
  kFp,
  kEdf,
  kJointFp,
  kSensitivity,
  kAudsley,
};

inline constexpr AnalysisKind kAllAnalysisKinds[] = {
    AnalysisKind::kStructural, AnalysisKind::kFp,
    AnalysisKind::kEdf,        AnalysisKind::kJointFp,
    AnalysisKind::kSensitivity, AnalysisKind::kAudsley,
};

/// Stable wire name ("structural", "fp", "edf", "joint_fp",
/// "sensitivity", "audsley").
[[nodiscard]] std::string_view kind_name(AnalysisKind k);

/// Inverse of kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<AnalysisKind> kind_from_name(std::string_view s);

/// Shared cancellation flag: keep a copy, hand the request a copy, call
/// cancel() from any thread.  The analysis observes it at every progress
/// callback and returns early with OutcomeStatus::kCancelled.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct AnalysisRequest {
  /// Caller-chosen correlation id, echoed in the outcome.
  std::uint64_t id = 0;
  AnalysisKind kind = AnalysisKind::kStructural;
  /// Task slots per kind: see the table in the header comment.
  std::vector<DrtTask> tasks;
  Supply supply = Supply::dedicated(1);

  /// The one shared options block: explorer state cap plus the
  /// progress/cancel hook (deadline/cancel checks are layered on top of
  /// any user hook set here).
  CommonOptions common;

  // Kind-specific knobs; kinds that do not read a knob ignore it.
  /// Dominance pruning (all exploration-backed kinds).
  bool prune = true;
  /// Reconstruct the witness path (kStructural only).
  bool want_witness = false;
  /// Interference-path cap (kJointFp).
  std::size_t max_paths = 200'000;
  /// Criterion delay cap (kSensitivity); unset => per-vertex deadlines.
  std::optional<Time> delay_cap;
  /// wcet slack search bound (kSensitivity).
  Work max_wcet_growth{1'000'000};

  /// Wall-clock budget for the request, measured from submission (or from
  /// run_request() entry for one-shot calls).  Expiring in the queue
  /// yields kDeadlineExpired without running; expiring mid-run cancels
  /// via the progress hook.
  std::optional<std::chrono::milliseconds> deadline;
  /// Cooperative cancellation; see CancelToken.
  std::optional<CancelToken> cancel;

  /// Request trace to record into.  Leave disengaged (the default) and the
  /// run starts a fresh trace; pass TraceContext::make() to correlate the
  /// request with caller-side spans.  The finished span tree comes back in
  /// AnalysisOutcome::trace either way.
  obs::TraceContext trace;
};

enum class OutcomeStatus : std::uint8_t {
  /// The analysis ran to completion; `result` holds the kind's struct.
  kOk,
  /// The validate front gate rejected the request (lint errors in
  /// `diagnostics`, or a task-slot arity violation in `error`).
  kInvalid,
  /// The service's admission queue was full (try_submit only).
  kRejected,
  /// The wall-clock budget expired before or during the run.  A partial
  /// result may be present: exploration bounds from an aborted run cover
  /// the explored prefix only (sound lower bounds).
  kDeadlineExpired,
  /// The CancelToken fired.  Same partial-result contract.
  kCancelled,
  /// The analysis threw; `error` holds the message.
  kError,
};

[[nodiscard]] std::string_view status_name(OutcomeStatus s);

/// Per-request execution statistics (the per-request face of strt::obs).
struct OutcomeStats {
  /// Submission-to-dispatch wait in microseconds (0 for one-shot runs).
  std::int64_t queue_us = 0;
  /// Analysis wall time in microseconds (validate + dispatch).
  std::int64_t run_us = 0;
  /// The request's batch grouping key (task-set + supply fingerprint).
  std::uint64_t batch_key = 0;
  /// Requests grouped into the same dispatch batch (1 for one-shot).
  std::size_t batch_size = 0;
  /// Workspace cache hit/miss delta over the run; for service batches the
  /// delta is measured per batch and repeated on each member.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// The tagged result union: which alternative is set follows the request
/// kind (monostate when the run never produced a result).
using AnalysisResult =
    std::variant<std::monostate, StructuralResult, FpResult, EdfResult,
                 JointFpResult, SensitivityReport, AudsleyResult>;

struct AnalysisOutcome {
  std::uint64_t id = 0;
  AnalysisKind kind = AnalysisKind::kStructural;
  OutcomeStatus status = OutcomeStatus::kError;
  /// Human-oriented failure description (kInvalid arity problems,
  /// kError exception messages, kRejected/kDeadlineExpired notes).
  std::string error;
  /// Findings of the validate front gate (may hold warnings even on kOk).
  check::CheckResult diagnostics;
  AnalysisResult result;
  OutcomeStats stats;
  /// Set when the run used the coarse-first certified path (structural
  /// requests with coarsen_g > 0): the certified width of the bracket
  /// around the exact curve-based delay (0 when the driver fell back to
  /// the exact analysis).  The reported delay is the bracket's safe
  /// upper end.
  std::optional<Time> certified_error;
  /// The request's span tree: queue -> request { validate, run { explore,
  /// minplus.conv, ... } }, sorted by start time.  Always present; see
  /// obs/trace.hpp for the export formats.
  obs::RequestTrace trace;

  [[nodiscard]] bool ok() const { return status == OutcomeStatus::kOk; }

  /// Typed access to the result alternative; nullptr when not set or the
  /// outcome holds a different kind.
  [[nodiscard]] const StructuralResult* structural() const {
    return std::get_if<StructuralResult>(&result);
  }
  [[nodiscard]] const FpResult* fp() const {
    return std::get_if<FpResult>(&result);
  }
  [[nodiscard]] const EdfResult* edf() const {
    return std::get_if<EdfResult>(&result);
  }
  [[nodiscard]] const JointFpResult* joint_fp() const {
    return std::get_if<JointFpResult>(&result);
  }
  [[nodiscard]] const SensitivityReport* sensitivity() const {
    return std::get_if<SensitivityReport>(&result);
  }
  [[nodiscard]] const AudsleyResult* audsley() const {
    return std::get_if<AudsleyResult>(&result);
  }

  /// Folds the outcome into a run report: id/kind/status/headline result
  /// fields, the diagnostics summary, and the OutcomeStats numbers.
  void append_to_report(obs::RunReport& report) const;
};

/// Batch grouping key: tasks (order-sensitive, name-blind structural
/// fingerprints) plus the supply.  Two requests with equal keys share
/// every rbf/dbf/sbf/derived-curve memo in a warm workspace, whatever
/// their kinds.
[[nodiscard]] std::uint64_t request_fingerprint(const AnalysisRequest& req);

/// Serves one request from `ws`: validate -> dispatch -> outcome, as
/// described in the header comment.  This is the one-shot reference the
/// batch Service is bit-identical to; results depend only on the request
/// (never on workspace warmth, caching mode, or thread count).
[[nodiscard]] AnalysisOutcome run_request(engine::Workspace& ws,
                                          const AnalysisRequest& req);

/// One-shot convenience: spins up a private cold workspace.
[[nodiscard]] AnalysisOutcome run_request(const AnalysisRequest& req);

/// Service-internal variant: the deadline is an absolute time point
/// (measured from submission) instead of request-relative, and `admitted`
/// is the queue admission time -- when set, the outcome's queue span and
/// stats.queue_us cover admitted -> dispatch (otherwise both are zero).
[[nodiscard]] AnalysisOutcome run_request_at(
    engine::Workspace& ws, const AnalysisRequest& req,
    std::optional<std::chrono::steady_clock::time_point> deadline_at,
    std::optional<std::chrono::steady_clock::time_point> admitted = {});

}  // namespace strt::svc
