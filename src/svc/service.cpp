#include "svc/service.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "base/assert.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace strt::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// One admitted request awaiting dispatch.
struct Pending {
  AnalysisRequest req;
  std::promise<AnalysisOutcome> promise;
  Clock::time_point admitted;
  std::optional<Clock::time_point> deadline_at;
  std::uint64_t fp = 0;
};

}  // namespace

struct Service::Impl {
  explicit Impl(ServiceOptions o) : opts(o), ws(o.caching) {
    if (opts.queue_capacity == 0) opts.queue_capacity = 1;
    if (opts.max_batch == 0) opts.max_batch = 1;
    paused = opts.start_paused;
    if (!opts.telemetry_dir.empty()) {
      sink = std::make_unique<obs::TelemetrySink>(opts.telemetry_dir);
    }
  }

  ServiceOptions opts;
  engine::Workspace ws;
  /// Live telemetry export; null when telemetry_dir is empty.  Only the
  /// dispatcher flushes; workers only add traces (sink is thread-safe).
  std::unique_ptr<obs::TelemetrySink> sink;

  Mutex mu;
  std::condition_variable_any cv_work;   // dispatcher: new work / stop
  std::condition_variable_any cv_space;  // submitters: queue has room
  std::condition_variable_any cv_idle;   // drain(): all served
  std::deque<Pending> queue STRT_GUARDED_BY(mu);
  bool paused STRT_GUARDED_BY(mu) = false;
  bool stopping STRT_GUARDED_BY(mu) = false;
  std::size_t in_flight STRT_GUARDED_BY(mu) = 0;
  ServiceStats counters STRT_GUARDED_BY(mu);

  std::thread dispatcher;  // started by Service's constructor, joined last

  void loop();
  void process(std::vector<Pending> round);

  /// Admission under the capacity bound; nullopt when `block` is false
  /// and the queue is full, or when the service is stopping.
  std::optional<std::future<AnalysisOutcome>> admit(AnalysisRequest req,
                                                    bool block);
};

std::optional<std::future<AnalysisOutcome>> Service::Impl::admit(
    AnalysisRequest req, bool block) {
  static obs::Counter& c_submitted = obs::counter("svc.submitted");
  static obs::Counter& c_rejected = obs::counter("svc.rejected");

  Pending p;
  p.admitted = Clock::now();
  if (req.deadline) p.deadline_at = p.admitted + *req.deadline;
  p.fp = request_fingerprint(req);
  p.req = std::move(req);
  std::future<AnalysisOutcome> fut = p.promise.get_future();

  {
    MutexLock l(mu);
    while (block && !stopping && queue.size() >= opts.queue_capacity) {
      l.wait(cv_space);
    }
    if (stopping || queue.size() >= opts.queue_capacity) {
      ++counters.rejected;
      c_rejected.add(1);
      if (!stopping) return std::nullopt;  // full, non-blocking: shed load
      // Stopping: answer through the future so submit() stays total.
      AnalysisOutcome out;
      out.id = p.req.id;
      out.kind = p.req.kind;
      out.status = OutcomeStatus::kRejected;
      out.error = "service is shutting down";
      p.promise.set_value(std::move(out));
      return fut;
    }
    queue.push_back(std::move(p));
    ++counters.submitted;
    c_submitted.add(1);
  }
  cv_work.notify_one();
  return fut;
}

void Service::Impl::loop() {
  for (;;) {
    std::vector<Pending> round;
    {
      MutexLock l(mu);
      while (!stopping && (paused || queue.empty())) l.wait(cv_work);
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      const std::size_t n = std::min(queue.size(), opts.max_batch);
      round.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        round.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      in_flight += n;
    }
    cv_space.notify_all();
    const std::size_t n = round.size();
    process(std::move(round));
    {
      MutexLock l(mu);
      in_flight -= n;
      counters.served += n;
      if (queue.empty() && in_flight == 0) cv_idle.notify_all();
    }
  }
}

void Service::Impl::process(std::vector<Pending> round) {
  static obs::Counter& c_batches = obs::counter("svc.batches");
  static obs::Counter& c_batched = obs::counter("svc.batched_requests");
  const obs::Span span("svc.dispatch");

  // Group the round by fingerprint, preserving arrival order of groups
  // and of members within a group.
  std::vector<std::vector<std::size_t>> groups;
  if (opts.batch_by_fingerprint) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      bool placed = false;
      for (std::vector<std::size_t>& g : groups) {
        if (round[g.front()].fp == round[i].fp) {
          g.push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({i});
    }
  } else {
    for (std::size_t i = 0; i < round.size(); ++i) groups.push_back({i});
  }

  static obs::Histogram& h_batch = obs::histogram("svc.batch_size");

  std::uint64_t expired = 0;
  std::uint64_t batched = 0;
  for (const std::vector<std::size_t>& group : groups) {
    c_batches.add(1);
    h_batch.record(group.size());
    if (group.size() >= 2) {
      batched += group.size();
      c_batched.add(group.size());
    }
    const engine::WorkspaceStats before = ws.stats();

    const auto serve = [&](std::size_t idx, bool leader) {
      Pending& p = round[idx];
      AnalysisOutcome out =
          run_request_at(ws, p.req, p.deadline_at, p.admitted);
      out.stats.batch_size = group.size();
      // The leader's run doubles as the group's memo-warm phase: it
      // populates every shared rbf/dbf/sbf memo before the tail fans
      // out.  Mark it in the trace so batching is visible per request.
      if (leader && group.size() > 1) {
        if (const obs::TraceSpanRecord* run = out.trace.find("run")) {
          obs::TraceSpanRecord warm;
          warm.id = out.trace.spans.size() + 1;  // ids are 1..n per trace
          warm.parent = run->id;
          warm.name = "memo.warm";
          warm.start_us = run->start_us;
          warm.dur_us = run->dur_us;
          warm.attrs = {{"role", "leader"},
                        {"batch.size", std::to_string(group.size())}};
          out.trace.spans.push_back(std::move(warm));
          out.trace.sort_spans();
        }
      }
      return out;
    };

    // The group leader runs first and warms every memo the group shares;
    // the tail then fans out across the exec pool and answers mostly
    // from the cache.  Results are bit-identical either way (Workspace
    // contract), so the split is purely a throughput device.
    std::vector<AnalysisOutcome> outs;
    outs.reserve(group.size());
    outs.push_back(serve(group[0], /*leader=*/true));
    if (group.size() > 1) {
      if (opts.parallel_batches) {
        std::vector<AnalysisOutcome> tail =
            exec::parallel_map(group.size() - 1, [&](std::size_t i) {
              return serve(group[i + 1], /*leader=*/false);
            });
        for (AnalysisOutcome& o : tail) outs.push_back(std::move(o));
      } else {
        for (std::size_t i = 1; i < group.size(); ++i) {
          outs.push_back(serve(group[i], /*leader=*/false));
        }
      }
    }

    // Attribute the batch's cache delta to every member, then fulfill.
    const engine::WorkspaceStats after = ws.stats();
    const std::uint64_t hits = (after.hits + after.inverse_hits) -
                               (before.hits + before.inverse_hits);
    const std::uint64_t misses = (after.misses + after.inverse_misses) -
                                 (before.misses + before.inverse_misses);
    for (std::size_t i = 0; i < group.size(); ++i) {
      outs[i].stats.cache_hits = hits;
      outs[i].stats.cache_misses = misses;
      if (outs[i].status == OutcomeStatus::kDeadlineExpired) ++expired;
      if (sink) sink->add_trace(outs[i].trace);
      round[group[i]].promise.set_value(std::move(outs[i]));
    }
  }
  if (sink) sink->flush();
  {
    MutexLock l(mu);
    counters.deadline_expired += expired;
    counters.batched_requests += batched;
    counters.batches += groups.size();
  }
}

Service::Service(ServiceOptions opts)
    : impl_(std::make_unique<Impl>(opts)) {
  impl_->dispatcher = std::thread([this] { impl_->loop(); });
}

Service::~Service() {
  {
    MutexLock l(impl_->mu);
    impl_->stopping = true;
    impl_->paused = false;  // a paused shutdown still drains
  }
  impl_->cv_work.notify_all();
  impl_->cv_space.notify_all();
  impl_->dispatcher.join();
}

std::future<AnalysisOutcome> Service::submit(AnalysisRequest req) {
  std::optional<std::future<AnalysisOutcome>> fut =
      impl_->admit(std::move(req), /*block=*/true);
  STRT_ASSERT(fut.has_value(), "blocking admission always yields a future");
  return std::move(*fut);
}

std::optional<std::future<AnalysisOutcome>> Service::try_submit(
    AnalysisRequest req) {
  return impl_->admit(std::move(req), /*block=*/false);
}

std::vector<AnalysisOutcome> Service::run_all(
    std::vector<AnalysisRequest> reqs) {
  // Admission would deadlock if the batch exceeds a paused queue's
  // capacity; resume first in that case (otherwise keep the pause while
  // enqueueing, so a paused service sees the whole batch in one round).
  {
    MutexLock l(impl_->mu);
    if (impl_->paused && reqs.size() > impl_->opts.queue_capacity) {
      impl_->paused = false;
    }
  }
  impl_->cv_work.notify_all();
  std::vector<std::future<AnalysisOutcome>> futs;
  futs.reserve(reqs.size());
  for (AnalysisRequest& r : reqs) futs.push_back(submit(std::move(r)));
  resume();
  std::vector<AnalysisOutcome> outs;
  outs.reserve(futs.size());
  for (std::future<AnalysisOutcome>& f : futs) outs.push_back(f.get());
  return outs;
}

void Service::pause() {
  MutexLock l(impl_->mu);
  impl_->paused = true;
}

void Service::resume() {
  {
    MutexLock l(impl_->mu);
    impl_->paused = false;
  }
  impl_->cv_work.notify_all();
}

void Service::drain() {
  resume();
  MutexLock l(impl_->mu);
  while (!impl_->queue.empty() || impl_->in_flight != 0) {
    l.wait(impl_->cv_idle);
  }
}

engine::Workspace& Service::workspace() { return impl_->ws; }

ServiceStats Service::stats() const {
  MutexLock l(impl_->mu);
  ServiceStats s = impl_->counters;
  s.queue_depth = impl_->queue.size();
  return s;
}

const ServiceOptions& Service::options() const { return impl_->opts; }

}  // namespace strt::svc
