#include "svc/service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "base/assert.hpp"
#include "base/config.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "race/hook.hpp"
#include "svc/mpmc_queue.hpp"

namespace strt::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// One admitted request awaiting dispatch.
struct Pending {
  AnalysisRequest req;
  std::promise<AnalysisOutcome> promise;
  Clock::time_point admitted;
  std::optional<Clock::time_point> deadline_at;
  std::uint64_t fp = 0;
};

}  // namespace

std::size_t resolved_shards(const ServiceOptions& opts) {
  return static_cast<std::size_t>(cfg::get_int(
      "STRT_SHARDS", /*def=*/1, /*min=*/1,
      opts.shards != 0 ? std::optional<std::int64_t>(
                             static_cast<std::int64_t>(opts.shards))
                       : std::nullopt));
}

struct Service::Impl {
  /// One worker shard: a lock-free admission ring, the worker thread
  /// that drains it, and the shard's counter rollup.  The mutex guards
  /// no state -- it is the wait barrier for the two condvars (the ring
  /// itself is the synchronized structure): a producer that pushed takes
  /// the lock empty and notifies, so a worker between its emptiness
  /// check and the wait cannot miss the wakeup, and vice versa for
  /// submitters blocked on a full ring.
  struct Shard {
    explicit Shard(std::size_t cap) : ring(cap) {}

    MpmcRing<Pending> ring;
    Mutex mu;
    CondVar cv_work;   // worker: new work / stop
    CondVar cv_space;  // submitters: ring has room
    std::atomic<std::size_t> in_flight{0};
    std::size_t index = 0;  // stable worker identity for the race explorer

    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched_requests{0};
    std::atomic<std::uint64_t> deadline_expired{0};

    // Labeled per-shard registry cells (svc.shard_*{shard="K"}); the
    // Prometheus exporter turns the suffix into a real label.
    obs::Counter* c_served = nullptr;
    obs::Counter* c_batches = nullptr;
    obs::Gauge* g_depth = nullptr;

    std::thread worker;  // started by Service's constructor, joined last
  };

  explicit Impl(ServiceOptions o) : opts(std::move(o)), ws(opts.caching) {
    if (opts.queue_capacity == 0) opts.queue_capacity = 1;
    if (opts.max_batch == 0) opts.max_batch = 1;
    nshards = resolved_shards(opts);
    opts.shards = nshards;  // echo the resolution into options()
    per_shard_capacity =
        std::max<std::size_t>(1, opts.queue_capacity / nshards);
    paused.store(opts.start_paused, std::memory_order_release);
    // Warm-start wiring: resolve the snapshot path and the cache budget
    // (flag > STRT_SNAPSHOT / STRT_CACHE_BUDGET env > off), arm the
    // budget first so a loaded snapshot already obeys it, then replay
    // the snapshot into the shared workspace.  Rejection is clean: the
    // service cold-starts and overwrites the bad file at the next save.
    snapshot_path = cfg::get_string(
        "STRT_SNAPSHOT", "",
        opts.snapshot_path.empty()
            ? std::nullopt
            : std::optional<std::string_view>(opts.snapshot_path));
    opts.snapshot_path = snapshot_path;  // echo into options()
    std::string budget_flag;
    if (opts.cache_bytes_budget != 0) {
      budget_flag = std::to_string(opts.cache_bytes_budget);
    }
    opts.cache_bytes_budget = cfg::get_bytes(
        "STRT_CACHE_BUDGET", 0,
        budget_flag.empty() ? std::nullopt
                            : std::optional<std::string_view>(budget_flag));
    if (opts.cache_bytes_budget != 0) {
      ws.set_cache_bytes_budget(opts.cache_bytes_budget);
    }
    if (!snapshot_path.empty()) (void)ws.load_snapshot(snapshot_path);
    if (!opts.telemetry_dir.empty()) {
      sink = std::make_unique<obs::TelemetrySink>(opts.telemetry_dir);
    }
    shards.reserve(nshards);
    for (std::size_t i = 0; i < nshards; ++i) {
      auto s = std::make_unique<Shard>(per_shard_capacity);
      s->index = i;
      const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
      s->c_served = &obs::counter("svc.shard_served" + label);
      s->c_batches = &obs::counter("svc.shard_batches" + label);
      s->g_depth = &obs::gauge("svc.shard_queue_depth" + label);
      shards.push_back(std::move(s));
    }
  }

  ServiceOptions opts;
  engine::Workspace ws;
  /// Resolved warm-start cache path; empty = persistence off.  Saves
  /// are serialized by save_mu (drain() and the destructor may race).
  std::string snapshot_path;
  Mutex save_mu;
  /// Live telemetry export; null when telemetry_dir is empty.  Shard
  /// workers flush after their rounds (the sink serializes flushes).
  std::unique_ptr<obs::TelemetrySink> sink;

  /// Persists the workspace's memo warmth to snapshot_path (crash-safe
  /// tmp+rename; failures are non-fatal -- the service keeps serving).
  void save_snapshot_if_configured() {
    if (snapshot_path.empty()) return;
    const MutexLock lock(save_mu);
    (void)ws.save_snapshot(snapshot_path);
  }

  std::size_t nshards = 1;
  std::size_t per_shard_capacity = 1;
  std::vector<std::unique_ptr<Shard>> shards;

  std::atomic<bool> paused{false};
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> rejected{0};
  /// Admissions currently in progress.  The shutdown protocol relies on
  /// the seq_cst ordering of this counter against `stopping`: an admit
  /// increments first and checks stopping second, the destructor stores
  /// stopping first and waits for zero second, so every push that beat
  /// the stop is visible to the shard workers before they may exit.
  std::atomic<std::size_t> active_admits{0};

  /// Fingerprint -> shard routing.  Distinct fingerprints are assigned
  /// round-robin in order of first appearance: deterministic for a
  /// serial submitter, balanced across shards however the fingerprints
  /// hash (a fp % N split leaves shards idle on modulo collisions).
  /// Entries are ~16 bytes per distinct system and are kept for the
  /// service lifetime -- the memo warmth they route to is itself
  /// retained, so the map is never the memory ceiling.
  Mutex route_mu;
  std::unordered_map<std::uint64_t, std::size_t> route
      STRT_GUARDED_BY(route_mu);
  std::size_t next_shard STRT_GUARDED_BY(route_mu) = 0;

  Mutex idle_mu;  // wait barrier for drain(); no guarded state
  CondVar cv_idle;

  [[nodiscard]] Shard& shard_of(std::uint64_t fp) {
    if (nshards == 1) return *shards[0];
    const MutexLock lock(route_mu);
    const auto [it, inserted] = route.emplace(fp, next_shard);
    if (inserted) next_shard = (next_shard + 1) % nshards;
    return *shards[it->second];
  }

  /// True when every ring is empty and no request is being processed.
  [[nodiscard]] bool idle() const {
    for (const auto& s : shards) {
      if (!s->ring.empty() || s->in_flight.load() != 0) return false;
    }
    return true;
  }

  void worker_loop(Shard& s);
  void process(Shard& s, std::vector<Pending> round);

  /// Admission under the routed shard's capacity bound; nullopt when
  /// `block` is false and the shard is full, or when stopping.
  std::optional<std::future<AnalysisOutcome>> admit(AnalysisRequest req,
                                                    bool block);
};

std::optional<std::future<AnalysisOutcome>> Service::Impl::admit(
    AnalysisRequest req, bool block) {
  static obs::Counter& c_submitted = obs::counter("svc.submitted");
  static obs::Counter& c_rejected = obs::counter("svc.rejected");
  static obs::Counter& c_shed = obs::counter("svc.shed");
  static obs::Gauge& g_depth = obs::gauge("svc.queue_depth");

  Pending p;
  p.admitted = Clock::now();
  if (req.deadline) p.deadline_at = p.admitted + *req.deadline;
  p.fp = request_fingerprint(req);
  p.req = std::move(req);
  std::future<AnalysisOutcome> fut = p.promise.get_future();

  STRT_RACE_ATOMIC("svc.admit.enter", &active_admits, kRmw, kAcqRel);
  active_admits.fetch_add(1);
  struct AdmitScope {
    std::atomic<std::size_t>& active;
    ~AdmitScope() {
      STRT_RACE_ATOMIC("svc.admit.leave", &active, kRmw, kAcqRel);
      active.fetch_sub(1);
    }
  } scope{active_admits};

  const auto reject_stopping = [&] {
    rejected.fetch_add(1, std::memory_order_relaxed);
    c_rejected.add(1);
    // Answer through the future so submit() stays total.
    AnalysisOutcome out;
    out.id = p.req.id;
    out.kind = p.req.kind;
    out.status = OutcomeStatus::kRejected;
    out.error = "service is shutting down";
    p.promise.set_value(std::move(out));
    return std::optional<std::future<AnalysisOutcome>>(std::move(fut));
  };

  STRT_RACE_ATOMIC("svc.admit.stopping", &stopping, kLoad, kAcquire);
  if (stopping.load()) return reject_stopping();

  Shard& s = shard_of(p.fp);
  bool pushed = s.ring.try_push(std::move(p));
  if (!pushed) {
    if (!block) {
      // Full, non-blocking: the caller sheds load.
      rejected.fetch_add(1, std::memory_order_relaxed);
      c_rejected.add(1);
      c_shed.add(1);
      return std::nullopt;
    }
    MutexLock l(s.mu);
    while (!stopping.load() && !(pushed = s.ring.try_push(std::move(p)))) {
      l.wait(s.cv_space);
    }
    if (!pushed) return reject_stopping();
  }

  s.submitted.fetch_add(1, std::memory_order_relaxed);
  c_submitted.add(1);
  // Backpressure visibility: sample the admission-time depth into the
  // gauges (total and per shard) so metrics.prom carries a live queue
  // level plus its high-water mark.
  if (obs::enabled()) {
    std::size_t total = 0;
    for (const auto& sh : shards) total += sh->ring.size_approx();
    g_depth.set(static_cast<std::int64_t>(total));
    s.g_depth->set(static_cast<std::int64_t>(s.ring.size_approx()));
  }
  { const MutexLock l(s.mu); }  // pairs with the worker's check-then-wait
  s.cv_work.notify_one();
  return fut;
}

void Service::Impl::worker_loop(Shard& s) {
  for (;;) {
    {
      MutexLock l(s.mu);
      while (!stopping.load() &&
             (paused.load(std::memory_order_acquire) || s.ring.empty())) {
        l.wait(s.cv_work);
      }
    }
    // Claim the shard busy *before* popping: drain()'s idle() check must
    // never observe the window where requests sit in `round` but neither
    // the ring nor in_flight accounts for them.  The claim is corrected
    // to the real round size below (or released if the round is empty).
    const bool claim_after_pop = STRT_RACE_FAULT("svc.pop_before_claim");
    if (!claim_after_pop) {
      STRT_RACE_ATOMIC("svc.worker.claim", &s.in_flight, kRmw, kAcqRel);
      s.in_flight.fetch_add(1);
    }
    std::vector<Pending> round;
    round.reserve(opts.max_batch);
    {
      Pending p;
      while (round.size() < opts.max_batch && s.ring.try_pop(p)) {
        round.push_back(std::move(p));
      }
    }
    if (claim_after_pop) {
      // Reverted pre-fix logic (regression harness only): the claim
      // lands after the pops, so between them the requests sit in
      // `round` with an empty ring and in_flight == 0 -- a concurrent
      // drain() probing idle() in that window returns early.
      STRT_RACE_HOOK("svc.worker.claim_gap");
      s.in_flight.fetch_add(1);
    }
    const std::size_t n = round.size();
    if (n == 0) {
      s.in_flight.fetch_sub(1);
      // The speculative claim may have parked drain(); re-announce.
      STRT_RACE_HOOK("svc.worker.idle_probe");
      if (idle()) {
        { const MutexLock l(idle_mu); }  // pairs with drain()'s wait
        cv_idle.notify_all();
      }
      STRT_RACE_ATOMIC("svc.worker.stopping", &stopping, kLoad, kAcquire);
      if (stopping.load()) {
        // Exit only once no admission can still push.  active_admits is
        // loaded *first*: it is ordered seq_cst against `stopping` (see
        // its declaration), so a 0 here means every admit that beat the
        // stop has finished its push, and that push is visible to the
        // emptiness check that follows.
        bool can_exit;
        if (STRT_RACE_FAULT("svc.empty_before_admits")) {
          // Reverted pre-fix order (regression harness only): sampling
          // emptiness before the admissions count leaves a window where
          // an in-progress admit pushes after the emptiness check and
          // returns before the count check -- the worker exits and the
          // pushed request is stranded (its promise dies unfulfilled).
          STRT_RACE_HOOK("svc.worker.exit.empty_first");
          const bool empty = s.ring.empty();
          STRT_RACE_HOOK("svc.worker.exit.admits_second");
          can_exit = empty && active_admits.load() == 0;
        } else {
          STRT_RACE_ATOMIC("svc.worker.exit.admits", &active_admits,
                           kLoad, kAcquire);
          const bool no_admits = active_admits.load() == 0;
          STRT_RACE_HOOK("svc.worker.exit.empty");
          can_exit = no_admits && s.ring.empty();
        }
        if (can_exit) return;
        STRT_RACE_HINT_YIELD();
        std::this_thread::yield();
      }
      continue;
    }
    if (n > 1) s.in_flight.fetch_add(n - 1);
    { const MutexLock l(s.mu); }  // pairs with blocked submitters' wait
    s.cv_space.notify_all();

    // Counters go up before the promises are fulfilled: a caller that
    // observes its future resolved must also observe the round in
    // stats() (the promise machinery carries the release edge, so the
    // relaxed add is enough).
    s.served.fetch_add(n, std::memory_order_relaxed);
    s.c_served->add(n);

    process(s, std::move(round));

    s.in_flight.fetch_sub(n);
    if (idle()) {
      { const MutexLock l(idle_mu); }  // pairs with drain()'s wait
      cv_idle.notify_all();
    }
  }
}

void Service::Impl::process(Shard& s, std::vector<Pending> round) {
  static obs::Counter& c_batches = obs::counter("svc.batches");
  static obs::Counter& c_batched = obs::counter("svc.batched_requests");
  const obs::Span span("svc.dispatch");

  // Group the round by fingerprint, preserving arrival order of groups
  // and of members within a group.
  std::vector<std::vector<std::size_t>> groups;
  if (opts.batch_by_fingerprint) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      bool placed = false;
      for (std::vector<std::size_t>& g : groups) {
        if (round[g.front()].fp == round[i].fp) {
          g.push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({i});
    }
  } else {
    for (std::size_t i = 0; i < round.size(); ++i) groups.push_back({i});
  }

  static obs::Histogram& h_batch = obs::histogram("svc.batch_size");

  // With one shard the warm tail fans out across the exec pool; with
  // several, the shards are the parallelism -- concurrent pool runs
  // would serialize on the pool's run lock and only add contention.
  const bool parallel_tail = opts.parallel_batches && nshards == 1;

  for (const std::vector<std::size_t>& group : groups) {
    // While this pin lives, memo groups the leader warms for the batch
    // tail are exempt from bytes-budget eviction (no-op without a
    // budget).
    const engine::Workspace::BatchPin pin = ws.pin_batch();
    c_batches.add(1);
    s.c_batches->add(1);
    s.batches.fetch_add(1, std::memory_order_relaxed);
    h_batch.record(group.size());
    if (group.size() >= 2) {
      c_batched.add(group.size());
      s.batched_requests.fetch_add(group.size(),
                                   std::memory_order_relaxed);
    }
    const engine::WorkspaceStats before = ws.stats();

    const auto serve = [&](std::size_t idx, bool leader) {
      Pending& p = round[idx];
      AnalysisOutcome out =
          run_request_at(ws, p.req, p.deadline_at, p.admitted);
      out.stats.batch_size = group.size();
      // The leader's run doubles as the group's memo-warm phase: it
      // populates every shared rbf/dbf/sbf memo before the tail fans
      // out.  Mark it in the trace so batching is visible per request.
      if (leader && group.size() > 1) {
        if (const obs::TraceSpanRecord* run = out.trace.find("run")) {
          obs::TraceSpanRecord warm;
          warm.id = out.trace.spans.size() + 1;  // ids are 1..n per trace
          warm.parent = run->id;
          warm.name = "memo.warm";
          warm.start_us = run->start_us;
          warm.dur_us = run->dur_us;
          warm.attrs = {{"role", "leader"},
                        {"batch.size", std::to_string(group.size())}};
          out.trace.spans.push_back(std::move(warm));
          out.trace.sort_spans();
        }
      }
      return out;
    };

    // The group leader runs first and warms every memo the group shares;
    // the tail then answers mostly from the cache.  Results are
    // bit-identical either way (Workspace contract), so the split is
    // purely a throughput device.
    std::vector<AnalysisOutcome> outs;
    outs.reserve(group.size());
    outs.push_back(serve(group[0], /*leader=*/true));
    if (group.size() > 1) {
      if (parallel_tail) {
        std::vector<AnalysisOutcome> tail =
            exec::parallel_map(group.size() - 1, [&](std::size_t i) {
              return serve(group[i + 1], /*leader=*/false);
            });
        for (AnalysisOutcome& o : tail) outs.push_back(std::move(o));
      } else {
        for (std::size_t i = 1; i < group.size(); ++i) {
          outs.push_back(serve(group[i], /*leader=*/false));
        }
      }
    }

    // Attribute the batch's cache delta to every member, then fulfill.
    const engine::WorkspaceStats after = ws.stats();
    const std::uint64_t hits = (after.hits + after.inverse_hits) -
                               (before.hits + before.inverse_hits);
    const std::uint64_t misses = (after.misses + after.inverse_misses) -
                                 (before.misses + before.inverse_misses);
    std::uint64_t expired = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      outs[i].stats.cache_hits = hits;
      outs[i].stats.cache_misses = misses;
      if (outs[i].status == OutcomeStatus::kDeadlineExpired) ++expired;
    }
    // Like `served`, counters settle before any promise in the group
    // resolves so callers never read stale stats after a get().
    s.deadline_expired.fetch_add(expired, std::memory_order_relaxed);
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (sink) sink->add_trace(outs[i].trace);
      round[group[i]].promise.set_value(std::move(outs[i]));
    }
  }
  if (sink) sink->flush();
}

Service::Service(ServiceOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {
  for (auto& s : impl_->shards) {
    Impl::Shard* shard = s.get();
    shard->worker = std::thread([this, shard] {
      // First statement on the new thread: register with an active race
      // explorer under a stable identity (no hooks may precede this).
      STRT_RACE_THREAD("svc.worker", shard->index);
      impl_->worker_loop(*shard);
    });
    // Pair every spawn with an await before any further hook so thread
    // registration order is a pure function of the schedule.
    STRT_RACE_AWAIT_THREAD("svc.worker", shard->index);
  }
}

Service::~Service() {
  STRT_RACE_ATOMIC("svc.stop.store", &impl_->stopping, kStore, kRelease);
  impl_->stopping.store(true);
  impl_->paused.store(false);  // a paused shutdown still drains
  // Wake everyone: blocked submitters observe `stopping` and answer
  // kRejected; workers drain their rings (waiting out in-progress
  // admissions, see active_admits) and exit.
  for (auto& s : impl_->shards) {
    { const MutexLock l(s->mu); }
    s->cv_space.notify_all();
    s->cv_work.notify_all();
  }
  for (auto& s : impl_->shards) {
    STRT_RACE_JOIN(s->worker);
    s->worker.join();
  }
  // Workers are gone and every queued request is answered: write the
  // final warm-start snapshot.
  impl_->save_snapshot_if_configured();
}

std::future<AnalysisOutcome> Service::submit(AnalysisRequest req) {
  std::optional<std::future<AnalysisOutcome>> fut =
      impl_->admit(std::move(req), /*block=*/true);
  STRT_ASSERT(fut.has_value(), "blocking admission always yields a future");
  return std::move(*fut);
}

std::optional<std::future<AnalysisOutcome>> Service::try_submit(
    AnalysisRequest req) {
  return impl_->admit(std::move(req), /*block=*/false);
}

std::vector<AnalysisOutcome> Service::run_all(
    std::vector<AnalysisRequest> reqs) {
  // Admission would deadlock if the batch exceeds a paused shard's
  // capacity (every request could route to one shard); resume first in
  // that case, otherwise keep the pause while enqueueing so a paused
  // service sees the whole batch in one round.
  if (impl_->paused.load() && reqs.size() > impl_->per_shard_capacity) {
    resume();
  }
  std::vector<std::future<AnalysisOutcome>> futs;
  futs.reserve(reqs.size());
  for (AnalysisRequest& r : reqs) futs.push_back(submit(std::move(r)));
  resume();
  std::vector<AnalysisOutcome> outs;
  outs.reserve(futs.size());
  for (std::future<AnalysisOutcome>& f : futs) outs.push_back(f.get());
  return outs;
}

void Service::pause() { impl_->paused.store(true); }

void Service::resume() {
  impl_->paused.store(false);
  for (auto& s : impl_->shards) {
    { const MutexLock l(s->mu); }
    s->cv_work.notify_all();
  }
}

void Service::drain() {
  resume();
  {
    MutexLock l(impl_->idle_mu);
    // The explorer preempts here so a worker's pop-to-claim window (if
    // faulted back in) can land exactly under this idle() probe.
    STRT_RACE_HOOK("svc.drain.probe");
    while (!impl_->idle()) l.wait(impl_->cv_idle);
  }
  // Quiesced: persist the accumulated memo warmth (periodic save point;
  // the destructor saves once more at shutdown).
  impl_->save_snapshot_if_configured();
}

engine::Workspace& Service::workspace() { return impl_->ws; }

std::size_t Service::shard_count() const { return impl_->nshards; }

ServiceStats Service::stats() const {
  ServiceStats out;
  out.rejected = impl_->rejected.load(std::memory_order_relaxed);
  out.per_shard.reserve(impl_->nshards);
  for (const auto& s : impl_->shards) {
    ShardStats sh;
    sh.submitted = s->submitted.load(std::memory_order_relaxed);
    sh.served = s->served.load(std::memory_order_relaxed);
    sh.batches = s->batches.load(std::memory_order_relaxed);
    sh.batched_requests =
        s->batched_requests.load(std::memory_order_relaxed);
    sh.deadline_expired =
        s->deadline_expired.load(std::memory_order_relaxed);
    sh.queue_depth = s->ring.size_approx();
    out.submitted += sh.submitted;
    out.served += sh.served;
    out.batches += sh.batches;
    out.batched_requests += sh.batched_requests;
    out.deadline_expired += sh.deadline_expired;
    out.queue_depth += sh.queue_depth;
    out.per_shard.push_back(sh);
  }
  return out;
}

const ServiceOptions& Service::options() const { return impl_->opts; }

}  // namespace strt::svc
