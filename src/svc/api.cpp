#include "svc/api.hpp"

#include <chrono>
#include <exception>
#include <span>
#include <utility>

#include "check/check.hpp"
#include "core/certified.hpp"
#include "engine/fingerprint.hpp"
#include "engine/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace strt::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Progress cadence injected when a deadline or cancel token needs the
/// explorer hook but the caller did not ask for progress reporting.
constexpr std::uint64_t kCancelCheckEvery = 4096;

std::int64_t us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
      .count();
}

/// Task-slot arity rule per kind; nullptr when `count` is acceptable.
const char* arity_error(AnalysisKind kind, std::size_t count) {
  switch (kind) {
    case AnalysisKind::kStructural:
    case AnalysisKind::kSensitivity:
      if (count != 1) return "expects exactly one task";
      return nullptr;
    case AnalysisKind::kFp:
    case AnalysisKind::kEdf:
    case AnalysisKind::kJointFp:
    case AnalysisKind::kAudsley:
      if (count == 0) return "expects at least one task";
      return nullptr;
  }
  return "unknown analysis kind";
}

/// True when the run's exploration was cut short (cancel hook or state
/// cap).  Kinds without explorer statistics report false.
bool result_aborted(const AnalysisResult& result) {
  if (const auto* s = std::get_if<StructuralResult>(&result)) {
    return s->stats.aborted;
  }
  if (const auto* f = std::get_if<FpResult>(&result)) {
    for (const FpTaskResult& t : f->tasks) {
      if (t.stats.aborted) return true;
    }
    return false;
  }
  if (const auto* j = std::get_if<JointFpResult>(&result)) {
    return j->explore_stats.aborted;
  }
  return false;
}

/// Kinds whose result carries explorer statistics: for these, a deadline
/// is only reported expired when the exploration actually aborted (a run
/// that completed while crossing the wire stays kOk).
bool has_explore_stats(AnalysisKind kind) {
  return kind == AnalysisKind::kStructural || kind == AnalysisKind::kFp ||
         kind == AnalysisKind::kJointFp;
}

void put_time(obs::RunReport& report, std::string_view key, Time t) {
  if (t.is_unbounded()) {
    report.put(key, "unbounded");
  } else {
    report.put(key, t.count());
  }
}

}  // namespace

std::string_view kind_name(AnalysisKind k) {
  switch (k) {
    case AnalysisKind::kStructural: return "structural";
    case AnalysisKind::kFp: return "fp";
    case AnalysisKind::kEdf: return "edf";
    case AnalysisKind::kJointFp: return "joint_fp";
    case AnalysisKind::kSensitivity: return "sensitivity";
    case AnalysisKind::kAudsley: return "audsley";
  }
  return "unknown";
}

std::optional<AnalysisKind> kind_from_name(std::string_view s) {
  for (const AnalysisKind k : kAllAnalysisKinds) {
    if (kind_name(k) == s) return k;
  }
  return std::nullopt;
}

std::string_view status_name(OutcomeStatus s) {
  switch (s) {
    case OutcomeStatus::kOk: return "ok";
    case OutcomeStatus::kInvalid: return "invalid";
    case OutcomeStatus::kRejected: return "rejected";
    case OutcomeStatus::kDeadlineExpired: return "deadline_expired";
    case OutcomeStatus::kCancelled: return "cancelled";
    case OutcomeStatus::kError: return "error";
  }
  return "unknown";
}

std::uint64_t request_fingerprint(const AnalysisRequest& req) {
  std::uint64_t fp = engine::mix64(0x5374725265714670ULL);  // "StrReqFp"
  fp = engine::hash_combine(fp, req.tasks.size());
  for (const DrtTask& t : req.tasks) {
    fp = engine::hash_combine(fp, t.fingerprint());
  }
  return engine::hash_combine(fp, engine::fingerprint(req.supply));
}

namespace {

/// validate -> dispatch -> outcome, recording phase spans into `ctx`
/// (which the caller keeps live as the thread's active trace, so the
/// analyses' own obs::Span instrumentation nests under "run").
AnalysisOutcome run_request_core(engine::Workspace& ws,
                                 const AnalysisRequest& req,
                                 std::optional<Clock::time_point> deadline_at,
                                 const obs::TraceContext& ctx) {
  const obs::Span span("svc.request");
  static obs::Counter& c_requests = obs::counter("svc.requests");
  static obs::Counter& c_ok = obs::counter("svc.ok");
  static obs::Counter& c_invalid = obs::counter("svc.invalid");
  static obs::Counter& c_cancelled = obs::counter("svc.cancelled");
  static obs::Counter& c_expired = obs::counter("svc.deadline_expired");
  static obs::Counter& c_errors = obs::counter("svc.errors");
  c_requests.add(1);

  AnalysisOutcome out;
  out.id = req.id;
  out.kind = req.kind;
  out.stats.batch_key = request_fingerprint(req);
  out.stats.batch_size = 1;

  const Clock::time_point started = Clock::now();
  const engine::WorkspaceStats before = ws.stats();
  const auto finish = [&](OutcomeStatus status) -> AnalysisOutcome& {
    out.status = status;
    const engine::WorkspaceStats after = ws.stats();
    out.stats.cache_hits = (after.hits + after.inverse_hits) -
                           (before.hits + before.inverse_hits);
    out.stats.cache_misses = (after.misses + after.inverse_misses) -
                             (before.misses + before.inverse_misses);
    out.stats.run_us = us_between(started, Clock::now());
    switch (status) {
      case OutcomeStatus::kOk: c_ok.add(1); break;
      case OutcomeStatus::kInvalid: c_invalid.add(1); break;
      case OutcomeStatus::kCancelled: c_cancelled.add(1); break;
      case OutcomeStatus::kDeadlineExpired: c_expired.add(1); break;
      default: c_errors.add(1); break;
    }
    return out;
  };

  // Expired or cancelled before any work: answer without running.
  if (req.cancel && req.cancel->cancelled()) {
    out.error = "cancelled before dispatch";
    return finish(OutcomeStatus::kCancelled);
  }
  if (deadline_at && started >= *deadline_at) {
    out.error = "deadline expired before dispatch";
    return finish(OutcomeStatus::kDeadlineExpired);
  }

  // Validate front gate: arity rule, then the memoized per-task lint,
  // then the cross-task and task-versus-supply passes.
  {
    obs::TraceSpanScope vspan(ctx, "validate");
    vspan.attr("tasks", static_cast<std::uint64_t>(req.tasks.size()));
    if (const char* msg = arity_error(req.kind, req.tasks.size())) {
      out.error = std::string(kind_name(req.kind)) + " " + msg;
      return finish(OutcomeStatus::kInvalid);
    }
    for (const DrtTask& task : req.tasks) {
      out.diagnostics.merge(check::CheckResult(*ws.validate(task)));
    }
    if (req.tasks.size() > 1) {
      out.diagnostics.merge(check::check_task_set(req.tasks));
    }
    out.diagnostics.merge(check::check_system(req.tasks, req.supply));
    if (!out.diagnostics.ok()) {
      out.error = "validation failed";
      return finish(OutcomeStatus::kInvalid);
    }
  }

  // Wire the deadline and the cancel token into the shared progress hook.
  CommonOptions eff = req.common;
  if (req.cancel || deadline_at) {
    if (eff.progress_every == 0) eff.progress_every = kCancelCheckEvery;
    const ExploreProgressFn user = eff.on_progress;
    const std::optional<CancelToken> token = req.cancel;
    eff.on_progress = [user, token, deadline_at](const ExploreProgress& p) {
      if (token && token->cancelled()) return false;
      if (deadline_at && Clock::now() >= *deadline_at) return false;
      return !user || user(p);
    };
  }

  obs::TraceSpanScope rspan(ctx, "run");
  rspan.attr("kind", kind_name(req.kind));
  try {
    switch (req.kind) {
      case AnalysisKind::kStructural: {
        if (eff.coarsen_g > Time(0)) {
          // Coarse-first certified path: bracket the curve-based delay
          // instead of exploring.  The deadline verdict is decided
          // against the tightest vertex deadline (conservative: the
          // curve bound dominates the structural one).
          CertifiedDelayOptions co;
          co.granularity = eff.coarsen_g;
          Time dmin = Time::unbounded();
          for (const DrtVertex& v : req.tasks[0].vertices()) {
            dmin = min(dmin, v.deadline);
          }
          co.decide = dmin;
          const CertifiedDelayResult c =
              certified_curve_delay(ws, req.tasks[0], req.supply, co);
          StructuralResult s;
          s.delay = c.delay;
          s.backlog = c.backlog;
          s.busy_window = c.busy_window;
          s.meets_vertex_deadlines = c.meets_deadline.value_or(false);
          out.certified_error = c.certified_error;
          out.result = std::move(s);
          break;
        }
        StructuralOptions o;
        o.common() = eff;
        o.prune = req.prune;
        o.want_witness = req.want_witness;
        out.result = structural_delay(ws, req.tasks[0], req.supply, o);
        break;
      }
      case AnalysisKind::kFp: {
        StructuralOptions o;
        o.common() = eff;
        o.prune = req.prune;
        o.want_witness = false;
        out.result = fixed_priority_analysis(ws, req.tasks, req.supply, o);
        break;
      }
      case AnalysisKind::kEdf: {
        out.result = edf_schedulable(ws, req.tasks, req.supply);
        break;
      }
      case AnalysisKind::kJointFp: {
        JointFpOptions o;
        o.common() = eff;
        o.prune = req.prune;
        o.max_paths = req.max_paths;
        const std::span<const DrtTask> hps(req.tasks.data(),
                                           req.tasks.size() - 1);
        out.result =
            joint_multi_task_fp(ws, hps, req.tasks.back(), req.supply, o);
        break;
      }
      case AnalysisKind::kSensitivity: {
        SensitivityOptions o;
        o.common() = eff;
        o.delay_cap = req.delay_cap;
        o.max_wcet_growth = req.max_wcet_growth;
        out.result = sensitivity_analysis(ws, req.tasks[0], req.supply, o);
        break;
      }
      case AnalysisKind::kAudsley: {
        StructuralOptions o;
        o.common() = eff;
        o.prune = req.prune;
        o.want_witness = false;
        out.result = audsley_assignment(ws, req.tasks, req.supply, o);
        break;
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    return finish(OutcomeStatus::kError);
  }

  if (req.cancel && req.cancel->cancelled()) {
    out.error = "cancelled mid-run; bounds cover the explored prefix only";
    return finish(OutcomeStatus::kCancelled);
  }
  if (deadline_at && Clock::now() >= *deadline_at &&
      (result_aborted(out.result) || !has_explore_stats(req.kind))) {
    out.error = "deadline expired mid-run; partial result";
    return finish(OutcomeStatus::kDeadlineExpired);
  }
  return finish(OutcomeStatus::kOk);
}

}  // namespace

AnalysisOutcome run_request_at(
    engine::Workspace& ws, const AnalysisRequest& req,
    std::optional<Clock::time_point> deadline_at,
    std::optional<Clock::time_point> admitted) {
  obs::TraceContext ctx = req.trace ? req.trace : obs::TraceContext::make();

  // The queue phase: admission -> dispatch (empty for one-shot runs).
  // Recorded as a root-level span so the timeline reads queue | request.
  const std::int64_t dispatched_us = obs::trace_now_us();
  const std::int64_t admitted_us =
      admitted ? obs::trace_time_us(*admitted) : dispatched_us;
  ctx.add_complete_span("queue", admitted_us, dispatched_us);

  AnalysisOutcome out;
  {
    obs::TraceSpanScope root(ctx, "request");
    root.attr("kind", kind_name(req.kind));
    out = run_request_core(ws, req, deadline_at, ctx);
    root.attr("status", status_name(out.status));
    root.attr("fingerprint", out.stats.batch_key);
    root.attr("cache.hits", out.stats.cache_hits);
    root.attr("cache.misses", out.stats.cache_misses);
    // Front-gate exits (pre-dispatch cancellation, arity failures) skip
    // phases; backfill empty spans so every outcome's tree keeps the full
    // queue / validate / run shape.
    const std::int64_t now = obs::trace_now_us();
    if (!ctx.has_span("validate")) {
      ctx.add_complete_span("validate", now, now, root.id());
    }
    if (!ctx.has_span("run")) {
      ctx.add_complete_span("run", now, now, root.id());
    }
  }
  out.stats.queue_us = dispatched_us - admitted_us;
  out.trace = ctx.snapshot();

  static obs::Histogram& h_latency =
      obs::histogram("svc.request_latency_us");
  h_latency.record(
      static_cast<std::uint64_t>(out.stats.queue_us + out.stats.run_us));
  if (admitted) {
    static obs::Histogram& h_queue = obs::histogram("svc.queue_wait_us");
    h_queue.record(static_cast<std::uint64_t>(out.stats.queue_us));
  }
  return out;
}

AnalysisOutcome run_request(engine::Workspace& ws,
                            const AnalysisRequest& req) {
  std::optional<Clock::time_point> deadline_at;
  if (req.deadline) deadline_at = Clock::now() + *req.deadline;
  return run_request_at(ws, req, deadline_at);
}

AnalysisOutcome run_request(const AnalysisRequest& req) {
  engine::Workspace ws;
  return run_request(ws, req);
}

void AnalysisOutcome::append_to_report(obs::RunReport& report) const {
  report.put("req.id", id);
  report.put("req.kind", std::string(kind_name(kind)));
  report.put("req.status", std::string(status_name(status)));
  if (!error.empty()) report.put("req.error", error);
  if (!diagnostics.clean()) diagnostics.append_to_report(report);

  if (const StructuralResult* s = structural()) {
    put_time(report, "structural.delay", s->delay);
    put_time(report, "structural.busy_window", s->busy_window);
    report.put("structural.meets_vertex_deadlines",
               s->meets_vertex_deadlines);
    if (certified_error) {
      put_time(report, "structural.certified_error", *certified_error);
    }
    report.put("explore.aborted", s->stats.aborted);
  } else if (const FpResult* f = fp()) {
    report.put("fp.overloaded", f->overloaded);
    report.put("fp.tasks", static_cast<std::int64_t>(f->tasks.size()));
    put_time(report, "fp.system_busy_window", f->system_busy_window);
    Time worst(0);
    bool meets = !f->overloaded;
    for (const FpTaskResult& t : f->tasks) {
      worst = max(worst, t.structural_delay);
      meets = meets && t.meets_vertex_deadlines;
    }
    put_time(report, "fp.worst_delay", worst);
    report.put("fp.meets_vertex_deadlines", meets);
  } else if (const EdfResult* e = edf()) {
    report.put("edf.schedulable", e->schedulable);
    report.put("edf.overloaded", e->overloaded);
    if (e->margin) report.put("edf.margin", *e->margin);
    put_time(report, "edf.horizon_checked", e->horizon_checked);
  } else if (const JointFpResult* j = joint_fp()) {
    report.put("joint_fp.overloaded", j->overloaded);
    put_time(report, "joint_fp.joint_delay", j->joint_delay);
    put_time(report, "joint_fp.rbf_delay", j->rbf_delay);
    report.put("joint_fp.paths_enumerated", j->paths_enumerated);
    report.put("joint_fp.paths_analyzed", j->paths_analyzed);
  } else if (const SensitivityReport* sr = sensitivity()) {
    report.put("sensitivity.feasible", sr->feasible);
    report.put("sensitivity.parameters",
               static_cast<std::int64_t>(sr->wcet_slack.size() +
                                         sr->separation_slack.size()));
  } else if (const AudsleyResult* a = audsley()) {
    report.put("audsley.feasible", a->feasible);
    report.put("audsley.tests_run",
               static_cast<std::int64_t>(a->tests_run));
  }

  report.put("svc.queue_us", stats.queue_us);
  report.put("svc.run_us", stats.run_us);
  report.put("svc.batch_key", static_cast<std::int64_t>(stats.batch_key));
  report.put("svc.batch_size", static_cast<std::int64_t>(stats.batch_size));
  report.put("svc.cache_hits", stats.cache_hits);
  report.put("svc.cache_misses", stats.cache_misses);
}

}  // namespace strt::svc
