// strt::svc -- a bounded lock-free MPMC ring (Vyukov's algorithm).
//
// The service's admission path replaces the old mutex+condvar
// std::deque with this ring: producers (submitting threads) and
// consumers (shard workers) synchronize per *cell* through a sequence
// number instead of per *queue* through one lock, so admission on one
// shard never serializes against admission or dispatch on another, and
// concurrent submitters only contend on a single compare-exchange.
//
// Algorithm (Dmitry Vyukov's bounded MPMC queue): every cell carries an
// atomic sequence number.  A cell is ready for the producer of logical
// position `pos` when seq == pos, and ready for the consumer of `pos`
// when seq == pos + 1; completing an operation advances seq by one
// (producer) or by capacity (consumer, re-arming the cell one lap
// later).  Claiming a position is one CAS on the enqueue/dequeue
// cursor; element construction/destruction happens outside any shared
// lock, published by the release store of seq.
//
// Capacity is exact (not rounded to a power of two): the service's
// queue_capacity bound is a user-visible backpressure contract, so a
// ring asked for capacity 3 sheds the 4th concurrent element.  Indexing
// pays one integer modulo, which is noise next to an analysis request.
//
// Blocking is intentionally NOT provided here.  try_push/try_pop are
// total and wait-free apart from CAS retries; the service layers its
// condvar-based backpressure/wakeup protocol on top (see service.cpp),
// keeping this type testable in isolation.
//
// T must be default-constructible and movable.  A failed try_push
// leaves the argument untouched (the move happens only after the cell
// is claimed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "race/hook.hpp"

namespace strt::svc {

template <class T>
class MpmcRing {
 public:
  /// A ring holding at most `capacity` elements (>= 1 enforced).
  explicit MpmcRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcRing() {
    // Destroy whatever is still enqueued (single-threaded by contract:
    // destruction races nothing).
    T scratch;
    while (try_pop(scratch)) {
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Enqueues by move; false (argument untouched) when the ring is full.
  [[nodiscard]] bool try_push(T&& v) {
    STRT_RACE_ATOMIC("svc.ring.push_cursor", &enqueue_pos_, kLoad, kRelaxed);
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<std::size_t>(pos % capacity_)];
      STRT_RACE_ATOMIC("svc.ring.push_seq_check", &cell.seq, kLoad, kAcquire);
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos);
      if (dif == 0) {
        STRT_RACE_ATOMIC("svc.ring.push_claim", &enqueue_pos_, kRmw,
                         kRelaxed);
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          ::new (static_cast<void*>(cell.storage())) T(std::move(v));
          STRT_RACE_ATOMIC("svc.ring.push_publish", &cell.seq, kStore,
                           kRelease);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell is still occupied one lap behind: full
      } else {
        STRT_RACE_ATOMIC("svc.ring.push_cursor", &enqueue_pos_, kLoad,
                         kRelaxed);
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues into `out`; false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    STRT_RACE_ATOMIC("svc.ring.pop_cursor", &dequeue_pos_, kLoad, kRelaxed);
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<std::size_t>(pos % capacity_)];
      STRT_RACE_ATOMIC("svc.ring.pop_seq_check", &cell.seq, kLoad, kAcquire);
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        STRT_RACE_ATOMIC("svc.ring.pop_claim", &dequeue_pos_, kRmw,
                         kRelaxed);
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          T* item = std::launder(reinterpret_cast<T*>(cell.storage()));
          out = std::move(*item);
          item->~T();
          STRT_RACE_ATOMIC("svc.ring.pop_publish", &cell.seq, kStore,
                           kRelease);
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell has not been produced yet: empty
      } else {
        STRT_RACE_ATOMIC("svc.ring.pop_cursor", &dequeue_pos_, kLoad,
                         kRelaxed);
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Instantaneous element count; exact only when quiescent (cursors are
  /// read independently), clamped to [0, capacity].
  [[nodiscard]] std::size_t size_approx() const {
    STRT_RACE_ATOMIC("svc.ring.size_head", &dequeue_pos_, kLoad, kAcquire);
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_acquire);
    STRT_RACE_ATOMIC("svc.ring.size_tail", &enqueue_pos_, kLoad, kAcquire);
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_acquire);
    if (tail <= head) return 0;
    const std::uint64_t n = tail - head;
    return static_cast<std::size_t>(n > capacity_ ? capacity_ : n);
  }

  [[nodiscard]] bool empty() const { return size_approx() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    alignas(T) unsigned char buf[sizeof(T)];
    [[nodiscard]] unsigned char* storage() { return buf; }
  };

  // The cursors live on separate cache lines: producers hammer one,
  // consumers the other.  Cursors and sequences are explicitly 64-bit:
  // capacity is exact (not a power of two), so cell indexing and seq
  // arithmetic must never see a cursor wrap -- unreachable in 64 bits
  // even at billions of ops/s, but a 32-bit std::size_t would wrap.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  std::uint64_t capacity_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace strt::svc
