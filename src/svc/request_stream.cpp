#include "svc/request_stream.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <string>
#include <utility>

#include "io/csv.hpp"
#include "io/parse.hpp"
#include "obs/report.hpp"

namespace strt::svc {

namespace {

std::string at(std::size_t lineno) {
  return lineno == 0 ? std::string("request")
                     : "line " + std::to_string(lineno);
}

/// Re-adds `found` under a request-relative location ("line 7 task 1:
/// line 2"), keeping severities.
void merge_relocated(check::CheckResult& into, const check::CheckResult& found,
                     const std::string& where) {
  for (const check::Diagnostic& d : found.diagnostics()) {
    std::string loc = where;
    if (!d.location.empty()) loc += ": " + d.location;
    into.add(d.severity, d.code, std::move(loc), d.message);
  }
}

/// Parses one task text into `out.tasks`; on parse failure the inner
/// diagnostics are folded into `out_diags` (fatally).  Semantic findings
/// on a *built* task are dropped: run_request()'s validate front gate
/// re-derives them, and duplicating them here would double-report.
bool add_task_text(AnalysisRequest& req, check::CheckResult& diags,
                   std::string_view text, const std::string& where) {
  ParseResult parsed = parse_task_checked(text);
  if (!parsed.task) {
    merge_relocated(diags, parsed.diagnostics, where);
    return false;
  }
  req.tasks.push_back(*std::move(parsed.task));
  return true;
}

bool apply_supply_text(AnalysisRequest& req, check::CheckResult& diags,
                       std::string_view text, const std::string& where) {
  SupplyParseResult parsed = parse_supply_checked(text);
  if (!parsed.supply) {
    merge_relocated(diags, parsed.diagnostics, where);
    return false;
  }
  req.supply = *std::move(parsed.supply);
  return true;
}

bool apply_kind_name(AnalysisRequest& req, check::CheckResult& diags,
                     std::string_view name, const std::string& where) {
  const std::optional<AnalysisKind> kind = kind_from_name(name);
  if (!kind) {
    diags.add(check::Severity::kError, "req.unknown-kind", where,
              "unknown analysis kind '" + std::string(name) +
                  "' (expected structural, fp, edf, joint_fp, sensitivity, "
                  "or audsley)");
    return false;
  }
  req.kind = *kind;
  return true;
}

void require_tasks(const AnalysisRequest& req, check::CheckResult& diags,
                   const std::string& where) {
  if (req.tasks.empty()) {
    diags.add(check::Severity::kError, "req.missing-task", where,
              "request carries no task description");
  }
}

void bad_field(check::CheckResult& diags, const std::string& where,
               std::string_view field, std::string_view why) {
  diags.add(check::Severity::kError, "req.bad-field",
            where + " field '" + std::string(field) + "'", std::string(why));
}

/// Reads an optional non-negative integer member into `out`; absent
/// members leave `out` untouched.
bool get_u64(const obs::JsonValue& obj, std::string_view key,
             std::uint64_t& out, check::CheckResult& diags,
             const std::string& where) {
  const obs::JsonValue* v = obj.find(key);
  if (!v) return true;
  if (v->kind != obs::JsonValue::Kind::Number || !v->is_integer ||
      v->integer < 0) {
    bad_field(diags, where, key, "expected a non-negative integer");
    return false;
  }
  out = static_cast<std::uint64_t>(v->integer);
  return true;
}

bool get_bool(const obs::JsonValue& obj, std::string_view key, bool& out,
              check::CheckResult& diags, const std::string& where) {
  const obs::JsonValue* v = obj.find(key);
  if (!v) return true;
  if (v->kind != obs::JsonValue::Kind::Bool) {
    bad_field(diags, where, key, "expected a boolean");
    return false;
  }
  out = v->boolean;
  return true;
}

}  // namespace

RequestParse parse_request_json(std::string_view line, std::size_t lineno) {
  RequestParse out;
  const std::string where = at(lineno);

  obs::JsonValue doc;
  try {
    doc = obs::JsonValue::parse(line);
  } catch (const std::exception& e) {
    out.diagnostics.add(check::Severity::kError, "req.bad-field", where,
                        std::string("malformed JSON: ") + e.what());
    return out;
  }
  if (doc.kind != obs::JsonValue::Kind::Object) {
    out.diagnostics.add(check::Severity::kError, "req.bad-field", where,
                        "request line is not a JSON object");
    return out;
  }

  AnalysisRequest req;

  if (const obs::JsonValue* kind = doc.find("kind")) {
    if (kind->kind != obs::JsonValue::Kind::String) {
      bad_field(out.diagnostics, where, "kind", "expected a string");
    } else {
      apply_kind_name(req, out.diagnostics, kind->string, where);
    }
  } else {
    bad_field(out.diagnostics, where, "kind", "required field is absent");
  }

  get_u64(doc, "id", req.id, out.diagnostics, where);

  if (const obs::JsonValue* task = doc.find("task")) {
    if (task->kind != obs::JsonValue::Kind::String) {
      bad_field(out.diagnostics, where, "task", "expected a string");
    } else {
      add_task_text(req, out.diagnostics, task->string, where + " task");
    }
  }
  if (const obs::JsonValue* tasks = doc.find("tasks")) {
    if (tasks->kind != obs::JsonValue::Kind::Array) {
      bad_field(out.diagnostics, where, "tasks",
                "expected an array of strings");
    } else {
      for (std::size_t i = 0; i < tasks->array.size(); ++i) {
        const obs::JsonValue& t = tasks->array[i];
        if (t.kind != obs::JsonValue::Kind::String) {
          bad_field(out.diagnostics, where, "tasks",
                    "expected an array of strings");
          break;
        }
        add_task_text(req, out.diagnostics, t.string,
                      where + " task " + std::to_string(i));
      }
    }
  }
  require_tasks(req, out.diagnostics, where);

  if (const obs::JsonValue* supply = doc.find("supply")) {
    if (supply->kind != obs::JsonValue::Kind::String) {
      bad_field(out.diagnostics, where, "supply", "expected a string");
    } else {
      apply_supply_text(req, out.diagnostics, supply->string,
                        where + " supply");
    }
  }

  std::uint64_t u = 0;
  if (get_u64(doc, "max_states", u, out.diagnostics, where) &&
      doc.find("max_states")) {
    req.common.max_states = static_cast<std::size_t>(u);
  }
  get_u64(doc, "progress_every", req.common.progress_every, out.diagnostics,
          where);
  get_bool(doc, "prune", req.prune, out.diagnostics, where);
  get_bool(doc, "want_witness", req.want_witness, out.diagnostics, where);
  if (get_u64(doc, "max_paths", u, out.diagnostics, where) &&
      doc.find("max_paths")) {
    req.max_paths = static_cast<std::size_t>(u);
  }
  if (get_u64(doc, "delay_cap", u, out.diagnostics, where) &&
      doc.find("delay_cap")) {
    req.delay_cap = Time{static_cast<std::int64_t>(u)};
  }
  if (get_u64(doc, "max_wcet_growth", u, out.diagnostics, where) &&
      doc.find("max_wcet_growth")) {
    req.max_wcet_growth = Work{static_cast<std::int64_t>(u)};
  }
  if (get_u64(doc, "deadline_ms", u, out.diagnostics, where) &&
      doc.find("deadline_ms")) {
    req.deadline = std::chrono::milliseconds(u);
  }

  if (out.diagnostics.ok()) out.request = std::move(req);
  return out;
}

RequestParse parse_request_csv(std::string_view line, std::size_t lineno,
                               std::string_view task_dir) {
  RequestParse out;
  const std::string where = at(lineno);

  const std::vector<std::string> fields = split_csv_line(line);
  if (fields.size() < 4) {
    out.diagnostics.add(
        check::Severity::kError, "req.bad-field", where,
        "expected id,kind,supply,task_file[,task_file...] (got " +
            std::to_string(fields.size()) + " fields)");
    return out;
  }

  AnalysisRequest req;

  try {
    std::size_t used = 0;
    req.id = std::stoull(fields[0], &used);
    if (used != fields[0].size()) throw std::invalid_argument(fields[0]);
  } catch (const std::exception&) {
    bad_field(out.diagnostics, where, "id",
              "'" + fields[0] + "' is not a non-negative integer");
  }

  apply_kind_name(req, out.diagnostics, fields[1], where);
  apply_supply_text(req, out.diagnostics, fields[2], where + " supply");

  for (std::size_t i = 3; i < fields.size(); ++i) {
    std::string path = fields[i];
    if (!task_dir.empty()) path = std::string(task_dir) + "/" + path;
    std::ifstream in(path);
    if (!in) {
      bad_field(out.diagnostics, where, "task_file",
                "cannot read '" + path + "'");
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    add_task_text(req, out.diagnostics, text.str(), where + " " + path);
  }
  require_tasks(req, out.diagnostics, where);

  if (out.diagnostics.ok()) out.request = std::move(req);
  return out;
}

std::optional<StreamFormat> format_from_name(std::string_view name) {
  if (name == "jsonl") return StreamFormat::kJsonl;
  if (name == "csv") return StreamFormat::kCsv;
  return std::nullopt;
}

std::vector<RequestParse> read_request_stream(std::istream& is,
                                              StreamFormat format,
                                              std::string_view task_dir) {
  std::vector<RequestParse> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    out.push_back(format == StreamFormat::kJsonl
                      ? parse_request_json(line, lineno)
                      : parse_request_csv(line, lineno, task_dir));
  }
  return out;
}

}  // namespace strt::svc
