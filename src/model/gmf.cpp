#include "model/gmf.hpp"

#include "base/assert.hpp"

namespace strt {

GmfTask::GmfTask(std::string name, std::vector<GmfFrame> frames)
    : name_(std::move(name)), frames_(std::move(frames)) {
  STRT_REQUIRE(!frames_.empty(), "a GMF task needs at least one frame");
  for (const GmfFrame& f : frames_) {
    STRT_REQUIRE(f.wcet >= Work(1), "frame wcet must be >= 1");
    STRT_REQUIRE(f.deadline >= Time(1), "frame deadline must be >= 1");
    STRT_REQUIRE(f.separation >= Time(1), "frame separation must be >= 1");
  }
}

DrtTask GmfTask::to_drt() const {
  DrtBuilder b(name_);
  std::vector<VertexId> ids;
  ids.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    ids.push_back(b.add_vertex(name_ + "#" + std::to_string(i),
                               frames_[i].wcet, frames_[i].deadline));
  }
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    b.add_edge(ids[i], ids[(i + 1) % frames_.size()],
               frames_[i].separation);
  }
  return std::move(b).build();
}

Work GmfTask::total_wcet() const {
  Work sum(0);
  for (const GmfFrame& f : frames_) sum += f.wcet;
  return sum;
}

Time GmfTask::total_separation() const {
  Time sum(0);
  for (const GmfFrame& f : frames_) sum += f.separation;
  return sum;
}

}  // namespace strt
