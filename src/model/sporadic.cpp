#include "model/sporadic.hpp"

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "curves/builders.hpp"

namespace strt {

DrtTask SporadicTask::to_drt() const {
  STRT_REQUIRE(wcet >= Work(1), "wcet must be >= 1");
  STRT_REQUIRE(period >= Time(1), "period must be >= 1");
  STRT_REQUIRE(deadline >= Time(1), "deadline must be >= 1");
  DrtBuilder b(name);
  const VertexId v = b.add_vertex(name, wcet, deadline);
  b.add_edge(v, v, period);
  return std::move(b).build();
}

Staircase SporadicTask::rbf_closed_form(Time horizon) const {
  return curve::periodic_arrival(wcet, period, Time(0), horizon)
      .without_tail();
}

Staircase SporadicTask::dbf_closed_form(Time horizon) const {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  std::vector<Step> pts;
  for (std::int64_t k = 0;; ++k) {
    const std::int64_t t =
        checked::add(deadline.count(), checked::mul(k, period.count()));
    if (t > horizon.count()) break;
    pts.push_back(Step{Time(t), Work(checked::mul(k + 1, wcet.count()))});
  }
  return Staircase::from_points(std::move(pts), horizon);
}

}  // namespace strt
