// Sporadic (and strictly periodic) tasks: the degenerate one-vertex case
// of the structural model, with closed-form workload functions used to
// cross-validate the graph algorithms.
#pragma once

#include <string>

#include "base/types.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"

namespace strt {

struct SporadicTask {
  std::string name = "sporadic";
  Work wcet{1};
  Time period{1};    // minimum inter-release separation
  Time deadline{1};  // relative deadline

  /// Single vertex with a self-loop of the period.
  [[nodiscard]] DrtTask to_drt() const;

  /// rbf(t) = wcet * ceil(t / period).
  [[nodiscard]] Staircase rbf_closed_form(Time horizon) const;

  /// dbf(t) = wcet * (floor((t - deadline) / period) + 1) for
  /// t >= deadline, else 0.
  [[nodiscard]] Staircase dbf_closed_form(Time horizon) const;
};

}  // namespace strt
