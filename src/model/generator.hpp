// Random DRT task synthesis for experiments (Stigge-style generation):
// a random Hamiltonian cycle guarantees the task is cyclic and strongly
// connected, extra chord edges add branching, and wcets are scaled toward
// a target utilization (reported exactly afterwards).
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "base/rng.hpp"
#include "graph/drt.hpp"

namespace strt {

struct DrtGenParams {
  std::size_t min_vertices = 5;
  std::size_t max_vertices = 10;
  Time min_separation{10};
  Time max_separation{100};
  /// Probability of each possible chord edge beyond the base cycle.
  double chord_probability = 0.15;
  /// Desired long-run utilization (max cycle ratio); the generator scales
  /// integer wcets toward it, the achieved value is exact but approximate
  /// to the target.
  double target_utilization = 0.3;
  /// Deadline = ceil(deadline_factor * min outgoing separation); with
  /// factor <= 1 the task is frame-separated.
  double deadline_factor = 1.0;
};

struct GeneratedTask {
  DrtTask task;
  Rational exact_utilization{0};
};

[[nodiscard]] GeneratedTask random_drt(Rng& rng, const DrtGenParams& params);

/// A set of tasks whose exact utilizations sum close to `total_target`
/// (UUniFast split of the target across `count` tasks).
[[nodiscard]] std::vector<GeneratedTask> random_drt_set(
    Rng& rng, std::size_t count, double total_target,
    DrtGenParams params = {});

}  // namespace strt
