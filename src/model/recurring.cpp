#include "model/recurring.hpp"

#include "base/assert.hpp"

namespace strt {

RecurringTaskBuilder::RecurringTaskBuilder(std::string name)
    : name_(std::move(name)) {}

VertexId RecurringTaskBuilder::set_root(std::string name, Work wcet,
                                        Time deadline) {
  STRT_REQUIRE(nodes_.empty(), "root must be the first vertex");
  nodes_.push_back(Node{std::move(name), wcet, deadline, Time(0), false,
                        false});
  return 0;
}

VertexId RecurringTaskBuilder::add_child(VertexId parent, std::string name,
                                         Work wcet, Time deadline,
                                         Time separation) {
  STRT_REQUIRE(!nodes_.empty(), "set_root() must be called first");
  STRT_REQUIRE(parent >= 0 &&
                   static_cast<std::size_t>(parent) < nodes_.size(),
               "parent out of range");
  STRT_REQUIRE(separation >= Time(1), "separation must be >= 1");
  auto& p = nodes_[static_cast<std::size_t>(parent)];
  p.has_children = true;
  const auto id = static_cast<VertexId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), wcet, deadline,
                        p.span_from_root + separation, false, false});
  edges_.push_back(DrtEdge{parent, id, separation});
  return id;
}

RecurringTaskBuilder& RecurringTaskBuilder::add_restart(
    VertexId leaf, Time restart_separation) {
  STRT_REQUIRE(leaf >= 0 && static_cast<std::size_t>(leaf) < nodes_.size(),
               "leaf out of range");
  STRT_REQUIRE(restart_separation >= Time(1),
               "restart separation must be >= 1");
  nodes_[static_cast<std::size_t>(leaf)].has_restart = true;
  edges_.push_back(DrtEdge{leaf, 0, restart_separation});
  return *this;
}

RecurringTaskBuilder& RecurringTaskBuilder::with_global_period(Time period) {
  STRT_REQUIRE(!nodes_.empty(), "set_root() must be called first");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.has_children || n.has_restart) continue;
    STRT_REQUIRE(period > n.span_from_root,
                 "global period must exceed the branch span");
    add_restart(static_cast<VertexId>(i), period - n.span_from_root);
  }
  return *this;
}

std::vector<RecurringTaskBuilder::BranchInfo>
RecurringTaskBuilder::branches() const {
  std::vector<BranchInfo> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.has_children) continue;
    BranchInfo info;
    info.leaf = static_cast<VertexId>(i);
    info.name = n.name;
    info.span = n.span_from_root;
    if (n.has_restart) {
      for (const DrtEdge& e : edges_) {
        if (e.from == info.leaf && e.to == 0) {
          info.restart = e.separation;
          break;
        }
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

DrtTask RecurringTaskBuilder::build() && {
  STRT_REQUIRE(!nodes_.empty(), "recurring task needs a root");
  DrtBuilder b(name_);
  for (Node& n : nodes_) {
    b.add_vertex(std::move(n.name), n.wcet, n.deadline);
  }
  for (const DrtEdge& e : edges_) {
    b.add_edge(e.from, e.to, e.separation);
  }
  return std::move(b).build();
}

}  // namespace strt
