#include "model/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/assert.hpp"
#include "graph/cycle_ratio.hpp"

namespace strt {

namespace {

struct Skeleton {
  std::size_t n{0};
  std::vector<DrtEdge> edges;  // wcets filled in later
};

Skeleton random_skeleton(Rng& rng, const DrtGenParams& p) {
  Skeleton sk;
  sk.n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(p.min_vertices),
                      static_cast<std::int64_t>(p.max_vertices)));
  auto rand_sep = [&] {
    return Time(rng.uniform_int(p.min_separation.count(),
                                p.max_separation.count()));
  };
  // Random Hamiltonian cycle: cyclic + strongly connected base.
  std::vector<VertexId> order(sk.n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = sk.n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.pick_index(i)]);
  }
  for (std::size_t i = 0; i < sk.n; ++i) {
    sk.edges.push_back(
        DrtEdge{order[i], order[(i + 1) % sk.n], rand_sep()});
  }
  // Chord edges add branching choices.
  for (std::size_t u = 0; u < sk.n; ++u) {
    for (std::size_t v = 0; v < sk.n; ++v) {
      if (u == v) continue;
      if (rng.chance(p.chord_probability)) {
        sk.edges.push_back(DrtEdge{static_cast<VertexId>(u),
                                   static_cast<VertexId>(v), rand_sep()});
      }
    }
  }
  return sk;
}

DrtTask assemble(const Skeleton& sk, const std::vector<Work>& wcets,
                 double deadline_factor) {
  DrtBuilder b("gen");
  std::vector<Time> min_out(sk.n, Time::unbounded());
  for (const DrtEdge& e : sk.edges) {
    auto& m = min_out[static_cast<std::size_t>(e.from)];
    m = min(m, e.separation);
  }
  for (std::size_t v = 0; v < sk.n; ++v) {
    STRT_ASSERT(!min_out[v].is_unbounded(), "generator vertex has no edge");
    const auto d = static_cast<std::int64_t>(
        std::ceil(deadline_factor * static_cast<double>(min_out[v].count())));
    std::string vname = "v";
    vname += std::to_string(v);
    b.add_vertex(std::move(vname), wcets[v],
                 Time(std::max<std::int64_t>(1, d)));
  }
  for (const DrtEdge& e : sk.edges) {
    b.add_edge(e.from, e.to, e.separation);
  }
  return std::move(b).build();
}

}  // namespace

GeneratedTask random_drt(Rng& rng, const DrtGenParams& p) {
  STRT_REQUIRE(p.min_vertices >= 1 && p.min_vertices <= p.max_vertices,
               "bad vertex-count range");
  STRT_REQUIRE(p.min_separation >= Time(1) &&
                   p.min_separation <= p.max_separation,
               "bad separation range");
  STRT_REQUIRE(p.target_utilization > 0.0, "target utilization must be > 0");

  const Skeleton sk = random_skeleton(rng, p);

  // Average outgoing separation per vertex drives the initial wcet guess.
  std::vector<double> avg_sep(sk.n, 0.0);
  std::vector<int> deg(sk.n, 0);
  for (const DrtEdge& e : sk.edges) {
    avg_sep[static_cast<std::size_t>(e.from)] +=
        static_cast<double>(e.separation.count());
    ++deg[static_cast<std::size_t>(e.from)];
  }
  std::vector<Work> wcets(sk.n, Work(1));
  auto set_wcets = [&](double scale) {
    for (std::size_t v = 0; v < sk.n; ++v) {
      const double want = scale * avg_sep[v] / std::max(1, deg[v]);
      wcets[v] = Work(std::max<std::int64_t>(1, std::llround(want)));
    }
  };

  set_wcets(p.target_utilization);
  DrtTask task = assemble(sk, wcets, p.deadline_factor);
  std::optional<Rational> u = utilization(task);
  STRT_ASSERT(u.has_value(), "generated task must be cyclic");

  // One corrective rescale toward the target (integer rounding keeps the
  // achieved value approximate; the exact value is reported).
  const double achieved = u->to_double();
  if (achieved > 0.0 &&
      std::abs(achieved - p.target_utilization) / p.target_utilization >
          0.05) {
    set_wcets(p.target_utilization * p.target_utilization / achieved);
    task = assemble(sk, wcets, p.deadline_factor);
    u = utilization(task);
    STRT_ASSERT(u.has_value(), "rescaled task must stay cyclic");
  }
  return GeneratedTask{std::move(task), *u};
}

std::vector<GeneratedTask> random_drt_set(Rng& rng, std::size_t count,
                                          double total_target,
                                          DrtGenParams params) {
  STRT_REQUIRE(count >= 1, "task-set size must be >= 1");
  STRT_REQUIRE(total_target > 0.0, "total utilization must be > 0");
  const std::vector<double> shares = uunifast(rng, count, total_target);
  std::vector<GeneratedTask> set;
  set.reserve(count);
  for (double share : shares) {
    params.target_utilization = std::max(share, 1e-3);
    set.push_back(random_drt(rng, params));
  }
  return set;
}

}  // namespace strt
