// Generalized multiframe (GMF) tasks: a fixed ring of frames.
//
// Frame i releases a job of wcet(i) / deadline(i); the next release is
// frame (i+1) mod N after at least separation(i) ticks.  GMF is the
// cycle-graph special case of the DRT model.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"
#include "graph/drt.hpp"

namespace strt {

struct GmfFrame {
  Work wcet{1};
  Time deadline{1};
  /// Minimum separation to the next frame in the ring.
  Time separation{1};
};

class GmfTask {
 public:
  GmfTask(std::string name, std::vector<GmfFrame> frames);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<GmfFrame>& frames() const {
    return frames_;
  }

  /// Ring-shaped DRT task (vertex i -> vertex (i+1) mod N).
  [[nodiscard]] DrtTask to_drt() const;

  /// Sum of wcets over one ring revolution.
  [[nodiscard]] Work total_wcet() const;
  /// Sum of separations over one revolution (the GMF "period").
  [[nodiscard]] Time total_separation() const;

 private:
  std::string name_;
  std::vector<GmfFrame> frames_;
};

}  // namespace strt
