// Recurring branching tasks: a rooted tree of job types with branching
// choices, restarting at the root after each leaf.
//
// This is the tree-shaped special case of the DRT model (Baruah's
// recurring task model with explicit per-leaf restart separations; the
// original model's global period P maps to restart separations
// P - span(root..leaf), which the caller computes -- see
// with_global_period()).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "graph/drt.hpp"

namespace strt {

class RecurringTaskBuilder {
 public:
  explicit RecurringTaskBuilder(std::string name);

  /// Adds the root job type; must be called exactly once, first.
  VertexId set_root(std::string name, Work wcet, Time deadline);

  /// Adds a child job type released at least `separation` after `parent`.
  VertexId add_child(VertexId parent, std::string name, Work wcet,
                     Time deadline, Time separation);

  /// Declares `leaf` terminal: the task restarts at the root at least
  /// `restart_separation` after the leaf's release.
  RecurringTaskBuilder& add_restart(VertexId leaf, Time restart_separation);

  /// Convenience: restart every current leaf (vertex without children)
  /// such that consecutive root releases are at least `period` apart on
  /// every branch, i.e. restart_separation = period - span(root..leaf).
  /// Requires period > span for every leaf.
  RecurringTaskBuilder& with_global_period(Time period);

  [[nodiscard]] DrtTask build() &&;

  /// One branch terminus of the tree built so far (a vertex without
  /// children).  `restart` is the declared restart separation, or nullopt
  /// if add_restart was never called for it -- the implied root-to-root
  /// period of a restarting branch is `span + *restart`.  Read-only
  /// introspection for strt::check (the builder is consumed by build(),
  /// so consistency rules must run on the builder itself).
  struct BranchInfo {
    VertexId leaf{0};
    std::string name;
    Time span{0};                  // release span root -> leaf
    std::optional<Time> restart;   // restart separation, if declared
  };
  [[nodiscard]] std::vector<BranchInfo> branches() const;

 private:
  struct Node {
    std::string name;
    Work wcet{1};
    Time deadline{1};
    Time span_from_root{0};
    bool has_children = false;
    bool has_restart = false;
  };
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<DrtEdge> edges_;
};

}  // namespace strt
