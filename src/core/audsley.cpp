#include "core/audsley.hpp"

#include <algorithm>
#include <stdexcept>

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"

namespace strt {

namespace {
constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 32;
}

AudsleyResult audsley_assignment(engine::Workspace& ws,
                                 std::span<const DrtTask> tasks,
                                 const Supply& supply,
                                 const StructuralOptions& opts) {
  STRT_REQUIRE(!tasks.empty(), "task set must not be empty");
  AudsleyResult res;

  Rational total(0);
  for (const DrtTask& t : tasks) {
    if (const std::optional<Rational> u = utilization(t)) total += *u;
  }
  if (total >= supply.long_run_rate()) return res;  // infeasible

  // Materialize everything out to the system busy window once.
  Time horizon = max(supply.min_horizon(), Time(64));
  std::vector<engine::CurvePtr> rbfs;
  engine::CurvePtr sv;
  for (;;) {
    rbfs.clear();
    engine::CurvePtr sum = ws.intern(Staircase(horizon));
    for (const DrtTask& t : tasks) {
      rbfs.push_back(ws.rbf(t, horizon));
      sum = ws.pointwise_add(*sum, *rbfs.back());
    }
    sv = ws.sbf(supply, horizon);
    if (first_catch_up(*sum, *sv)) break;
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error("audsley_assignment: horizon guard exceeded");
    }
    horizon = horizon * 2;
  }

  std::vector<std::size_t> unassigned(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) unassigned[i] = i;
  std::vector<std::size_t> reversed;  // lowest priority first

  StructuralOptions inner = opts;
  inner.want_witness = false;

  while (!unassigned.empty()) {
    // All candidates at this level are probed in parallel (speculative:
    // a serial run stops at the first fit).  The first fitting position
    // is selected and tests_run counts the probes the serial scan would
    // have made, so the result -- order, feasibility, tests_run -- is
    // bit-identical to a STRT_THREADS=1 run.
    const std::vector<char> fits =
        exec::parallel_map(unassigned.size(), [&](std::size_t pos) {
          const std::size_t cand = unassigned[pos];
          engine::CurvePtr hp_sum = ws.intern(Staircase(horizon));
          for (const std::size_t other : unassigned) {
            if (other == cand) continue;
            hp_sum = ws.pointwise_add(*hp_sum, *rbfs[other]);
          }
          const engine::CurvePtr leftover = ws.leftover_service(*sv, *hp_sum);
          const StructuralResult st =
              structural_delay_vs(ws, tasks[cand], *leftover, inner);
          return static_cast<char>(st.meets_vertex_deadlines);
        });
    const auto first_fit = std::find(fits.begin(), fits.end(), char{1});
    if (first_fit == fits.end()) {
      res.tests_run += unassigned.size();
      return res;  // no task fits at this level: infeasible
    }
    const auto pos =
        static_cast<std::size_t>(first_fit - fits.begin());
    res.tests_run += pos + 1;
    reversed.push_back(unassigned[pos]);
    unassigned.erase(unassigned.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  res.feasible = true;
  res.order.assign(reversed.rbegin(), reversed.rend());
  return res;
}

}  // namespace strt
