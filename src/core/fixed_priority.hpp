// Fixed-priority analysis of a set of structural tasks on one supply.
//
// Tasks are given in priority order (index 0 = highest).  Task i is
// served by the leftover service curve
//
//     beta_i(t) = max_{0 <= s <= t} ( sbf(s) - sum_{j < i} rbf_j(s) )+
//
// (the standard abstract-stream leftover of a preemptive greedy
// resource), and then analyzed twice: with the curve-based baseline
// (hdev) and with the structural busy-window analysis.  The comparison
// per task is exactly experiment E1/E2's multi-task variant.
#pragma once

#include <span>
#include <vector>

#include "core/abstractions.hpp"
#include "core/curve_based.hpp"
#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

struct FpTaskResult {
  std::size_t task_index{0};
  Time busy_window{0};
  Time structural_delay{0};
  Time curve_delay{0};
  Work structural_backlog{0};
  Work curve_backlog{0};
  ExploreStats stats;
  /// Per job type worst delay under the leftover service (see
  /// StructuralResult::vertex_delays).
  std::vector<Time> vertex_delays;
  /// True iff every job type meets its own relative deadline.
  bool meets_vertex_deadlines{false};
};

struct FpResult {
  /// Per-task results in priority order; empty when the system is
  /// overloaded (total utilization >= supply rate).
  std::vector<FpTaskResult> tasks;
  bool overloaded{false};
  /// System-level busy window (all tasks together).
  Time system_busy_window{0};
};

/// `interference` selects how the higher-priority workload is abstracted
/// when building the leftover curve: the exact request-bound staircases
/// (default, what this paper enables) or the coarser curve classes of
/// classical tools.  kStructural is treated as kExactCurve here (the
/// interference enters the analysis as a curve either way).
[[nodiscard]] FpResult fixed_priority_analysis(
    engine::Workspace& ws, std::span<const DrtTask> tasks,
    const Supply& supply, const StructuralOptions& opts = {},
    WorkloadAbstraction interference = WorkloadAbstraction::kExactCurve);

}  // namespace strt
