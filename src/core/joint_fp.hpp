// Joint structural analysis of two fixed-priority structural tasks.
//
// The standard leftover analysis subtracts the high-priority task's
// request-bound function rbf_hp from the supply.  rbf_hp takes, for every
// window length independently, the worst release path -- so the leftover
// curve can charge the low-priority task with interference no single run
// of the high-priority task can produce.  This is the multi-task face of
// the abstraction loss: unlike the single-stream case (where the exact
// staircase is lossless -- see the bridge theorem), the interference
// here *must* be consistent across all window lengths simultaneously,
// and only a path can be.
//
// The joint analysis enumerates the maximal high-priority release paths
// pi within the system busy window (pruned by pointwise dominance of
// their workload staircases), builds the exact leftover service
//
//     S2^pi(t) = max_{s <= t} ( sbf(s) - W_pi(s) )+
//
// for each, and takes the worst single-stream structural bound of the
// low-priority task over them:
//
//     D_joint = max over pi of structural_delay(lp, S2^pi).
//
// Soundness: in any level-2 busy period the interfering work over [0, t]
// is W_pi(t) for some legal path pi started at or after the busy-period
// origin (a suffix of a legal run is legal, and shifting a path later
// only decreases its workload pointwise); maximal paths dominate their
// prefixes.  Tightness vs the baseline:  D_joint <= D_rbf  because every
// W_pi <= rbf_hp pointwise.
#pragma once

#include <cstdint>
#include <span>

#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

/// Options of the joint analysis.  The explorer state cap and the
/// progress/cancel hook in the CommonOptions base are forwarded to every
/// inner structural analysis (the rbf baseline and one per interference
/// candidate).
struct JointFpOptions : CommonOptions {
  /// Hard cap on enumerated maximal interference paths (before
  /// dominance pruning); exceeded => throws std::runtime_error.
  std::size_t max_paths = 200'000;
  /// Dominance pruning inside the inner structural analyses (ablation
  /// switch; results are identical).
  bool prune = true;
};

struct JointFpResult {
  bool overloaded{false};
  /// The joint structural bound for the low-priority task.
  Time joint_delay{0};
  /// The baseline: structural bound against the rbf-based leftover.
  Time rbf_delay{0};
  /// Interference paths enumerated / surviving dominance pruning.
  std::uint64_t paths_enumerated{0};
  std::uint64_t paths_analyzed{0};
  /// System busy window used to bound the enumeration.
  Time busy_window{0};
  /// Aggregated explorer statistics over every structural analysis this
  /// call ran (the rbf baseline plus one per surviving interference
  /// candidate).
  ExploreStats explore_stats;
};

/// Analyzes `lp` under preemptive fixed priority below `hp` on `supply`.
/// Shares memoized rbf/sbf curves and the low-priority pseudo-inverses
/// across the per-candidate analyses in `ws`.
[[nodiscard]] JointFpResult joint_two_task_fp(
    engine::Workspace& ws, const DrtTask& hp, const DrtTask& lp,
    const Supply& supply, const JointFpOptions& opts = {});

/// Generalization to any number of higher-priority tasks: the joint
/// interference candidates are the pointwise sums of one consistent path
/// per task (cross product, pruned by pointwise dominance after every
/// fold).  Exponential in principle; the pruning and the path cap keep
/// DATE-scale instances tractable.  `hps` may be empty (then both bounds
/// are the plain single-stream analysis).
[[nodiscard]] JointFpResult joint_multi_task_fp(
    engine::Workspace& ws, std::span<const DrtTask> hps, const DrtTask& lp,
    const Supply& supply, const JointFpOptions& opts = {});

}  // namespace strt
