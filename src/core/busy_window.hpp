// Finitary busy-window computation.
//
// For a workload with request bound rbf and a resource with supply bound
// sbf, every busy period is at most L = min{ t >= 1 : rbf(t) <= sbf(t) }
// ticks long.  L exists iff the workload's exact long-run rate is below
// the supply's; this module checks that condition exactly (rationals) and
// then materializes both curves out to L with a doubling search.
#pragma once

#include <optional>

#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

namespace engine {
class Workspace;
}  // namespace engine

struct BusyWindow {
  Time length{0};   // L
  Staircase rbf;    // materialized on [0, L]
  Staircase sbf;    // materialized on [0, L], tail preserved
};

/// Busy window of a single DRT task on a supply.  Returns nullopt when the
/// task's utilization is not strictly below the supply rate (overload: no
/// finite busy window, delays unbounded).  Serves the rbf/sbf
/// materializations (and their doubling-search re-extensions) from the
/// `ws` cache.
[[nodiscard]] std::optional<BusyWindow> busy_window(engine::Workspace& ws,
                                                    const DrtTask& task,
                                                    const Supply& supply);

/// Busy window of a pre-materialized workload curve against a service
/// curve: min{ t >= 1 : wl(t) <= sv(t) } within the curves' common
/// horizon.  Throws std::invalid_argument if not found there (the caller
/// materialized too little).
[[nodiscard]] Time busy_window_of_curves(const Staircase& wl,
                                         const Staircase& sv);

}  // namespace strt
