// Options shared by every exploration-backed analysis.
//
// The structural, joint-FP, and sensitivity analyses (and everything
// layered on them: fixed-priority, Audsley, dimensioning, the svc
// request API) all bottom out in the dominance-pruned path exploration
// of graph/explore, so they share the same three resource/cancellation
// knobs.  CommonOptions is the single definition those option structs
// inherit; svc::AnalysisRequest carries exactly one CommonOptions block
// regardless of the requested analysis kind.
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/config.hpp"
#include "base/types.hpp"
#include "graph/explore.hpp"

namespace strt {

/// Default coarsening granularity: the STRT_COARSEN_G environment
/// variable resolved through strt::cfg (once, on first use), else 0
/// (coarsening off).  Values below 1 mean "off".
[[nodiscard]] inline Time default_coarsen_g() {
  static const std::int64_t g =
      cfg::get_int("STRT_COARSEN_G", /*def=*/0, /*min=*/1);
  return Time(g);
}

struct CommonOptions {
  /// State cap forwarded to the explorer.  A capped run returns with
  /// stats.aborted set and bounds that cover the explored prefix only.
  std::size_t max_states = 50'000'000;
  /// Progress hook forwarded to the explorer (see ExploreOptions): invoked
  /// every `progress_every` expanded states; return false to cancel.  A
  /// cancelled run returns with stats.aborted set and bounds that are only
  /// lower bounds (the explored prefix's worst case).
  std::uint64_t progress_every = 0;
  ExploreProgressFn on_progress{};

  /// Opt-in coarse-first mode for the analyses that support it (the
  /// structural request path runs core/certified.hpp instead of the
  /// exploration when this is > 0): starting grid granularity of the
  /// certified coarsening, 0 = exact analysis.  Defaults to the
  /// STRT_COARSEN_G environment variable (off when unset).
  Time coarsen_g = default_coarsen_g();

  /// The shared block by itself (slicing helper: copy one analysis'
  /// common knobs into another's options, e.g. request -> inner
  /// structural probes).
  [[nodiscard]] const CommonOptions& common() const { return *this; }
  CommonOptions& common() { return *this; }
};

}  // namespace strt
