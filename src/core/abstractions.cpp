#include "core/abstractions.hpp"

#include <stdexcept>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "core/curve_based.hpp"
#include "curves/builders.hpp"
#include "curves/hull.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"

namespace strt {

namespace {

constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 32;

/// Exact long-run rate of the abstraction (used for the overload check).
Rational abstraction_rate(const DrtTask& task, WorkloadAbstraction a) {
  switch (a) {
    case WorkloadAbstraction::kStructural:
    case WorkloadAbstraction::kExactCurve:
    case WorkloadAbstraction::kConcaveHull:
    case WorkloadAbstraction::kTokenBucket: {
      const std::optional<Rational> u = utilization(task);
      return u.value_or(Rational(0));
    }
    case WorkloadAbstraction::kSporadicMinGap: {
      Time min_sep = Time::unbounded();
      for (const DrtEdge& e : task.edges()) {
        min_sep = min(min_sep, e.separation);
      }
      if (min_sep.is_unbounded()) return Rational(0);  // no edges
      return Rational(task.max_wcet().count(), min_sep.count());
    }
  }
  throw std::logic_error("unreachable");
}

Staircase token_bucket_fit(const DrtTask& task, const Staircase& exact,
                           Time horizon) {
  const Rational rate = abstraction_rate(task, WorkloadAbstraction::kTokenBucket);
  // Minimal integer burst b with  b + floor(rate*(t-1)) >= rbf(t)  for all
  // t in [1, horizon]; candidates at rbf steps.
  std::int64_t burst = task.max_wcet().count();
  for (const Step& s : exact.steps()) {
    if (s.value == Work(0)) continue;
    const std::int64_t linear =
        rate.is_zero()
            ? 0
            : checked::floor_div(
                  checked::mul(rate.num(), s.time.count() - 1), rate.den());
    burst = std::max(burst, s.value.count() - linear);
  }
  // alpha(t) = burst + floor(rate * (t-1)) for t >= 1.
  std::vector<Step> pts;
  pts.push_back(Step{Time(1), Work(burst)});
  if (!rate.is_zero()) {
    for (std::int64_t v = 1;; ++v) {
      const std::int64_t t = checked::add(
          1, checked::ceil_div(checked::mul(v, rate.den()), rate.num()));
      if (t > horizon.count()) break;
      pts.push_back(Step{Time(t), Work(burst + v)});
    }
  }
  return Staircase::from_points(std::move(pts), horizon);
}

Staircase sporadic_min_gap_fit(const DrtTask& task, Time horizon) {
  Time min_sep = Time::unbounded();
  for (const DrtEdge& e : task.edges()) min_sep = min(min_sep, e.separation);
  if (min_sep.is_unbounded()) {
    // Single job ever: constant curve.
    return Staircase::from_points({Step{Time(1), task.max_wcet()}}, horizon);
  }
  return curve::periodic_arrival(task.max_wcet(), min_sep, Time(0),
                                 max(horizon, min_sep + Time(1)))
      .truncated(horizon);
}

}  // namespace

Rational abstraction_long_run_rate(const DrtTask& task,
                                   WorkloadAbstraction a) {
  return abstraction_rate(task, a);
}

std::string_view abstraction_name(WorkloadAbstraction a) {
  switch (a) {
    case WorkloadAbstraction::kStructural:
      return "structural";
    case WorkloadAbstraction::kExactCurve:
      return "exact-curve";
    case WorkloadAbstraction::kConcaveHull:
      return "concave-hull";
    case WorkloadAbstraction::kTokenBucket:
      return "token-bucket";
    case WorkloadAbstraction::kSporadicMinGap:
      return "sporadic-min-gap";
  }
  return "?";
}

Staircase abstracted_arrival(engine::Workspace& ws, const DrtTask& task,
                             WorkloadAbstraction a, Time horizon) {
  STRT_REQUIRE(a != WorkloadAbstraction::kStructural,
               "the structural analysis is not a curve abstraction");
  const engine::CurvePtr exact = ws.rbf(task, horizon);
  switch (a) {
    case WorkloadAbstraction::kExactCurve:
      return *exact;
    case WorkloadAbstraction::kConcaveHull:
      return *ws.concave_hull_staircase(*exact);
    case WorkloadAbstraction::kTokenBucket:
      return token_bucket_fit(task, *exact, horizon);
    case WorkloadAbstraction::kSporadicMinGap:
      return sporadic_min_gap_fit(task, horizon);
    case WorkloadAbstraction::kStructural:
      break;
  }
  throw std::logic_error("unreachable");
}

AbstractionResult delay_with_abstraction(engine::Workspace& ws,
                                         const DrtTask& task,
                                         const Supply& supply,
                                         WorkloadAbstraction a,
                                         const StructuralOptions& opts) {
  AbstractionResult res;
  if (abstraction_rate(task, a) >= supply.long_run_rate()) {
    res.delay = Time::unbounded();
    res.backlog = Work::unbounded();
    res.busy_window = Time::unbounded();
    return res;
  }
  if (a == WorkloadAbstraction::kStructural) {
    const StructuralResult st = structural_delay(ws, task, supply, opts);
    res.delay = st.delay;
    res.backlog = st.backlog;
    res.busy_window = st.busy_window;
    return res;
  }
  // Fit the abstraction on a growing horizon until its busy window closes
  // comfortably inside the fitting horizon (the fit of hull and bucket
  // depends on the horizon; requiring L <= H/2 makes the fit stable).
  Time horizon = max(supply.min_horizon(), Time(64));
  for (;;) {
    const Staircase alpha = abstracted_arrival(ws, task, a, horizon);
    const engine::CurvePtr beta = ws.sbf(supply, horizon);
    const std::optional<Time> L = first_catch_up(alpha, *beta);
    if (L && *L * 2 <= horizon) {
      res.busy_window = *L;
      res.delay = hdev(alpha.truncated(*L), *beta);
      res.backlog = vdev(alpha, *beta, *L);
      return res;
    }
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error(
          "delay_with_abstraction: horizon guard exceeded");
    }
    horizon = horizon * 2;
  }
}

}  // namespace strt
