// Curve-based (classical real-time calculus) delay analysis: the baseline
// the structural analysis is compared against.
//
// The workload is abstracted into its request bound function rbf (an
// upper arrival curve) and the delay bound is the horizontal deviation
// hdev(rbf, sbf); the backlog bound is the vertical deviation.  By the
// finitary-RTC argument both deviations are attained inside the busy
// window, so the curves are evaluated on [0, L].
#pragma once

#include "core/busy_window.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

struct CurveResult {
  /// hdev(rbf, sbf); Time::unbounded() on overload.
  Time delay{0};
  /// vdev(rbf, sbf) over the busy window.
  Work backlog{0};
  Time busy_window{0};
};

namespace engine {
class Workspace;
}  // namespace engine

/// Curve-based delay/backlog bounds for `task` on `supply`, sharing
/// busy-window curve materializations with the other analyses in `ws`.
[[nodiscard]] CurveResult curve_delay(engine::Workspace& ws,
                                      const DrtTask& task,
                                      const Supply& supply);

/// Curve-based bounds for an arbitrary workload curve against an
/// arbitrary service curve (both materialized past the busy window).
[[nodiscard]] CurveResult curve_delay_vs(const Staircase& workload,
                                         const Staircase& service);

}  // namespace strt
