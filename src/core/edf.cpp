#include "core/edf.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {
constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 32;
}

EdfResult edf_schedulable(engine::Workspace& ws,
                          std::span<const DrtTask> tasks,
                          const Supply& supply) {
  STRT_REQUIRE(!tasks.empty(), "task set must not be empty");
  for (const DrtTask& t : tasks) {
    STRT_REQUIRE(t.has_frame_separation(),
                 "EDF test requires frame-separated tasks (exact dbf)");
  }
  const obs::Span span("edf.check");
  static obs::Counter& c_runs = obs::counter("edf.runs");
  static obs::Counter& c_doublings = obs::counter("edf.horizon_doublings");
  c_runs.add(1);
  EdfResult res;

  Rational total(0);
  for (const DrtTask& t : tasks) {
    if (const std::optional<Rational> u = utilization(t)) total += *u;
  }
  if (total >= supply.long_run_rate()) {
    res.overloaded = true;
    return res;
  }

  // The demand criterion only needs checking up to the system busy window
  // (dbf <= rbf pointwise, so demand has caught up once requests have).
  Time horizon = max(supply.min_horizon(), Time(64));
  for (;;) {
    engine::CurvePtr sum_rbf = ws.intern(Staircase(horizon));
    engine::CurvePtr sum_dbf = ws.intern(Staircase(horizon));
    for (const DrtTask& t : tasks) {
      sum_rbf = ws.pointwise_add(*sum_rbf, *ws.rbf(t, horizon));
      sum_dbf = ws.pointwise_add(*sum_dbf, *ws.dbf(t, horizon));
    }
    const engine::CurvePtr sv = ws.sbf(supply, horizon);
    const std::optional<Time> L = first_catch_up(*sum_rbf, *sv);
    if (!L) {
      if (horizon.count() > kMaxHorizon) {
        throw std::runtime_error("edf_schedulable: horizon guard exceeded");
      }
      horizon = horizon * 2;
      c_doublings.add(1);
      continue;
    }
    res.horizon_checked = *L;

    // Sweep the merged breakpoints of demand and supply up to L.
    std::vector<Time> ts;
    for (const Step& s : sum_dbf->steps())
      if (s.time <= *L) ts.push_back(s.time);
    for (const Step& s : sv->steps())
      if (s.time <= *L) ts.push_back(s.time);
    ts.push_back(*L);
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

    std::int64_t margin = std::numeric_limits<std::int64_t>::max();
    std::optional<Time> violation;
    for (Time t : ts) {
      const std::int64_t m =
          sv->value(t).count() - sum_dbf->value(t).count();
      margin = std::min(margin, m);
      if (m < 0 && !violation) violation = t;
    }
    res.margin = margin;
    res.schedulable = !violation.has_value();
    res.first_violation = violation;
    return res;
  }
}

}  // namespace strt
