#include "core/chain.hpp"

#include <stdexcept>

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"

namespace strt {

namespace {

constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 30;

/// One attempt at a fixed horizon; nullopt = not enough horizon yet.
std::optional<ChainResult> try_chain(engine::Workspace& ws,
                                     const DrtTask& task,
                                     std::span<const Supply> hops,
                                     const StructuralOptions& opts,
                                     Time horizon) {
  // The per-hop propagation consumes one beta horizon per hop, so the
  // workload curve is materialized on hops.size() + 1 times the base.
  const auto n = static_cast<std::int64_t>(hops.size());
  const Time alpha_horizon = horizon * (n + 1);
  const engine::CurvePtr alpha0 = ws.rbf(task, alpha_horizon);

  // --- Convolved service, exact on [0, horizon].
  engine::CurvePtr conv = ws.sbf(hops[0], horizon);
  for (std::size_t i = 1; i < hops.size(); ++i) {
    conv = ws.intern(
        ws.minplus_conv(*conv, *ws.sbf(hops[i], horizon))->truncated(horizon));
  }
  const Staircase alpha_base = alpha0->truncated(horizon);
  const std::optional<Time> L = first_catch_up(alpha_base, *conv);
  if (!L || *L * 2 > horizon) return std::nullopt;

  ChainResult res;
  res.busy_window = *L;
  res.pboo = hdev(alpha_base.truncated(*L), *conv);

  const StructuralResult st = structural_delay_vs(ws, task, *conv, opts);
  res.structural = st.delay;

  // --- Compositional per-hop analysis with propagated arrivals.
  Staircase alpha = *alpha0;
  Time sum(0);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const engine::CurvePtr beta_ptr = ws.sbf(hops[i], horizon);
    const Staircase& beta = *beta_ptr;
    const std::optional<Time> Li =
        first_catch_up(alpha.truncated(min(alpha.horizon(), horizon)), beta);
    if (!Li || *Li * 2 > horizon) return std::nullopt;
    const Time d = hdev(alpha.truncated(*Li), beta);
    if (d.is_unbounded()) return std::nullopt;
    res.hop_delays.push_back(d);
    sum += d;
    if (i + 1 < hops.size()) {
      alpha = output_arrival(alpha, beta);
    }
  }
  res.per_hop_sum = sum;
  return res;
}

}  // namespace

Staircase output_arrival(const Staircase& alpha, const Staircase& beta) {
  STRT_REQUIRE(alpha.horizon() >= beta.horizon() * 2,
               "output_arrival needs alpha materialized to at least twice "
               "beta's horizon");
  const std::optional<Time> L =
      first_catch_up(alpha.truncated(beta.horizon()), beta);
  STRT_REQUIRE(L.has_value(),
               "output_arrival: no busy-window closure within beta's "
               "horizon; extend the curves");
  const Time delay = hdev(alpha.truncated(*L), beta);
  STRT_ASSERT(!delay.is_unbounded(), "finite busy window implies a finite "
                                     "delay");
  // alpha'(t) = alpha(t + D): shift the steps left by D.
  const Time horizon = alpha.horizon() - beta.horizon();
  std::vector<Step> pts;
  for (const Step& s : alpha.steps()) {
    const Time t = s.time - delay;
    if (t > horizon) break;
    pts.push_back(Step{max(Time(0), t), s.value});
  }
  return Staircase::from_points(std::move(pts), horizon);
}

ChainResult chain_delay(engine::Workspace& ws, const DrtTask& task,
                        std::span<const Supply> hops,
                        const StructuralOptions& opts) {
  STRT_REQUIRE(!hops.empty(), "a chain needs at least one hop");
  ChainResult overload;
  overload.overloaded = true;
  overload.structural = Time::unbounded();
  overload.pboo = Time::unbounded();
  overload.per_hop_sum = Time::unbounded();
  overload.busy_window = Time::unbounded();

  const std::optional<Rational> util = utilization(task);
  if (util) {
    for (const Supply& s : hops) {
      if (*util >= s.long_run_rate()) return overload;
    }
  }

  Time horizon(64);
  for (const Supply& s : hops) horizon = max(horizon, s.min_horizon());
  for (;;) {
    if (std::optional<ChainResult> res =
            try_chain(ws, task, hops, opts, horizon)) {
      return *res;
    }
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error("chain_delay: horizon guard exceeded");
    }
    horizon = horizon * 2;
  }
}

}  // namespace strt
