// Workload abstractions: the spectrum of analyses a structural workload
// can be pushed through, from the exact structural analysis down to the
// coarse abstractions classical tools use.
//
//   kStructural      busy-window path exploration (this paper).
//   kExactCurve      discrete hdev on the exact request-bound staircase.
//                    Provably equal to kStructural for a single stream:
//                    every rbf step is itself a Pareto path state, so the
//                    two candidate sets coincide (see tests).  Kept as an
//                    independent implementation and as the bridge result.
//   kConcaveHull     hdev on the concave PWL majorant of the rbf -- what
//                    classical RTC toolchains (linear curve segments)
//                    compute.  First abstraction with a real gap.
//   kTokenBucket     hdev on the (rate = exact utilization, minimal
//                    burst) token bucket fitted over the rbf.
//   kSporadicMinGap  hdev after abstracting the task as a sporadic task
//                    with the maximal wcet and the minimal separation --
//                    the structure-oblivious abstraction; often overloads
//                    outright.
//
// Soundness chain (pointwise curve domination =>):
//   observed <= kStructural = kExactCurve <= kConcaveHull
//            <= kTokenBucket <= kSporadicMinGap.
#pragma once

#include <string_view>

#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

enum class WorkloadAbstraction {
  kStructural,
  kExactCurve,
  kConcaveHull,
  kTokenBucket,
  kSporadicMinGap,
};

[[nodiscard]] std::string_view abstraction_name(WorkloadAbstraction a);

inline constexpr WorkloadAbstraction kAllAbstractions[] = {
    WorkloadAbstraction::kStructural,    WorkloadAbstraction::kExactCurve,
    WorkloadAbstraction::kConcaveHull,   WorkloadAbstraction::kTokenBucket,
    WorkloadAbstraction::kSporadicMinGap,
};

struct AbstractionResult {
  /// Delay bound; Time::unbounded() when the abstraction overloads the
  /// supply (coarser abstractions overload earlier).
  Time delay{0};
  Work backlog{0};
  Time busy_window{0};
};

/// Delay/backlog bound of `task` on `supply` through abstraction `a`.
/// Shares memoized rbf/sbf/hull curves across abstractions and repeated
/// calls in `ws`.
[[nodiscard]] AbstractionResult delay_with_abstraction(
    engine::Workspace& ws, const DrtTask& task, const Supply& supply,
    WorkloadAbstraction a, const StructuralOptions& opts = {});

/// Exact long-run rate of an abstraction's arrival curve (equals the
/// task utilization except for kSporadicMinGap, which claims
/// max-wcet / min-separation).
[[nodiscard]] Rational abstraction_long_run_rate(const DrtTask& task,
                                                 WorkloadAbstraction a);

/// The fitted arrival curve of an abstraction (not defined for
/// kStructural, which is not a curve).  `horizon` is the fitting horizon;
/// the exact rbf is computed on it first.
[[nodiscard]] Staircase abstracted_arrival(engine::Workspace& ws,
                                           const DrtTask& task,
                                           WorkloadAbstraction a,
                                           Time horizon);

}  // namespace strt
