// Resource dimensioning: how much of a shared resource does a structural
// workload need to meet a delay requirement?
//
// Every analysis in the abstraction spectrum gives a delay bound that is
// antitone in the resource share, so a binary search yields the minimal
// TDMA slot / periodic budget each analysis can certify.  The gap between
// the minima across abstractions is the resource saved by keeping the
// workload's structure (experiment E5).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/abstractions.hpp"
#include "graph/drt.hpp"

namespace strt {

/// Smallest TDMA slot length (out of `cycle`) for which analysis `a`
/// certifies a worst-case delay <= `deadline` for `task`; nullopt if even
/// the full cycle does not suffice.  The Workspace overloads reuse the
/// task's memoized rbf across every probe of the binary search; the
/// plain overloads spin up a private workspace.
[[nodiscard]] std::optional<Time> min_tdma_slot(engine::Workspace& ws,
                                                const DrtTask& task,
                                                Time cycle, Time deadline,
                                                WorkloadAbstraction a);

/// Smallest periodic-resource budget (out of `period`) for which `a`
/// certifies a worst-case delay <= `deadline`; nullopt if infeasible.
[[nodiscard]] std::optional<Time> min_periodic_budget(engine::Workspace& ws,
                                                      const DrtTask& task,
                                                      Time period,
                                                      Time deadline,
                                                      WorkloadAbstraction a);

/// Smallest TDMA slot on which the whole set is EDF-schedulable (exact
/// demand-bound criterion, per-vertex deadlines).  Requires
/// frame-separated tasks; nullopt if even the full cycle fails.
[[nodiscard]] std::optional<Time> min_tdma_slot_edf(
    engine::Workspace& ws, std::span<const DrtTask> tasks, Time cycle);

}  // namespace strt
