// Audsley's optimal priority assignment over the structural FP analysis.
//
// Because the per-task delay bound depends only on *which* tasks have
// higher priority (the leftover curve subtracts their summed request
// bounds), Audsley's bottom-up argument applies: assign the lowest
// priority to any task that meets its deadlines with all remaining tasks
// above it, and recurse.  If no task fits at some level, no priority
// order is feasible under this analysis.
//
// The schedulability criterion per task is the per-vertex deadline
// verdict of the structural analysis (each job type within its own
// relative deadline).
#pragma once

#include <span>
#include <vector>

#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

struct AudsleyResult {
  bool feasible{false};
  /// Task indices in priority order (order[0] = highest priority); only
  /// meaningful when feasible.
  std::vector<std::size_t> order;
  /// Number of candidate schedulability tests performed.
  std::size_t tests_run{0};
};

/// Shares the memoized rbf/sbf materializations and leftover curves
/// across the (task set)^2 candidate probes in `ws`.
[[nodiscard]] AudsleyResult audsley_assignment(
    engine::Workspace& ws, std::span<const DrtTask> tasks,
    const Supply& supply, const StructuralOptions& opts = {});

}  // namespace strt
