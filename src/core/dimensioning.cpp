#include "core/dimensioning.hpp"

#include <functional>

#include "base/assert.hpp"
#include "core/edf.hpp"
#include "engine/workspace.hpp"
#include "resource/supply.hpp"

namespace strt {

namespace {

Time bound_for(engine::Workspace& ws, const DrtTask& task,
               const Supply& supply, WorkloadAbstraction a) {
  StructuralOptions opts;
  opts.want_witness = false;
  return delay_with_abstraction(ws, task, supply, a, opts).delay;
}

/// Binary search for the smallest share in [1, cap] whose delay bound
/// meets the deadline; the bound is antitone in the share.
std::optional<Time> min_share(
    Time cap, Time deadline,
    const std::function<Time(Time share)>& delay_of) {
  if (delay_of(cap) > deadline) return std::nullopt;
  Time lo(1);
  Time hi = cap;  // invariant: delay_of(hi) <= deadline
  while (lo < hi) {
    const Time mid((lo.count() + hi.count()) / 2);
    if (delay_of(mid) <= deadline) {
      hi = mid;
    } else {
      lo = mid + Time(1);
    }
  }
  return hi;
}

}  // namespace

std::optional<Time> min_tdma_slot(engine::Workspace& ws,
                                  const DrtTask& task, Time cycle,
                                  Time deadline, WorkloadAbstraction a) {
  STRT_REQUIRE(cycle >= Time(1), "cycle must be positive");
  STRT_REQUIRE(deadline >= Time(1), "deadline must be positive");
  return min_share(cycle, deadline, [&](Time slot) {
    return bound_for(ws, task, Supply::tdma(slot, cycle), a);
  });
}

std::optional<Time> min_periodic_budget(engine::Workspace& ws,
                                        const DrtTask& task, Time period,
                                        Time deadline,
                                        WorkloadAbstraction a) {
  STRT_REQUIRE(period >= Time(1), "period must be positive");
  STRT_REQUIRE(deadline >= Time(1), "deadline must be positive");
  return min_share(period, deadline, [&](Time budget) {
    return bound_for(ws, task, Supply::periodic(budget, period), a);
  });
}

std::optional<Time> min_tdma_slot_edf(engine::Workspace& ws,
                                      std::span<const DrtTask> tasks,
                                      Time cycle) {
  STRT_REQUIRE(cycle >= Time(1), "cycle must be positive");
  return min_share(cycle, Time(0), [&](Time slot) {
    const EdfResult res =
        edf_schedulable(ws, tasks, Supply::tdma(slot, cycle));
    // Encode the boolean verdict as a delay vs deadline 0: schedulable
    // maps to 0 (accept), unschedulable to 1 (reject).
    return res.schedulable ? Time(0) : Time(1);
  });
}

}  // namespace strt
