// Coarse-first delay analysis with certified error bounds.
//
// The exact curve-based analysis (core/curve_based.hpp) pays for every
// breakpoint of the busy-window materializations.  This driver instead
// runs the analysis on granularity-g coarsenings (curves/coarsen.hpp)
// and *brackets* the exact answer:
//
//   D_hi = hdev(coarsen_upper(rbf), coarsen_lower(sbf))  >=  exact delay,
//   D_lo = hdev(coarsen_lower(rbf), coarsen_upper(sbf))  <=  exact delay,
//
// both evaluated on the exact busy window L (the coarse curves are
// pointwise one-sided approximations, and hdev is monotone in each
// operand, so the bracket is sound by construction -- no asymptotic
// argument, no tolerance fudge).  certified_error = D_hi - D_lo is the
// reported guarantee; the exact delay bound provably lies inside.
//
// Refinement: while the result is still undecided -- the deadline
// verdict is open when `decide` is set, or the bracket is wider than
// `tolerance` (or still unbounded) otherwise -- the granularity is
// halved and the round repeats.  g == 1 degenerates to the exact
// analysis (bit-identical to curve_delay), so the loop always
// terminates with a sound answer.  Coarse curves are memoized per
// (curve, g) in the workspace, so refinement rounds and request sweeps
// pay each coarsening once.
#pragma once

#include <cstddef>
#include <optional>

#include "base/types.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

namespace engine {
class Workspace;
}  // namespace engine

struct CertifiedDelayOptions {
  /// Starting grid granularity (ticks); halved on each refinement round.
  /// g == 1 is the exact analysis.
  Time granularity{64};
  /// Without `decide`: refine until certified_error <= tolerance.  The
  /// default accepts the first round with a finite bracket.
  Time tolerance = Time::unbounded();
  /// With a deadline to decide against, refinement continues until the
  /// verdict is certain (D_hi <= decide, or D_lo > decide); `tolerance`
  /// is then ignored.
  std::optional<Time> decide{};
  /// Safety valve: after this many rounds the driver jumps straight to
  /// g == 1 (exact).  Halving alone reaches 1 in log2(g) rounds, so the
  /// default never triggers.
  std::size_t max_rounds = 64;
};

struct CertifiedDelayResult {
  /// Certified upper bound on the curve-based delay (the safe answer).
  Time delay{0};
  /// Certified lower bound on the curve-based delay.
  Time delay_lower{0};
  /// delay - delay_lower: the certified width of the bracket (0 when the
  /// final round was exact).
  Time certified_error{0};
  /// Certified upper bound on the backlog.
  Work backlog{0};
  /// Exact busy-window length L (always computed exactly).
  Time busy_window{0};
  /// Granularity of the final round.
  Time granularity{1};
  /// Refinement rounds run (>= 1).
  std::size_t rounds{0};
  /// True when the final round ran the exact analysis (g == 1).
  bool exact{false};
  /// Verdict against `decide`, when requested: true iff the exact delay
  /// bound provably meets it.
  std::optional<bool> meets_deadline{};
};

/// Coarse-first curve-based delay/backlog bounds for `task` on `supply`.
/// Overload (utilization at or above supply rate) yields unbounded
/// delay/backlog with certified_error 0 -- the bracket is exact.
[[nodiscard]] CertifiedDelayResult certified_curve_delay(
    engine::Workspace& ws, const DrtTask& task, const Supply& supply,
    const CertifiedDelayOptions& opts = {});

}  // namespace strt
