#include "core/curve_based.hpp"

#include "curves/minplus.hpp"
#include "engine/workspace.hpp"

namespace strt {

CurveResult curve_delay(engine::Workspace& ws, const DrtTask& task,
                        const Supply& supply) {
  const std::optional<BusyWindow> bw = busy_window(ws, task, supply);
  if (!bw) {
    return CurveResult{Time::unbounded(), Work::unbounded(),
                       Time::unbounded()};
  }
  CurveResult res = curve_delay_vs(bw->rbf.truncated(bw->length), bw->sbf);
  res.busy_window = bw->length;
  return res;
}

CurveResult curve_delay_vs(const Staircase& workload,
                           const Staircase& service) {
  const Time L = busy_window_of_curves(workload, service);
  CurveResult res;
  res.busy_window = L;
  res.delay = hdev(workload.truncated(L), service);
  res.backlog = vdev(workload, service, L);
  return res;
}

}  // namespace strt
