#include "core/joint_fp.hpp"

#include <functional>
#include <stdexcept>
#include <vector>

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

void accumulate(ExploreStats& into, const ExploreStats& s) {
  into.generated += s.generated;
  into.expanded += s.expanded;
  into.pruned += s.pruned;
  into.aborted = into.aborted || s.aborted;
}

constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 28;

/// True if a(t) <= b(t) for all t (checked at both breakpoint sets).
bool pointwise_leq(const Staircase& a, const Staircase& b) {
  for (const Step& s : a.steps()) {
    if (s.value > b.value(s.time)) return false;
  }
  for (const Step& s : b.steps()) {
    if (a.value(s.time) > s.value) return false;
  }
  return true;
}

/// Drops every staircase pointwise-dominated by another (keeping one copy
/// of ties).  As interference, a dominated curve is redundant: its
/// leftover majorizes the dominator's.
void prune_dominated(std::vector<Staircase>& cs) {
  std::vector<bool> dead(cs.size(), false);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (pointwise_leq(cs[j], cs[i])) {
        if (!pointwise_leq(cs[i], cs[j]) || i < j) dead[j] = true;
      }
    }
  }
  std::vector<Staircase> kept;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(cs[i]));
  }
  cs = std::move(kept);
}

/// Workload staircases of all maximal release paths of `task` with span
/// <= limit, materialized on `horizon`.
std::vector<Staircase> interference_paths(const DrtTask& task, Time limit,
                                          Time horizon,
                                          std::size_t max_paths,
                                          std::uint64_t& enumerated) {
  std::vector<Staircase> paths;
  std::vector<Step> points;
  std::function<void(VertexId, Time, Work)> dfs = [&](VertexId v, Time el,
                                                      Work w) {
    points.push_back(Step{el + Time(1), w});
    bool extended = false;
    for (std::int32_t ei : task.out_edges(v)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time next = el + e.separation;
      if (next > limit) continue;
      extended = true;
      dfs(e.to, next, w + task.vertex(e.to).wcet);
    }
    if (!extended) {
      ++enumerated;
      if (enumerated > max_paths) {
        throw std::runtime_error(
            "joint FP analysis: interference-path cap exceeded; shrink the "
            "task or raise max_paths");
      }
      paths.push_back(Staircase::from_points(points, horizon));
    }
    points.pop_back();
  };
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    dfs(v, Time(0), task.vertex(v).wcet);
  }
  STRT_ASSERT(!paths.empty(), "at least one interference path exists");
  return paths;
}

}  // namespace

JointFpResult joint_multi_task_fp(engine::Workspace& ws,
                                  std::span<const DrtTask> hps,
                                  const DrtTask& lp, const Supply& supply,
                                  const JointFpOptions& opts) {
  const obs::Span span("joint_fp");
  static obs::Counter& c_runs = obs::counter("joint_fp.runs");
  c_runs.add(1);
  JointFpResult res;

  Rational total(0);
  for (const DrtTask& hp : hps) {
    if (const auto u = utilization(hp)) total += *u;
  }
  if (const auto u = utilization(lp)) total += *u;
  if (total >= supply.long_run_rate()) {
    res.overloaded = true;
    res.joint_delay = Time::unbounded();
    res.rbf_delay = Time::unbounded();
    return res;
  }

  // Materialize out to the system busy window.
  Time horizon = max(supply.min_horizon(), Time(64));
  engine::CurvePtr rbf_hp;
  engine::CurvePtr sv;
  for (;;) {
    rbf_hp = ws.intern(Staircase(horizon));
    for (const DrtTask& hp : hps) {
      rbf_hp = ws.pointwise_add(*rbf_hp, *ws.rbf(hp, horizon));
    }
    const engine::CurvePtr sum =
        ws.pointwise_add(*rbf_hp, *ws.rbf(lp, horizon));
    sv = ws.sbf(supply, horizon);
    if (const std::optional<Time> L = first_catch_up(*sum, *sv)) {
      res.busy_window = *L;
      break;
    }
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error("joint FP analysis: horizon guard exceeded");
    }
    horizon = horizon * 2;
  }

  StructuralOptions sopts;
  sopts.common() = opts.common();
  sopts.prune = opts.prune;
  sopts.want_witness = false;

  // Baseline: rbf-based leftover.
  const engine::CurvePtr leftover_rbf = ws.leftover_service(*sv, *rbf_hp);
  const StructuralResult baseline =
      structural_delay_vs(ws, lp, *leftover_rbf, sopts);
  res.rbf_delay = baseline.delay;
  accumulate(res.explore_stats, baseline.stats);

  // Joint interference candidates: one consistent path per hp task,
  // summed; pruned after every fold to keep the cross product in check.
  const Time limit = max(Time(0), res.busy_window - Time(1));
  std::vector<Staircase> combined{Staircase(horizon)};
  {
    const obs::Span enum_span("joint_fp.enumerate");
    for (const DrtTask& hp : hps) {
      std::vector<Staircase> paths = interference_paths(
          hp, limit, horizon, opts.max_paths, res.paths_enumerated);
      prune_dominated(paths);
      std::vector<Staircase> next;
      if (combined.size() > opts.max_paths / std::max<std::size_t>(
                                                 paths.size(), 1)) {
        throw std::runtime_error(
            "joint FP analysis: interference cross-product cap exceeded");
      }
      next.reserve(combined.size() * paths.size());
      for (const Staircase& c : combined) {
        for (const Staircase& p : paths) {
          next.push_back(pointwise_add(c, p));
        }
      }
      prune_dominated(next);
      combined = std::move(next);
    }
  }

  {
    // Each candidate's leftover + structural analysis is independent;
    // fan them out and fold the per-candidate results serially in index
    // order, so the outcome is bit-identical to a STRT_THREADS=1 run.
    const obs::Span analyze_span("joint_fp.analyze");
    const std::vector<StructuralResult> per_path =
        exec::parallel_map(combined.size(), [&](std::size_t i) {
          const engine::CurvePtr leftover =
              ws.leftover_service(*sv, combined[i]);
          return structural_delay_vs(ws, lp, *leftover, sopts);
        });
    for (const StructuralResult& sr : per_path) {
      ++res.paths_analyzed;
      accumulate(res.explore_stats, sr.stats);
      res.joint_delay = max(res.joint_delay, sr.delay);
    }
  }
  static obs::Counter& c_enumerated = obs::counter("joint_fp.paths_enumerated");
  static obs::Counter& c_analyzed = obs::counter("joint_fp.paths_analyzed");
  c_enumerated.add(res.paths_enumerated);
  c_analyzed.add(res.paths_analyzed);
  return res;
}

JointFpResult joint_two_task_fp(engine::Workspace& ws, const DrtTask& hp,
                                const DrtTask& lp, const Supply& supply,
                                const JointFpOptions& opts) {
  return joint_multi_task_fp(ws, {&hp, 1}, lp, supply, opts);
}

}  // namespace strt
