// EDF schedulability of structural task sets on a supply.
//
// The classical demand-bound criterion: the set is EDF-schedulable on the
// resource iff  sum_i dbf_i(t) <= sbf(t)  for every t up to the system
// busy window.  Requires frame-separated tasks (exact dbf staircases).
#pragma once

#include <optional>
#include <span>

#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

struct EdfResult {
  bool schedulable{false};
  bool overloaded{false};
  /// First instant where demand exceeds supply (set iff !schedulable and
  /// !overloaded).
  std::optional<Time> first_violation;
  /// min over t of sbf(t) - dbf(t) (the demand margin; negative when
  /// unschedulable).  Unset on overload.
  std::optional<std::int64_t> margin;
  Time horizon_checked{0};
};

namespace engine {
class Workspace;
}  // namespace engine

/// Memoizes the per-task rbf/dbf staircases across horizon doublings and
/// repeated calls in `ws`.
[[nodiscard]] EdfResult edf_schedulable(engine::Workspace& ws,
                                        std::span<const DrtTask> tasks,
                                        const Supply& supply);

}  // namespace strt
