// End-to-end delay of a structural workload crossing a chain of
// resources (e.g. gateway CPU -> backbone TDMA slot -> device bus).
//
// Three analyses of the same chain, in decreasing tightness:
//
//   structural   busy-window path exploration against the min-plus
//                convolution of the hop service curves (exact staircase,
//                pay-burst-only-once).
//   pboo         hdev(rbf, sbf_1 (*) ... (*) sbf_n): curve-based
//                pay-burst-only-once (equal to structural by the bridge
//                theorem; kept as an independent implementation).
//   per-hop sum  classical compositional analysis: delay at each hop with
//                the event-based output arrival curve propagated to the
//                next hop, summed.  Pays the burst at every hop.
//
// FORWARDING SEMANTICS MATTER.  The convolved-service bounds (structural
// and pboo) are the classical concatenation result and hold for
// *cut-through* pipelines: a work unit may flow through several hops
// within one tick (streaming producer/consumer stages).  For
// *store-and-forward* pipelines -- a hop forwards a job only when it has
// completed it entirely, the natural model for message relays -- the
// convolution bound is NOT sound (the downstream hop cannot start early
// on partially-forwarded jobs); use `per_hop_sum`, whose event-based
// propagation matches exactly that semantics.  Both simulators live in
// sim/pipeline and the test suite validates each bound against its own
// semantics.
//
// Expected relation (cut-through):  structural = pboo <= per-hop sum,
// with the gap growing in the number of hops and the burstiness of the
// workload.
#pragma once

#include <span>
#include <vector>

#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

struct ChainResult {
  /// Structural bound against the convolved service.
  Time structural{0};
  /// Curve PBOO bound (hdev vs convolved service).
  Time pboo{0};
  /// Sum of per-hop curve bounds with propagated output arrivals.
  Time per_hop_sum{0};
  /// The individual per-hop delays backing per_hop_sum.
  std::vector<Time> hop_delays;
  /// Busy window of the whole chain (workload vs convolved service).
  Time busy_window{0};
  bool overloaded{false};
};

/// Analyzes `task` flowing through `hops` in order.  Requires at least
/// one hop.  Overload (utilization >= any hop's long-run rate) yields
/// overloaded = true with unbounded delays.  The Workspace overload
/// shares memoized rbf/sbf/convolution curves across horizon retries;
/// the plain overload spins up a private workspace.
[[nodiscard]] ChainResult chain_delay(engine::Workspace& ws,
                                      const DrtTask& task,
                                      std::span<const Supply> hops,
                                      const StructuralOptions& opts = {});

/// Event-based output arrival curve of a greedy FIFO component:
///
///     alpha'(t) = alpha(t + D),  D = hdev(alpha, beta).
///
/// Sound for job-level departures (each job departing in a window of
/// length t was released within the preceding D ticks, so all of them
/// fit in a window of length t + D).  The fluid deconvolution
/// alpha (/) beta does NOT soundly bound job-level departures -- a job's
/// whole wcet is counted at its completion tick while the fluid bound
/// spreads it over the service interval -- which is why the event-based
/// bound is used for hop-to-hop propagation.
///
/// `alpha` must be materialized to at least twice `beta`'s horizon and
/// catch up with `beta` inside the first half; the result lives on
/// alpha.horizon() - beta.horizon().
[[nodiscard]] Staircase output_arrival(const Staircase& alpha,
                                       const Staircase& beta);

}  // namespace strt
