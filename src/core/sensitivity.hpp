// Sensitivity (slack) analysis: design-exploration companion to the
// delay analysis.  For each job type and each release constraint, how far
// can the parameter degrade before the verdict flips?
//
//   * wcet slack of vertex v: the largest extra execution demand jobs of
//     type v can take while the criterion still holds;
//   * separation slack of edge e: the largest reduction of the minimum
//     separation while the criterion still holds.
//
// The criterion is either a global delay cap or, by default, the
// per-vertex deadline verdict of the structural analysis.  Both delay
// bounds are monotone in the parameters (more work / denser releases can
// only increase every candidate), so each slack is found by binary
// search over rebuilt tasks.
#pragma once

#include <optional>
#include <vector>

#include "core/structural.hpp"
#include "graph/drt.hpp"
#include "resource/supply.hpp"

namespace strt {

/// Options of the sensitivity analysis.  The explorer state cap and the
/// progress/cancel hook in the CommonOptions base are forwarded to every
/// structural probe of the slack searches.
struct SensitivityOptions : CommonOptions {
  /// Criterion: delay <= cap.  Unset => per-vertex deadline verdict.
  std::optional<Time> delay_cap;
  /// Upper bound for the wcet-slack search (doubling stops here; a slack
  /// at the cap is reported as Work::unbounded()).
  Work max_wcet_growth{1'000'000};
};

struct SensitivityReport {
  /// True iff the criterion holds for the unmodified task; when false,
  /// all slacks are zero.
  bool feasible{false};
  /// Per vertex (indexed by VertexId): largest extra wcet.
  std::vector<Work> wcet_slack;
  /// Per edge (indexed like DrtTask::edges()): largest separation
  /// reduction (at most separation - 1).
  std::vector<Time> separation_slack;
};

/// Shares memoized supply curves (and any curves perturbed probes have
/// in common) across the hundreds of probe analyses in `ws`.
[[nodiscard]] SensitivityReport sensitivity_analysis(
    engine::Workspace& ws, const DrtTask& task, const Supply& supply,
    const SensitivityOptions& opts = {});

/// Rebuild `task` with one vertex's wcet increased by `extra`.
[[nodiscard]] DrtTask with_wcet_increase(const DrtTask& task, VertexId v,
                                         Work extra);

/// Rebuild `task` with one edge's separation reduced by `less`
/// (separation stays >= 1).
[[nodiscard]] DrtTask with_separation_decrease(const DrtTask& task,
                                               std::size_t edge_index,
                                               Time less);

}  // namespace strt
