#include "core/certified.hpp"

#include <utility>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "core/busy_window.hpp"
#include "core/curve_based.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

/// One coarse round at granularity g: the sound delay/backlog bracket.
struct CoarseRound {
  Time d_hi = Time::unbounded();
  Time d_lo{0};
  Work backlog = Work::unbounded();
};

CoarseRound coarse_round(engine::Workspace& ws, const Staircase& rbf_l,
                         const BusyWindow& bw, Time g) {
  using CoarsePtr = engine::Workspace::CoarseCurvePtr;
  const Time L = bw.length;
  const CoarsePtr up_r = ws.coarse_upper(rbf_l, g);
  const CoarsePtr lo_r = ws.coarse_lower(rbf_l, g);
  const CoarsePtr up_s = ws.coarse_upper(bw.sbf, g);
  CoarsePtr lo_s = ws.coarse_lower(bw.sbf, g);

  CoarseRound round;
  // The lower bound is always in-domain: lo_r's values never exceed
  // rbf(L) <= sbf(L) <= up_s(L), so hdev stays inside up_s's horizon.
  round.d_lo = hdev(*lo_r.curve, *up_s.curve);
  // So is the backlog bound: vdev only probes times <= L.
  round.backlog = vdev(*up_r.curve, *lo_s.curve, L);

  // The upper bound queries values up to V = up_r(L) >= rbf(L), which
  // can overshoot the tail-less lo_s's horizon value.  Re-materialize
  // the exact sbf (whose tail is preserved) out to the next grid point
  // past sbf^{-1}(V) and re-coarsen; if the exact supply provably never
  // reaches V, the bracket top is unbounded at this granularity and the
  // caller refines.
  const Work v_top = up_r.curve->value_at_horizon();
  if (lo_s.curve->value_at_horizon() < v_top) {
    const Time x = bw.sbf.inverse(v_top);
    if (x.is_unbounded()) return round;  // d_hi stays unbounded
    const std::int64_t grid = checked::mul(
        checked::ceil_div(x.count(), g.count()), g.count());
    const Time h2 = max(Time(grid), L);
    lo_s = ws.coarse_lower(*ws.intern(bw.sbf.extended(h2)), g);
    STRT_ASSERT(lo_s.curve->value_at_horizon() >= v_top,
                "coarse supply extension must cover the queried values");
  }
  round.d_hi = hdev(*up_r.curve, *lo_s.curve);
  return round;
}

}  // namespace

CertifiedDelayResult certified_curve_delay(engine::Workspace& ws,
                                           const DrtTask& task,
                                           const Supply& supply,
                                           const CertifiedDelayOptions& opts) {
  STRT_REQUIRE(opts.granularity >= Time(1),
               "coarsening granularity must be >= 1");
  const obs::Span span("core.certified");
  static obs::Counter& c_rounds = obs::counter("core.certified.rounds");

  CertifiedDelayResult res;
  const std::optional<BusyWindow> bw = busy_window(ws, task, supply);
  if (!bw) {
    // Overload: the exact analysis is unbounded too, so the bracket is
    // exact (width 0) without any coarse work.
    res.delay = Time::unbounded();
    res.delay_lower = Time::unbounded();
    res.certified_error = Time(0);
    res.backlog = Work::unbounded();
    res.busy_window = Time::unbounded();
    res.granularity = opts.granularity;
    res.rounds = 1;
    res.exact = true;
    if (opts.decide) res.meets_deadline = false;
    return res;
  }

  const Staircase rbf_l = bw->rbf.truncated(bw->length);
  res.busy_window = bw->length;
  Time g = opts.granularity;
  for (std::size_t round = 1;; ++round) {
    c_rounds.add(1);
    res.rounds = round;
    res.granularity = g;
    if (g == Time(1)) {
      const CurveResult ex = curve_delay_vs(rbf_l, bw->sbf);
      res.delay = ex.delay;
      res.delay_lower = ex.delay;
      res.certified_error = Time(0);
      res.backlog = ex.backlog;
      res.busy_window = ex.busy_window;
      res.exact = true;
      if (opts.decide) res.meets_deadline = res.delay <= *opts.decide;
      return res;
    }

    const CoarseRound cr = coarse_round(ws, rbf_l, *bw, g);
    res.delay = cr.d_hi;
    res.delay_lower = cr.d_lo;
    res.certified_error = cr.d_hi - cr.d_lo;  // sticky: stays unbounded
    res.backlog = cr.backlog;
    res.exact = false;
    res.meets_deadline.reset();

    if (!cr.d_hi.is_unbounded()) {
      if (opts.decide) {
        if (cr.d_hi <= *opts.decide) {
          res.meets_deadline = true;
          return res;
        }
        if (cr.d_lo > *opts.decide) {
          res.meets_deadline = false;
          return res;
        }
      } else if (res.certified_error <= opts.tolerance) {
        return res;
      }
    }
    g = (round >= opts.max_rounds) ? Time(1)
                                   : max(Time(1), Time(g.count() / 2));
  }
}

}  // namespace strt
