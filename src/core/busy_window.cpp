#include "core/busy_window.hpp"

#include <stdexcept>

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"

namespace strt {

namespace {
// The doubling search is guaranteed to terminate once the horizon passes
// the true busy window, but guard against pathological inputs (utilization
// within a hair of the supply rate can make L astronomically large).
constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 32;
}  // namespace

std::optional<BusyWindow> busy_window(engine::Workspace& ws,
                                      const DrtTask& task,
                                      const Supply& supply) {
  const std::optional<Rational> util = utilization(task);
  if (util && *util >= supply.long_run_rate()) return std::nullopt;

  Time horizon = max(supply.min_horizon(), Time(64));
  for (;;) {
    const engine::CurvePtr wl = ws.rbf(task, horizon);
    const engine::CurvePtr sv = ws.sbf(supply, horizon);
    if (const std::optional<Time> L = first_catch_up(*wl, *sv)) {
      // Keep the full materialized curves: the supply tail stays valid
      // and inverse lookups up to rbf(L) <= sbf(L) resolve in range.
      return BusyWindow{*L, *wl, *sv};
    }
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error(
          "busy_window: horizon guard exceeded; utilization is too close "
          "to the supply rate for a tractable finitary analysis");
    }
    horizon = horizon * 2;
  }
}

Time busy_window_of_curves(const Staircase& wl, const Staircase& sv) {
  const std::optional<Time> L = first_catch_up(wl, sv);
  STRT_REQUIRE(L.has_value(),
               "no catch-up point within the materialized horizon; extend "
               "the curves");
  return *L;
}

}  // namespace strt
