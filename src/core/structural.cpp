#include "core/structural.hpp"

#include "base/assert.hpp"
#include "curves/minplus.hpp"
#include "engine/workspace.hpp"
#include "graph/workload.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

StructuralResult analyze(engine::Workspace& ws, const DrtTask& task,
                         const Staircase& service, Time window,
                         const StructuralOptions& opts) {
  const obs::Span span("structural");
  static obs::Counter& c_runs = obs::counter("structural.runs");
  c_runs.add(1);
  StructuralResult res;
  res.busy_window = window;

  ExploreResult ex = explore_paths(
      task, ExploreOptions{.elapsed_limit = max(Time(0), window - Time(1)),
                           .prune = opts.prune,
                           .max_states = opts.max_states,
                           .progress_every = opts.progress_every,
                           .on_progress = opts.on_progress});
  res.stats = ex.stats;

  const engine::Workspace::PseudoInverse inverse = ws.inverse_of(service);
  std::int32_t best = -1;
  res.vertex_delays.assign(task.vertex_count(), Time(0));
  {
    const obs::Span fold_span("inverse_sbf");
    for (std::int32_t idx : ex.frontier) {
      const PathState& s = ex.arena[static_cast<std::size_t>(idx)];
      const Time finish = inverse(s.work);
      STRT_ASSERT(!finish.is_unbounded(),
                  "service never delivers busy-window work");
      const Time d = finish > s.elapsed ? finish - s.elapsed : Time(0);
      if (d > res.delay || best < 0) {
        res.delay = d;
        best = idx;
      }
      auto& vd = res.vertex_delays[static_cast<std::size_t>(s.vertex)];
      vd = max(vd, d);
      const Work served = service.value(s.elapsed);
      if (s.work > served) res.backlog = max(res.backlog, s.work - served);
    }
  }

  res.meets_vertex_deadlines = true;
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    if (res.vertex_delays[static_cast<std::size_t>(v)] >
        task.vertex(v).deadline) {
      res.meets_vertex_deadlines = false;
    }
  }

  if (opts.want_witness && best >= 0) {
    const obs::Span witness_span("witness");
    // The frontier state with the worst delay bounds the delay of its
    // *last* job; replay the path to report per-job numbers.
    for (const PathState& s : ex.path_to(best)) {
      const Time finish = inverse(s.work);
      WitnessJob job;
      job.vertex = task.vertex(s.vertex).name;
      job.release = s.elapsed;
      job.wcet = task.vertex(s.vertex).wcet;
      job.cumulative = s.work;
      job.latest_finish = finish;
      job.delay = finish > s.elapsed ? finish - s.elapsed : Time(0);
      res.witness.push_back(std::move(job));
    }
  }
  return res;
}

}  // namespace

StructuralResult structural_delay(engine::Workspace& ws,
                                  const DrtTask& task, const Supply& supply,
                                  const StructuralOptions& opts) {
  const std::optional<BusyWindow> bw = [&] {
    const obs::Span span("busy_window");
    return busy_window(ws, task, supply);
  }();
  if (!bw) {
    StructuralResult overload;
    overload.delay = Time::unbounded();
    overload.backlog = Work::unbounded();
    overload.busy_window = Time::unbounded();
    return overload;
  }
  return analyze(ws, task, bw->sbf, bw->length, opts);
}

StructuralResult structural_delay_vs(engine::Workspace& ws,
                                     const DrtTask& task,
                                     const Staircase& service,
                                     const StructuralOptions& opts) {
  const engine::CurvePtr wl = ws.rbf(task, service.horizon());
  const Time window = busy_window_of_curves(*wl, service);
  return analyze(ws, task, service, window, opts);
}

}  // namespace strt
