// Structural busy-window delay analysis -- the paper's contribution.
//
// Classical real-time calculus bounds the delay of a workload with upper
// arrival curve rbf under a service guarantee sbf by the horizontal
// deviation hdev(rbf, sbf).  The arrival-curve abstraction is lossy for
// structural (graph-described) workload: for each window length the rbf
// takes the worst path *independently*, so the hdev maximum may pair a
// heavy workload prefix with a job release that no single run of the task
// can produce together.
//
// The structural analysis explores the busy window path by path instead.
// For a legal minimum-separation release path pi = (v1, ..., vk) that
// opens a busy period at time 0, job i (released at r_i with cumulative
// work W_i = wcet(v1) + ... + wcet(vi)) finishes under FIFO processing no
// later than  sbf^{-1}(W_i), so its delay is at most sbf^{-1}(W_i) - r_i.
// The worst-case delay bound is the maximum over all such paths within
// the busy window, which the dominance-pruned exploration of
// graph/explore computes without enumerating paths explicitly:
//
//     D_struct = max over frontier states (v, r, W) of  sbf^{-1}(W) - r.
//
// Soundness: a job's response completes within its busy period; the busy
// period opens with some release of the task; the suffix of a legal run
// is a legal run; releasing later or executing less than the bound used
// here only decreases the delay.  Tightness vs the baseline:
// every witness is a single consistent path, hence
//     D_observed <= D_struct <= D_curve = hdev(rbf, sbf).
#pragma once

#include <string>
#include <vector>

#include "core/busy_window.hpp"
#include "core/common_options.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "graph/explore.hpp"
#include "resource/supply.hpp"

namespace strt {

/// Options of the structural analysis.  The state cap and the
/// progress/cancel hook live in the CommonOptions base (shared with the
/// joint-FP and sensitivity analyses and with svc::AnalysisRequest).
struct StructuralOptions : CommonOptions {
  /// Dominance pruning on (ablation switch; results are identical).
  bool prune = true;
  /// Reconstruct the witness path achieving the delay bound.
  bool want_witness = true;
};

/// One job of the witness path.
struct WitnessJob {
  std::string vertex;
  Time release{0};
  Work wcet{0};
  Work cumulative{0};
  Time latest_finish{0};
  Time delay{0};
};

struct StructuralResult {
  /// Worst-case response delay; Time::unbounded() on overload.
  Time delay{0};
  /// Worst-case backlog.
  Work backlog{0};
  /// Busy-window length used for the exploration.
  Time busy_window{0};
  ExploreStats stats;
  /// Release path achieving `delay` (empty if not requested / overload).
  std::vector<WitnessJob> witness;
  /// Worst-case delay per job type (indexed by VertexId): jobs of
  /// different types have different deadlines, and the per-vertex fold is
  /// exact by the same dominance argument as the global one.  Entries are
  /// Time(0) for vertices whose jobs never wait.  Empty on overload.
  std::vector<Time> vertex_delays;
  /// True iff every job type's worst delay is within its own relative
  /// deadline (the schedulability verdict for the stream under FIFO).
  bool meets_vertex_deadlines{false};
};

namespace engine {
class Workspace;
}  // namespace engine

/// Structural delay analysis of `task` on `supply`, reusing memoized
/// busy-window curves and pseudo-inverse lookups in `ws`.
[[nodiscard]] StructuralResult structural_delay(
    engine::Workspace& ws, const DrtTask& task, const Supply& supply,
    const StructuralOptions& opts = {});

/// Structural delay analysis against an arbitrary materialized service
/// curve (e.g. a fixed-priority leftover).  `service` must be long enough
/// for the busy window to close within its horizon; throws otherwise.
[[nodiscard]] StructuralResult structural_delay_vs(
    engine::Workspace& ws, const DrtTask& task, const Staircase& service,
    const StructuralOptions& opts = {});

}  // namespace strt
