#include "core/fixed_priority.hpp"

#include <stdexcept>

#include "base/assert.hpp"
#include "core/abstractions.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "curves/minplus.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/workload.hpp"

namespace strt {

namespace {
constexpr std::int64_t kMaxHorizon = std::int64_t{1} << 32;
}

FpResult fixed_priority_analysis(engine::Workspace& ws,
                                 std::span<const DrtTask> tasks,
                                 const Supply& supply,
                                 const StructuralOptions& opts,
                                 WorkloadAbstraction interference) {
  if (interference == WorkloadAbstraction::kStructural) {
    interference = WorkloadAbstraction::kExactCurve;
  }
  STRT_REQUIRE(!tasks.empty(), "task set must not be empty");
  FpResult res;

  // Exact overload check against the *abstracted* interference rates (a
  // coarser abstraction can overload a supply the exact workload fits).
  Rational total(0);
  for (const DrtTask& t : tasks) {
    total += abstraction_long_run_rate(t, interference);
  }
  if (total >= supply.long_run_rate()) {
    res.overloaded = true;
    return res;
  }

  // Materialize the exact request bounds (for the task under analysis),
  // the abstracted interference contributions, and the supply out to the
  // system-level busy window of the abstracted aggregate (which majorizes
  // the exact one, so every per-task busy window closes inside it).
  Time horizon = max(supply.min_horizon(), Time(64));
  std::vector<engine::CurvePtr> rbfs;
  std::vector<engine::CurvePtr> contribs;
  engine::CurvePtr sv;
  for (;;) {
    rbfs.clear();
    contribs.clear();
    rbfs.reserve(tasks.size());
    contribs.reserve(tasks.size());
    engine::CurvePtr sum = ws.intern(Staircase(horizon));
    for (const DrtTask& t : tasks) {
      rbfs.push_back(ws.rbf(t, horizon));
      contribs.push_back(
          interference == WorkloadAbstraction::kExactCurve
              ? rbfs.back()
              : ws.intern(abstracted_arrival(ws, t, interference, horizon)));
      sum = ws.pointwise_add(*sum, *contribs.back());
    }
    sv = ws.sbf(supply, horizon);
    if (const std::optional<Time> L = first_catch_up(*sum, *sv)) {
      res.system_busy_window = *L;
      break;
    }
    if (horizon.count() > kMaxHorizon) {
      throw std::runtime_error(
          "fixed_priority_analysis: horizon guard exceeded");
    }
    horizon = horizon * 2;
  }

  // The higher-priority interference prefix of level i depends only on
  // the curves, not on the analyses, so the prefix sums are materialized
  // serially (cheap pointwise adds) and the expensive per-level
  // structural + curve analyses fan out over the pool.  Results land in
  // index order, identical to a serial run.
  std::vector<engine::CurvePtr> hp_prefix;  // hp_prefix[i]: sum of levels < i
  hp_prefix.reserve(tasks.size());
  engine::CurvePtr hp_sum = ws.intern(Staircase(horizon));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    hp_prefix.push_back(hp_sum);
    hp_sum = ws.pointwise_add(*hp_sum, *contribs[i]);
  }
  res.tasks = exec::parallel_map(tasks.size(), [&](std::size_t i) {
    const engine::CurvePtr leftover = ws.leftover_service(*sv, *hp_prefix[i]);
    FpTaskResult tr;
    tr.task_index = i;

    StructuralResult st = structural_delay_vs(ws, tasks[i], *leftover, opts);
    tr.busy_window = st.busy_window;
    tr.structural_delay = st.delay;
    tr.structural_backlog = st.backlog;
    tr.stats = st.stats;
    tr.vertex_delays = std::move(st.vertex_delays);
    tr.meets_vertex_deadlines = st.meets_vertex_deadlines;

    const CurveResult cv = curve_delay_vs(*rbfs[i], *leftover);
    tr.curve_delay = cv.delay;
    tr.curve_backlog = cv.backlog;
    return tr;
  });
  return res;
}

}  // namespace strt
