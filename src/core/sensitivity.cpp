#include "core/sensitivity.hpp"

#include <functional>

#include "base/assert.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

DrtTask rebuild(const DrtTask& task,
                const std::function<DrtVertex(VertexId)>& vertex_of,
                const std::function<DrtEdge(std::size_t)>& edge_of) {
  DrtBuilder b(task.name());
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    const DrtVertex vert = vertex_of(v);
    b.add_vertex(vert.name, vert.wcet, vert.deadline);
  }
  for (std::size_t i = 0; i < task.edge_count(); ++i) {
    const DrtEdge e = edge_of(i);
    b.add_edge(e.from, e.to, e.separation);
  }
  return std::move(b).build();
}

}  // namespace

DrtTask with_wcet_increase(const DrtTask& task, VertexId v, Work extra) {
  STRT_REQUIRE(extra >= Work(0), "wcet increase must be non-negative");
  return rebuild(
      task,
      [&](VertexId u) {
        DrtVertex vert = task.vertex(u);
        if (u == v) vert.wcet += extra;
        return vert;
      },
      [&](std::size_t i) { return task.edges()[i]; });
}

DrtTask with_separation_decrease(const DrtTask& task,
                                 std::size_t edge_index, Time less) {
  STRT_REQUIRE(edge_index < task.edge_count(), "edge index out of range");
  STRT_REQUIRE(less >= Time(0), "separation decrease must be non-negative");
  STRT_REQUIRE(task.edges()[edge_index].separation - less >= Time(1),
               "separation must stay >= 1");
  return rebuild(
      task, [&](VertexId u) { return task.vertex(u); },
      [&](std::size_t i) {
        DrtEdge e = task.edges()[i];
        if (i == edge_index) e.separation -= less;
        return e;
      });
}

SensitivityReport sensitivity_analysis(engine::Workspace& ws,
                                       const DrtTask& task,
                                       const Supply& supply,
                                       const SensitivityOptions& opts) {
  const obs::Span span("sensitivity");
  StructuralOptions sopts;
  sopts.common() = opts.common();
  sopts.want_witness = false;

  const auto holds = [&](const DrtTask& t) {
    static obs::Counter& c_probes = obs::counter("sensitivity.probes");
    c_probes.add(1);
    const StructuralResult res = structural_delay(ws, t, supply, sopts);
    if (res.delay.is_unbounded()) return false;
    if (opts.delay_cap) return res.delay <= *opts.delay_cap;
    return res.meets_vertex_deadlines;
  };

  SensitivityReport report;
  report.feasible = holds(task);
  report.wcet_slack.assign(task.vertex_count(), Work(0));
  report.separation_slack.assign(task.edge_count(), Time(0));
  if (!report.feasible) return report;

  // Every per-parameter search (bracket + binary search) probes its own
  // perturbed task copies and touches nothing shared, so the vertex and
  // edge sweeps fan out over the pool; each slot is written by exactly
  // one parameter's search, making the report independent of the
  // schedule.
  report.wcet_slack = exec::parallel_map(
      task.vertex_count(), [&](std::size_t vi) -> Work {
        const auto v = static_cast<VertexId>(vi);
        // Doubling to bracket, then binary search; the criterion is
        // antitone in the extra demand.
        Work lo(0);  // holds
        Work hi(1);
        while (hi <= opts.max_wcet_growth &&
               holds(with_wcet_increase(task, v, hi))) {
          lo = hi;
          hi = hi * 2;
        }
        if (hi > opts.max_wcet_growth) return Work::unbounded();
        while (lo + Work(1) < hi) {
          const Work mid((lo.count() + hi.count()) / 2);
          if (holds(with_wcet_increase(task, v, mid))) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        return lo;
      });

  report.separation_slack = exec::parallel_map(
      task.edge_count(), [&](std::size_t i) -> Time {
        const Time sep = task.edges()[i].separation;
        Time lo(0);               // holds
        Time hi = sep - Time(1);  // maximal legal reduction
        if (hi > Time(0) && holds(with_separation_decrease(task, i, hi))) {
          return hi;
        }
        while (lo + Time(1) < hi) {
          const Time mid((lo.count() + hi.count()) / 2);
          if (holds(with_separation_decrease(task, i, mid))) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        return lo;
      });
  return report;
}

}  // namespace strt
