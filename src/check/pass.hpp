// Internal: per-pass observability bookkeeping for strt::check.
//
// Every public pass opens one Pass at the top of its body: a "check" obs
// span (precise nanosecond timing in the span tree) and, on close, the
// check.diagnostics / check.errors / check.time_ms counter bumps that
// run reports and BENCH_*.json pick up.  check.time_ms is coarse
// (whole-millisecond truncation per pass); use the span tree for exact
// lint cost.
#pragma once

#include <chrono>

#include "check/diagnostics.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt::check::detail {

class Pass {
 public:
  explicit Pass(const CheckResult& result)
      : result_(result), span_("check"),
        start_(std::chrono::steady_clock::now()) {}

  Pass(const Pass&) = delete;
  Pass& operator=(const Pass&) = delete;

  ~Pass() {
    static obs::Counter& c_diags = obs::counter("check.diagnostics");
    static obs::Counter& c_errors = obs::counter("check.errors");
    static obs::Counter& c_ms = obs::counter("check.time_ms");
    c_diags.add(result_.diagnostics().size());
    c_errors.add(result_.error_count());
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    c_ms.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count()));
  }

 private:
  const CheckResult& result_;
  obs::Span span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace strt::check::detail
