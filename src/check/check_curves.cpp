#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/pass.hpp"

namespace strt::check {

namespace {

constexpr auto kError = Severity::kError;
constexpr auto kWarning = Severity::kWarning;

std::string point_loc(std::size_t index) {
  return "point #" + std::to_string(index);
}

}  // namespace

CheckResult check_curve_points(std::span<const Step> points) {
  CheckResult r;
  const detail::Pass pass(r);

  for (std::size_t i = 0; i < points.size(); ++i) {
    const Step& p = points[i];
    if (p.time < Time(0) || p.value < Work(0)) {
      std::ostringstream msg;
      msg << "sample (" << p.time << ", " << p.value
          << ") has a negative coordinate";
      r.add(kError, "curve.negative", point_loc(i), msg.str());
    }
  }

  // Non-monotone samples: a later-in-time sample strictly below an
  // earlier-in-time one.  from_points would silently lift the later
  // sample to the running max, which almost always means the data is
  // wrong (a dropped digit, shuffled columns), not that the author wanted
  // the max.  Sweep in time order tracking the running max.
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].time != points[b].time)
      return points[a].time < points[b].time;
    return points[a].value < points[b].value;
  });
  Work running_max = Work(0);
  Time max_at = Time(0);
  for (const std::size_t i : order) {
    if (points[i].time > max_at && points[i].value < running_max) {
      std::ostringstream msg;
      msg << "sample (" << points[i].time << ", " << points[i].value
          << ") falls below the running maximum " << running_max << " at "
          << max_at << " -- curves must be non-decreasing";
      r.add(kError, "curve.non-monotone", point_loc(i), msg.str());
    }
    if (points[i].value > running_max) {
      running_max = points[i].value;
      max_at = points[i].time;
    }
  }
  return r;
}

CheckResult check_arrival_curve(const Staircase& f) {
  CheckResult r;
  const detail::Pass pass(r);

  if (!f.starts_at_zero()) {
    std::ostringstream msg;
    msg << "f(0) = " << f.values().front()
        << " -- an arrival curve bounds the work of an empty window, "
           "which is zero";
    r.add(kWarning, "curve.nonzero-origin", "t = 0", msg.str());
  }
  return r;
}

CheckResult check_supply_curve(const Staircase& sbf) {
  CheckResult r;
  const detail::Pass pass(r);

  if (!sbf.starts_at_zero()) {
    std::ostringstream msg;
    msg << "sbf(0) = " << sbf.values().front()
        << " -- a supply curve delivers no service in an empty window";
    r.add(kWarning, "curve.nonzero-origin", "t = 0", msg.str());
  }

  // The structural analysis inverts the sbf at every request level; that
  // pseudo-inverse only stays in its domain when the curve provably keeps
  // growing.  A missing tail means inverse() throws past the horizon
  // value; a zero-increment tail means the inverse is unbounded for any
  // demand above it.
  const auto rate = sbf.long_run_rate();
  if (!rate.has_value()) {
    r.add(kError, "curve.unbounded-inverse", "tail",
          "no periodic tail -- sbf^{-1}(w) is undefined for w above the "
          "horizon value; attach the supply's long-run tail");
  } else if (rate->is_zero()) {
    r.add(kError, "curve.unbounded-inverse", "tail",
          "tail increment is zero -- sbf^{-1}(w) is unbounded for any "
          "demand above the horizon value");
  }
  return r;
}

}  // namespace strt::check
