#include "check/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/report.hpp"

namespace strt::check {

std::string_view severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::to_json() const {
  std::ostringstream os;
  os << "{\"code\":\"" << obs::json_escape(code) << "\",\"severity\":\""
     << severity_name(severity) << "\",\"location\":\""
     << obs::json_escape(location) << "\",\"message\":\""
     << obs::json_escape(message) << "\"}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  os << severity_name(d.severity) << '[' << d.code << ']';
  if (!d.location.empty()) os << ' ' << d.location;
  return os << ": " << d.message;
}

void CheckResult::add(Severity severity, std::string code,
                      std::string location, std::string message) {
  if (severity == Severity::kError) ++error_count_;
  diagnostics_.push_back(Diagnostic{std::move(code), severity,
                                    std::move(location), std::move(message)});
}

void CheckResult::merge(CheckResult other) {
  error_count_ += other.error_count_;
  diagnostics_.insert(diagnostics_.end(),
                      std::make_move_iterator(other.diagnostics_.begin()),
                      std::make_move_iterator(other.diagnostics_.end()));
}

bool CheckResult::has(std::string_view code) const {
  return count(code) > 0;
}

std::size_t CheckResult::count(std::string_view code) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

void CheckResult::print(std::ostream& os) const {
  for (const Diagnostic& d : diagnostics_) os << d << '\n';
}

std::string CheckResult::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i) os << ',';
    os << diagnostics_[i].to_json();
  }
  os << ']';
  return os.str();
}

void CheckResult::append_to_report(obs::RunReport& report) const {
  report.put("check.diagnostics",
             static_cast<std::int64_t>(diagnostics_.size()));
  report.put("check.errors", static_cast<std::int64_t>(error_count()));
  report.put("check.warnings", static_cast<std::int64_t>(warning_count()));
  report.put("check.report", to_json());
}

std::span<const CodeInfo> all_codes() {
  // Keep sorted by code; tests/test_check.cpp asserts every entry has a
  // seeded defective model that triggers exactly it.
  static constexpr CodeInfo kCodes[] = {
      {"curve.negative", Severity::kError,
       "curve sample has a negative time or value"},
      {"curve.non-monotone", Severity::kError,
       "curve samples decrease over time"},
      {"curve.nonzero-origin", Severity::kWarning,
       "arrival/supply curve is positive at t = 0"},
      {"curve.unbounded-inverse", Severity::kError,
       "supply curve pseudo-inverse leaves its domain (no growing tail)"},
      {"drt.acyclic", Severity::kWarning,
       "task graph has no cycle (finitely many releases)"},
      {"drt.dangling-edge", Severity::kError,
       "edge endpoint is not a declared vertex"},
      {"drt.dead-end", Severity::kWarning,
       "vertex has no outgoing edge (a run entering it stops)"},
      {"drt.duplicate-vertex", Severity::kError,
       "two vertices share one name"},
      {"drt.empty", Severity::kError, "task has no vertices"},
      {"drt.nonpositive-deadline", Severity::kError,
       "vertex deadline is not positive"},
      {"drt.nonpositive-separation", Severity::kError,
       "edge separation is not positive"},
      {"drt.nonpositive-wcet", Severity::kError,
       "vertex wcet is not positive"},
      {"drt.not-frame-separated", Severity::kWarning,
       "a deadline exceeds an outgoing separation (exact dbf unavailable)"},
      {"drt.overutilized", Severity::kError,
       "long-run utilization is at least 1"},
      {"drt.transient", Severity::kWarning,
       "vertex lies on no cycle (contributes only finitely)"},
      {"drt.wcet-exceeds-deadline", Severity::kError,
       "vertex can never meet its deadline (wcet > deadline)"},
      {"gmf.deadline-exceeds-separation", Severity::kWarning,
       "frame deadline exceeds its separation (frame separation lost)"},
      {"gmf.overutilized", Severity::kError,
       "frame wcet sum reaches the separation sum"},
      {"gmf.wcet-exceeds-deadline", Severity::kError,
       "frame can never meet its deadline (wcet > deadline)"},
      {"parse.duplicate-vertex", Severity::kError,
       "vertex name declared twice"},
      {"parse.invalid-value", Severity::kError,
       "field value is not a valid number"},
      {"parse.missing-field", Severity::kError,
       "required field is absent"},
      {"parse.no-task", Severity::kError,
       "no 'task' directive in the input"},
      {"parse.syntax", Severity::kError,
       "malformed directive"},
      {"parse.unknown-vertex", Severity::kError,
       "edge endpoint names an undeclared vertex"},
      {"recurring.inconsistent-period", Severity::kWarning,
       "branches imply different root-to-root periods"},
      {"recurring.missing-restart", Severity::kError,
       "a leaf never restarts at the root"},
      {"req.bad-field", Severity::kError,
       "request field has the wrong type or an invalid value"},
      {"req.missing-task", Severity::kError,
       "request carries no task description"},
      {"req.unknown-kind", Severity::kError,
       "request names an unknown analysis kind"},
      {"set.duplicate-task", Severity::kWarning,
       "two tasks share one structural fingerprint"},
      {"set.overutilized", Severity::kError,
       "task-set utilization sum is at least 1"},
      {"sporadic.overutilized", Severity::kError,
       "sporadic wcet exceeds its period"},
      {"sporadic.wcet-exceeds-deadline", Severity::kError,
       "sporadic job can never meet its deadline"},
      {"supply.overload", Severity::kError,
       "utilization sum reaches the supply's long-run rate"},
  };
  return kCodes;
}

}  // namespace strt::check
