#include <sstream>
#include <string>

#include "check/check.hpp"
#include "check/pass.hpp"

namespace strt::check {

namespace {

constexpr auto kError = Severity::kError;
constexpr auto kWarning = Severity::kWarning;

std::string frame_loc(const std::string& task, std::size_t index) {
  std::string loc = "frame #" + std::to_string(index);
  if (!task.empty()) loc += " of " + task;
  return loc;
}

}  // namespace

CheckResult check_gmf(const GmfTask& task) {
  CheckResult r;
  const detail::Pass pass(r);

  for (std::size_t i = 0; i < task.frames().size(); ++i) {
    const GmfFrame& f = task.frames()[i];
    const std::string loc = frame_loc(task.name(), i);
    if (Time(f.wcet.count()) > f.deadline) {
      std::ostringstream msg;
      msg << "wcet " << f.wcet << " exceeds deadline " << f.deadline;
      r.add(kError, "gmf.wcet-exceeds-deadline", loc, msg.str());
    }
    if (f.deadline > f.separation) {
      std::ostringstream msg;
      msg << "deadline " << f.deadline << " exceeds separation "
          << f.separation
          << " -- the ring loses frame separation (exact dbf unavailable)";
      r.add(kWarning, "gmf.deadline-exceeds-separation", loc, msg.str());
    }
  }

  // Frame-sum rule: one revolution of the ring releases total_wcet() work
  // every total_separation() ticks, so the long-run utilization is their
  // ratio; at or above 1 no unit-rate supply keeps up.
  if (!task.frames().empty() &&
      Time(task.total_wcet().count()) >= task.total_separation()) {
    std::ostringstream msg;
    msg << "frame wcet sum " << task.total_wcet()
        << " reaches the separation sum " << task.total_separation()
        << " -- long-run utilization >= 1";
    r.add(kError, "gmf.overutilized",
          task.name().empty() ? std::string("gmf task")
                              : "gmf task " + task.name(),
          msg.str());
  }
  return r;
}

CheckResult check_sporadic(const SporadicTask& task) {
  CheckResult r;
  const detail::Pass pass(r);

  const std::string loc = task.name.empty()
                              ? std::string("sporadic task")
                              : "sporadic task " + task.name;
  if (Time(task.wcet.count()) > task.deadline) {
    std::ostringstream msg;
    msg << "wcet " << task.wcet << " exceeds deadline " << task.deadline;
    r.add(kError, "sporadic.wcet-exceeds-deadline", loc, msg.str());
  }
  if (Time(task.wcet.count()) > task.period) {
    std::ostringstream msg;
    msg << "wcet " << task.wcet << " exceeds period " << task.period
        << " -- utilization above 1";
    r.add(kError, "sporadic.overutilized", loc, msg.str());
  }
  return r;
}

CheckResult check_recurring(const RecurringTaskBuilder& b) {
  CheckResult r;
  const detail::Pass pass(r);

  const auto branches = b.branches();
  std::optional<Time> period;
  std::string period_branch;
  for (const RecurringTaskBuilder::BranchInfo& br : branches) {
    const std::string loc =
        br.name.empty() ? "leaf #" + std::to_string(br.leaf)
                        : "leaf " + br.name;
    if (!br.restart.has_value()) {
      r.add(kError, "recurring.missing-restart", loc,
            "branch never restarts at the root -- the built DRT graph "
            "dead-ends here (add_restart or with_global_period)");
      continue;
    }
    // Root-to-root period implied by this branch: the span accumulated
    // down the branch plus the restart separation back to the root.
    const Time implied = br.span + *br.restart;
    if (!period.has_value()) {
      period = implied;
      period_branch = loc;
    } else if (implied != *period) {
      std::ostringstream msg;
      msg << "implies a root-to-root period of " << implied << " but "
          << period_branch << " implies " << *period
          << " -- branches of a recurring task usually share one period";
      r.add(kWarning, "recurring.inconsistent-period", loc, msg.str());
    }
  }
  return r;
}

}  // namespace strt::check
