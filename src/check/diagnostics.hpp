// strt::check -- diagnostics for the domain linter.
//
// A Diagnostic is one finding of a validator pass: a stable dotted code
// (the unit tests pin one test per code), a severity, a human-oriented
// location ("vertex B", "edge A->B", "line 7"), and a message.  A
// CheckResult accumulates the findings of one or more passes; `ok()` is
// the gate the analysis pipeline consults before running.
//
// The linter *never mutates* its subject: a model that passes checking
// analyzes bit-identically to one that was never checked (enforced by
// tests/test_check.cpp).
//
// Rendering: print() for terminals, to_json() (a JSON array, escaped with
// the strt.obs.report machinery) for embedding into run reports, and
// append_to_report() to fold summary fields plus the rendered array into
// an obs::RunReport.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace strt::obs {
class RunReport;
}  // namespace strt::obs

namespace strt::check {

enum class Severity : std::uint8_t {
  /// Suspicious but analyzable: the analyses stay sound, the model is
  /// probably not what the author meant (dead-end vertex, transient
  /// vertex, non-frame-separated deadlines).
  kWarning,
  /// The model violates a precondition of the analyses: running them
  /// would throw or silently produce meaningless bounds (non-positive
  /// separation, utilization at or above the supply rate).
  kError,
};

[[nodiscard]] std::string_view severity_name(Severity s);

/// One finding of a validator pass.
struct Diagnostic {
  std::string code;      // stable dotted identifier, e.g. "drt.dead-end"
  Severity severity{Severity::kError};
  std::string location;  // subject-relative, e.g. "vertex B" or "line 7"
  std::string message;

  /// `{"code": ..., "severity": ..., "location": ..., "message": ...}`.
  [[nodiscard]] std::string to_json() const;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

/// Accumulated findings of one or more passes over one subject.
class CheckResult {
 public:
  void add(Severity severity, std::string code, std::string location,
           std::string message);
  void merge(CheckResult other);

  /// No errors (warnings allowed): the analyses' preconditions hold.
  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  /// No findings at all.
  [[nodiscard]] bool clean() const { return diagnostics_.empty(); }

  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const {
    return diagnostics_.size() - error_count_;
  }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

  /// True if any finding carries exactly this code.
  [[nodiscard]] bool has(std::string_view code) const;
  /// Number of findings carrying exactly this code.
  [[nodiscard]] std::size_t count(std::string_view code) const;

  /// One line per diagnostic: `error[drt.dead-end] vertex B: ...`.
  void print(std::ostream& os) const;

  /// JSON array of Diagnostic::to_json() objects (no newlines).
  [[nodiscard]] std::string to_json() const;

  /// Adds `check.diagnostics` / `check.errors` / `check.warnings` integer
  /// fields and a `check.report` field holding to_json() to `report`.
  void append_to_report(obs::RunReport& report) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

/// Registry entry describing one diagnostic code (docs and exhaustive
/// test-coverage checks iterate this table).
struct CodeInfo {
  std::string_view code;
  Severity severity;
  std::string_view summary;
};

/// Every diagnostic code the linter can emit, sorted by code.
[[nodiscard]] std::span<const CodeInfo> all_codes();

}  // namespace strt::check
