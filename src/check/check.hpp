// strt::check -- domain lint for structural real-time workloads.
//
// The DRT/DATE-2015 analyses are only sound on well-formed inputs:
// connected release graphs with positive separations, positive execution
// times, monotone request/supply curves, long-run utilization strictly
// below the supply rate.  Nothing in the analysis layer re-validates
// those preconditions on every call -- these passes are the front gate
// that rejects a malformed model *before* explore/busy_window run on it.
//
// Two levels of checking:
//
//   * Spec level (TaskSpec): raw vertex/edge lists as a parser or
//     generator produced them, before DrtBuilder validation.  This is
//     where non-positive parameters and dangling edge endpoints are
//     reported as diagnostics instead of thrown exceptions, so a caller
//     (io/parse, strt-lint) can collect every problem in one pass.
//   * Model level (DrtTask, task sets, curves, GMF/recurring/sporadic):
//     semantic rules on successfully built models -- reachability and
//     cycle structure, frame separation, utilization versus the supply
//     rate, curve monotonicity and inverse-domain rules.
//
// Every pass is pure: it only reads its subject and returns a
// CheckResult.  Checking on or off never changes an analysis result, only
// whether a bad model is caught up front (bit-identity is enforced by
// tests/test_check.cpp).
//
// Observability: each pass bumps check.diagnostics / check.errors /
// check.time_ms on the global obs registry and runs under a "check" span.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"
#include "model/gmf.hpp"
#include "model/recurring.hpp"
#include "model/sporadic.hpp"
#include "resource/supply.hpp"

namespace strt::check {

/// Raw, not-yet-validated task description (what a parser or a generator
/// holds before DrtBuilder would accept or reject it).
struct TaskSpec {
  struct Vertex {
    std::string name;
    std::int64_t wcet{1};
    std::int64_t deadline{1};
  };
  struct Edge {
    std::int32_t from{0};
    std::int32_t to{0};
    std::int64_t separation{1};
  };

  std::string name;
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
};

/// Structural well-formedness of a raw spec: drt.empty,
/// drt.nonpositive-wcet, drt.nonpositive-deadline,
/// drt.nonpositive-separation, drt.dangling-edge, drt.duplicate-vertex.
[[nodiscard]] CheckResult check_task_spec(const TaskSpec& spec);

/// Semantic rules on a built task: drt.wcet-exceeds-deadline,
/// drt.overutilized, drt.dead-end, drt.transient, drt.acyclic,
/// drt.not-frame-separated.
[[nodiscard]] CheckResult check_task(const DrtTask& task);

/// Validates `spec` (spec pass, then -- if the spec is error-free -- the
/// task pass on the built model) appending to `result`.  Returns the
/// built task unless spec-level errors prevent construction; task-level
/// findings do not block construction, gate on result.ok() instead.
[[nodiscard]] std::optional<DrtTask> build_task(const TaskSpec& spec,
                                                CheckResult& result);

/// Cross-task rules: set.overutilized (long-run utilizations sum to >= 1),
/// set.duplicate-task (same structural fingerprint appears twice).
[[nodiscard]] CheckResult check_task_set(std::span<const DrtTask> tasks);

/// Workload-versus-resource gate: supply.overload when the utilization
/// sum reaches the supply's long-run rate (the busy-window iteration
/// diverges at or above it).
[[nodiscard]] CheckResult check_system(std::span<const DrtTask> tasks,
                                       const Supply& supply);

/// Raw curve samples before Staircase::from_points canonicalizes them:
/// curve.negative (negative time or value), curve.non-monotone (a later
/// sample falls below an earlier one -- from_points would silently lift
/// it to the running max).
[[nodiscard]] CheckResult check_curve_points(std::span<const Step> points);

/// Arrival-curve role: curve.nonzero-origin when f(0) != 0 (an arrival
/// curve bounds work in an empty window by zero).
[[nodiscard]] CheckResult check_arrival_curve(const Staircase& f);

/// Supply-curve role: curve.nonzero-origin, plus curve.unbounded-inverse
/// when the sbf pseudo-inverse leaves its domain -- no periodic tail, or
/// a tail that never grows (inverse(w) is undefined or unbounded for
/// demand above the horizon value).
[[nodiscard]] CheckResult check_supply_curve(const Staircase& sbf);

/// GMF frame rules: gmf.overutilized (frame-sum wcet >= frame-sum
/// separation), gmf.wcet-exceeds-deadline, gmf.deadline-exceeds-separation
/// (frame separation lost).
[[nodiscard]] CheckResult check_gmf(const GmfTask& task);

/// Sporadic rules: sporadic.overutilized (wcet > period),
/// sporadic.wcet-exceeds-deadline.
[[nodiscard]] CheckResult check_sporadic(const SporadicTask& task);

/// Recurring-branching consistency, checked on the builder before build():
/// recurring.missing-restart (a leaf never returns to the root -- the
/// built DRT would dead-end), recurring.inconsistent-period (branches
/// imply different root-to-root periods).
[[nodiscard]] CheckResult check_recurring(const RecurringTaskBuilder& b);

}  // namespace strt::check
