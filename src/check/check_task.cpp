#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "check/check.hpp"
#include "check/pass.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/scc.hpp"

namespace strt::check {

namespace {

constexpr auto kError = Severity::kError;
constexpr auto kWarning = Severity::kWarning;

std::string vertex_loc(const std::string& name, std::size_t index) {
  if (!name.empty()) return "vertex " + name;
  return "vertex #" + std::to_string(index);
}

std::string task_loc(const std::string& name) {
  return name.empty() ? std::string("task") : "task " + name;
}

}  // namespace

CheckResult check_task_spec(const TaskSpec& spec) {
  CheckResult r;
  const detail::Pass pass(r);

  if (spec.vertices.empty()) {
    r.add(kError, "drt.empty", task_loc(spec.name), "task has no vertices");
  }

  std::map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < spec.vertices.size(); ++i) {
    const TaskSpec::Vertex& v = spec.vertices[i];
    const std::string loc = vertex_loc(v.name, i);
    if (v.wcet <= 0) {
      r.add(kError, "drt.nonpositive-wcet", loc,
            "wcet " + std::to_string(v.wcet) + " must be >= 1");
    }
    if (v.deadline <= 0) {
      r.add(kError, "drt.nonpositive-deadline", loc,
            "deadline " + std::to_string(v.deadline) + " must be >= 1");
    }
    if (!v.name.empty()) {
      const auto [it, inserted] = first_seen.emplace(v.name, i);
      if (!inserted) {
        r.add(kError, "drt.duplicate-vertex", loc,
              "name already used by vertex #" + std::to_string(it->second));
      }
    }
  }

  const auto n = static_cast<std::int64_t>(spec.vertices.size());
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    const TaskSpec::Edge& e = spec.edges[i];
    const std::string loc = "edge #" + std::to_string(i);
    const bool from_ok = e.from >= 0 && e.from < n;
    const bool to_ok = e.to >= 0 && e.to < n;
    if (!from_ok) {
      r.add(kError, "drt.dangling-edge", loc,
            "source vertex id " + std::to_string(e.from) +
                " is not declared");
    }
    if (!to_ok) {
      r.add(kError, "drt.dangling-edge", loc,
            "target vertex id " + std::to_string(e.to) + " is not declared");
    }
    if (e.separation <= 0) {
      r.add(kError, "drt.nonpositive-separation", loc,
            "separation " + std::to_string(e.separation) + " must be >= 1");
    }
  }
  return r;
}

CheckResult check_task(const DrtTask& task) {
  CheckResult r;
  const detail::Pass pass(r);

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    const DrtVertex& vert = task.vertex(v);
    const std::string loc =
        vertex_loc(vert.name, static_cast<std::size_t>(v));
    if (Time(vert.wcet.count()) > vert.deadline) {
      std::ostringstream msg;
      msg << "wcet " << vert.wcet << " exceeds deadline " << vert.deadline
          << " -- the job misses even on an idle dedicated processor";
      r.add(kError, "drt.wcet-exceeds-deadline", loc, msg.str());
    }
    if (task.out_edges(v).empty()) {
      r.add(kWarning, "drt.dead-end", loc,
            "no outgoing edge -- a run entering this vertex releases no "
            "further jobs");
    }
  }

  if (!task.is_cyclic()) {
    r.add(kWarning, "drt.acyclic", task_loc(task.name()),
          "graph has no cycle -- the task releases only finitely many "
          "jobs (long-run rate zero)");
  } else {
    // A vertex in a trivial SCC (alone, no self-loop) lies on no cycle:
    // any run visits it at most once, so it contributes nothing to the
    // long-run workload the delay analysis is about.
    const SccResult scc = strongly_connected_components(task);
    for (const std::vector<VertexId>& members : scc.members) {
      if (members.size() != 1) continue;
      const VertexId v = members.front();
      bool self_loop = false;
      for (const std::int32_t ei : task.out_edges(v)) {
        if (task.edges()[static_cast<std::size_t>(ei)].to == v) {
          self_loop = true;
          break;
        }
      }
      if (!self_loop) {
        r.add(kWarning, "drt.transient",
              vertex_loc(task.vertex(v).name, static_cast<std::size_t>(v)),
              "lies on no cycle -- released at most once per run");
      }
    }
  }

  if (!task.has_frame_separation()) {
    r.add(kWarning, "drt.not-frame-separated", task_loc(task.name()),
          "a deadline exceeds an outgoing separation; the exact dbf "
          "staircase is unavailable (rbf-based analyses still apply)");
  }

  if (const auto u = utilization(task); u && *u >= Rational(1)) {
    std::ostringstream msg;
    msg << "long-run utilization " << u->to_string()
        << " >= 1 -- no unit-rate supply can serve this task";
    r.add(kError, "drt.overutilized", task_loc(task.name()), msg.str());
  }
  return r;
}

std::optional<DrtTask> build_task(const TaskSpec& spec, CheckResult& result) {
  CheckResult spec_result = check_task_spec(spec);
  const bool buildable = spec_result.ok();
  result.merge(std::move(spec_result));
  if (!buildable) return std::nullopt;

  DrtBuilder b(spec.name);
  for (const TaskSpec::Vertex& v : spec.vertices) {
    b.add_vertex(v.name, Work(v.wcet), Time(v.deadline));
  }
  for (const TaskSpec::Edge& e : spec.edges) {
    b.add_edge(e.from, e.to, Time(e.separation));
  }
  DrtTask task = std::move(b).build();
  result.merge(check_task(task));
  return task;
}

CheckResult check_task_set(std::span<const DrtTask> tasks) {
  CheckResult r;
  const detail::Pass pass(r);

  Rational total(0);
  for (const DrtTask& t : tasks) {
    if (const auto u = utilization(t)) total += *u;
  }
  if (total >= Rational(1)) {
    std::ostringstream msg;
    msg << "utilization sum " << total.to_string()
        << " >= 1 -- infeasible on any unit-rate resource";
    r.add(kError, "set.overutilized", "task set", msg.str());
  }

  std::map<std::uint64_t, const DrtTask*> by_fingerprint;
  for (const DrtTask& t : tasks) {
    const auto [it, inserted] = by_fingerprint.emplace(t.fingerprint(), &t);
    if (!inserted) {
      r.add(kWarning, "set.duplicate-task", task_loc(t.name()),
            "structurally identical to " + task_loc(it->second->name()) +
                " (same fingerprint)");
    }
  }
  return r;
}

CheckResult check_system(std::span<const DrtTask> tasks,
                         const Supply& supply) {
  CheckResult r;
  const detail::Pass pass(r);

  Rational total(0);
  for (const DrtTask& t : tasks) {
    if (const auto u = utilization(t)) total += *u;
  }
  const Rational rate = supply.long_run_rate();
  if (total >= rate) {
    std::ostringstream msg;
    msg << "utilization sum " << total.to_string()
        << " reaches the supply's long-run rate " << rate.to_string()
        << " -- the busy-window iteration diverges";
    r.add(kError, "supply.overload", supply.describe(), msg.str());
  }
  return r;
}

}  // namespace strt::check
