// strt::race -- yield-point hooks for the deterministic interleaving
// explorer (race/schedule.hpp).
//
// The concurrency hot spots of the library (the MPMC admission ring, the
// service worker loop's shutdown/drain transitions, strt::Mutex /
// strt::CondVar) are sprinkled with STRT_RACE_* macros.  In a normal
// build (STRT_RACE=0, the default) every macro expands to nothing: the
// release binary carries no trace of the instrumentation and results are
// bit-identical to an uninstrumented tree.
//
// In a race build (cmake -DSTRT_RACE=ON, which defines STRT_RACE=1
// project-wide) each macro compiles to a call into the explorer runtime.
// The calls are still near-free while no race::Explorer is active on the
// process (one thread-local flag test); under an active explorer they
// become the scheduling points at which the controlled scheduler may
// park the running thread and hand the processor to another.
//
// Hook placement rules (see DESIGN.md "Concurrency correctness"):
//
//   * STRT_RACE_ATOMIC_* go immediately BEFORE every atomic load, store,
//     and read-modify-write on shared protocol state, carrying the
//     address and memory order so the happens-before checker can track
//     synchronization (acquire/release pairs on one address order the
//     surrounding accesses; relaxed ones do not).
//   * STRT_RACE_HOOK marks control transitions that are not a single
//     atomic op (entering the worker pop loop, the drain idle probe).
//   * STRT_RACE_FAULT guards *reverted* logic for regression tests: the
//     shipped code keeps both the fixed and the pre-fix variant of a
//     protocol step, and the explorer proves the fixed one survives
//     every explored schedule while the reverted one yields a witness.
//   * Thread identity: STRT_RACE_THREAD names the calling thread
//     (stable across schedules, required for deterministic replay) and
//     STRT_RACE_AWAIT_THREAD blocks the creator until the named thread
//     has registered -- spawn a thread and await it with no other hook
//     in between, so the ready set at every choice point is a pure
//     function of the schedule.
#pragma once

#ifndef STRT_RACE
#define STRT_RACE 0
#endif

#include <cstddef>
#include <cstdint>

namespace strt::race {

/// Access kind recorded at an atomic yield point.
enum class Access : std::uint8_t { kLoad, kStore, kRmw };

/// Memory order recorded at an atomic yield point (collapsed to the
/// fragment the happens-before checker models).
enum class Order : std::uint8_t { kRelaxed, kAcquire, kRelease, kAcqRel };

}  // namespace strt::race

#if STRT_RACE

#include <thread>

namespace strt::race {

/// True while a race::Explorer controls this process's threads.  The
/// hot-path gate for every macro below.
[[nodiscard]] bool schedule_active() noexcept;

/// Plain yield point (control transition; no tracked address).
void hook(const char* site);

/// Atomic-access yield point: yields, then records the access against
/// `addr` for the vector-clock happens-before checker.
void hook_access(const char* site, const void* addr, Access access,
                 Order order);

/// True when the named reverted-logic fault is armed (test-only).
[[nodiscard]] bool fault_enabled(const char* name) noexcept;

/// Registers the calling thread with the active explorer under a stable
/// name ("<prefix>/<index>") and parks until first scheduled.
void name_thread(const char* prefix, std::size_t index);

/// Blocks the calling thread until the named thread has registered.
void await_thread(const char* prefix, std::size_t index);

/// Cooperative-spin marker (std::this_thread::yield sites): forces a
/// free round-robin switch so spin loops cannot monopolize the schedule.
void hint_yield();

/// Marks the calling thread blocked until the registered thread with
/// this std::thread::id finishes; call immediately before joining it.
void sched_join(std::thread::id tid);

}  // namespace strt::race

#define STRT_RACE_HOOK(site)                              \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::hook(site);                           \
    }                                                     \
  } while (0)

#define STRT_RACE_ATOMIC(site, addr, access, order)       \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::hook_access(site, addr,               \
                                ::strt::race::Access::access, \
                                ::strt::race::Order::order);  \
    }                                                     \
  } while (0)

#define STRT_RACE_FAULT(name)                             \
  (::strt::race::schedule_active() && ::strt::race::fault_enabled(name))

#define STRT_RACE_THREAD(prefix, index)                   \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::name_thread(prefix, index);           \
    }                                                     \
  } while (0)

#define STRT_RACE_AWAIT_THREAD(prefix, index)             \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::await_thread(prefix, index);          \
    }                                                     \
  } while (0)

#define STRT_RACE_HINT_YIELD()                            \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::hint_yield();                         \
    }                                                     \
  } while (0)

#define STRT_RACE_JOIN(thread_obj)                        \
  do {                                                    \
    if (::strt::race::schedule_active()) {                \
      ::strt::race::sched_join((thread_obj).get_id());    \
    }                                                     \
  } while (0)

#else  // !STRT_RACE

#define STRT_RACE_HOOK(site) ((void)0)
#define STRT_RACE_ATOMIC(site, addr, access, order) ((void)0)
#define STRT_RACE_FAULT(name) false
#define STRT_RACE_THREAD(prefix, index) ((void)0)
#define STRT_RACE_AWAIT_THREAD(prefix, index) ((void)0)
#define STRT_RACE_HINT_YIELD() ((void)0)
#define STRT_RACE_JOIN(thread_obj) ((void)0)

#endif  // STRT_RACE
