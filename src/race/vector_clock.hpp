// strt::race -- a vector-clock happens-before checker over the hooked
// accesses of one explored execution.
//
// The controlled scheduler (race/schedule.hpp) feeds every hooked event
// into an HbChecker: thread starts, mutex acquire/release, condvar
// wakeups, joins, and the atomic loads/stores/RMWs marked with
// STRT_RACE_ATOMIC.  The checker maintains one vector clock per thread
// and per-address access metadata (FastTrack-style: last-write epoch
// plus a read clock), and flags every conflicting pair -- write/write or
// write/read on the same address from different threads -- that is not
// ordered by the happens-before relation induced by the execution's
// synchronization:
//
//   * mutex release -> later acquire of the same mutex,
//   * release-or-stronger atomic store -> acquire-or-stronger load of
//     the same address (the load reads the last store: the scheduler
//     serializes the execution, so reads-from is exact),
//   * condvar notify -> waiter wakeup, thread create -> first step,
//     thread finish -> join.
//
// Relaxed accesses synchronize nothing, so two relaxed writes from
// different threads with no other ordering are flagged.  For lock-free
// code (the MPMC ring cursors) such pairs are *expected*; the value of
// the checker there is the inverse direction: asserting that the pairs
// carrying the protocol's publication contract (cell sequence store ->
// sequence load) ARE ordered in every explored schedule.  Unordered
// pairs on plain (non-atomic) state are always bugs.
//
// The class is self-contained and deterministic, so unit tests drive it
// directly with synthetic event streams in every build flavor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "race/hook.hpp"

namespace strt::race {

/// One flagged unordered conflicting pair, named by the two sites.
struct HbRace {
  std::string first_site;   // the earlier access in schedule order
  std::string second_site;  // the later, unordered access
  int first_thread = 0;
  int second_thread = 0;
  bool write_write = false;  // else write/read or read/write
};

class HbChecker {
 public:
  /// Registers a thread; ids are dense from 0.  `parent` (a started
  /// thread) seeds the child's clock: create happens-before first step.
  /// Pass parent = -1 for roots.
  void thread_start(int thread, int parent);

  /// Marks a thread finished, capturing its clock for join edges.
  void thread_finish(int thread);

  /// join happens-after the joined thread's finish.
  void thread_join(int thread, int finished);

  void mutex_acquire(int thread, const void* mu);
  void mutex_release(int thread, const void* mu);

  /// Condvar wakeup edge: notifier's clock at notify -> waiter at wake.
  void cv_notify(int thread, const void* cv);
  void cv_wake(int thread, const void* cv);

  /// One hooked atomic access.  `site` labels reports.
  void atomic_access(int thread, const void* addr, Access access,
                     Order order, const char* site);

  /// Plain (non-atomic) shared access, for synthetic tests and any
  /// future plain-state hooks: never synchronizes, always checked.
  void plain_access(int thread, const void* addr, bool is_write,
                    const char* site);

  /// Unordered conflicting pairs found so far, deduplicated by
  /// (first_site, second_site, write_write).
  [[nodiscard]] const std::vector<HbRace>& races() const { return races_; }

  /// True when every conflicting pair on `addr` seen so far was ordered.
  [[nodiscard]] bool ordered_so_far(const void* addr) const;

  void clear();

 private:
  using Clock = std::vector<std::uint64_t>;

  struct AddrState {
    const void* addr = nullptr;
    // Last write: thread + that thread's clock component at the write
    // (a FastTrack epoch), plus the site for reports.
    int write_thread = -1;
    std::uint64_t write_epoch = 0;
    std::string write_site;
    // Read clock: per thread, the reader's own component at its last
    // read, with sites for reports.
    std::vector<std::uint64_t> read_epochs;
    std::vector<std::string> read_sites;
    // Release clock published by the last release-or-stronger store.
    Clock release_clock;
    bool raced = false;
  };

  struct SyncState {
    const void* obj = nullptr;
    Clock clock;
  };

  AddrState& addr_state(const void* addr);
  SyncState& sync_state(std::vector<SyncState>& table, const void* obj);
  void ensure_thread(int thread);
  void join_into(Clock& into, const Clock& from);
  void tick(int thread);
  /// True iff component `epoch` of thread `t` is visible to `observer`.
  [[nodiscard]] bool ordered(int t, std::uint64_t epoch,
                             const Clock& observer) const;
  void record_race(const std::string& first, int first_thread,
                   const char* second, int second_thread, bool ww);
  void check_write(AddrState& a, int thread, const char* site);
  void check_read(AddrState& a, int thread, const char* site);

  std::vector<Clock> clocks_;        // per thread
  std::vector<Clock> finish_clocks_; // per finished thread
  std::vector<AddrState> addrs_;
  std::vector<SyncState> mutexes_;
  std::vector<SyncState> cvs_;
  std::vector<HbRace> races_;
  std::vector<std::string> race_keys_;
};

}  // namespace strt::race
