#include "race/lockdep.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "base/config.hpp"

namespace strt::race {

namespace {

struct Held {
  LockId id;
  SiteId site;
};

/// Sites an edge was recorded with: the holder's acquisition site and
/// the new acquisition's site, kept for witness messages (the graph
/// itself is keyed by lock instance).
struct EdgeSites {
  SiteId held;
  SiteId acquired;
};

/// Global analyzer state, leaked deliberately: mutex hooks may fire
/// during static destruction of other translation units.
struct State {
  std::mutex mu;
  std::vector<std::string> site_names;
  std::unordered_map<std::string, SiteId> site_by_content;
  std::vector<std::vector<LockId>> adj;      // edges: lock -> locks
  std::unordered_set<std::uint64_t> edges;   // packed (a << 32) | b
  std::unordered_map<std::uint64_t, EdgeSites> edge_sites;
  std::vector<LockCycle> cycles;
  std::unordered_set<std::uint64_t> cycle_keys;  // closing edges seen
  void (*cycle_hook)(const LockCycle&) = nullptr;

  std::atomic<std::uint32_t> next_lock{0};
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> n_edges{0};
  std::atomic<std::uint64_t> n_cycles{0};
};

State& state() {
  static State* s = new State;  // leaked: see struct comment
  return *s;
}

/// Per-thread held stack plus caches that keep the steady-state hook
/// path free of the global mutex (sites and edges already seen by this
/// thread skip straight through).
struct TlState {
  std::vector<Held> held;
  std::unordered_map<std::uint64_t, SiteId> site_cache;
  std::unordered_set<std::uint64_t> edge_cache;
};

// The per-thread state must survive being *asked for* after its own
// destruction: thread-storage objects are destroyed before static ones,
// and static destructors (the exec pool, obs registries) still lock
// Mutexes on the way out.  A trivially-destructible pointer + flag pair
// stays readable forever; once the owner is destroyed, tls() returns
// nullptr and the hooks degrade to counting-only behavior.
thread_local TlState* tl_ptr = nullptr;
thread_local bool tl_destroyed = false;

TlState* tls() {
  if (tl_ptr != nullptr) return tl_ptr;
  if (tl_destroyed) return nullptr;
  struct Owner {
    TlState s;
    ~Owner() {
      tl_ptr = nullptr;
      tl_destroyed = true;
    }
  };
  thread_local Owner owner;
  tl_ptr = &owner.s;
  return tl_ptr;
}

std::atomic<bool> g_enabled_override{false};
std::atomic<int> g_enabled_value{-1};  // -1 unresolved, else 0/1

constexpr std::uint64_t pack_edge(LockId a, LockId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// DFS path from `from` to `to` over the adjacency lists; fills `path`
/// (excluding `from`) and returns true when reachable.  Called with the
/// state mutex held, only when a new edge appears -- not hot.
bool find_path(const State& s, LockId from, LockId to,
               std::vector<LockId>& path, std::vector<char>& seen) {
  if (from == to) return true;
  seen[from] = 1;
  for (const LockId next : s.adj[from]) {
    if (next == to) {
      // Check the target *before* the seen set: the caller pre-marks
      // the cycle's start node so the path cannot revisit it mid-way,
      // which must not stop the closing edge from terminating here.
      path.push_back(next);
      return true;
    }
    if (seen[next]) continue;
    path.push_back(next);
    if (find_path(s, next, to, path, seen)) return true;
    path.pop_back();
  }
  return false;
}

std::string site_label(const State& s, SiteId id) {
  return s.site_names[id];
}

/// Builds the Diagnostic-style message for a witness chain of edge
/// sites a -> b -> ... -> a (chain closed by the caller).
std::string cycle_message(const State& s, const std::vector<SiteId>& chain) {
  std::string msg = "error[race.lock-cycle] lock-order inversion (";
  msg += std::to_string(chain.size() - 1);
  msg += " sites): ";
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (i != 0) msg += "; ";
    msg += site_label(s, chain[i + 1]);
    msg += " acquired while holding ";
    msg += site_label(s, chain[i]);
  }
  msg += " -- the held-set order cycles, so two threads interleaving "
         "these acquisitions can deadlock";
  return msg;
}

void record_cycle(State& s, const std::vector<SiteId>& chain,
                  std::uint64_t closing_key) {
  if (!s.cycle_keys.insert(closing_key).second) return;  // seen
  LockCycle c;
  c.chain = chain;
  c.chain_names.reserve(chain.size());
  for (const SiteId id : chain) c.chain_names.push_back(site_label(s, id));
  c.message = cycle_message(s, chain);
  s.cycles.push_back(c);
  s.n_cycles.fetch_add(1, std::memory_order_relaxed);
  if (s.cycle_hook != nullptr) s.cycle_hook(s.cycles.back());
}

/// Inserts the instance edge a->b if new; on insertion, checks for a
/// b ->* a path and records the witness cycle as the chain of the
/// edges' acquisition sites.
void add_edge(LockId a, SiteId a_site, LockId b, SiteId b_site) {
  State& s = state();
  const std::uint64_t key = pack_edge(a, b);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.edges.insert(key).second) return;
  if (s.adj.size() <= static_cast<std::size_t>(a) ||
      s.adj.size() <= static_cast<std::size_t>(b)) {
    s.adj.resize(static_cast<std::size_t>(std::max(a, b)) + 1);
  }
  s.adj[a].push_back(b);
  s.edge_sites.emplace(key, EdgeSites{a_site, b_site});
  s.n_edges.fetch_add(1, std::memory_order_relaxed);
  if (a == b) {
    // Relocking the held instance: deadlock (std::mutex relock is UB).
    record_cycle(s, {a_site, b_site}, key);
    return;
  }
  std::vector<LockId> locks{a, b};
  std::vector<char> seen(s.adj.size(), 0);
  seen[a] = 1;  // a path revisiting `a` before the end is a sub-cycle
  if (!find_path(s, b, a, locks, seen)) return;
  // locks = a, b, ..., a; name the cycle by its edges' sites.
  std::vector<SiteId> chain;
  chain.reserve(locks.size());
  chain.push_back(a_site);
  chain.push_back(b_site);
  for (std::size_t i = 1; i + 1 < locks.size(); ++i) {
    const auto it = s.edge_sites.find(pack_edge(locks[i], locks[i + 1]));
    chain.push_back(it != s.edge_sites.end() ? it->second.acquired
                                             : a_site);
  }
  record_cycle(s, chain, key);
}

}  // namespace

SiteId lockdep_site(const std::source_location& loc, const char* label) {
  const std::uint64_t ptr_key =
      (reinterpret_cast<std::uint64_t>(
           label != nullptr ? static_cast<const void*>(label)
                            : static_cast<const void*>(loc.file_name())) *
       0x9E3779B97F4A7C15ULL) ^
      loc.line();
  TlState* t = tls();
  if (t != nullptr) {
    if (const auto it = t->site_cache.find(ptr_key);
        it != t->site_cache.end()) {
      return it->second;
    }
  }
  // Content key: explicit label, or file basename + line.
  std::string name;
  if (label != nullptr) {
    name = label;
  } else {
    std::string_view file = loc.file_name();
    if (const std::size_t slash = file.rfind('/');
        slash != std::string_view::npos) {
      file.remove_prefix(slash + 1);
    }
    name = std::string(file) + ":" + std::to_string(loc.line());
  }
  State& s = state();
  SiteId id = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto [it, inserted] =
        s.site_by_content.emplace(name, static_cast<SiteId>(s.site_names.size()));
    if (inserted) {
      s.site_names.push_back(name);
    }
    id = it->second;
  }
  if (t != nullptr) t->site_cache.emplace(ptr_key, id);
  return id;
}

LockId lockdep_register() {
  return state().next_lock.fetch_add(1, std::memory_order_relaxed);
}

void lockdep_forget(LockId id) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (static_cast<std::size_t>(id) < s.adj.size()) s.adj[id].clear();
  // Incoming edges become dead ends (id is never reused); the packed
  // keys stay in `edges` only to keep re-insertion cheaply idempotent.
}

void lockdep_acquire(LockId id, SiteId site) {
  state().acquisitions.fetch_add(1, std::memory_order_relaxed);
  TlState* t = tls();
  if (t == nullptr) return;  // thread teardown: count only
  for (const Held& h : t->held) {
    if (h.site == site && h.id != id) {
      // Two different instances nested under one site: the mirrored
      // instance order is reachable from this same line, so this is an
      // inversion without needing to see the second thread.  Dedup by
      // site (the instances involved vary run to run).
      State& s = state();
      const std::lock_guard<std::mutex> lock(s.mu);
      record_cycle(s, {site, site},
                   0x8000000000000000ULL | static_cast<std::uint64_t>(site));
      continue;
    }
    const std::uint64_t key = pack_edge(h.id, id);
    if (t->edge_cache.insert(key).second) {
      add_edge(h.id, h.site, id, site);
    }
  }
  t->held.push_back({id, site});
}

void lockdep_try_acquire(LockId id, SiteId site) {
  // The try_lock exemption: no edges -- a try_lock cannot block, so it
  // cannot be the waiting half of a deadlock.
  state().acquisitions.fetch_add(1, std::memory_order_relaxed);
  TlState* t = tls();
  if (t != nullptr) t->held.push_back({id, site});
}

void lockdep_release(LockId id) {
  TlState* t = tls();
  if (t == nullptr) return;
  std::vector<Held>& held = t->held;
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i].id == id) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool lockdep_enabled() noexcept {
  if (g_enabled_override.load(std::memory_order_relaxed)) {
    return g_enabled_value.load(std::memory_order_relaxed) == 1;
  }
  int v = g_enabled_value.load(std::memory_order_relaxed);
  if (v < 0) {
    // strt::cfg's core is header-inline (and its registry uses a plain
    // std::mutex), so this resolves without linking strt_base and
    // without re-entering the lockdep runtime.
    v = cfg::get_bool("STRT_LOCKDEP", /*def=*/true) ? 1 : 0;
    g_enabled_value.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void lockdep_set_enabled(bool on) noexcept {
  g_enabled_value.store(on ? 1 : 0, std::memory_order_relaxed);
  g_enabled_override.store(true, std::memory_order_relaxed);
}

LockdepStats lockdep_stats() {
  State& s = state();
  LockdepStats out;
  out.acquisitions = s.acquisitions.load(std::memory_order_relaxed);
  out.edges = s.n_edges.load(std::memory_order_relaxed);
  out.cycles = s.n_cycles.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(s.mu);
  out.sites = s.site_names.size();
  return out;
}

std::vector<LockCycle> lockdep_cycles() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.cycles;
}

void lockdep_set_cycle_hook(void (*hook)(const LockCycle&)) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.cycle_hook = hook;
}

std::string lockdep_report() {
  const LockdepStats st = lockdep_stats();
  std::string out = "lockdep: " + std::to_string(st.acquisitions) +
                    " acquisitions, " + std::to_string(st.sites) +
                    " sites, " + std::to_string(st.edges) + " edges, " +
                    std::to_string(st.cycles) + " cycle(s)\n";
  for (const LockCycle& c : lockdep_cycles()) {
    out += "  ";
    out += c.message;
    out += "\n";
  }
  return out;
}

void lockdep_reset() {
  State& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (auto& a : s.adj) a.clear();
    s.edges.clear();
    s.edge_sites.clear();
    s.cycles.clear();
    s.cycle_keys.clear();
    s.n_edges.store(0, std::memory_order_relaxed);
    s.n_cycles.store(0, std::memory_order_relaxed);
    s.acquisitions.store(0, std::memory_order_relaxed);
  }
  if (TlState* t = tls(); t != nullptr) {
    t->held.clear();
    t->edge_cache.clear();
  }
}

}  // namespace strt::race
