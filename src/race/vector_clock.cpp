#include "race/vector_clock.hpp"

#include <algorithm>

namespace strt::race {

void HbChecker::ensure_thread(int thread) {
  const std::size_t need = static_cast<std::size_t>(thread) + 1;
  if (clocks_.size() < need) clocks_.resize(need);
  if (finish_clocks_.size() < need) finish_clocks_.resize(need);
  for (Clock& c : clocks_) {
    if (c.size() < need) c.resize(need, 0);
  }
}

void HbChecker::join_into(Clock& into, const Clock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void HbChecker::tick(int thread) {
  Clock& c = clocks_[static_cast<std::size_t>(thread)];
  if (c.size() <= static_cast<std::size_t>(thread)) {
    c.resize(static_cast<std::size_t>(thread) + 1, 0);
  }
  ++c[static_cast<std::size_t>(thread)];
}

bool HbChecker::ordered(int t, std::uint64_t epoch,
                        const Clock& observer) const {
  const std::size_t i = static_cast<std::size_t>(t);
  return i < observer.size() && observer[i] >= epoch;
}

void HbChecker::thread_start(int thread, int parent) {
  ensure_thread(thread);
  if (parent >= 0) {
    ensure_thread(parent);
    join_into(clocks_[static_cast<std::size_t>(thread)],
              clocks_[static_cast<std::size_t>(parent)]);
    tick(parent);
  }
  tick(thread);
}

void HbChecker::thread_finish(int thread) {
  ensure_thread(thread);
  finish_clocks_[static_cast<std::size_t>(thread)] =
      clocks_[static_cast<std::size_t>(thread)];
}

void HbChecker::thread_join(int thread, int finished) {
  ensure_thread(thread);
  ensure_thread(finished);
  join_into(clocks_[static_cast<std::size_t>(thread)],
            finish_clocks_[static_cast<std::size_t>(finished)]);
}

HbChecker::SyncState& HbChecker::sync_state(std::vector<SyncState>& table,
                                            const void* obj) {
  for (SyncState& s : table) {
    if (s.obj == obj) return s;
  }
  table.push_back({obj, {}});
  return table.back();
}

HbChecker::AddrState& HbChecker::addr_state(const void* addr) {
  for (AddrState& a : addrs_) {
    if (a.addr == addr) return a;
  }
  addrs_.emplace_back();
  addrs_.back().addr = addr;
  return addrs_.back();
}

void HbChecker::mutex_acquire(int thread, const void* mu) {
  ensure_thread(thread);
  join_into(clocks_[static_cast<std::size_t>(thread)],
            sync_state(mutexes_, mu).clock);
}

void HbChecker::mutex_release(int thread, const void* mu) {
  ensure_thread(thread);
  SyncState& s = sync_state(mutexes_, mu);
  join_into(s.clock, clocks_[static_cast<std::size_t>(thread)]);
  tick(thread);
}

void HbChecker::cv_notify(int thread, const void* cv) {
  ensure_thread(thread);
  SyncState& s = sync_state(cvs_, cv);
  join_into(s.clock, clocks_[static_cast<std::size_t>(thread)]);
  tick(thread);
}

void HbChecker::cv_wake(int thread, const void* cv) {
  ensure_thread(thread);
  join_into(clocks_[static_cast<std::size_t>(thread)],
            sync_state(cvs_, cv).clock);
}

void HbChecker::record_race(const std::string& first, int first_thread,
                            const char* second, int second_thread, bool ww) {
  std::string key = first;
  key += '|';
  key += second;
  key += ww ? "|ww" : "|wr";
  if (std::find(race_keys_.begin(), race_keys_.end(), key) !=
      race_keys_.end()) {
    return;
  }
  race_keys_.push_back(std::move(key));
  HbRace r;
  r.first_site = first;
  r.second_site = second;
  r.first_thread = first_thread;
  r.second_thread = second_thread;
  r.write_write = ww;
  races_.push_back(std::move(r));
}

void HbChecker::check_write(AddrState& a, int thread, const char* site) {
  const Clock& my = clocks_[static_cast<std::size_t>(thread)];
  // Write/write against the last write.
  if (a.write_thread >= 0 && a.write_thread != thread &&
      !ordered(a.write_thread, a.write_epoch, my)) {
    a.raced = true;
    record_race(a.write_site, a.write_thread, site, thread, true);
  }
  // Write against every unordered read.
  for (std::size_t t = 0; t < a.read_epochs.size(); ++t) {
    if (static_cast<int>(t) == thread || a.read_epochs[t] == 0) continue;
    if (!ordered(static_cast<int>(t), a.read_epochs[t], my)) {
      a.raced = true;
      record_race(a.read_sites[t], static_cast<int>(t), site, thread, false);
    }
  }
  a.write_thread = thread;
  a.write_epoch = my[static_cast<std::size_t>(thread)];
  a.write_site = site;
  // A new write supersedes the read set (FastTrack write step).
  std::fill(a.read_epochs.begin(), a.read_epochs.end(), 0);
}

void HbChecker::check_read(AddrState& a, int thread, const char* site) {
  const Clock& my = clocks_[static_cast<std::size_t>(thread)];
  if (a.write_thread >= 0 && a.write_thread != thread &&
      !ordered(a.write_thread, a.write_epoch, my)) {
    a.raced = true;
    record_race(a.write_site, a.write_thread, site, thread, false);
  }
  const std::size_t t = static_cast<std::size_t>(thread);
  if (a.read_epochs.size() <= t) {
    a.read_epochs.resize(t + 1, 0);
    a.read_sites.resize(t + 1);
  }
  a.read_epochs[t] = my[t];
  a.read_sites[t] = site;
}

void HbChecker::atomic_access(int thread, const void* addr, Access access,
                              Order order, const char* site) {
  ensure_thread(thread);
  AddrState& a = addr_state(addr);
  const bool acquires = order == Order::kAcquire || order == Order::kAcqRel;
  const bool releases = order == Order::kRelease || order == Order::kAcqRel;
  // Synchronization first: an acquire load that reads a release store is
  // ordered *by* that store, so the edge must land before the check.
  if (acquires && (access == Access::kLoad || access == Access::kRmw)) {
    join_into(clocks_[static_cast<std::size_t>(thread)], a.release_clock);
  }
  if (access == Access::kLoad) {
    check_read(a, thread, site);
  } else {
    check_write(a, thread, site);
  }
  if (releases && (access == Access::kStore || access == Access::kRmw)) {
    Clock& my = clocks_[static_cast<std::size_t>(thread)];
    if (access == Access::kStore) {
      a.release_clock = my;  // store: replace the published clock
    } else {
      join_into(a.release_clock, my);  // RMW: extend the release sequence
    }
    tick(thread);
  }
}

void HbChecker::plain_access(int thread, const void* addr, bool is_write,
                             const char* site) {
  ensure_thread(thread);
  AddrState& a = addr_state(addr);
  if (is_write) {
    check_write(a, thread, site);
  } else {
    check_read(a, thread, site);
  }
}

bool HbChecker::ordered_so_far(const void* addr) const {
  for (const AddrState& a : addrs_) {
    if (a.addr == addr) return !a.raced;
  }
  return true;
}

void HbChecker::clear() {
  clocks_.clear();
  finish_clocks_.clear();
  addrs_.clear();
  mutexes_.clear();
  cvs_.clear();
  races_.clear();
  race_keys_.clear();
}

}  // namespace strt::race
