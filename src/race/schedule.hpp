// strt::race -- the deterministic interleaving explorer.
//
// An Explorer runs a test body many times, each time under a different
// thread interleaving, with every context switch decided by the
// explorer rather than the OS.  Threads park at the STRT_RACE_* yield
// points (race/hook.hpp) and at strt::Mutex / strt::CondVar operations;
// exactly one registered thread runs at a time, so an execution is a
// pure function of the decision sequence and can be replayed, minimized,
// and printed as a witness when a property fails.
//
// Scheduling model (CHESS-style iterative context bounding):
//
//   * CHOICE points: hook sites matching ExploreOptions::choice_sites
//     (prefix match; empty = every hook).  At a choice point the
//     explorer either continues the running thread (free) or preempts
//     to another ready thread (consumes one unit of the preemption
//     budget).  Exhaustive mode runs a DFS over every decision sequence
//     with at most max_preemptions preemptions; random mode samples
//     decision sequences from a seeded RNG.
//   * FORCED switches: when the running thread blocks (virtual mutex
//     busy, condvar wait, join, spawn await) or finishes, the lowest-id
//     ready thread runs next.  Forced switches are deterministic, cost
//     no budget, and are not branched on -- the bound trades those
//     schedules away for a state space that a test can exhaust (see
//     DESIGN.md "Concurrency correctness" for what the bound does and
//     does not guarantee).
//   * Spin loops: STRT_RACE_HINT_YIELD (the std::this_thread::yield
//     sites) forces a free round-robin switch, so shutdown spins cannot
//     monopolize a schedule.  max_steps aborts a runaway execution.
//
// Mutexes and condvars are arbitrated *virtually*: the explorer tracks
// ownership and waiter sets itself and only lets a thread issue the
// real lock when the virtual owner has really released, so a parked
// thread can safely hold real locks without wedging the process.
//
// Every execution also feeds the vector-clock happens-before checker
// (race/vector_clock.hpp); unordered conflicting access pairs accumulate
// across schedules into races().
//
// Usage contract for the body (enforced by the harness where possible):
//   * spawn a thread, then immediately await it (STRT_RACE_AWAIT_THREAD
//     / Explorer-side race::spawn_await) with no hook in between;
//   * announce joins (race::join or STRT_RACE_JOIN) so the explorer
//     knows the joiner is waiting on a thread, not wedged;
//   * never block on anything the explorer cannot see (futures: poll
//     with wait_for(0) after the owning thread is known to be done);
//   * create and destroy every thread inside the body -- an execution
//     ends only when all registered threads finished.
//
// Only built with real hooks when STRT_RACE=1; the class itself exists
// in every build so tests can skip gracefully.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "race/hook.hpp"
#include "race/vector_clock.hpp"

namespace strt::race {

struct ExploreOptions {
  /// Preemption budget per schedule (voluntary switches at choice
  /// points); 2 reaches every bug class two racing fix-windows deep.
  int max_preemptions = 2;
  /// Hook-site prefixes that branch the DFS; empty = every site.
  std::vector<std::string> choice_sites;
  /// Abort one execution after this many scheduling events (livelock
  /// backstop; an abort fails the exploration loudly).
  std::size_t max_steps = 50'000;
  /// Stop exploring after this many schedules even if the DFS frontier
  /// is not exhausted (reported via exhausted()).
  std::size_t max_schedules = 500'000;
  /// > 0: run this many seeded random schedules instead of the DFS.
  std::size_t random_schedules = 0;
  std::uint64_t seed = 0x5eed;
  /// Feed the happens-before checker (small per-event cost).
  bool track_hb = true;
};

/// A failed property plus the schedule that produced it.
struct Violation {
  std::string message;
  /// Human-readable schedule trace: one "thread @ site [decision]" line
  /// per scheduling event of the violating execution.
  std::string witness;
  std::size_t schedule_index = 0;
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions opts);
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Runs `body` once per schedule until the decision space is
  /// exhausted, a violation is recorded, or a cap is hit.  Returns the
  /// number of schedules executed.  Re-entrant per process: only one
  /// Explorer may be exploring at a time.
  std::size_t explore(const std::function<void()>& body);

  /// Records a property violation from inside the body; the current
  /// schedule becomes the witness and exploration stops after this
  /// execution completes.
  void violation(std::string message);

  [[nodiscard]] const std::optional<Violation>& found() const {
    return violation_;
  }
  [[nodiscard]] std::size_t schedules_run() const { return schedules_run_; }
  /// True when the DFS ran out of undominated decision sequences (the
  /// bounded space is fully covered); false when a cap or violation
  /// stopped it early.
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  /// Unordered conflicting access pairs across all executions.
  [[nodiscard]] const std::vector<HbRace>& races() const;
  /// Schedule trace of the most recent execution.
  [[nodiscard]] std::string last_witness() const;

 private:
  friend struct ExplorerRuntime;
  struct Impl;
  Impl* impl_;
  ExploreOptions opts_;
  std::optional<Violation> violation_;
  std::size_t schedules_run_ = 0;
  bool exhausted_ = false;
};

#if STRT_RACE

/// Arms / disarms a named reverted-logic fault (see STRT_RACE_FAULT
/// sites in svc/service.cpp).  Faults are global and sticky; tests pair
/// set_fault(name, true) with a scope guard.
void set_fault(const char* name, bool on);

/// Explorer-aware join: announces the join to the active schedule, then
/// joins.  Safe (plain join) when no schedule is active.
void join(std::thread& t);

/// Test-side equivalents of STRT_RACE_THREAD / STRT_RACE_AWAIT_THREAD
/// for threads the body spawns itself.
void adopt_thread(const char* prefix, std::size_t index);
void spawn_await(const char* prefix, std::size_t index);

/// True when an explorer is active AND controls the calling thread
/// (i.e. the thread registered with the current execution).  Hooked
/// blocking paths fall back to native waiting when this is false.
[[nodiscard]] bool self_scheduled() noexcept;

// Scheduler entry points called from base/mutex.hpp (virtual mutex and
// condvar arbitration).  Not for direct use.
void sched_mutex_lock(const void* mu);
[[nodiscard]] bool sched_mutex_try_lock(const void* mu);
void sched_mutex_unlock(const void* mu);
void sched_cv_enqueue(const void* cv);
void sched_cv_block(const void* cv);
void sched_cv_notify(const void* cv, bool all);

#endif  // STRT_RACE

}  // namespace strt::race
