#include "race/schedule.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace strt::race {

#if STRT_RACE

namespace {
/// Process-wide "an explorer controls this process" flag; the macro
/// hot-path gate.  Writes happen on the exploring (main) thread between
/// executions, when every other registered thread has finished.
std::atomic<bool> g_active{false};

/// Armed reverted-logic faults (test-only; global and sticky).
std::mutex& fault_mu() {
  static std::mutex m;
  return m;
}
std::vector<std::pair<std::string, bool>>& fault_table() {
  static std::vector<std::pair<std::string, bool>> t;
  return t;
}
}  // namespace

bool schedule_active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

bool fault_enabled(const char* name) noexcept {
  const std::lock_guard<std::mutex> lock(fault_mu());
  for (const auto& [key, on] : fault_table()) {
    if (key == name) return on;
  }
  return false;
}

void set_fault(const char* name, bool on) {
  const std::lock_guard<std::mutex> lock(fault_mu());
  for (auto& [key, val] : fault_table()) {
    if (key == name) {
      val = on;
      return;
    }
  }
  fault_table().emplace_back(name, on);
}

/// The explorer runtime.  One global mutex (`mu`) guards every piece of
/// scheduler state; threads park on their own condition variable under
/// it.  With exactly one thread running between scheduling events there
/// is no contention to speak of -- the mutex is a correctness device,
/// not a throughput one.
struct Explorer::Impl {
  struct Tstate {
    enum Status : std::uint8_t {
      kRunning,       // the unique thread allowed to execute hooked code
      kReady,         // runnable, parked until scheduled
      kBlockedMutex,  // parked on a virtually-owned strt::Mutex
      kBlockedCv,     // parked in MutexLock::wait
      kBlockedJoin,   // parked on another registered thread's finish
      kFinished,
    };
    int id = -1;
    std::string name;
    std::thread::id os_id;
    Status status = kReady;
    std::condition_variable cv;
    const void* wait_obj = nullptr;
    int join_target = -1;
  };

  struct VMutex {
    const void* mu = nullptr;
    int owner = -1;
    std::vector<int> waiters;  // FIFO handoff on release
  };

  struct VCv {
    const void* cv = nullptr;
    std::vector<int> waiters;  // enqueued, FIFO notify order
    std::vector<int> woken;    // notified between enqueue and block
  };

  struct Decision {
    int chosen = 0;
    int num_options = 1;
  };

  ExploreOptions opts;

  std::mutex mu;
  std::condition_variable any_cv;  // registration + all-finished waits

  // ---- per-execution state (reset by begin_execution) ----
  std::vector<std::unique_ptr<Tstate>> threads;
  std::vector<VMutex> vmutexes;
  std::vector<VCv> vcvs;
  std::size_t tape_pos = 0;
  int preemptions = 0;
  std::size_t steps = 0;
  bool bail = false;
  std::vector<std::string> trace;
  bool trace_truncated = false;
  HbChecker hb;
  std::uint64_t epoch = 0;
  std::size_t schedule_index = 0;
  std::mt19937_64 rng;

  // ---- cross-execution state ----
  std::vector<Decision> tape;  // DFS decision stack
  bool random_mode = false;
  std::string pending_violation;
  std::vector<HbRace> all_races;
  std::vector<std::string> race_keys;
  std::string last_witness_str;

  static constexpr std::size_t kMaxTrace = 4000;

  // ---------------------------------------------------------------
  static const char* status_name(Tstate::Status s) {
    switch (s) {
      case Tstate::kRunning: return "running";
      case Tstate::kReady: return "ready";
      case Tstate::kBlockedMutex: return "blocked-mutex";
      case Tstate::kBlockedCv: return "blocked-cv";
      case Tstate::kBlockedJoin: return "blocked-join";
      case Tstate::kFinished: return "finished";
    }
    return "?";
  }

  void trace_event(std::string line) {
    if (trace.size() >= kMaxTrace) {
      if (!trace_truncated) {
        trace.push_back("  ... (trace truncated)");
        trace_truncated = true;
      }
      return;
    }
    trace.push_back(std::move(line));
  }

  std::string state_dump() const {
    std::string out;
    for (const auto& t : threads) {
      out += "    ";
      out += t->name;
      out += ": ";
      out += status_name(t->status);
      out += "\n";
    }
    return out;
  }

  Tstate* find_by_name(const std::string& name) {
    for (const auto& t : threads) {
      if (t->name == name) return t.get();
    }
    return nullptr;
  }

  Tstate* find_by_os_id(std::thread::id os_id) {
    for (const auto& t : threads) {
      if (t->os_id == os_id) return t.get();
    }
    return nullptr;
  }

  VMutex& vmutex(const void* m) {
    for (VMutex& v : vmutexes) {
      if (v.mu == m) return v;
    }
    vmutexes.push_back({m, -1, {}});
    return vmutexes.back();
  }

  VCv& vcv(const void* c) {
    for (VCv& v : vcvs) {
      if (v.cv == c) return v;
    }
    vcvs.push_back({c, {}, {}});
    return vcvs.back();
  }

  std::vector<int> ready_ids() const {
    std::vector<int> out;
    for (const auto& t : threads) {
      if (t->status == Tstate::kReady) out.push_back(t->id);
    }
    return out;  // threads are id-ordered, so this is sorted
  }

  bool site_matches(const char* site) const {
    if (opts.choice_sites.empty()) return true;
    for (const std::string& prefix : opts.choice_sites) {
      if (std::strncmp(site, prefix.c_str(), prefix.size()) == 0) return true;
    }
    return false;
  }

  /// Aborts the current execution: records the message, wakes every
  /// parked thread, and makes all hooks pass-through so the execution
  /// drains natively (spin waits still terminate because all threads
  /// now run freely).  Call with `mu` held.
  void start_bail_locked(const std::string& msg) {
    if (bail) return;
    bail = true;
    if (pending_violation.empty()) {
      pending_violation = "error[race.schedule] " + msg;
    }
    trace_event("  !! bail: " + msg);
    for (const auto& t : threads) t->cv.notify_all();
    any_cv.notify_all();
  }

  void wake_locked(Tstate& t) {
    t.status = Tstate::kRunning;
    t.cv.notify_all();
  }

  /// Hands the processor to the lowest-id ready thread if nobody is
  /// running; declares deadlock when nothing can ever run again.
  void maybe_schedule_locked() {
    if (bail) return;
    Tstate* lowest_ready = nullptr;
    bool any_running = false;
    bool any_unfinished = false;
    for (const auto& t : threads) {
      if (t->status == Tstate::kRunning) any_running = true;
      if (t->status != Tstate::kFinished) any_unfinished = true;
      if (t->status == Tstate::kReady && lowest_ready == nullptr) {
        lowest_ready = t.get();
      }
    }
    if (any_running) return;
    if (lowest_ready != nullptr) {
      wake_locked(*lowest_ready);
      return;
    }
    if (any_unfinished) {
      start_bail_locked("deadlock: every registered thread is blocked\n" +
                        state_dump());
    }
  }

  void park(std::unique_lock<std::mutex>& lk, Tstate& t) {
    t.cv.wait(lk, [&] { return bail || t.status == Tstate::kRunning; });
  }

  /// Blocks the calling (running) thread with the given reason, picks a
  /// successor, and parks until rescheduled (or bail).
  void block_self_locked(std::unique_lock<std::mutex>& lk, Tstate& me,
                         Tstate::Status why, const void* obj,
                         const char* what) {
    me.status = why;
    me.wait_obj = obj;
    ++steps;
    trace_event("  #" + std::to_string(steps) + " " + me.name +
                ": blocked (" + what + ")");
    maybe_schedule_locked();
    park(lk, me);
    me.wait_obj = nullptr;
  }

  bool step_budget_ok_locked() {
    if (++steps > opts.max_steps) {
      start_bail_locked("step budget exceeded (" +
                        std::to_string(opts.max_steps) +
                        " scheduling events): livelock or runaway spin");
      return false;
    }
    return true;
  }

  /// The choice point: at a matching site the running thread either
  /// continues (free) or preempts to a ready thread (spends budget).
  /// Exhaustive mode consults/extends the DFS decision tape; random
  /// mode draws from the per-execution RNG.
  void choice_point_locked(std::unique_lock<std::mutex>& lk, Tstate& me,
                           const char* site) {
    if (!step_budget_ok_locked()) return;
    if (!site_matches(site)) return;
    const std::vector<int> ready = ready_ids();
    const bool can_preempt =
        preemptions < opts.max_preemptions && !ready.empty();
    const int num_options = 1 + (can_preempt ? static_cast<int>(ready.size()) : 0);
    if (num_options == 1) return;

    int chosen = 0;
    if (random_mode) {
      chosen = static_cast<int>(rng() % static_cast<std::uint64_t>(num_options));
    } else {
      if (tape_pos == tape.size()) tape.push_back({0, num_options});
      // A divergence between recorded and current option count means the
      // body was not deterministic under replay; clamp instead of
      // indexing out of range (the witness will look odd, not crash).
      chosen = std::min(tape[tape_pos].chosen, num_options - 1);
      ++tape_pos;
    }

    if (chosen == 0) {
      trace_event("  #" + std::to_string(steps) + " " + me.name + " @ " +
                  site + " [continue]");
      return;
    }
    Tstate& target = *threads[static_cast<std::size_t>(
        ready[static_cast<std::size_t>(chosen - 1)])];
    ++preemptions;
    trace_event("  #" + std::to_string(steps) + " " + me.name + " @ " + site +
                " [preempt -> " + target.name + "]");
    me.status = Tstate::kReady;
    wake_locked(target);
    park(lk, me);
  }

  /// Odometer-advances the DFS tape to the next unexplored decision
  /// sequence; false when the bounded space is exhausted.
  bool advance_tape() {
    while (!tape.empty()) {
      Decision& d = tape.back();
      if (++d.chosen < d.num_options) return true;
      tape.pop_back();
    }
    return false;
  }

  void record_races_locked() {
    for (const HbRace& r : hb.races()) {
      std::string key = r.first_site + "|" + r.second_site +
                        (r.write_write ? "|ww" : "|wr");
      if (std::find(race_keys.begin(), race_keys.end(), key) !=
          race_keys.end()) {
        continue;
      }
      race_keys.push_back(std::move(key));
      all_races.push_back(r);
    }
  }
};

/// Named (non-anonymous) so it matches the friend declaration in
/// Explorer, which is what lets the file-scope hook functions reach the
/// private Impl type.
struct ExplorerRuntime {
  using Impl = Explorer::Impl;
};

namespace {

using RtImpl = ExplorerRuntime::Impl;

/// The currently exploring runtime; non-null only inside explore().
struct Current {
  static RtImpl*& get() {
    static RtImpl* p = nullptr;
    return p;
  }
};

/// Per-OS-thread registration record.  The destructor is the thread
/// finish detector: it runs when the OS thread exits (after the thread
/// function returned), which is exactly when the explorer must hand the
/// processor onward and wake joiners.
struct TlReg {
  int id = -1;
  std::uint64_t epoch = 0;
  ~TlReg();
};
thread_local TlReg tl_reg;

/// The calling thread's Tstate in the current execution, or nullptr for
/// unregistered threads (whose hooks pass through untouched).
RtImpl::Tstate* self_locked(RtImpl& rt) {
  if (tl_reg.id < 0 || tl_reg.epoch != rt.epoch) return nullptr;
  return rt.threads[static_cast<std::size_t>(tl_reg.id)].get();
}

std::string thread_name(const char* prefix, std::size_t index) {
  return std::string(prefix) + "/" + std::to_string(index);
}

void on_thread_exit(RtImpl& rt, int id, std::uint64_t epoch) {
  std::unique_lock<std::mutex> lk(rt.mu);
  if (epoch != rt.epoch) return;
  RtImpl::Tstate& me = *rt.threads[static_cast<std::size_t>(id)];
  if (me.status == RtImpl::Tstate::kFinished) return;
  rt.hb.thread_finish(id);
  me.status = RtImpl::Tstate::kFinished;
  rt.trace_event("  -- " + me.name + " finished");
  for (const auto& t : rt.threads) {
    if (t->status == RtImpl::Tstate::kBlockedJoin && t->join_target == id) {
      t->status = RtImpl::Tstate::kReady;
      t->join_target = -1;
    }
  }
  rt.any_cv.notify_all();
  rt.maybe_schedule_locked();
}

TlReg::~TlReg() {
  RtImpl* rt = Current::get();
  if (rt == nullptr || id < 0 || !g_active.load(std::memory_order_relaxed)) {
    return;
  }
  on_thread_exit(*rt, id, epoch);
}

}  // namespace

// ------------------------------------------------------------------
// Hook entry points (race/hook.hpp).

bool self_scheduled() noexcept {
  RtImpl* rt = Current::get();
  if (rt == nullptr || !g_active.load(std::memory_order_relaxed)) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(rt->mu);
  return !rt->bail && self_locked(*rt) != nullptr;
}

void hook(const char* site) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return;
  rt->choice_point_locked(lk, *me, site);
}

void hook_access(const char* site, const void* addr, Access access,
                 Order order) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return;
  rt->choice_point_locked(lk, *me, site);
  // Record the access only after any preemption resolved: the actual
  // atomic op executes right after this hook returns, with no other
  // thread scheduled in between.
  if (rt->opts.track_hb && !rt->bail) {
    rt->hb.atomic_access(me->id, addr, access, order, site);
  }
}

void name_thread(const char* prefix, std::size_t index) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  if (tl_reg.id >= 0 && tl_reg.epoch == rt->epoch) return;  // re-announce
  const int id = static_cast<int>(rt->threads.size());
  auto t = std::make_unique<RtImpl::Tstate>();
  t->id = id;
  t->name = thread_name(prefix, index);
  t->os_id = std::this_thread::get_id();
  t->status = RtImpl::Tstate::kReady;
  rt->threads.push_back(std::move(t));
  tl_reg.id = id;
  tl_reg.epoch = rt->epoch;
  rt->trace_event("  ++ " + rt->threads.back()->name + " registered");
  rt->any_cv.notify_all();  // wake the creator's await_thread
  rt->park(lk, *rt->threads[static_cast<std::size_t>(id)]);
}

void await_thread(const char* prefix, std::size_t index) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  const std::string name = thread_name(prefix, index);
  std::unique_lock<std::mutex> lk(rt->mu);
  rt->any_cv.wait(lk, [&] {
    return rt->bail || rt->find_by_name(name) != nullptr;
  });
  if (rt->bail) return;
  RtImpl::Tstate* child = rt->find_by_name(name);
  RtImpl::Tstate* me = self_locked(*rt);
  if (rt->opts.track_hb && child != nullptr) {
    // create happens-before the child's first step
    rt->hb.thread_start(child->id, me != nullptr ? me->id : -1);
  }
}

void hint_yield() {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return;
  if (!rt->step_budget_ok_locked()) return;
  const std::vector<int> ready = rt->ready_ids();
  if (ready.empty()) return;
  // Round-robin: the first ready thread after me in cyclic id order, so
  // mutual spinners alternate instead of livelocking.
  int target_id = ready.front();
  for (const int r : ready) {
    if (r > me->id) {
      target_id = r;
      break;
    }
  }
  RtImpl::Tstate& target =
      *rt->threads[static_cast<std::size_t>(target_id)];
  rt->trace_event("  #" + std::to_string(rt->steps) + " " + me->name +
                  " [yield -> " + target.name + "]");
  me->status = RtImpl::Tstate::kReady;
  rt->wake_locked(target);
  rt->park(lk, *me);
}

void sched_join(std::thread::id tid) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  RtImpl::Tstate* target = rt->find_by_os_id(tid);
  if (me == nullptr || target == nullptr || target == me) return;
  if (target->status != RtImpl::Tstate::kFinished) {
    me->join_target = target->id;
    rt->block_self_locked(lk, *me, RtImpl::Tstate::kBlockedJoin, nullptr,
                          ("join " + target->name).c_str());
    if (rt->bail) return;
  }
  if (rt->opts.track_hb) rt->hb.thread_join(me->id, target->id);
}

void join(std::thread& t) {
  if (schedule_active()) sched_join(t.get_id());
  t.join();
}

void adopt_thread(const char* prefix, std::size_t index) {
  name_thread(prefix, index);
}

void spawn_await(const char* prefix, std::size_t index) {
  await_thread(prefix, index);
}

// ------------------------------------------------------------------
// Virtual mutex / condvar arbitration (called from base/mutex.hpp).

void sched_mutex_lock(const void* m) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return;
  RtImpl::VMutex& v = rt->vmutex(m);
  if (v.owner == -1) {
    v.owner = me->id;
  } else {
    v.waiters.push_back(me->id);
    rt->block_self_locked(lk, *me, RtImpl::Tstate::kBlockedMutex, m, "mutex");
    if (rt->bail) return;
    // sched_mutex_unlock made us the owner before readying us.
  }
  if (rt->opts.track_hb) rt->hb.mutex_acquire(me->id, m);
}

bool sched_mutex_try_lock(const void* m) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return true;  // uncontrolled: let the real try decide
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return true;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return true;
  RtImpl::VMutex& v = rt->vmutex(m);
  if (v.owner != -1) return false;
  v.owner = me->id;
  if (rt->opts.track_hb) rt->hb.mutex_acquire(me->id, m);
  return true;
}

void sched_mutex_unlock(const void* m) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr) return;
  RtImpl::VMutex& v = rt->vmutex(m);
  if (v.owner != me->id) return;  // e.g. registered mid-critical-section
  if (rt->opts.track_hb) rt->hb.mutex_release(me->id, m);
  if (v.waiters.empty()) {
    v.owner = -1;
    return;
  }
  // FIFO handoff: the head waiter becomes owner and turns runnable; it
  // proceeds when the scheduler picks it.
  const int next = v.waiters.front();
  v.waiters.erase(v.waiters.begin());
  v.owner = next;
  RtImpl::Tstate& w = *rt->threads[static_cast<std::size_t>(next)];
  if (w.status == RtImpl::Tstate::kBlockedMutex) {
    w.status = RtImpl::Tstate::kReady;
  }
}

void sched_cv_enqueue(const void* c) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr) return;
  rt->vcv(c).waiters.push_back(me->id);
}

void sched_cv_block(const void* c) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr || me->status != RtImpl::Tstate::kRunning) return;
  RtImpl::VCv& v = rt->vcv(c);
  auto woken_it = std::find(v.woken.begin(), v.woken.end(), me->id);
  if (woken_it != v.woken.end()) {
    // The notify landed between enqueue and block: consume it.
    v.woken.erase(woken_it);
  } else {
    auto wait_it = std::find(v.waiters.begin(), v.waiters.end(), me->id);
    if (wait_it == v.waiters.end()) return;  // never enqueued: spurious
    rt->block_self_locked(lk, *me, RtImpl::Tstate::kBlockedCv, c, "condvar");
    if (rt->bail) return;
  }
  if (rt->opts.track_hb) rt->hb.cv_wake(me->id, c);
}

void sched_cv_notify(const void* c, bool all) {
  RtImpl* rt = Current::get();
  if (rt == nullptr) return;
  std::unique_lock<std::mutex> lk(rt->mu);
  if (rt->bail) return;
  RtImpl::Tstate* me = self_locked(*rt);
  if (me == nullptr) return;
  if (rt->opts.track_hb) rt->hb.cv_notify(me->id, c);
  RtImpl::VCv& v = rt->vcv(c);
  const std::size_t n = all ? v.waiters.size() : std::min<std::size_t>(
                                                     1, v.waiters.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int w = v.waiters.front();
    v.waiters.erase(v.waiters.begin());
    RtImpl::Tstate& t = *rt->threads[static_cast<std::size_t>(w)];
    if (t.status == RtImpl::Tstate::kBlockedCv && t.wait_obj == c) {
      t.status = RtImpl::Tstate::kReady;
    } else {
      v.woken.push_back(w);  // enqueued but not yet parked
    }
  }
}

// ------------------------------------------------------------------
// Explorer driver.

Explorer::Explorer(ExploreOptions opts) : impl_(new Impl), opts_(opts) {
  impl_->opts = opts_;
}

Explorer::~Explorer() {
  if (Current::get() == impl_) Current::get() = nullptr;
  delete impl_;
}

const std::vector<HbRace>& Explorer::races() const {
  return impl_->all_races;
}

std::string Explorer::last_witness() const {
  return impl_->last_witness_str;
}

void Explorer::violation(std::string message) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->pending_violation.empty()) {
    impl_->pending_violation = std::move(message);
  }
}

namespace {

void begin_execution(RtImpl& rt, std::size_t index,
                     const ExploreOptions& opts, bool random_mode) {
  const std::lock_guard<std::mutex> lock(rt.mu);
  ++rt.epoch;
  rt.threads.clear();
  rt.vmutexes.clear();
  rt.vcvs.clear();
  rt.trace.clear();
  rt.trace_truncated = false;
  rt.hb.clear();
  rt.tape_pos = 0;
  rt.preemptions = 0;
  rt.steps = 0;
  rt.bail = false;
  rt.schedule_index = index;
  rt.random_mode = random_mode;
  if (random_mode) rt.rng.seed(opts.seed + index);
  // The exploring thread is thread 0 ("main"), registered directly (no
  // TLS finish hook: it outlives every execution).
  auto t = std::make_unique<RtImpl::Tstate>();
  t->id = 0;
  t->name = "main";
  t->os_id = std::this_thread::get_id();
  t->status = RtImpl::Tstate::kRunning;
  rt.threads.push_back(std::move(t));
  tl_reg.id = 0;
  tl_reg.epoch = rt.epoch;
  if (opts.track_hb) rt.hb.thread_start(0, -1);
}

/// After the body returns on main: wait out stragglers, harvest races
/// and the witness, and drop the active flag.
void end_execution(RtImpl& rt) {
  std::unique_lock<std::mutex> lk(rt.mu);
  const auto others_finished = [&] {
    for (const auto& t : rt.threads) {
      if (t->id != 0 && t->status != RtImpl::Tstate::kFinished) return false;
    }
    return true;
  };
  if (!rt.any_cv.wait_for(lk, std::chrono::seconds(10), others_finished)) {
    rt.start_bail_locked("threads outlive the body (join them before it "
                         "returns)\n" + rt.state_dump());
    rt.any_cv.wait_for(lk, std::chrono::seconds(10), others_finished);
  }
  g_active.store(false, std::memory_order_relaxed);
  rt.record_races_locked();
  std::string witness;
  for (const std::string& line : rt.trace) {
    witness += line;
    witness += "\n";
  }
  rt.last_witness_str = std::move(witness);
  tl_reg.id = -1;
}

}  // namespace

std::size_t Explorer::explore(const std::function<void()>& body) {
  if (Current::get() != nullptr) {
    violation_ = Violation{
        "error[race.schedule] nested explore() is not supported", "", 0};
    return 0;
  }
  Current::get() = impl_;
  violation_.reset();
  schedules_run_ = 0;
  exhausted_ = false;
  impl_->tape.clear();
  impl_->pending_violation.clear();
  impl_->all_races.clear();
  impl_->race_keys.clear();
  const bool random_mode = opts_.random_schedules > 0;

  for (;;) {
    begin_execution(*impl_, schedules_run_, opts_, random_mode);
    g_active.store(true, std::memory_order_relaxed);
    body();
    end_execution(*impl_);
    ++schedules_run_;
    if (!impl_->pending_violation.empty()) {
      violation_ = Violation{impl_->pending_violation,
                             impl_->last_witness_str, schedules_run_ - 1};
      break;
    }
    if (random_mode) {
      if (schedules_run_ >= opts_.random_schedules) break;
    } else if (!impl_->advance_tape()) {
      exhausted_ = true;
      break;
    }
    if (schedules_run_ >= opts_.max_schedules) break;
  }

  Current::get() = nullptr;
  return schedules_run_;
}

#else  // !STRT_RACE

// Hookless builds keep the Explorer type so tests compile and skip at
// runtime; explore() runs the body once, natively.
struct Explorer::Impl {
  std::vector<HbRace> all_races;
  std::string last_witness_str;
  std::string pending_violation;
};

Explorer::Explorer(ExploreOptions opts) : impl_(new Impl), opts_(opts) {}

Explorer::~Explorer() { delete impl_; }

const std::vector<HbRace>& Explorer::races() const {
  return impl_->all_races;
}

std::string Explorer::last_witness() const {
  return impl_->last_witness_str;
}

void Explorer::violation(std::string message) {
  if (impl_->pending_violation.empty()) {
    impl_->pending_violation = std::move(message);
  }
}

std::size_t Explorer::explore(const std::function<void()>& body) {
  violation_.reset();
  impl_->pending_violation.clear();
  body();
  schedules_run_ = 1;
  exhausted_ = true;
  if (!impl_->pending_violation.empty()) {
    violation_ = Violation{impl_->pending_violation, "", 0};
  }
  return schedules_run_;
}

#endif  // STRT_RACE

}  // namespace strt::race
