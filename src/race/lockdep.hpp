// strt::race -- lockdep: runtime lock-order analysis.
//
// Every *blocking* acquisition of an instrumented mutex records, for
// each lock already held by the acquiring thread, a directed edge
//
//     (held lock instance)  ->  (acquired lock instance)
//
// in one global lock-order graph.  Nodes are lock *instances* (a LockId
// registered at Mutex construction), so the graph is exact: a cycle
// among instances means two threads interleaving those acquisitions can
// deadlock, with no class-collapse false positives (a struct holding
// several mutexes, nested, is fine as long as the instance order is
// consistent).  Acquisition *sites* (file:line of the MutexLock /
// StripeLock / Mutex::lock call, captured via std::source_location) are
// recorded on each edge as labels, so a witness chain reads as source
// lines even though the keying is by instance.  Consequences:
//
//   * Sequential (non-nested) acquisitions add no edges, so fan-out over
//     the 16 workspace stripes from one call site is silent.
//   * Nested acquisition of two *different* instances from the *same*
//     site is reported as a same-site cycle immediately: the mirrored
//     instance order is reachable from that one line, and the library's
//     locking discipline forbids same-family nesting (no ranked
//     same-class nesting exists in this tree).
//   * Relocking the same instance (a self-edge) is reported at once:
//     std::mutex relock is undefined behavior.
//   * try_lock acquisitions are exempt from edge recording: a try_lock
//     cannot block, so it cannot close a deadlock cycle.  It still
//     enters the held set, so blocking locks taken *under* it record
//     edges from its instance.
//
// Cycle detection is incremental: only a genuinely new edge triggers a
// DFS, and the full witness chain (every edge's site name along the
// cycle, in acquisition order) is captured into a LockCycle diagnostic
// the moment the inversion *could* deadlock -- no unlucky schedule
// required, which is exactly what one-interleaving-per-run tools (TSan)
// cannot do.
//
// Gating: the hooks in base/mutex.hpp compile to nothing unless the
// build defines STRT_LOCKDEP=1 (cmake -DSTRT_LOCKDEP=ON).  In such a
// build the environment variable STRT_LOCKDEP=0 disables recording at
// runtime (resolved once); lockdep_set_enabled() overrides either way.
// The functions below are always compiled into strt_race, so unit tests
// drive the analyzer directly in every build flavor.
//
// The analyzer synchronizes with a private raw std::mutex and never
// touches strt::Mutex, strt::obs, or any instrumented code (no
// recursion); per-thread held stacks are thread-local.  Report
// consumers bridge cycles into obs counters via lockdep_set_cycle_hook.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>
#include <vector>

namespace strt::race {

using SiteId = std::uint32_t;

/// Identity of one lock instance for the graph's lifetime.  Ids are
/// never reused, so an address recycled by the allocator cannot inherit
/// a dead lock's edges.
using LockId = std::uint32_t;

/// One detected lock-order inversion: the witness chain of acquisition
/// sites along the cycle's edges, chain.front() == chain.back() when the
/// closed instances are acquired from consistent sites.
struct LockCycle {
  std::vector<SiteId> chain;
  /// Site names along the chain, in order ("file:line" or the explicit
  /// label of a test acquisition).
  std::vector<std::string> chain_names;
  /// Human-readable one-paragraph report, Diagnostic-style:
  /// "error[race.lock-cycle] <siteA>: acquired while holding <siteB>;
  ///  ... closing the cycle".
  std::string message;
};

struct LockdepStats {
  std::uint64_t acquisitions = 0;  // recorded blocking + try acquisitions
  std::uint64_t sites = 0;         // interned acquisition sites
  std::uint64_t edges = 0;         // distinct held->acquired edges
  std::uint64_t cycles = 0;        // detected inversions (deduplicated)
};

/// Interns an acquisition site.  `label` overrides the file:line name in
/// reports (used by tests and named subsystem locks); pass nullptr for
/// the default.  Cheap on repeat calls (thread-local cache).
[[nodiscard]] SiteId lockdep_site(const std::source_location& loc,
                                  const char* label = nullptr);

/// Registers a lock instance; call once per Mutex at construction.
[[nodiscard]] LockId lockdep_register();

/// Retires a lock instance (Mutex destruction): its outgoing edges are
/// dropped so a future allocation at the same address starts clean.
void lockdep_forget(LockId id);

/// Records a blocking acquisition of lock `id` at `site`: adds a
/// held->acquired edge per currently held lock, runs incremental cycle
/// detection, and pushes (id, site) onto the calling thread's held
/// stack.  Call BEFORE the real lock so a genuine deadlock still gets
/// its report.
void lockdep_acquire(LockId id, SiteId site);

/// Records a *successful* try_lock acquisition: enters the held set
/// without recording any edge (the try_lock exemption).
void lockdep_try_acquire(LockId id, SiteId site);

/// Pops the most recent held entry for `id` from the calling thread's
/// held stack (no-op if absent -- e.g. recording was switched on while
/// the lock was already held).
void lockdep_release(LockId id);

/// True when the hooks should record: compiled in (STRT_LOCKDEP=1) and
/// not disabled by STRT_LOCKDEP=0 in the environment (resolved once) or
/// lockdep_set_enabled(false).
[[nodiscard]] bool lockdep_enabled() noexcept;

/// Runtime override of the environment gate (tests, embedding tools).
void lockdep_set_enabled(bool on) noexcept;

[[nodiscard]] LockdepStats lockdep_stats();

/// Every inversion detected so far (deduplicated by closing edge).
[[nodiscard]] std::vector<LockCycle> lockdep_cycles();

/// Invoked synchronously on each new cycle (after it is recorded);
/// pass nullptr to clear.  Used to bridge into obs counters without
/// making strt_race depend on strt_obs.
void lockdep_set_cycle_hook(void (*hook)(const LockCycle&));

/// Human-readable summary: stats plus every cycle's message.
[[nodiscard]] std::string lockdep_report();

/// Clears the graph, cycles, and the calling thread's held stack
/// (other threads' stacks are untouched -- reset between single-threaded
/// test sections only).  Registered LockIds stay valid.
void lockdep_reset();

}  // namespace strt::race
