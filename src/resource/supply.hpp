// Resource / supply models.
//
// A Supply describes the service guarantee a processing resource gives to
// the workload under analysis: its worst-case supply bound function
// sbf(t) (least service delivered in any window of t ticks) and its exact
// long-run rate.  Four standard models are provided; all deliver
// unit-rate service while active except `dedicated`, which may be an
// integer multiple.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "base/rational.hpp"
#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// Processor of integer speed `rate` work units per tick, always on.
struct DedicatedSupply {
  std::int64_t rate{1};
};

/// Bounded-delay partition: after at most `delay` ticks of startup, at
/// least `rate` work per tick on average:  sbf(t) = floor(rate*(t-delay))+.
struct BoundedDelaySupply {
  Rational rate{1};
  Time delay{0};
};

/// Periodic resource (Shin & Lee): `budget` ticks of unit-rate service
/// somewhere within every `period` ticks.
struct PeriodicSupply {
  Time budget{1};
  Time period{1};
};

/// TDMA slice: a fixed slot of `slot` ticks out of every `cycle`.
struct TdmaSupply {
  Time slot{1};
  Time cycle{1};
};

/// Arbitrary static cyclic schedule: available during the `true` ticks,
/// repeated with period active.size().  Generalizes TDMA to multiple
/// slots per cycle.
struct ScheduleSupply {
  std::vector<bool> active;
};

class Supply {
 public:
  using Model = std::variant<DedicatedSupply, BoundedDelaySupply,
                             PeriodicSupply, TdmaSupply, ScheduleSupply>;

  static Supply dedicated(std::int64_t rate);
  static Supply bounded_delay(Rational rate, Time delay);
  static Supply periodic(Time budget, Time period);
  static Supply tdma(Time slot, Time cycle);
  static Supply schedule(std::vector<bool> active);

  /// Worst-case supply bound function, materialized on [0, horizon] with
  /// the exact periodic tail attached.
  [[nodiscard]] Staircase sbf(Time horizon) const;

  /// Exact long-run service rate (work per tick).
  [[nodiscard]] Rational long_run_rate() const;

  /// Smallest horizon sbf() accepts for this model (one period, etc.).
  [[nodiscard]] Time min_horizon() const;

  [[nodiscard]] const Model& model() const { return model_; }
  [[nodiscard]] std::string describe() const;

 private:
  explicit Supply(Model m) : model_(std::move(m)) {}
  Model model_;
};

}  // namespace strt
