#include "resource/supply.hpp"

#include <sstream>

#include "base/assert.hpp"
#include "curves/builders.hpp"

namespace strt {

Supply Supply::dedicated(std::int64_t rate) {
  STRT_REQUIRE(rate >= 1, "dedicated rate must be >= 1");
  return Supply(DedicatedSupply{rate});
}

Supply Supply::bounded_delay(Rational rate, Time delay) {
  STRT_REQUIRE(rate > Rational(0), "bounded-delay rate must be positive");
  STRT_REQUIRE(delay >= Time(0), "bounded-delay latency must be >= 0");
  return Supply(BoundedDelaySupply{rate, delay});
}

Supply Supply::periodic(Time budget, Time period) {
  STRT_REQUIRE(budget >= Time(1), "budget must be >= 1");
  STRT_REQUIRE(budget <= period, "budget must fit in the period");
  return Supply(PeriodicSupply{budget, period});
}

Supply Supply::tdma(Time slot, Time cycle) {
  STRT_REQUIRE(slot >= Time(1), "slot must be >= 1");
  STRT_REQUIRE(slot <= cycle, "slot must fit in the cycle");
  return Supply(TdmaSupply{slot, cycle});
}

Supply Supply::schedule(std::vector<bool> active) {
  STRT_REQUIRE(!active.empty(), "schedule must have at least one tick");
  bool any = false;
  for (const bool a : active) any = any || a;
  STRT_REQUIRE(any, "schedule must have an active tick");
  return Supply(ScheduleSupply{std::move(active)});
}

Staircase Supply::sbf(Time horizon) const {
  STRT_REQUIRE(horizon >= min_horizon(),
               "horizon below the model's minimum (see min_horizon())");
  return std::visit(
      [&](const auto& m) -> Staircase {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          return curve::dedicated(m.rate, horizon);
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          return curve::rate_latency(m.rate, m.delay, horizon);
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          return curve::periodic_resource(m.budget, m.period, horizon);
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          return curve::tdma_supply(m.slot, m.cycle, horizon);
        } else {
          return curve::schedule_supply(m.active, horizon);
        }
      },
      model_);
}

Rational Supply::long_run_rate() const {
  return std::visit(
      [](const auto& m) -> Rational {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          return Rational(m.rate);
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          return m.rate;
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          return Rational(m.budget.count(), m.period.count());
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          return Rational(m.slot.count(), m.cycle.count());
        } else {
          std::int64_t on = 0;
          for (const bool a : m.active) on += a ? 1 : 0;
          return Rational(on, static_cast<std::int64_t>(m.active.size()));
        }
      },
      model_);
}

Time Supply::min_horizon() const {
  return std::visit(
      [](const auto& m) -> Time {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          return Time(1);
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          return m.delay + Time(m.rate.den());
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          return m.period + m.period;
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          return m.cycle;
        } else {
          return Time(static_cast<std::int64_t>(m.active.size()));
        }
      },
      model_);
}

std::string Supply::describe() const {
  std::ostringstream os;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DedicatedSupply>) {
          os << "dedicated(rate=" << m.rate << ")";
        } else if constexpr (std::is_same_v<T, BoundedDelaySupply>) {
          os << "bounded_delay(rate=" << m.rate << ", delay=" << m.delay
             << ")";
        } else if constexpr (std::is_same_v<T, PeriodicSupply>) {
          os << "periodic(budget=" << m.budget << ", period=" << m.period
             << ")";
        } else if constexpr (std::is_same_v<T, TdmaSupply>) {
          os << "tdma(slot=" << m.slot << ", cycle=" << m.cycle << ")";
        } else {
          os << "schedule(mask=";
          for (const bool a : m.active) os << (a ? '1' : '0');
          os << ")";
        }
      },
      model_);
  return os.str();
}

}  // namespace strt
