// Discrete-time staircase curves.
//
// A Staircase is a non-decreasing function  f : {0, 1, ...} -> Work,
// described exactly on a finite horizon [0, H] by its breakpoints and
// optionally extended beyond H by a periodic tail
//
//     f(t + p) = f(t) + w        for all t in (H - p, H],
//
// which is exactly the pseudo-periodic long-run shape of request-bound
// and supply-bound functions.  All analyses in this library are
// *finitary*: they evaluate curves inside a busy-window horizon computed
// from exact long-run rates, so the finite representation is lossless.
//
// Curves of this shape model:
//   * upper arrival / request-bound functions  rbf(t)  (work released in
//     any window of length t, window semantics are half-open [x, x+t)),
//   * lower supply-bound functions  sbf(t)  (service guaranteed in any
//     window of length t),
//   * demand-bound functions dbf(t).
//
// Breakpoints live in a SoA SegmentStore (curves/segment_store.hpp);
// steps() exposes them through the AoS-compatible StepView.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <utility>
#include <vector>

#include "base/assert.hpp"
#include "base/rational.hpp"
#include "base/types.hpp"
#include "curves/segment_store.hpp"

namespace strt {

/// Periodic long-run extension of a staircase beyond its horizon.
struct Tail {
  Time period{1};
  Work increment{0};

  friend bool operator==(const Tail&, const Tail&) = default;
};

class Staircase {
 public:
  /// The zero curve on [0, horizon].
  explicit Staircase(Time horizon);

  /// Exact curve from sample points `(t, v)`: the result is the smallest
  /// non-decreasing staircase with f(t) >= v for every point (i.e. points
  /// are combined with running max).  Points may be unsorted.  A point at
  /// t = 0 is optional; f(0) defaults to 0.
  static Staircase from_points(std::vector<Step> points, Time horizon);

  /// Exact curve from an already-canonical segment store (strictly
  /// increasing times starting at t = 0, strictly increasing values) --
  /// the kernels' direct-construction path that skips from_points'
  /// sort-and-fold.  Canonical form is still validated by the invariant
  /// check.
  static Staircase from_segments(SegmentStore segments, Time horizon,
                                 std::optional<Tail> tail = std::nullopt);

  /// Attach / replace the periodic tail.  Requires `period >= 1`,
  /// `period <= horizon`, `increment >= 0`, and that the extension stays
  /// non-decreasing across the horizon boundary.
  [[nodiscard]] Staircase with_tail(Tail tail) const;
  [[nodiscard]] Staircase without_tail() const;

  [[nodiscard]] Time horizon() const { return horizon_; }
  [[nodiscard]] const std::optional<Tail>& tail() const { return tail_; }
  [[nodiscard]] StepView steps() const { return StepView(store_); }

  /// Direct SoA access for linear-scan kernels: parallel breakpoint
  /// time/value arrays (same index space as steps()).
  [[nodiscard]] std::span<const Time> times() const { return store_.times(); }
  [[nodiscard]] std::span<const Work> values() const {
    return store_.values();
  }

  /// f(t).  Valid for t in [0, horizon], or any t >= 0 if a tail is
  /// attached.  Throws std::invalid_argument outside the known domain.
  [[nodiscard]] Work value(Time t) const;

  /// Largest value on the representable domain prefix [0, horizon].
  [[nodiscard]] Work value_at_horizon() const {
    STRT_DCHECK(!store_.empty(), "staircase has no steps (malformed curve)");
    return store_.back_value();
  }

  /// Pseudo-inverse: the smallest t >= 0 with f(t) >= w.
  /// Returns Time::unbounded() if no such t exists *provably* (tail with
  /// zero increment, or value never reached on a tail-less curve whose
  /// horizon value is below w -- the latter throws instead, because the
  /// curve may simply be too short; extend it first).
  [[nodiscard]] Time inverse(Work w) const;

  /// Long-run growth rate of the tail (increment / period); nullopt when
  /// the curve has no tail.
  [[nodiscard]] std::optional<Rational> long_run_rate() const;

  /// Materialize the curve on the larger horizon `h` (requires a tail if
  /// h > horizon()).  The tail is preserved.
  [[nodiscard]] Staircase extended(Time h) const;

  /// Restrict to a smaller horizon (drops the tail).
  [[nodiscard]] Staircase truncated(Time h) const;

  /// f(t - d) for t >= d, 0 before (right time-shift, e.g. adding
  /// latency to a supply).  Horizon grows by d; the tail is preserved.
  [[nodiscard]] Staircase shifted_right(Time d) const;

  /// f(t) + c everywhere (including t = 0).  Tail preserved.
  [[nodiscard]] Staircase plus_constant(Work c) const;

  /// k * f(t).  Requires k >= 0.  Tail increment is scaled too.
  [[nodiscard]] Staircase scaled(std::int64_t k) const;

  /// Number of stored breakpoints (diagnostics / complexity reporting).
  [[nodiscard]] std::size_t breakpoint_count() const { return store_.size(); }

  /// Approximate heap bytes of the SoA segment store (cache accounting).
  [[nodiscard]] std::uint64_t store_bytes() const {
    return store_.heap_bytes();
  }

  /// True if f(0) == 0 (required of arrival and supply curves).
  [[nodiscard]] bool starts_at_zero() const {
    return store_.value(0) == Work::zero();
  }

  /// Exhaustive subadditivity check on the horizon:
  /// f(s + t) <= f(s) + f(t) for all breakpoint combinations.
  /// O(n^2) -- intended for tests and small curves.
  [[nodiscard]] bool is_subadditive() const;

  friend bool operator==(const Staircase&, const Staircase&) = default;

 private:
  Staircase(SegmentStore store, Time horizon, std::optional<Tail> tail);

  /// Value lookup restricted to [0, horizon].
  [[nodiscard]] Work value_in_range(Time t) const;

  void check_invariants() const;

  SegmentStore store_;  // canonical; store_.time(0) == 0
  Time horizon_{0};
  std::optional<Tail> tail_;
};

std::ostream& operator<<(std::ostream& os, const Staircase& f);

}  // namespace strt
