#include "curves/minplus.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

// (De)convolution enumerates one constant piece per breakpoint pair; fail
// loudly instead of exhausting memory on absurdly fine-grained operands.
constexpr std::size_t kMaxPieces = 30'000'000;

void check_piece_budget(std::size_t nf, std::size_t ng) {
  STRT_LIMIT(nf <= kMaxPieces / std::max<std::size_t>(ng, 1),
             "minplus (de)convolution: operands have too many breakpoints; "
             "coarsen the curves or shrink the horizon");
}

/// Merged, deduplicated breakpoint times of two curves, restricted to
/// [0, upto].
std::vector<Time> merged_times(const Staircase& f, const Staircase& g,
                               Time upto) {
  std::vector<Time> ts;
  ts.reserve(f.steps().size() + g.steps().size());
  for (const Step& s : f.steps())
    if (s.time <= upto) ts.push_back(s.time);
  for (const Step& s : g.steps())
    if (s.time <= upto) ts.push_back(s.time);
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  return ts;
}

/// Build a canonical staircase from (time, value) samples that are sorted
/// by time and non-decreasing in value.
Staircase from_monotone_samples(const std::vector<Step>& samples,
                                Time horizon) {
  return Staircase::from_points(samples, horizon);
}

template <class Combine>
Staircase pointwise_op(const Staircase& f, const Staircase& g, Combine&& op) {
  static obs::Counter& c_calls = obs::counter("minplus.pointwise.calls");
  c_calls.add(1);
  const Time h = min(f.horizon(), g.horizon());
  std::vector<Step> samples;
  for (Time t : merged_times(f, g, h)) {
    samples.push_back(Step{t, op(f.value(t), g.value(t))});
  }
  return from_monotone_samples(samples, h);
}

/// A constant-valued piece of a two-operand envelope, covering the
/// inclusive time range [begin, end].
struct Piece {
  Time begin;
  Time end;
  Work value;
};

/// Lower (kMin) or upper (!kMin) envelope of constant pieces, evaluated
/// as a staircase on [0, horizon].  Piece ranges are inclusive and may
/// start before 0 (clamped).  The envelope value can change both when a
/// piece starts and just after one expires, so both event kinds are
/// sampled.
template <bool kMin>
Staircase envelope(std::vector<Piece> pieces, Time horizon) {
  // Clamp starts, drop pieces entirely outside [0, horizon].
  std::erase_if(pieces, [&](const Piece& p) {
    return p.end < Time(0) || p.begin > horizon;
  });
  for (Piece& p : pieces) p.begin = max(p.begin, Time(0));
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.begin < b.begin; });

  std::vector<Time> events;
  events.reserve(2 * pieces.size());
  for (const Piece& p : pieces) {
    events.push_back(p.begin);
    if (p.end + Time(1) <= horizon) events.push_back(p.end + Time(1));
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  struct HeapItem {
    Work value;
    Time end;
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    if constexpr (kMin) {
      return a.value > b.value;  // min-heap by value
    } else {
      return a.value < b.value;  // max-heap by value
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);

  std::vector<Step> samples;
  std::size_t i = 0;
  for (Time t : events) {
    while (i < pieces.size() && pieces[i].begin <= t) {
      if (pieces[i].end >= t) {
        heap.push(HeapItem{pieces[i].value, pieces[i].end});
      }
      ++i;
    }
    while (!heap.empty() && heap.top().end < t) heap.pop();
    STRT_ASSERT(!heap.empty(), "envelope has a gap");
    samples.push_back(Step{t, max(heap.top().value, Work(0))});
  }
  return from_monotone_samples(samples, horizon);
}

}  // namespace

Staircase pointwise_add(const Staircase& f, const Staircase& g) {
  Staircase r = pointwise_op(f, g, [](Work a, Work b) { return a + b; });
  // (Monotonicity of r is re-verified by the Staircase constructor; this
  // cross-checks the *values* against a direct evaluation.)
  STRT_DCHECK(([&] {
    for (const Step& s : r.steps()) {
      if (s.value != f.value(s.time) + g.value(s.time)) return false;
    }
    return r.value(r.horizon()) ==
           f.value(r.horizon()) + g.value(r.horizon());
  }()),
              "pointwise_add samples must equal f(t) + g(t)");
  return r;
}

Staircase pointwise_min(const Staircase& f, const Staircase& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return min(a, b); });
}

Staircase pointwise_max(const Staircase& f, const Staircase& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return max(a, b); });
}

Staircase minplus_conv(const Staircase& f, const Staircase& g) {
  // A decomposition t = s + (t - s) with s inside step i of f and t - s
  // inside step j of g exists iff  a_i + b_j <= t <= a_{i+1}-1 + b_{j+1}-1,
  // and then contributes value f_i + g_j.  The convolution is the lower
  // envelope of these constant pieces.
  const obs::Span span("minplus.conv");
  static obs::Counter& c_calls = obs::counter("minplus.conv.calls");
  static obs::Counter& c_pieces = obs::counter("minplus.conv.pieces");
  c_calls.add(1);
  c_pieces.add(f.steps().size() * g.steps().size());
  const Time horizon = f.horizon() + g.horizon();
  const auto fs = f.steps();
  const auto gs = g.steps();
  check_piece_budget(fs.size(), gs.size());
  std::vector<Piece> pieces;
  pieces.reserve(fs.size() * gs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Time ai = fs[i].time;
    const Time ai1 =
        (i + 1 < fs.size()) ? fs[i + 1].time : f.horizon() + Time(1);
    for (std::size_t j = 0; j < gs.size(); ++j) {
      const Time bj = gs[j].time;
      const Time bj1 =
          (j + 1 < gs.size()) ? gs[j + 1].time : g.horizon() + Time(1);
      pieces.push_back(Piece{ai + bj, ai1 + bj1 - Time(2),
                             fs[i].value + gs[j].value});
    }
  }
  Staircase r = envelope</*kMin=*/true>(std::move(pieces), horizon);
  // conv(t) = min_s f(s) + g(t-s) <= f(t) + g(0) wherever f is defined
  // (and symmetrically); a breakpoint above that bound means the envelope
  // dropped a piece.
  STRT_DCHECK(([&] {
    for (const Step& s : r.steps()) {
      if (s.time <= f.horizon() &&
          s.value > f.value(s.time) + g.value(Time(0))) {
        return false;
      }
      if (s.time <= g.horizon() &&
          s.value > g.value(s.time) + f.value(Time(0))) {
        return false;
      }
    }
    return true;
  }()),
              "minplus_conv must lie below f(t) + g(0) and g(t) + f(0)");
  return r;
}

Staircase minplus_deconv(const Staircase& f, const Staircase& g) {
  STRT_REQUIRE(g.horizon() <= f.horizon(),
               "deconvolution requires Hg <= Hf (extend f first)");
  const obs::Span span("minplus.deconv");
  static obs::Counter& c_calls = obs::counter("minplus.deconv.calls");
  static obs::Counter& c_pieces = obs::counter("minplus.deconv.pieces");
  c_calls.add(1);
  c_pieces.add(f.steps().size() * g.steps().size());
  const Time horizon = f.horizon() - g.horizon();
  // For f-step i and g-step j the witness u exists iff
  //   u in [b_j, b_{j+1}-1]  and  t + u in [a_i, a_{i+1}-1]
  // which is non-empty iff  a_i - (b_{j+1}-1) <= t <= (a_{i+1}-1) - b_j.
  const auto fs = f.steps();
  const auto gs = g.steps();
  check_piece_budget(fs.size(), gs.size());
  std::vector<Piece> pieces;
  pieces.reserve(fs.size() * gs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Time ai = fs[i].time;
    const Time ai1 =
        (i + 1 < fs.size()) ? fs[i + 1].time : f.horizon() + Time(1);
    for (std::size_t j = 0; j < gs.size(); ++j) {
      const Time bj = gs[j].time;
      const Time bj1 =
          (j + 1 < gs.size()) ? gs[j + 1].time : g.horizon() + Time(1);
      const Work raw = Work(checked::sub(fs[i].value.count(),
                                         gs[j].value.count()));
      pieces.push_back(Piece{ai - (bj1 - Time(1)), (ai1 - Time(1)) - bj,
                             raw});
    }
  }
  return envelope</*kMin=*/false>(std::move(pieces), horizon);
}

Time hdev(const Staircase& a, const Staircase& b) {
  // Discrete-time semantics: a step of `a` at window length t covers a
  // release at offset t-1, so the delay candidate of the step (t, v) is
  // b^{-1}(v) - (t - 1).  Within a step larger t only shrinks the
  // candidate, so the step starts are the only candidates.
  Time worst = Time(0);
  for (const Step& s : a.steps()) {
    if (s.value == Work(0)) continue;
    const Time crossing = b.inverse(s.value);
    if (crossing.is_unbounded()) return Time::unbounded();
    const Time release = max(Time(0), s.time - Time(1));
    if (crossing > release) worst = max(worst, crossing - release);
  }
  return worst;
}

Work vdev(const Staircase& a, const Staircase& b, Time upto) {
  STRT_REQUIRE(upto >= Time(0), "vdev horizon must be non-negative");
  // Backlog just after the releases at time t: arrivals a(t+1) (window
  // [0, t+1) includes them) minus service b(t) delivered so far.  With a
  // constant between its steps and b non-decreasing, candidates are the
  // steps of a evaluated at t = step.time - 1.
  Work worst = Work(0);
  for (const Step& s : a.steps()) {
    if (s.value == Work(0)) continue;
    const Time t = max(Time(0), s.time - Time(1));
    if (t > upto) break;
    const Work bv = b.value(t);
    if (s.value > bv) worst = max(worst, s.value - bv);
  }
  return worst;
}

std::optional<Time> first_catch_up(const Staircase& a, const Staircase& b) {
  const Time h = min(a.horizon(), b.horizon());
  // a(t) - b(t) changes only at breakpoints; between breakpoints both are
  // constant, so it suffices to test the merged breakpoints plus t = 1.
  std::vector<Time> ts = merged_times(a, b, h);
  if (h >= Time(1)) ts.push_back(Time(1));
  std::sort(ts.begin(), ts.end());
  for (Time t : ts) {
    if (t < Time(1)) continue;
    if (a.value(t) <= b.value(t)) return t;
  }
  return std::nullopt;
}

Staircase leftover_service(const Staircase& b, const Staircase& a) {
  const Time h = min(a.horizon(), b.horizon());
  std::vector<Step> samples;
  Work best = Work(0);
  for (Time t : merged_times(a, b, h)) {
    const Work bv = b.value(t);
    const Work av = a.value(t);
    if (bv > av) best = max(best, bv - av);
    samples.push_back(Step{t, best});
  }
  return Staircase::from_points(samples, h);
}

Staircase subadditive_closure(const Staircase& f) {
  STRT_REQUIRE(f.starts_at_zero(),
               "subadditive closure requires f(0) == 0");
  const obs::Span span("minplus.subadditive_closure");
  Staircase cur = f.without_tail();
  for (;;) {
    Staircase conv = minplus_conv(cur, cur).truncated(cur.horizon());
    Staircase next = pointwise_min(cur, conv);
    if (next == cur) return cur;
    cur = std::move(next);
  }
}

}  // namespace strt
