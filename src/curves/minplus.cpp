#include "curves/minplus.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

// (De)convolution enumerates one constant piece per breakpoint pair; fail
// loudly instead of exhausting memory on absurdly fine-grained operands.
constexpr std::size_t kMaxPieces = 30'000'000;

void check_piece_budget(std::size_t nf, std::size_t ng) {
  STRT_LIMIT(nf <= kMaxPieces / std::max<std::size_t>(ng, 1),
             "minplus (de)convolution: operands have too many breakpoints; "
             "coarsen the curves or shrink the horizon");
}

/// Canonical-staircase accumulator for samples arriving in non-decreasing
/// time order: replicates from_points' running-max fold (same bits) while
/// skipping its sort and building the SoA store directly.
class CanonBuilder {
 public:
  CanonBuilder() { store_.append(Time(0), Work(0)); }

  void reserve(std::size_t n) { store_.reserve(n + 1); }

  void sample(Time t, Work v) {
    const Work folded = max(v, store_.back_value());
    if (t == store_.back_time()) {
      store_.set_back_value(folded);
    } else if (folded > store_.back_value()) {
      store_.append(t, folded);
    }
  }

  [[nodiscard]] Staircase finish(Time horizon) {
    return Staircase::from_segments(std::move(store_), horizon);
  }

 private:
  SegmentStore store_;
};

/// Linear merge of two curves' breakpoint times restricted to [0, upto]:
/// calls fn(t, f(t), g(t)) at every merged time in increasing order.  Both
/// running value indices ride along with the merge, so each sample costs
/// O(1) instead of two binary searches.
template <class Fn>
void merge_scan(const Staircase& f, const Staircase& g, Time upto, Fn&& fn) {
  const auto fts = f.times();
  const auto fvs = f.values();
  const auto gts = g.times();
  const auto gvs = g.values();
  std::size_t pa = 0, pb = 0;  // next breakpoint candidates
  std::size_t ca = 0, cb = 0;  // last breakpoint with time <= t
  while (pa < fts.size() || pb < gts.size()) {
    Time t{0};
    if (pa < fts.size() && (pb >= gts.size() || fts[pa] <= gts[pb])) {
      t = fts[pa];
    } else {
      t = gts[pb];
    }
    if (t > upto) break;
    if (pa < fts.size() && fts[pa] == t) ca = pa++;
    if (pb < gts.size() && gts[pb] == t) cb = pb++;
    fn(t, fvs[ca], gvs[cb]);
  }
}

template <class Combine>
Staircase pointwise_op(const Staircase& f, const Staircase& g, Combine&& op) {
  static obs::Counter& c_calls = obs::counter("minplus.pointwise.calls");
  c_calls.add(1);
  const Time h = min(f.horizon(), g.horizon());
  CanonBuilder out;
  out.reserve(f.breakpoint_count() + g.breakpoint_count());
  merge_scan(f, g, h,
             [&](Time t, Work fv, Work gv) { out.sample(t, op(fv, gv)); });
  return out.finish(h);
}

/// A constant-valued piece of a two-operand envelope, covering the
/// inclusive time range [begin, end].
struct Piece {
  Time begin;
  Time end;
  Work value;
};

/// Lower (kMin) or upper (!kMin) envelope of constant pieces, evaluated
/// as a staircase on [0, horizon].  Piece ranges are inclusive and may
/// start before 0 (clamped).  The envelope value can change both when a
/// piece starts and just after one expires, so both event kinds are
/// sampled; the sorted event sweep feeds the canonical builder directly
/// (no second sort-and-fold pass).
template <bool kMin>
Staircase envelope(std::vector<Piece> pieces, Time horizon) {
  // Clamp starts, drop pieces entirely outside [0, horizon].
  std::erase_if(pieces, [&](const Piece& p) {
    return p.end < Time(0) || p.begin > horizon;
  });
  for (Piece& p : pieces) p.begin = max(p.begin, Time(0));
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.begin < b.begin; });

  std::vector<Time> events;
  events.reserve(2 * pieces.size());
  for (const Piece& p : pieces) {
    events.push_back(p.begin);
    if (p.end + Time(1) <= horizon) events.push_back(p.end + Time(1));
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  struct HeapItem {
    Work value;
    Time end;
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    if constexpr (kMin) {
      return a.value > b.value;  // min-heap by value
    } else {
      return a.value < b.value;  // max-heap by value
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);

  CanonBuilder out;
  out.reserve(events.size());
  std::size_t i = 0;
  for (Time t : events) {
    while (i < pieces.size() && pieces[i].begin <= t) {
      if (pieces[i].end >= t) {
        heap.push(HeapItem{pieces[i].value, pieces[i].end});
      }
      ++i;
    }
    while (!heap.empty() && heap.top().end < t) heap.pop();
    STRT_ASSERT(!heap.empty(), "envelope has a gap");
    out.sample(t, max(heap.top().value, Work(0)));
  }
  return out.finish(horizon);
}

}  // namespace

Staircase pointwise_add(const Staircase& f, const Staircase& g) {
  Staircase r = pointwise_op(f, g, [](Work a, Work b) { return a + b; });
  // (Monotonicity of r is re-verified by the Staircase constructor; this
  // cross-checks the *values* against a direct evaluation.)
  STRT_DCHECK(([&] {
    for (const Step& s : r.steps()) {
      if (s.value != f.value(s.time) + g.value(s.time)) return false;
    }
    return r.value(r.horizon()) ==
           f.value(r.horizon()) + g.value(r.horizon());
  }()),
              "pointwise_add samples must equal f(t) + g(t)");
  return r;
}

Staircase pointwise_min(const Staircase& f, const Staircase& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return min(a, b); });
}

Staircase pointwise_max(const Staircase& f, const Staircase& g) {
  return pointwise_op(f, g, [](Work a, Work b) { return max(a, b); });
}

Staircase minplus_conv(const Staircase& f, const Staircase& g) {
  // A decomposition t = s + (t - s) with s inside step i of f and t - s
  // inside step j of g exists iff  a_i + b_j <= t <= a_{i+1}-1 + b_{j+1}-1,
  // and then contributes value f_i + g_j.  The convolution is the lower
  // envelope of these constant pieces.
  const obs::Span span("minplus.conv");
  static obs::Counter& c_calls = obs::counter("minplus.conv.calls");
  static obs::Counter& c_pieces = obs::counter("minplus.conv.pieces");
  const Time horizon = f.horizon() + g.horizon();
  const auto fts = f.times();
  const auto fvs = f.values();
  const auto gts = g.times();
  const auto gvs = g.values();
  c_calls.add(1);
  c_pieces.add(fts.size() * gts.size());
  check_piece_budget(fts.size(), gts.size());
  std::vector<Piece> pieces;
  pieces.reserve(fts.size() * gts.size());
  for (std::size_t i = 0; i < fts.size(); ++i) {
    const Time ai = fts[i];
    const Time ai1 =
        (i + 1 < fts.size()) ? fts[i + 1] : f.horizon() + Time(1);
    for (std::size_t j = 0; j < gts.size(); ++j) {
      const Time bj = gts[j];
      const Time bj1 =
          (j + 1 < gts.size()) ? gts[j + 1] : g.horizon() + Time(1);
      pieces.push_back(Piece{ai + bj, ai1 + bj1 - Time(2), fvs[i] + gvs[j]});
    }
  }
  Staircase r = envelope</*kMin=*/true>(std::move(pieces), horizon);
  // conv(t) = min_s f(s) + g(t-s) <= f(t) + g(0) wherever f is defined
  // (and symmetrically); a breakpoint above that bound means the envelope
  // dropped a piece.
  STRT_DCHECK(([&] {
    for (const Step& s : r.steps()) {
      if (s.time <= f.horizon() &&
          s.value > f.value(s.time) + g.value(Time(0))) {
        return false;
      }
      if (s.time <= g.horizon() &&
          s.value > g.value(s.time) + f.value(Time(0))) {
        return false;
      }
    }
    return true;
  }()),
              "minplus_conv must lie below f(t) + g(0) and g(t) + f(0)");
  return r;
}

Staircase minplus_deconv(const Staircase& f, const Staircase& g) {
  STRT_REQUIRE(g.horizon() <= f.horizon(),
               "deconvolution requires Hg <= Hf (extend f first)");
  const obs::Span span("minplus.deconv");
  static obs::Counter& c_calls = obs::counter("minplus.deconv.calls");
  static obs::Counter& c_pieces = obs::counter("minplus.deconv.pieces");
  const Time horizon = f.horizon() - g.horizon();
  // For f-step i and g-step j the witness u exists iff
  //   u in [b_j, b_{j+1}-1]  and  t + u in [a_i, a_{i+1}-1]
  // which is non-empty iff  a_i - (b_{j+1}-1) <= t <= (a_{i+1}-1) - b_j.
  const auto fts = f.times();
  const auto fvs = f.values();
  const auto gts = g.times();
  const auto gvs = g.values();
  c_calls.add(1);
  c_pieces.add(fts.size() * gts.size());
  check_piece_budget(fts.size(), gts.size());
  std::vector<Piece> pieces;
  pieces.reserve(fts.size() * gts.size());
  for (std::size_t i = 0; i < fts.size(); ++i) {
    const Time ai = fts[i];
    const Time ai1 =
        (i + 1 < fts.size()) ? fts[i + 1] : f.horizon() + Time(1);
    for (std::size_t j = 0; j < gts.size(); ++j) {
      const Time bj = gts[j];
      const Time bj1 =
          (j + 1 < gts.size()) ? gts[j + 1] : g.horizon() + Time(1);
      const Work raw = Work(checked::sub(fvs[i].count(), gvs[j].count()));
      pieces.push_back(Piece{ai - (bj1 - Time(1)), (ai1 - Time(1)) - bj,
                             raw});
    }
  }
  return envelope</*kMin=*/false>(std::move(pieces), horizon);
}

Time hdev(const Staircase& a, const Staircase& b) {
  HdevCursor cur;
  return hdev_resume(a, b, cur);
}

Time hdev_resume(const Staircase& a, const Staircase& b, HdevCursor& cur) {
  // Discrete-time semantics: a step of `a` at window length t covers a
  // release at offset t-1, so the delay candidate of the step (t, v) is
  // b^{-1}(v) - (t - 1).  Within a step larger t only shrinks the
  // candidate, so the step starts are the only candidates.
  //
  // a's step values are strictly increasing, so the in-range crossings
  // b^{-1}(v) are non-decreasing: one forward pointer over b's values
  // serves every step -- a two-pointer linear merge (O(na + nb)) instead
  // of a binary search per step.  Values beyond b's horizon fall back to
  // the tail-folding inverse (same math, same results).
  if (cur.worst.is_unbounded()) return cur.worst;
  const auto ats = a.times();
  const auto avs = a.values();
  const auto bts = b.times();
  const auto bvs = b.values();
  const Work b_top = bvs[bvs.size() - 1];
  for (std::size_t i = cur.next_step; i < avs.size(); ++i) {
    const Work v = avs[i];
    if (v == Work(0)) continue;
    Time crossing{0};
    if (v <= bvs.front()) {
      crossing = Time(0);
    } else if (v <= b_top) {
      std::size_t j = cur.b_pos;
      while (bvs[j] < v) ++j;  // bounded: b_top >= v
      cur.b_pos = j;
      crossing = bts[j];
    } else {
      crossing = b.inverse(v);
      if (crossing.is_unbounded()) {
        cur.next_step = avs.size();
        cur.worst = Time::unbounded();
        return cur.worst;
      }
    }
    const Time release = max(Time(0), ats[i] - Time(1));
    if (crossing > release) cur.worst = max(cur.worst, crossing - release);
  }
  cur.next_step = avs.size();
  return cur.worst;
}

Work vdev(const Staircase& a, const Staircase& b, Time upto) {
  STRT_REQUIRE(upto >= Time(0), "vdev horizon must be non-negative");
  // Backlog just after the releases at time t: arrivals a(t+1) (window
  // [0, t+1) includes them) minus service b(t) delivered so far.  With a
  // constant between its steps and b non-decreasing, candidates are the
  // steps of a evaluated at t = step.time - 1.  The probe times grow
  // monotonically, so one forward pointer over b serves all of them.
  const auto ats = a.times();
  const auto avs = a.values();
  const auto bts = b.times();
  const auto bvs = b.values();
  Work worst = Work(0);
  std::size_t j = 0;  // last b-step with time <= t
  for (std::size_t i = 0; i < ats.size(); ++i) {
    if (avs[i] == Work(0)) continue;
    const Time t = max(Time(0), ats[i] - Time(1));
    if (t > upto) break;
    Work bv{0};
    if (t <= b.horizon()) {
      while (j + 1 < bts.size() && bts[j + 1] <= t) ++j;
      bv = bvs[j];
    } else {
      bv = b.value(t);  // tail fold (keeps the no-tail REQUIRE semantics)
    }
    if (avs[i] > bv) worst = max(worst, avs[i] - bv);
  }
  return worst;
}

std::optional<Time> first_catch_up(const Staircase& a, const Staircase& b) {
  const Time h = min(a.horizon(), b.horizon());
  // a(t) - b(t) changes only at breakpoints; between breakpoints both are
  // constant, so it suffices to test t = 1 and then every merged
  // breakpoint in (1, h], in increasing order.
  if (h < Time(1)) return std::nullopt;
  const std::size_t ia = soa_upper_bound(a.times(), Time(1));
  const std::size_t ib = soa_upper_bound(b.times(), Time(1));
  if (a.values()[ia - 1] <= b.values()[ib - 1]) return Time(1);
  std::optional<Time> found;
  merge_scan(a, b, h, [&](Time t, Work av, Work bv) {
    if (found || t <= Time(1)) return;
    if (av <= bv) found = t;
  });
  return found;
}

Staircase leftover_service(const Staircase& b, const Staircase& a) {
  const Time h = min(a.horizon(), b.horizon());
  CanonBuilder out;
  out.reserve(a.breakpoint_count() + b.breakpoint_count());
  Work best = Work(0);
  merge_scan(a, b, h, [&](Time t, Work av, Work bv) {
    if (bv > av) best = max(best, bv - av);
    out.sample(t, best);
  });
  return out.finish(h);
}

Staircase subadditive_closure(const Staircase& f) {
  STRT_REQUIRE(f.starts_at_zero(),
               "subadditive closure requires f(0) == 0");
  const obs::Span span("minplus.subadditive_closure");
  Staircase cur = f.without_tail();
  for (;;) {
    Staircase conv = minplus_conv(cur, cur).truncated(cur.horizon());
    Staircase next = pointwise_min(cur, conv);
    if (next == cur) return cur;
    cur = std::move(next);
  }
}

}  // namespace strt
