// (min,+) / (max,+) operations on staircase curves.
//
// All operations here are *finitary*: they work on the materialized
// breakpoints of their operands and produce tail-less results.  Callers
// (see core/busy_window) are responsible for extending pseudo-periodic
// curves to a sufficient horizon first -- the horizon disciplines are
// spelled out per function.
#pragma once

#include <cstddef>
#include <optional>

#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// Pointwise f(t) + g(t) on the common horizon min(Hf, Hg).
[[nodiscard]] Staircase pointwise_add(const Staircase& f, const Staircase& g);

/// Pointwise min(f(t), g(t)) on the common horizon.
[[nodiscard]] Staircase pointwise_min(const Staircase& f, const Staircase& g);

/// Pointwise max(f(t), g(t)) on the common horizon.
[[nodiscard]] Staircase pointwise_max(const Staircase& f, const Staircase& g);

/// Min-plus convolution (f (*) g)(t) = min_{0<=s<=t} f(s) + g(t-s),
/// defined exactly on [0, Hf + Hg].  O(nf * ng * log) in breakpoints.
[[nodiscard]] Staircase minplus_conv(const Staircase& f, const Staircase& g);

/// Min-plus deconvolution (f (/) g)(t) = max_{u>=0} f(t+u) - g(u), with the
/// supremum truncated to the operands' domains (u <= Hg, t+u <= Hf); the
/// result lives on [0, Hf - Hg] and requires Hg <= Hf.  This equals the
/// true deconvolution when Hg covers the relevant busy window.  Negative
/// intermediate values are clamped to 0 (curves are non-negative).
[[nodiscard]] Staircase minplus_deconv(const Staircase& f,
                                       const Staircase& g);

/// Horizontal deviation in discrete-time semantics: the curve-based delay
/// bound for a workload with upper arrival curve `a` (window convention:
/// a(t) covers releases at offsets 0..t-1) served by lower service curve
/// `b`,
///
///     hdev(a, b) = max over t >= 1 of  ( b^{-1}(a(t)) - (t - 1) )+ ,
///
/// i.e. the work a(t) headed by a release at offset t-1 completes by
/// b^{-1}(a(t)).  `a` is inspected on its materialized horizon -- the
/// caller must have extended it past the busy window.  `b` may answer
/// through its tail; the result is Time::unbounded() if `b` provably
/// never reaches a required value.
[[nodiscard]] Time hdev(const Staircase& a, const Staircase& b);

/// Resumable state of an incremental hdev scan (see hdev_resume).  Default
/// construction is a fresh scan from a's first step.
struct HdevCursor {
  /// Index of the first step of `a` not folded in yet.
  std::size_t next_step = 0;
  /// Two-pointer resume position inside `b` (index of the last in-range
  /// crossing; a's values only grow, so this pointer only moves forward).
  std::size_t b_pos = 0;
  /// Worst candidate over the processed prefix of `a`.
  Time worst{0};
};

/// Incremental hdev: folds a's steps [cur.next_step, a.breakpoint_count())
/// into `cur` and returns the updated worst-case deviation.  From a fresh
/// cursor this equals hdev(a, b) exactly.  Between calls `a` may be
/// *extended* to a larger horizon -- extended() keeps the processed steps
/// a prefix -- so a doubling-horizon caller resumes from the previous
/// horizon instead of rescanning the whole curve.  `b` must be unchanged
/// across resumes.  Once the result is Time::unbounded() the cursor stays
/// pinned there.
[[nodiscard]] Time hdev_resume(const Staircase& a, const Staircase& b,
                               HdevCursor& cur);

/// Vertical deviation in discrete-time semantics: the curve-based backlog
/// bound  max over t <= upto of ( a(t+1) - b(t) )+  (arrivals up to and
/// including time t minus service delivered in [0, t)).
[[nodiscard]] Work vdev(const Staircase& a, const Staircase& b, Time upto);

/// First positive time where the supply has caught up with the workload:
/// min{ t >= 1 : a(t) <= b(t) }, searched within the common materialized
/// horizon.  Returns nullopt if no such t exists there (caller extends
/// and retries).  This is the busy-window bound when `a` is a request
/// bound function and `b` a supply bound function.
[[nodiscard]] std::optional<Time> first_catch_up(const Staircase& a,
                                                 const Staircase& b);

/// Leftover (remaining) service after serving higher-priority workload:
/// b'(t) = max_{0<=s<=t} max(0, b(s) - a(s)), on the common horizon.
/// Standard leftover service curve of a greedy processing component.
[[nodiscard]] Staircase leftover_service(const Staircase& b,
                                         const Staircase& a);

/// Finitary subadditive closure on the curve's horizon: the largest
/// subadditive staircase c with c <= f on [0, H] and c(0) = 0.  Iterated
/// self-convolution to fixpoint; intended for tests / tightening studies,
/// O(n^2 log) per round.
[[nodiscard]] Staircase subadditive_closure(const Staircase& f);

}  // namespace strt
