// Certified granularity coarsening of staircase curves.
//
// Exact busy-window analyses materialize curves with one breakpoint per
// work-arrival instant; on long busy windows the (de)convolution and
// deviation kernels then scan millions of breakpoints.  Coarsening snaps
// a curve to a granularity-g grid, shrinking it to O(H / g) breakpoints,
// and -- crucially -- reports a *certified* one-sided error bound, so a
// driver (core/certified.hpp) can bracket the exact answer between an
// upper-coarsened and a lower-coarsened analysis:
//
//   coarsen_upper:  up(t) = f(min(ceil(t / g) * g, H))  >= f(t),
//   coarsen_lower:  lo(t) = f(floor(t / g) * g)         <= f(t),
//
// for all t in [0, H].  The reported max_error is the tight bound
// max_t |coarse(t) - f(t)|, computed in the same single scan that builds
// the coarse curve (each grid window's error is the value spread between
// its probe points; only windows containing breakpoints contribute).
//
// Results are tail-less: coarsening is applied to curves already
// materialized on their analysis horizon (the tail of the input, if any,
// is ignored -- the bounds above hold on [0, H] only).
#pragma once

#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// A coarsened curve plus its certified one-sided deviation from the
/// input: for coarsen_upper, max_t (up(t) - f(t)); for coarsen_lower,
/// max_t (f(t) - lo(t)); both over t in [0, H].
struct CoarseCurve {
  Staircase curve;
  Work max_error{0};
};

/// Over-approximation on the granularity-g grid (up >= f pointwise on
/// [0, H]).  Requires g >= 1; g == 1 returns f itself (error 0).
[[nodiscard]] CoarseCurve coarsen_upper(const Staircase& f, Time g);

/// Under-approximation on the granularity-g grid (lo <= f pointwise on
/// [0, H]).  Requires g >= 1; g == 1 returns f itself (error 0).
[[nodiscard]] CoarseCurve coarsen_lower(const Staircase& f, Time g);

}  // namespace strt
