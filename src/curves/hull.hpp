// Concave upper hulls of staircase curves.
//
// Classical real-time calculus implementations approximate arrival curves
// by concave piecewise-linear functions (token buckets, PJD curves, hull
// segments) because their algebra is closed and cheap.  The hull is the
// tightest such approximation of an exact request-bound staircase; the
// delay bounds computed from it are what a practical curve-based tool
// reports, and the gap to the structural analysis is exactly the price of
// forgetting the workload's structure (experiments E2/E3).
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// One vertex of the concave majorant (hull is linear between vertices).
struct HullVertex {
  Time time{0};
  Work value{0};
};

/// Upper concave hull of the points {(t, f(t)) : t in [0, H]} (it
/// suffices to hull the breakpoints plus the horizon endpoint).  The
/// result is the vertex list of a concave, non-decreasing PWL majorant.
[[nodiscard]] std::vector<HullVertex> concave_hull(const Staircase& f);

/// The hull evaluated back onto the integer grid, rounded down (the
/// integer-valued staircase majorant of f induced by the hull; rounding
/// down is sound for an upper arrival curve because f is integer-valued).
/// The result carries no tail.
[[nodiscard]] Staircase concave_hull_staircase(const Staircase& f);

}  // namespace strt
