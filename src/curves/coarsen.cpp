#include "curves/coarsen.hpp"

#include <cstdint>
#include <span>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "obs/counters.hpp"

namespace strt {

namespace {

/// Forward evaluator for monotone (non-decreasing) query times over a
/// staircase's SoA arrays: each at() advances a single index, so a whole
/// coarsening pass costs one linear scan of the breakpoints.
class ForwardEval {
 public:
  explicit ForwardEval(const Staircase& f)
      : ts_(f.times()), vs_(f.values()) {}

  Work at(Time t) {
    while (i_ + 1 < ts_.size() && ts_[i_ + 1] <= t) ++i_;
    return vs_[i_];
  }

 private:
  std::span<const Time> ts_;
  std::span<const Work> vs_;
  std::size_t i_ = 0;
};

/// Grid windows are indexed k >= 1, window k covering ((k-1)g, kg].  The
/// coarse value changes across window k -- and window k contributes
/// approximation error -- only when f has a breakpoint inside it, so it
/// suffices to visit the windows k = ceil(t_i / g) of f's breakpoints
/// t_i > 0, in increasing order with duplicates skipped.
template <class Fn>
void for_each_hit_window(const Staircase& f, Time g, Fn&& fn) {
  const auto ts = f.times();
  std::int64_t prev_k = 0;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    const std::int64_t k = checked::ceil_div(ts[i].count(), g.count());
    if (k == prev_k) continue;
    prev_k = k;
    fn(k);
  }
}

}  // namespace

CoarseCurve coarsen_upper(const Staircase& f, Time g) {
  STRT_REQUIRE(g >= Time(1), "coarsening granularity must be >= 1");
  static obs::Counter& c_calls = obs::counter("curves.coarsen.calls");
  c_calls.add(1);
  if (g == Time(1)) return CoarseCurve{f.without_tail(), Work(0)};
  const Time H = f.horizon();
  ForwardEval eval(f);
  SegmentStore out;
  out.append(Time(0), f.values().front());
  Work err{0};
  for_each_hit_window(f, g, [&](std::int64_t k) {
    // up takes value f(min(kg, H)) from t = (k-1)g + 1 on; its error on
    // window k peaks at that first tick.
    const Time lo_t = Time(checked::add(checked::mul(k - 1, g.count()), 1));
    const Time hi_t = min(Time(checked::mul(k, g.count())), H);
    const Work at_lo = eval.at(lo_t);
    const Work at_hi = eval.at(hi_t);
    err = max(err, at_hi - at_lo);
    if (at_hi > out.back_value()) out.append(lo_t, at_hi);
  });
  CoarseCurve r{Staircase::from_segments(std::move(out), H), err};
  STRT_DCHECK(([&] {
    for (const Step& s : f.steps()) {
      const Work up = r.curve.value(s.time);
      if (up < s.value || up - s.value > r.max_error) return false;
    }
    return true;
  }()),
              "coarsen_upper must dominate f within the certified error");
  return r;
}

CoarseCurve coarsen_lower(const Staircase& f, Time g) {
  STRT_REQUIRE(g >= Time(1), "coarsening granularity must be >= 1");
  static obs::Counter& c_calls = obs::counter("curves.coarsen.calls");
  c_calls.add(1);
  if (g == Time(1)) return CoarseCurve{f.without_tail(), Work(0)};
  const Time H = f.horizon();
  ForwardEval eval(f);
  SegmentStore out;
  out.append(Time(0), f.values().front());
  Work err{0};
  for_each_hit_window(f, g, [&](std::int64_t k) {
    // lo holds f((k-1)g) throughout grid cell k-1 and jumps to f(kg) at
    // t = kg; a breakpoint inside window k makes the error in cell k-1
    // peak at the cell's last tick, min(kg - 1, H).
    const Time jump_t = Time(checked::mul(k, g.count()));
    const Work base = eval.at(Time(checked::mul(k - 1, g.count())));
    err = max(err, eval.at(min(jump_t - Time(1), H)) - base);
    if (jump_t > H) return;  // partial last cell: lo never jumps again
    const Work at_jump = eval.at(jump_t);
    if (at_jump > out.back_value()) out.append(jump_t, at_jump);
  });
  CoarseCurve r{Staircase::from_segments(std::move(out), H), err};
  STRT_DCHECK(([&] {
    for (const Step& s : f.steps()) {
      const Work lo = r.curve.value(s.time);
      if (lo > s.value || s.value - lo > r.max_error) return false;
    }
    return true;
  }()),
              "coarsen_lower must stay below f within the certified error");
  return r;
}

}  // namespace strt
