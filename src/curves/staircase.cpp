#include "curves/staircase.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "base/checked.hpp"
#include "obs/counters.hpp"

namespace strt {

Staircase::Staircase(Time horizon) : horizon_(horizon) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  store_.append(Time(0), Work(0));
}

Staircase::Staircase(SegmentStore store, Time horizon,
                     std::optional<Tail> tail)
    : store_(std::move(store)), horizon_(horizon), tail_(std::move(tail)) {
  check_invariants();
}

void Staircase::check_invariants() const {
  STRT_ASSERT(!store_.empty(), "staircase has no steps");
  const auto ts = store_.times();
  const auto vs = store_.values();
  STRT_ASSERT(ts.front() == Time(0), "first step must be at t=0");
  for (std::size_t i = 1; i < ts.size(); ++i) {
    STRT_ASSERT(ts[i - 1] < ts[i], "step times must be strictly increasing");
    STRT_ASSERT(vs[i - 1] < vs[i],
                "step values must be strictly increasing (canonical form)");
  }
  STRT_ASSERT(ts.back() <= horizon_, "step beyond horizon");
  if (tail_) {
    STRT_ASSERT(tail_->period >= Time(1), "tail period must be >= 1");
    STRT_ASSERT(tail_->period <= horizon_,
                "tail period must fit inside the horizon");
    STRT_ASSERT(tail_->increment >= Work(0),
                "tail increment must be non-negative");
    // Monotonicity across the horizon boundary: the first extended value
    // f(H+1) = f(H+1-p) + w must not fall below f(H).
    const Work boundary =
        value_in_range(horizon_ - tail_->period + Time(1)) + tail_->increment;
    STRT_ASSERT(boundary >= value_in_range(horizon_),
                "periodic tail would make the curve decrease");
  }
}

Staircase Staircase::from_points(std::vector<Step> points, Time horizon) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  static obs::Counter& c_calls = obs::counter("staircase.from_points.calls");
  static obs::Counter& c_points = obs::counter("staircase.from_points.points");
  c_calls.add(1);
  c_points.add(points.size());
  for (const Step& p : points) {
    STRT_REQUIRE(p.time >= Time(0) && p.time <= horizon,
                 "point outside [0, horizon]");
    STRT_REQUIRE(p.value >= Work(0), "point value must be non-negative");
  }
  std::sort(points.begin(), points.end(),
            [](const Step& a, const Step& b) { return a.time < b.time; });
  SegmentStore canon;
  canon.reserve(points.size() + 1);
  canon.append(Time(0), Work(0));
  for (const Step& p : points) {
    const Work v = max(p.value, canon.back_value());
    if (p.time == canon.back_time()) {
      canon.set_back_value(v);
    } else if (v > canon.back_value()) {
      canon.append(p.time, v);
    }
  }
  return Staircase(std::move(canon), horizon, std::nullopt);
}

Staircase Staircase::from_segments(SegmentStore segments, Time horizon,
                                   std::optional<Tail> tail) {
  return Staircase(std::move(segments), horizon, std::move(tail));
}

Staircase Staircase::with_tail(Tail tail) const {
  return Staircase(store_, horizon_, tail);
}

Staircase Staircase::without_tail() const {
  return Staircase(store_, horizon_, std::nullopt);
}

Work Staircase::value_in_range(Time t) const {
  STRT_ASSERT(t >= Time(0) && t <= horizon_, "value_in_range out of range");
  // Last step with step.time <= t.
  const std::size_t idx = soa_upper_bound(store_.times(), t);
  STRT_ASSERT(idx > 0, "no step at or before t");
  return store_.value(idx - 1);
}

Work Staircase::value(Time t) const {
  STRT_REQUIRE(t >= Time(0), "curve domain starts at 0");
  if (t <= horizon_) return value_in_range(t);
  STRT_REQUIRE(tail_.has_value(),
               "value beyond horizon requires a periodic tail");
  // Fold t into the last period window (horizon - p, horizon].
  const std::int64_t p = tail_->period.count();
  const std::int64_t over = (t - horizon_).count();
  const std::int64_t m = checked::ceil_div(over, p);
  const Time base = t - Time(checked::mul(m, p));
  return value_in_range(base) + Work(checked::mul(m, tail_->increment.count()));
}

Time Staircase::inverse(Work w) const {
  static obs::Counter& c_calls = obs::counter("staircase.inverse.calls");
  c_calls.add(1);
  const auto vs = store_.values();
  if (w <= vs.front()) return Time(0);
  if (w <= vs.back()) {
    // First step with value >= w; the step's start time is the answer.
    const std::size_t idx = soa_lower_bound(vs, w);
    STRT_ASSERT(idx < vs.size(), "inverse lookup failed");
    return store_.time(idx);
  }
  if (!tail_) {
    throw std::invalid_argument(
        "Staircase::inverse: target value beyond horizon and the curve has "
        "no tail; extend the curve first");
  }
  if (tail_->increment == Work(0)) return Time::unbounded();
  // Beyond the horizon the value in window m >= 1 (covering times
  // (H + (m-1)p, H + mp]) is f(t - mp) + m*w with t - mp in (H - p, H].
  // The extension is monotone, so the smallest crossing lies in the first
  // window whose top value f(H) + m*inc reaches the target; inside that
  // window the crossing is the in-range inverse of the de-lifted value,
  // clamped to the window start.
  const std::int64_t p = tail_->period.count();
  const std::int64_t inc = tail_->increment.count();
  const std::int64_t need = checked::sub(w.count(), vs.back().count());
  const std::int64_t m = checked::ceil_div(need, inc);
  const Work de_lifted = Work(checked::sub(w.count(), checked::mul(m, inc)));
  const std::size_t idx = soa_lower_bound(vs, de_lifted);
  STRT_ASSERT(idx < vs.size(), "inverse window selection failed");
  const Time base = max(store_.time(idx), horizon_ - Time(p) + Time(1));
  return base + Time(checked::mul(m, p));
}

std::optional<Rational> Staircase::long_run_rate() const {
  if (!tail_) return std::nullopt;
  return Rational(tail_->increment.count(), tail_->period.count());
}

Staircase Staircase::extended(Time h) const {
  if (h <= horizon_) return *this;
  STRT_REQUIRE(tail_.has_value(), "extending beyond horizon requires a tail");
  // Beyond the horizon, window m >= 1 covers (H + (m-1)p, H + mp] and
  // repeats the base window (H - p, H] shifted right by m*p and lifted by
  // m*inc.  Within a window the value changes only at the window start
  // and at the shifted breakpoints, so those are the only candidate
  // steps -- no per-tick scan.
  const std::int64_t p = tail_->period.count();
  const std::int64_t inc = tail_->increment.count();
  const Time wbase = horizon_ - tail_->period + Time(1);
  const Work vbase = value_in_range(wbase);
  const auto ts = store_.times();
  const std::size_t i0 = soa_upper_bound(ts, wbase);
  SegmentStore out = store_;
  Work last = store_.back_value();
  const auto emit = [&](Time t, Work v) {
    if (v > last) {
      out.append(t, v);
      last = v;
    }
  };
  for (std::int64_t m = 1;; ++m) {
    const std::int64_t shift = checked::mul(m, p);
    const Work lift = Work(checked::mul(m, inc));
    const Time tstart = wbase + Time(shift);
    if (tstart > h) break;
    emit(tstart, vbase + lift);
    for (std::size_t i = i0; i < ts.size(); ++i) {
      const Time t = ts[i] + Time(shift);
      if (t > h) break;
      emit(t, store_.value(i) + lift);
    }
    if (checked::add(horizon_.count(), shift) >= h.count()) break;
  }
  return Staircase(std::move(out), h, tail_);
}

Staircase Staircase::truncated(Time h) const {
  STRT_REQUIRE(h >= Time(0) && h <= horizon_,
               "truncation horizon outside current domain");
  const std::size_t n = soa_upper_bound(store_.times(), h);
  SegmentStore out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.append(store_.time(i), store_.value(i));
  }
  return Staircase(std::move(out), h, std::nullopt);
}

Staircase Staircase::shifted_right(Time d) const {
  STRT_REQUIRE(d >= Time(0), "shift must be non-negative");
  if (d == Time(0)) return *this;
  SegmentStore out;
  out.reserve(store_.size() + 1);
  out.append(Time(0), Work(0));
  for (std::size_t i = 0; i < store_.size(); ++i) {
    if (store_.value(i) == Work(0)) continue;  // covered by the leading zero
    out.append(store_.time(i) + d, store_.value(i));
  }
  return Staircase(std::move(out), horizon_ + d, tail_);
}

Staircase Staircase::plus_constant(Work c) const {
  STRT_REQUIRE(c >= Work(0), "constant must be non-negative");
  SegmentStore out;
  out.reserve(store_.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    out.append(store_.time(i), store_.value(i) + c);
  }
  return Staircase(std::move(out), horizon_, tail_);
}

Staircase Staircase::scaled(std::int64_t k) const {
  STRT_REQUIRE(k >= 0, "scale factor must be non-negative");
  if (k == 0) {
    Staircase z(horizon_);
    if (tail_) return z.with_tail(Tail{tail_->period, Work(0)});
    return z;
  }
  SegmentStore out;
  out.reserve(store_.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    out.append(store_.time(i), Work(checked::mul(store_.value(i).count(), k)));
  }
  std::optional<Tail> tail = tail_;
  if (tail) tail->increment = Work(checked::mul(tail->increment.count(), k));
  return Staircase(std::move(out), horizon_, tail);
}

bool Staircase::is_subadditive() const {
  // f is subadditive iff f(c) <= min_{s <= c} f(s) + f(c - s) for every c.
  // It suffices to check c at breakpoints (elsewhere f(c) equals the value
  // at the preceding breakpoint while the right side can only be larger),
  // and for each such c the inner minimum is attained with s at a
  // breakpoint (within a step, shrinking s keeps f(s) and cannot decrease
  // f(c - s)).
  const auto ts = store_.times();
  const auto vs = store_.values();
  for (std::size_t c = 0; c < ts.size(); ++c) {
    for (std::size_t a = 0; a < ts.size(); ++a) {
      if (ts[a] > ts[c]) break;
      if (vs[c] > vs[a] + value_in_range(ts[c] - ts[a])) return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Staircase& f) {
  os << "Staircase[H=" << f.horizon() << "]{";
  bool first = true;
  for (const Step& s : f.steps()) {
    if (!first) os << ", ";
    os << '(' << s.time << ',' << s.value << ')';
    first = false;
  }
  os << '}';
  if (f.tail()) {
    os << "+tail(p=" << f.tail()->period << ",w=" << f.tail()->increment
       << ')';
  }
  return os;
}

}  // namespace strt
