#include "curves/staircase.hpp"

#include <algorithm>
#include <ostream>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "obs/counters.hpp"

namespace strt {

Staircase::Staircase(Time horizon)
    : steps_{Step{Time(0), Work(0)}}, horizon_(horizon) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
}

Staircase::Staircase(std::vector<Step> steps, Time horizon,
                     std::optional<Tail> tail)
    : steps_(std::move(steps)), horizon_(horizon), tail_(std::move(tail)) {
  check_invariants();
}

void Staircase::check_invariants() const {
  STRT_ASSERT(!steps_.empty(), "staircase has no steps");
  STRT_ASSERT(steps_.front().time == Time(0), "first step must be at t=0");
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    STRT_ASSERT(steps_[i - 1].time < steps_[i].time,
                "step times must be strictly increasing");
    STRT_ASSERT(steps_[i - 1].value < steps_[i].value,
                "step values must be strictly increasing (canonical form)");
  }
  STRT_ASSERT(steps_.back().time <= horizon_, "step beyond horizon");
  if (tail_) {
    STRT_ASSERT(tail_->period >= Time(1), "tail period must be >= 1");
    STRT_ASSERT(tail_->period <= horizon_,
                "tail period must fit inside the horizon");
    STRT_ASSERT(tail_->increment >= Work(0),
                "tail increment must be non-negative");
    // Monotonicity across the horizon boundary: the first extended value
    // f(H+1) = f(H+1-p) + w must not fall below f(H).
    const Work boundary =
        value_in_range(horizon_ - tail_->period + Time(1)) + tail_->increment;
    STRT_ASSERT(boundary >= value_in_range(horizon_),
                "periodic tail would make the curve decrease");
  }
}

Staircase Staircase::from_points(std::vector<Step> points, Time horizon) {
  STRT_REQUIRE(horizon >= Time(0), "horizon must be non-negative");
  static obs::Counter& c_calls = obs::counter("staircase.from_points.calls");
  static obs::Counter& c_points = obs::counter("staircase.from_points.points");
  c_calls.add(1);
  c_points.add(points.size());
  for (const Step& p : points) {
    STRT_REQUIRE(p.time >= Time(0) && p.time <= horizon,
                 "point outside [0, horizon]");
    STRT_REQUIRE(p.value >= Work(0), "point value must be non-negative");
  }
  std::sort(points.begin(), points.end(),
            [](const Step& a, const Step& b) { return a.time < b.time; });
  std::vector<Step> canon;
  canon.push_back(Step{Time(0), Work(0)});
  for (const Step& p : points) {
    const Work v = max(p.value, canon.back().value);
    if (p.time == canon.back().time) {
      canon.back().value = v;
    } else if (v > canon.back().value) {
      canon.push_back(Step{p.time, v});
    }
  }
  return Staircase(std::move(canon), horizon, std::nullopt);
}

Staircase Staircase::with_tail(Tail tail) const {
  return Staircase(steps_, horizon_, tail);
}

Staircase Staircase::without_tail() const {
  return Staircase(steps_, horizon_, std::nullopt);
}

Work Staircase::value_in_range(Time t) const {
  STRT_ASSERT(t >= Time(0) && t <= horizon_, "value_in_range out of range");
  // Last step with step.time <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time x, const Step& s) { return x < s.time; });
  STRT_ASSERT(it != steps_.begin(), "no step at or before t");
  return std::prev(it)->value;
}

Work Staircase::value(Time t) const {
  STRT_REQUIRE(t >= Time(0), "curve domain starts at 0");
  if (t <= horizon_) return value_in_range(t);
  STRT_REQUIRE(tail_.has_value(),
               "value beyond horizon requires a periodic tail");
  // Fold t into the last period window (horizon - p, horizon].
  const std::int64_t p = tail_->period.count();
  const std::int64_t over = (t - horizon_).count();
  const std::int64_t m = checked::ceil_div(over, p);
  const Time base = t - Time(checked::mul(m, p));
  return value_in_range(base) + Work(checked::mul(m, tail_->increment.count()));
}

Time Staircase::inverse(Work w) const {
  static obs::Counter& c_calls = obs::counter("staircase.inverse.calls");
  c_calls.add(1);
  if (w <= steps_.front().value) return Time(0);
  if (w <= value_at_horizon()) {
    // First step with value >= w; the step's start time is the answer.
    auto it = std::lower_bound(
        steps_.begin(), steps_.end(), w,
        [](const Step& s, Work x) { return s.value < x; });
    STRT_ASSERT(it != steps_.end(), "inverse lookup failed");
    return it->time;
  }
  if (!tail_) {
    throw std::invalid_argument(
        "Staircase::inverse: target value beyond horizon and the curve has "
        "no tail; extend the curve first");
  }
  if (tail_->increment == Work(0)) return Time::unbounded();
  // Binary search on the folded evaluation; monotone by construction.
  const std::int64_t need = checked::sub(w.count(), value_at_horizon().count());
  const std::int64_t periods =
      checked::ceil_div(need, tail_->increment.count());
  Time lo = horizon_;  // value(horizon) < w here
  Time hi = horizon_ + Time(checked::mul(periods + 1, tail_->period.count()));
  STRT_ASSERT(value(hi) >= w, "inverse upper bracket too small");
  while (lo + Time(1) < hi) {
    const Time mid = Time((lo.count() + hi.count()) / 2);
    if (value(mid) >= w) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::optional<Rational> Staircase::long_run_rate() const {
  if (!tail_) return std::nullopt;
  return Rational(tail_->increment.count(), tail_->period.count());
}

Staircase Staircase::extended(Time h) const {
  if (h <= horizon_) return *this;
  STRT_REQUIRE(tail_.has_value(), "extending beyond horizon requires a tail");
  std::vector<Step> steps = steps_;
  Work last = steps.back().value;
  for (Time t = horizon_ + Time(1); t <= h; ++t) {
    const Work v = value(t);
    if (v > last) {
      steps.push_back(Step{t, v});
      last = v;
    }
  }
  return Staircase(std::move(steps), h, tail_);
}

Staircase Staircase::truncated(Time h) const {
  STRT_REQUIRE(h >= Time(0) && h <= horizon_,
               "truncation horizon outside current domain");
  std::vector<Step> steps;
  for (const Step& s : steps_) {
    if (s.time > h) break;
    steps.push_back(s);
  }
  return Staircase(std::move(steps), h, std::nullopt);
}

Staircase Staircase::shifted_right(Time d) const {
  STRT_REQUIRE(d >= Time(0), "shift must be non-negative");
  if (d == Time(0)) return *this;
  std::vector<Step> steps;
  steps.push_back(Step{Time(0), Work(0)});
  for (const Step& s : steps_) {
    if (s.value == Work(0)) continue;  // already covered by the leading zero
    steps.push_back(Step{s.time + d, s.value});
  }
  return Staircase(std::move(steps), horizon_ + d, tail_);
}

Staircase Staircase::plus_constant(Work c) const {
  STRT_REQUIRE(c >= Work(0), "constant must be non-negative");
  std::vector<Step> steps = steps_;
  for (Step& s : steps) s.value += c;
  return Staircase(std::move(steps), horizon_, tail_);
}

Staircase Staircase::scaled(std::int64_t k) const {
  STRT_REQUIRE(k >= 0, "scale factor must be non-negative");
  if (k == 0) {
    Staircase z(horizon_);
    if (tail_) return z.with_tail(Tail{tail_->period, Work(0)});
    return z;
  }
  std::vector<Step> steps = steps_;
  for (Step& s : steps) s.value = Work(checked::mul(s.value.count(), k));
  std::optional<Tail> tail = tail_;
  if (tail) tail->increment = Work(checked::mul(tail->increment.count(), k));
  return Staircase(std::move(steps), horizon_, tail);
}

bool Staircase::is_subadditive() const {
  // f is subadditive iff f(c) <= min_{s <= c} f(s) + f(c - s) for every c.
  // It suffices to check c at breakpoints (elsewhere f(c) equals the value
  // at the preceding breakpoint while the right side can only be larger),
  // and for each such c the inner minimum is attained with s at a
  // breakpoint (within a step, shrinking s keeps f(s) and cannot decrease
  // f(c - s)).
  for (const Step& c : steps_) {
    for (const Step& a : steps_) {
      if (a.time > c.time) break;
      if (c.value > a.value + value_in_range(c.time - a.time)) return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Staircase& f) {
  os << "Staircase[H=" << f.horizon() << "]{";
  bool first = true;
  for (const Step& s : f.steps()) {
    if (!first) os << ", ";
    os << '(' << s.time << ',' << s.value << ')';
    first = false;
  }
  os << '}';
  if (f.tail()) {
    os << "+tail(p=" << f.tail()->period << ",w=" << f.tail()->increment
       << ')';
  }
  return os;
}

}  // namespace strt
