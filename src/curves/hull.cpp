#include "curves/hull.hpp"

#include <vector>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

namespace {

/// Cross product sign of (b - a) x (c - a); > 0 means c is left of a->b
/// (counter-clockwise), i.e. the middle point b is below the a->c chord.
std::int64_t cross(const HullVertex& a, const HullVertex& b,
                   const HullVertex& c) {
  const std::int64_t abx = checked::sub(b.time.count(), a.time.count());
  const std::int64_t aby = checked::sub(b.value.count(), a.value.count());
  const std::int64_t acx = checked::sub(c.time.count(), a.time.count());
  const std::int64_t acy = checked::sub(c.value.count(), a.value.count());
  return checked::sub(checked::mul(abx, acy), checked::mul(aby, acx));
}

}  // namespace

std::vector<HullVertex> concave_hull(const Staircase& f) {
  // Monotone chain, upper hull, built in one pass directly over the SoA
  // arrays: drop the middle point whenever it lies on or below the chord
  // of its neighbours.  The chain always retains the most recent point,
  // so after the breakpoint scan hull.back() is the last step and the
  // horizon endpoint extends it at constant value.
  const auto ts = f.times();
  const auto vs = f.values();
  std::vector<HullVertex> hull;
  hull.reserve(ts.size() + 1);
  const auto push = [&](HullVertex p) {
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), p) >= 0) {
      hull.pop_back();
    }
    hull.push_back(p);
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    push(HullVertex{ts[i], vs[i]});
  }
  if (hull.empty()) push(HullVertex{Time(0), Work(0)});
  if (hull.back().time < f.horizon()) {
    push(HullVertex{f.horizon(), hull.back().value});
  }
  return hull;
}

Staircase concave_hull_staircase(const Staircase& f) {
  const obs::Span span("curves.hull");
  static obs::Counter& c_calls = obs::counter("curves.hull.calls");
  c_calls.add(1);
  const std::vector<HullVertex> hull = concave_hull(f);
  std::vector<Step> pts;
  for (std::size_t i = 0; i + 1 < hull.size(); ++i) {
    const HullVertex& a = hull[i];
    const HullVertex& b = hull[i + 1];
    const std::int64_t dt = (b.time - a.time).count();
    const std::int64_t dv = (b.value - a.value).count();
    STRT_ASSERT(dt > 0 && dv >= 0, "hull vertices must advance");
    // floor(a.v + dv*(t - a.t)/dt) first reaches value w at
    // t = a.t + ceil((w - a.v) * dt / dv).
    for (std::int64_t w = a.value.count() + 1; w <= b.value.count(); ++w) {
      const std::int64_t t = checked::add(
          a.time.count(),
          checked::ceil_div(checked::mul(w - a.value.count(), dt), dv));
      pts.push_back(Step{Time(t), Work(w)});
    }
  }
  if (!hull.empty() && hull.front().value > Work(0)) {
    pts.push_back(Step{hull.front().time, hull.front().value});
  }
  Staircase r = Staircase::from_points(std::move(pts), f.horizon());
  // The hull dominates f pointwise, and both are integer staircases, so
  // the floored hull must still sit on or above f at every breakpoint.
  STRT_DCHECK(([&] {
    for (const Step& s : f.steps()) {
      if (r.value(s.time) < s.value) return false;
    }
    return true;
  }()),
              "concave hull staircase must dominate its input");
  return r;
}

}  // namespace strt
