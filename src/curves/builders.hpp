// Constructors for the standard arrival and supply curves.
//
// Every builder materializes an exact staircase on a caller-chosen horizon
// and attaches the exact periodic tail, so downstream finitary analyses
// can extend the curve losslessly to any busy-window length.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {
namespace curve {

/// Upper arrival curve of a sporadic/periodic stream with jitter:
///   a(0) = 0,  a(t) = wcet * ceil((t + jitter) / period)  for t >= 1.
/// Requires period >= 1, wcet >= 1, jitter >= 0, horizon >= period + jitter.
[[nodiscard]] Staircase periodic_arrival(Work wcet, Time period, Time jitter,
                                         Time horizon);

/// Token-bucket upper arrival curve: a(0) = 0,
/// a(t) = burst + floor(rate * t) for t >= 1.  Requires rate > 0 with
/// denominator <= horizon (one full rate period must fit).
[[nodiscard]] Staircase token_bucket(Work burst, const Rational& rate,
                                     Time horizon);

/// Rate-latency lower service curve:
///   b(t) = max(0, floor(rate * (t - latency))).
/// The floor keeps the bound sound (a lower curve may only be rounded
/// down).  Requires rate > 0, latency >= 0, horizon >= latency + den(rate).
[[nodiscard]] Staircase rate_latency(const Rational& rate, Time latency,
                                     Time horizon);

/// Dedicated resource of integer speed `rate` work units per tick.
[[nodiscard]] Staircase dedicated(std::int64_t rate, Time horizon);

/// Worst-case TDMA supply: a slot of `slot` ticks of unit-rate service out
/// of every cycle of `cycle` ticks:
///   sbf(t) = slot * floor(t / cycle) + max(0, (t mod cycle) - (cycle - slot)).
/// Requires 1 <= slot <= cycle <= horizon.
[[nodiscard]] Staircase tdma_supply(Time slot, Time cycle, Time horizon);

/// Worst-case supply of a periodic resource (Shin & Lee): budget `budget`
/// ticks of unit-rate service delivered somewhere within every period of
/// `period` ticks.  Requires 1 <= budget <= period, horizon >= 2 * period.
[[nodiscard]] Staircase periodic_resource(Time budget, Time period,
                                          Time horizon);

/// Worst-case supply of an arbitrary static cyclic schedule: the resource
/// is available exactly during the `true` ticks of `active`, repeated
/// with period active.size(), with the window alignment chosen
/// adversarially:
///   sbf(t) = min over s in [0, cycle) of  C(s + t) - C(s)
/// where C is the cumulative active-tick count.  Generalizes tdma_supply
/// to multiple slots per cycle.  Requires at least one active tick.
[[nodiscard]] Staircase schedule_supply(const std::vector<bool>& active,
                                        Time horizon);

/// One released job of a concrete trace (used by the empirical arrival
/// curve and by the simulator).
struct TraceJob {
  Time release{0};
  Work wcet{0};
};

/// Exact empirical upper arrival curve of a finite trace:
///   a(t) = max over x of work released in [x, x + t).
/// O(n^2) in the number of jobs; the result has no tail.
[[nodiscard]] Staircase arrival_of_trace(std::vector<TraceJob> jobs,
                                         Time horizon);

}  // namespace curve
}  // namespace strt
