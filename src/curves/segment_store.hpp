// Flat SoA storage for staircase breakpoints.
//
// A SegmentStore keeps a staircase's breakpoints as two parallel flat
// arrays -- times and values -- instead of one array of {time, value}
// structs.  The hot kernels in curves/minplus.cpp and curves/hull.cpp
// scan one coordinate at a time (binary-search the times, merge the
// times, fold the values), so the SoA layout halves the memory traffic
// of those scans and keeps each one a contiguous stride-8 walk the
// hardware prefetcher can follow.
//
// Staircase's public API is unchanged by the layout: steps() now returns
// a StepView, a lightweight proxy range whose iterator materializes Step
// values on the fly, so range-for loops, indexing, and front()/back()
// call sites read exactly as they did over the old std::vector<Step>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "base/types.hpp"

namespace strt {

/// One breakpoint of a staircase: the function takes value `value` on
/// [time, next-breakpoint.time).  Breakpoint times are strictly
/// increasing and values strictly increasing (canonical form).
struct Step {
  Time time{0};
  Work value{0};

  friend bool operator==(const Step&, const Step&) = default;
};

/// SoA breakpoint storage: parallel time/value arrays of equal length.
/// The store itself enforces nothing; Staircase's invariant check owns
/// canonical-form validation.
class SegmentStore {
 public:
  SegmentStore() = default;

  void reserve(std::size_t n) {
    times_.reserve(n);
    values_.reserve(n);
  }
  void append(Time t, Work v) {
    times_.push_back(t);
    values_.push_back(v);
  }
  void clear() {
    times_.clear();
    values_.clear();
  }

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }

  [[nodiscard]] std::span<const Time> times() const { return times_; }
  [[nodiscard]] std::span<const Work> values() const { return values_; }

  [[nodiscard]] Time time(std::size_t i) const { return times_[i]; }
  [[nodiscard]] Work value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] Time back_time() const { return times_.back(); }
  [[nodiscard]] Work back_value() const { return values_.back(); }
  void set_back_value(Work v) { values_.back() = v; }

  /// Approximate heap footprint of the two arrays (cache.bytes gauge).
  [[nodiscard]] std::uint64_t heap_bytes() const {
    return static_cast<std::uint64_t>(size()) * (sizeof(Time) + sizeof(Work));
  }

  friend bool operator==(const SegmentStore&, const SegmentStore&) = default;

 private:
  std::vector<Time> times_;
  std::vector<Work> values_;
};

/// Read-only AoS facade over a SegmentStore: iteration and indexing
/// yield Step values materialized from the two arrays.  Cheap to copy
/// (two pointers + a length); valid as long as the store is.
class StepView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Step;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Step;

    iterator() = default;

    [[nodiscard]] Step operator*() const { return Step{ts_[i_], vs_[i_]}; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++i_;
      return old;
    }

    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    friend class StepView;
    iterator(const Time* ts, const Work* vs, std::size_t i)
        : ts_(ts), vs_(vs), i_(i) {}

    const Time* ts_ = nullptr;
    const Work* vs_ = nullptr;
    std::size_t i_ = 0;
  };

  StepView() = default;
  explicit StepView(const SegmentStore& store)
      : ts_(store.times().data()),
        vs_(store.values().data()),
        size_(store.size()) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Step operator[](std::size_t i) const {
    return Step{ts_[i], vs_[i]};
  }
  [[nodiscard]] Step front() const { return (*this)[0]; }
  [[nodiscard]] Step back() const { return (*this)[size_ - 1]; }

  [[nodiscard]] iterator begin() const { return iterator(ts_, vs_, 0); }
  [[nodiscard]] iterator end() const { return iterator(ts_, vs_, size_); }

 private:
  const Time* ts_ = nullptr;
  const Work* vs_ = nullptr;
  std::size_t size_ = 0;
};

/// Branch-light binary searches over one SoA coordinate.  The loop body
/// is one comparison plus a conditional add (compiled to a cmov), so the
/// scan carries no data-dependent branch to mispredict -- measurably
/// faster than std::lower_bound on the random-probe kernels.

/// Index of the first element >= x (== xs.size() when none).
template <class T>
[[nodiscard]] inline std::size_t soa_lower_bound(std::span<const T> xs, T x) {
  const T* base = xs.data();
  std::size_t n = xs.size();
  if (n == 0) return 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] < x) ? half : 0;
    n -= half;
  }
  return static_cast<std::size_t>(base - xs.data()) + ((*base < x) ? 1 : 0);
}

/// Index of the first element > x (== xs.size() when none).
template <class T>
[[nodiscard]] inline std::size_t soa_upper_bound(std::span<const T> xs, T x) {
  const T* base = xs.data();
  std::size_t n = xs.size();
  if (n == 0) return 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] <= x) ? half : 0;
    n -= half;
  }
  return static_cast<std::size_t>(base - xs.data()) + ((*base <= x) ? 1 : 0);
}

}  // namespace strt
