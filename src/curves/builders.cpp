#include "curves/builders.hpp"

#include <algorithm>

#include "base/assert.hpp"
#include "base/checked.hpp"

namespace strt {
namespace curve {

Staircase periodic_arrival(Work wcet, Time period, Time jitter,
                           Time horizon) {
  STRT_REQUIRE(wcet >= Work(1), "wcet must be positive");
  STRT_REQUIRE(period >= Time(1), "period must be positive");
  STRT_REQUIRE(jitter >= Time(0), "jitter must be non-negative");
  STRT_REQUIRE(horizon >= period + jitter + Time(1),
               "horizon must cover at least one period plus jitter");
  // a(t) = wcet * ceil((t + jitter) / period) jumps to (k+1)*wcet at
  // t = k*period - jitter + 1.
  std::vector<Step> pts;
  const std::int64_t p = period.count();
  const std::int64_t j = jitter.count();
  const std::int64_t c = wcet.count();
  for (std::int64_t k = 0;; ++k) {
    const std::int64_t t = std::max<std::int64_t>(1, k * p - j + 1);
    if (t > horizon.count()) break;
    const std::int64_t v =
        checked::mul(c, checked::ceil_div(t + j, p));
    pts.push_back(Step{Time(t), Work(v)});
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{period, wcet});
}

Staircase token_bucket(Work burst, const Rational& rate, Time horizon) {
  STRT_REQUIRE(burst >= Work(0), "burst must be non-negative");
  STRT_REQUIRE(rate > Rational(0), "rate must be positive");
  STRT_REQUIRE(Time(rate.den()) <= horizon,
               "horizon must cover one rate denominator period");
  // a(t) = burst + floor(num * t / den) for t >= 1; jumps where the floor
  // increments, i.e. at t = ceil(v * den / num) for v = 1, 2, ...
  std::vector<Step> pts;
  pts.push_back(Step{Time(1), burst + Work(rate.floor())});
  const std::int64_t num = rate.num();
  const std::int64_t den = rate.den();
  for (std::int64_t v = rate.floor() + 1;; ++v) {
    const std::int64_t t = checked::ceil_div(checked::mul(v, den), num);
    if (t > horizon.count()) break;
    if (t >= 1) pts.push_back(Step{Time(t), burst + Work(v)});
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{Time(den), Work(num)});
}

Staircase rate_latency(const Rational& rate, Time latency, Time horizon) {
  STRT_REQUIRE(rate > Rational(0), "rate must be positive");
  STRT_REQUIRE(latency >= Time(0), "latency must be non-negative");
  STRT_REQUIRE(horizon >= latency + Time(rate.den()),
               "horizon must cover latency plus one rate period");
  // Value v >= 1 is first reached at t = latency + ceil(v * den / num).
  std::vector<Step> pts;
  const std::int64_t num = rate.num();
  const std::int64_t den = rate.den();
  for (std::int64_t v = 1;; ++v) {
    const std::int64_t t =
        checked::add(latency.count(),
                     checked::ceil_div(checked::mul(v, den), num));
    if (t > horizon.count()) break;
    pts.push_back(Step{Time(t), Work(v)});
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{Time(den), Work(num)});
}

Staircase dedicated(std::int64_t rate, Time horizon) {
  STRT_REQUIRE(rate >= 1, "dedicated rate must be positive");
  return rate_latency(Rational(rate), Time(0), horizon);
}

Staircase tdma_supply(Time slot, Time cycle, Time horizon) {
  STRT_REQUIRE(slot >= Time(1), "slot must be positive");
  STRT_REQUIRE(slot <= cycle, "slot must fit in the cycle");
  STRT_REQUIRE(cycle <= horizon, "horizon must cover one cycle");
  // Worst-case alignment: the window opens right after a slot ends, so
  // each cycle contributes its service only during its last `slot` ticks.
  std::vector<Step> pts;
  const std::int64_t s = slot.count();
  const std::int64_t c = cycle.count();
  for (std::int64_t k = 0;; ++k) {
    bool any = false;
    for (std::int64_t u = 1; u <= s; ++u) {
      const std::int64_t t = k * c + (c - s) + u;
      if (t > horizon.count()) break;
      pts.push_back(Step{Time(t), Work(k * s + u)});
      any = true;
    }
    if (!any) break;
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{cycle, Work(s)});
}

Staircase periodic_resource(Time budget, Time period, Time horizon) {
  STRT_REQUIRE(budget >= Time(1), "budget must be positive");
  STRT_REQUIRE(budget <= period, "budget must fit in the period");
  STRT_REQUIRE(horizon >= period + period,
               "horizon must cover two periods");
  // Shin & Lee worst-case supply: the server delivers its budget at the
  // start of one period and as late as possible in all later periods:
  //   sbf(t) = 0                                     t <= period - budget
  //   sbf(t) = k*budget + max(0, t - 2*(period - budget) - k*period)
  //            with k = floor((t - (period - budget)) / period), else.
  const std::int64_t Q = budget.count();
  const std::int64_t P = period.count();
  auto sbf = [&](std::int64_t t) -> std::int64_t {
    const std::int64_t gap = P - Q;
    if (t <= gap) return 0;
    const std::int64_t k = checked::floor_div(t - gap, P);
    const std::int64_t lin = t - 2 * gap - checked::mul(k, P);
    return checked::add(checked::mul(k, Q), std::max<std::int64_t>(0, lin));
  };
  // Materialize by scanning the closed form; the value changes both on
  // the unit-slope ramps and when k increments, so a plain O(horizon)
  // scan is the simplest correct enumeration.
  std::vector<Step> pts;
  std::int64_t prev = 0;
  for (std::int64_t t = 1; t <= horizon.count(); ++t) {
    const std::int64_t v = sbf(t);
    if (v > prev) {
      pts.push_back(Step{Time(t), Work(v)});
      prev = v;
    }
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{period, Work(Q)});
}

Staircase schedule_supply(const std::vector<bool>& active, Time horizon) {
  const auto cycle = static_cast<std::int64_t>(active.size());
  STRT_REQUIRE(cycle >= 1, "schedule must have at least one tick");
  STRT_REQUIRE(horizon >= Time(cycle), "horizon must cover one cycle");
  std::int64_t per_cycle = 0;
  for (const bool a : active) per_cycle += a ? 1 : 0;
  STRT_REQUIRE(per_cycle >= 1, "schedule must have an active tick");

  // Cumulative active ticks from 0, periodically extended.
  auto cum = [&](std::int64_t t) {
    const std::int64_t full = checked::floor_div(t, cycle);
    std::int64_t c = checked::mul(full, per_cycle);
    for (std::int64_t u = full * cycle; u < t; ++u) {
      c += active[static_cast<std::size_t>(u - full * cycle)] ? 1 : 0;
    }
    return c;
  };

  std::vector<Step> pts;
  std::int64_t prev = 0;
  for (std::int64_t t = 1; t <= horizon.count(); ++t) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t s = 0; s < cycle; ++s) {
      best = std::min(best, cum(s + t) - cum(s));
    }
    if (best > prev) {
      pts.push_back(Step{Time(t), Work(best)});
      prev = best;
    }
  }
  return Staircase::from_points(std::move(pts), horizon)
      .with_tail(Tail{Time(cycle), Work(per_cycle)});
}

Staircase arrival_of_trace(std::vector<TraceJob> jobs, Time horizon) {
  std::sort(jobs.begin(), jobs.end(), [](const TraceJob& a,
                                         const TraceJob& b) {
    return a.release < b.release;
  });
  for (const TraceJob& j : jobs) {
    STRT_REQUIRE(j.release >= Time(0), "job release must be non-negative");
    STRT_REQUIRE(j.wcet >= Work(0), "job wcet must be non-negative");
  }
  std::vector<Step> pts;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Work sum = Work(0);
    for (std::size_t j = i; j < jobs.size(); ++j) {
      sum += jobs[j].wcet;
      const Time window = jobs[j].release - jobs[i].release + Time(1);
      if (window > horizon) break;
      pts.push_back(Step{window, sum});
    }
  }
  return Staircase::from_points(std::move(pts), horizon);
}

}  // namespace curve
}  // namespace strt
