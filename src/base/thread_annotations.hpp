// Clang Thread Safety Analysis annotation shim.
//
// These macros expose Clang's -Wthread-safety attributes (capability
// analysis over mutexes: which lock guards which state, which functions
// require / acquire / release which locks) and compile away to nothing on
// toolchains without the attributes (GCC, MSVC).  CI builds the library
// with clang and -Wthread-safety -Werror, so a missing or wrong
// annotation is a build break, not a TSan-only runtime find.
//
// Use together with strt::Mutex / strt::MutexLock (base/mutex.hpp) --
// std::mutex itself is not an annotated capability under libstdc++, so
// the analysis only understands the wrappers.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define STRT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STRT_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable) type; `x` names the
/// capability kind in diagnostics, e.g. STRT_CAPABILITY("mutex").
#define STRT_CAPABILITY(x) STRT_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define STRT_SCOPED_CAPABILITY STRT_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define STRT_GUARDED_BY(x) STRT_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected
/// by the given capability (the pointer itself is not).
#define STRT_PT_GUARDED_BY(x) STRT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function-level contracts.
#define STRT_REQUIRES(...) \
  STRT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define STRT_ACQUIRE(...) \
  STRT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define STRT_RELEASE(...) \
  STRT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define STRT_TRY_ACQUIRE(...) \
  STRT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define STRT_EXCLUDES(...) STRT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock detection).
#define STRT_ACQUIRED_BEFORE(...) \
  STRT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define STRT_ACQUIRED_AFTER(...) \
  STRT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Returns a reference to the named capability (accessor functions).
#define STRT_RETURN_CAPABILITY(x) STRT_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis entirely.  Reserve for cases the
/// analysis cannot model (condition-variable wait reacquisition).
#define STRT_NO_THREAD_SAFETY_ANALYSIS \
  STRT_THREAD_ANNOTATION_(no_thread_safety_analysis)
