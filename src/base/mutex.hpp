// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// strt::Mutex is std::mutex declared as a capability and strt::MutexLock
// is an annotated lock_guard, so `-Wthread-safety` can statically verify
// the locking discipline declared with STRT_GUARDED_BY / STRT_REQUIRES
// (see base/thread_annotations.hpp).  Under libstdc++ the std types carry
// no annotations, which is why the library's mutex-protected state goes
// through these wrappers instead.
//
// Condition variables: use std::condition_variable_any and the
// MutexLock::wait() hook.  wait() releases and reacquires the mutex
// around the sleep; lexically the caller holds the capability across the
// call, which is exactly the guarantee the analysis needs for the
// predicate re-check that follows.
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hpp"

namespace strt {

class STRT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STRT_ACQUIRE() { mu_.lock(); }
  void unlock() STRT_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() STRT_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// Scoped lock (annotated std::lock_guard).
class STRT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STRT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() STRT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks on `cv` until notified; the mutex is released while asleep
  /// and held again on return.  Call in a loop re-checking the guarded
  /// predicate, as with any condition variable.
  void wait(std::condition_variable_any& cv) { cv.wait(*this); }

  /// BasicLockable hooks for std::condition_variable_any only.  They
  /// temporarily drop the capability without telling the analysis, which
  /// is the one re-acquisition pattern it cannot model; do not call them
  /// directly.
  void lock() STRT_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() STRT_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace strt
