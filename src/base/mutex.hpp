// Annotated mutex wrappers for Clang Thread Safety Analysis, plus the
// instrumentation seams for the strt::race tooling.
//
// strt::Mutex is std::mutex declared as a capability and strt::MutexLock
// is an annotated lock_guard, so `-Wthread-safety` can statically verify
// the locking discipline declared with STRT_GUARDED_BY / STRT_REQUIRES
// (see base/thread_annotations.hpp).  Under libstdc++ the std types carry
// no annotations, which is why the library's mutex-protected state goes
// through these wrappers instead.
//
// Condition variables: use strt::CondVar and the MutexLock::wait() hook.
// wait() releases and reacquires the mutex around the sleep; lexically
// the caller holds the capability across the call, which is exactly the
// guarantee the analysis needs for the predicate re-check that follows.
//
// Instrumentation (all of it compiles to the plain std::mutex wrapper
// unless the build opts in):
//
//   * STRT_LOCKDEP=1 (cmake -DSTRT_LOCKDEP=ON): every blocking lock()
//     records a lock-order edge between lock *instances* (registered at
//     Mutex construction), labeled with the *call site* (captured here
//     via std::source_location default arguments), into the global
//     lockdep graph (race/lockdep.hpp), detecting lock-order inversions
//     on the first run that merely COULD deadlock.  try_lock() enters
//     the held set without edges (it cannot block).  The environment
//     variable STRT_LOCKDEP=0 switches recording off at runtime.
//   * STRT_RACE=1 (cmake -DSTRT_RACE=ON): lock/unlock/wait/notify are
//     arbitrated by the deterministic interleaving explorer when one is
//     active (race/schedule.hpp).  The explorer virtualizes ownership:
//     a thread only issues the real lock once the explorer granted it,
//     so parked threads never wedge the real mutex.
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hpp"
#include "race/hook.hpp"

#ifndef STRT_LOCKDEP
#define STRT_LOCKDEP 0
#endif

#if STRT_LOCKDEP
#include <source_location>

#include "race/lockdep.hpp"
#endif

#if STRT_RACE
#include "race/schedule.hpp"
#endif

namespace strt {

class STRT_CAPABILITY("mutex") Mutex {
 public:
#if STRT_LOCKDEP
  // Each instance is a node in the lock-order graph; registration at
  // construction keys the graph by lock identity while the acquisition
  // sites below label the edges for witness chains.
  Mutex() : ld_id_(race::lockdep_register()) {}
  ~Mutex() { race::lockdep_forget(ld_id_); }
#else
  Mutex() = default;
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if STRT_LOCKDEP
  void lock(const std::source_location& loc =
                std::source_location::current()) STRT_ACQUIRE() {
    sched_lock_();
    // Record before blocking so a genuine deadlock still reports.
    if (race::lockdep_enabled()) {
      race::lockdep_acquire(ld_id_, race::lockdep_site(loc));
    }
    mu_.lock();
  }

  [[nodiscard]] bool try_lock(const std::source_location& loc =
                                  std::source_location::current())
      STRT_TRY_ACQUIRE(true) {
    if (!sched_try_lock_()) return false;
    if (!mu_.try_lock()) {
      sched_unlock_();  // abandon the virtual grant
      return false;
    }
    if (race::lockdep_enabled()) {
      race::lockdep_try_acquire(ld_id_, race::lockdep_site(loc));
    }
    return true;
  }

  void unlock() STRT_RELEASE() {
    if (race::lockdep_enabled()) race::lockdep_release(ld_id_);
    mu_.unlock();
    sched_unlock_();
  }
#else
  void lock() STRT_ACQUIRE() {
    sched_lock_();
    mu_.lock();
  }

  [[nodiscard]] bool try_lock() STRT_TRY_ACQUIRE(true) {
    if (!sched_try_lock_()) return false;
    if (!mu_.try_lock()) {
      sched_unlock_();
      return false;
    }
    return true;
  }

  void unlock() STRT_RELEASE() {
    mu_.unlock();
    sched_unlock_();
  }
#endif

 private:
#if STRT_RACE
  // Virtual arbitration: ask the explorer first; the real operation is
  // then uncontended among scheduled threads.  Ordering matters: lock
  // acquires virtual-then-real, unlock releases real-then-virtual, so
  // "virtually free" implies "really free".
  void sched_lock_() {
    if (race::schedule_active()) race::sched_mutex_lock(this);
  }
  bool sched_try_lock_() {
    return !race::schedule_active() || race::sched_mutex_try_lock(this);
  }
  void sched_unlock_() {
    if (race::schedule_active()) race::sched_mutex_unlock(this);
  }
#else
  static void sched_lock_() {}
  static bool sched_try_lock_() { return true; }
  static void sched_unlock_() {}
#endif

  std::mutex mu_;
#if STRT_LOCKDEP
  race::LockId ld_id_;
#endif
};

class MutexLock;

/// Condition variable paired with strt::Mutex via MutexLock::wait().
/// Wraps std::condition_variable_any; under an active interleaving
/// explorer, waits park in the scheduler and notifications move waiters
/// through the explorer's ready set deterministically.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() {
    sched_notify_(false);
    cv_.notify_one();
  }

  void notify_all() {
    sched_notify_(true);
    cv_.notify_all();
  }

 private:
  friend class MutexLock;

#if STRT_RACE
  void sched_notify_(bool all) {
    if (race::schedule_active()) race::sched_cv_notify(this, all);
  }
#else
  static void sched_notify_(bool) {}
#endif

  std::condition_variable_any cv_;
};

/// Scoped lock (annotated std::lock_guard).
class STRT_SCOPED_CAPABILITY MutexLock {
 public:
#if STRT_LOCKDEP
  explicit MutexLock(Mutex& mu, const std::source_location& loc =
                                    std::source_location::current())
      STRT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock(loc);
  }
#else
  explicit MutexLock(Mutex& mu) STRT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
#endif
  ~MutexLock() STRT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Blocks on `cv` until notified; the mutex is released while asleep
  /// and held again on return.  Call in a loop re-checking the guarded
  /// predicate, as with any condition variable.
  void wait(CondVar& cv) {
#if STRT_RACE
    if (race::schedule_active() && race::self_scheduled()) {
      // Enqueue while still holding the mutex (no lost wakeup), then
      // release, park in the explorer, and reacquire once scheduled.
      race::sched_cv_enqueue(&cv);
      mu_.unlock();
      race::sched_cv_block(&cv);
      mu_.lock();
      return;
    }
#endif
    cv.cv_.wait(*this);
  }

  /// BasicLockable hooks for std::condition_variable_any only.  They
  /// temporarily drop the capability without telling the analysis, which
  /// is the one re-acquisition pattern it cannot model; do not call them
  /// directly.
  void lock() STRT_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() STRT_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace strt
