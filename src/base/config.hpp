// strt::cfg -- unified configuration resolution.
//
// Every runtime knob in this codebase resolves through one documented
// precedence chain:
//
//     CLI flag  >  STRT_* environment variable  >  compiled default
//
// A call site that owns a flag passes its parsed value as the `flag`
// argument (std::nullopt when the user did not set it); library code
// with no flag layer omits it.  The getters record every resolution --
// key, effective value, and which layer supplied it -- in a process-wide
// registry, so `--report` JSON can embed the exact configuration a run
// used (see effective_config() / effective_config_json()).
//
// Parsing rules (uniform across all call sites):
//   * get_bool:  unset/empty env -> default; the literal "0" -> false;
//     anything else -> true.
//   * get_int:   unset/empty/non-numeric env, or a value below `min`,
//     falls back to the default.  Flags below `min` fall through to the
//     env/default layers (a flag of 0 conventionally means "unset").
//   * get_bytes: like get_int but accepts K/M/G suffixes ("64M").
//   * get_string: unset/empty env -> default.
//
// The resolution core is header-inline on purpose: strt_race sits below
// strt_base in the link order (base/mutex.hpp inlines race hooks), so
// race/lockdep.cpp can resolve STRT_LOCKDEP through this header without
// a link-time dependency on strt_base.  The registry behind the inline
// getters uses std::mutex, never strt::Mutex -- config is consulted from
// inside the lockdep runtime itself, and an instrumented lock here would
// recurse.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace strt::cfg {

/// Which precedence layer supplied an effective value.
enum class Source : std::uint8_t { kFlag, kEnv, kDefault };

[[nodiscard]] constexpr std::string_view source_name(Source s) {
  switch (s) {
    case Source::kFlag:
      return "flag";
    case Source::kEnv:
      return "env";
    case Source::kDefault:
      return "default";
  }
  return "default";
}

/// One recorded resolution: the env-style key (e.g. "STRT_SHARDS"), the
/// effective value rendered as a string, and the layer that supplied it.
struct Resolution {
  std::string key;
  std::string value;
  Source source = Source::kDefault;
};

namespace detail {

struct RegistryState {
  std::mutex mu;
  std::map<std::string, Resolution> entries;
};

/// The process-wide resolution registry.  Inline-function static: one
/// instance per executable however many libraries include this header.
inline RegistryState& registry() {
  static RegistryState state;
  return state;
}

inline void record(std::string_view key, std::string value, Source source) {
  RegistryState& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.entries[std::string(key)] =
      Resolution{std::string(key), std::move(value), source};
}

}  // namespace detail

/// Boolean knob.  Env semantics: unset or empty -> `def`; "0" -> false;
/// any other value -> true (matches the historical STRT_CACHE /
/// STRT_OBS / STRT_LOCKDEP parsers).
[[nodiscard]] inline bool get_bool(std::string_view key, bool def,
                                   std::optional<bool> flag = std::nullopt) {
  bool value = def;
  Source source = Source::kDefault;
  if (flag.has_value()) {
    value = *flag;
    source = Source::kFlag;
  } else if (const char* env = std::getenv(std::string(key).c_str());
             env != nullptr && *env != '\0') {
    value = std::string_view(env) != "0";
    source = Source::kEnv;
  }
  detail::record(key, value ? "1" : "0", source);
  return value;
}

/// Integer knob with a floor.  A flag below `min` counts as unset (the
/// conventional 0 = "resolve from the environment"); an env value that
/// fails to parse or sits below `min` falls back to the default.
[[nodiscard]] inline std::int64_t get_int(
    std::string_view key, std::int64_t def, std::int64_t min = 1,
    std::optional<std::int64_t> flag = std::nullopt) {
  std::int64_t value = def;
  Source source = Source::kDefault;
  if (flag.has_value() && *flag >= min) {
    value = *flag;
    source = Source::kFlag;
  } else if (const char* env = std::getenv(std::string(key).c_str());
             env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v >= min) {
      value = static_cast<std::int64_t>(v);
      source = Source::kEnv;
    }
  }
  detail::record(key, std::to_string(value), source);
  return value;
}

/// String knob.  Unset or empty env -> default; an empty flag counts as
/// unset.
[[nodiscard]] inline std::string get_string(
    std::string_view key, std::string_view def,
    std::optional<std::string_view> flag = std::nullopt) {
  std::string value(def);
  Source source = Source::kDefault;
  if (flag.has_value() && !flag->empty()) {
    value = std::string(*flag);
    source = Source::kFlag;
  } else if (const char* env = std::getenv(std::string(key).c_str());
             env != nullptr && *env != '\0') {
    value = env;
    source = Source::kEnv;
  }
  detail::record(key, value, source);
  return value;
}

/// Parses a byte count with an optional K/M/G (or KB/MB/GB, case-
/// insensitive) suffix: "64M" -> 67108864.  nullopt on parse failure or
/// overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_bytes(std::string_view text);

/// Byte-count knob: get_int semantics with parse_bytes() syntax in both
/// the flag and env layers.  0 conventionally means "no budget".
[[nodiscard]] std::uint64_t get_bytes(
    std::string_view key, std::uint64_t def,
    std::optional<std::string_view> flag = std::nullopt);

/// Snapshot of every resolution recorded so far, key-ordered.
[[nodiscard]] std::vector<Resolution> effective_config();

/// The same snapshot rendered as a JSON object:
///   {"STRT_SHARDS":{"value":"4","source":"env"}, ...}
/// (for embedding under a run report's "config" key).
[[nodiscard]] std::string effective_config_json();

}  // namespace strt::cfg
