#include "base/rational.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

#include "base/assert.hpp"
#include "base/types.hpp"

namespace strt {

namespace {

std::int64_t gcd_nonneg(std::int64_t a, std::int64_t b) {
  // std::gcd on the absolute values; safe because |INT64_MIN| is never
  // produced (construction rejects it via checked negation).
  return std::gcd(a, b);
}

}  // namespace

Rational::Rational(rep num, rep den) {
  STRT_REQUIRE(den != 0, "rational denominator must be non-zero");
  if (den < 0) {
    num = checked::sub(0, num);
    den = checked::sub(0, den);
  }
  const rep g = num == 0 ? den : gcd_nonneg(num < 0 ? -num : num, den);
  num_ = num / g;
  den_ = den / g;
}

Rational Rational::operator-() const {
  return Rational(checked::sub(0, num_), den_);
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(
      checked::add(checked::mul(a.num_, b.den_), checked::mul(b.num_, a.den_)),
      checked::mul(a.den_, b.den_));
}

Rational operator-(const Rational& a, const Rational& b) {
  return a + (-b);
}

Rational operator*(const Rational& a, const Rational& b) {
  // Cross-reduce before multiplying to keep intermediates small.
  const Rational x(a.num_, b.den_);
  const Rational y(b.num_, a.den_);
  return Rational(checked::mul(x.num(), y.num()),
                  checked::mul(x.den(), y.den()));
}

Rational operator/(const Rational& a, const Rational& b) {
  STRT_REQUIRE(!b.is_zero(), "rational division by zero");
  return a * Rational(b.den_, b.num_);
}

bool operator<(const Rational& a, const Rational& b) {
  return checked::mul(a.num_, b.den_) < checked::mul(b.num_, a.den_);
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.is_integer()) os << '/' << r.den();
  return os;
}

std::ostream& operator<<(std::ostream& os, Time t) {
  if (t.is_unbounded()) return os << "unbounded";
  return os << t.count();
}

std::ostream& operator<<(std::ostream& os, Work w) {
  if (w.is_unbounded()) return os << "unbounded";
  return os << w.count();
}

}  // namespace strt
