#include "base/rng.hpp"

#include <cmath>

#include "base/assert.hpp"

namespace strt {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  STRT_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform_real() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  STRT_REQUIRE(lo <= hi, "uniform_real requires lo <= hi");
  return lo + (hi - lo) * uniform_real();
}

bool Rng::chance(double p) { return uniform_real() < p; }

std::size_t Rng::pick_index(std::size_t n) {
  STRT_REQUIRE(n > 0, "pick_index requires a non-empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n - 1)));
}

Rng Rng::split() { return Rng(next()); }

Rng Rng::split(std::uint64_t seed, std::uint64_t index) {
  // Two splitmix64 rounds decorrelate (seed, index) pairs: adjacent
  // indices under the same seed land in unrelated states, and the same
  // index under different seeds does too.
  std::uint64_t x = seed;
  const std::uint64_t mixed_seed = splitmix64(x);
  x = mixed_seed ^ (index + 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(x));
}

std::vector<double> uunifast(Rng& rng, std::size_t n, double total) {
  STRT_REQUIRE(n > 0, "uunifast requires n > 0");
  STRT_REQUIRE(total > 0.0, "uunifast requires positive total");
  std::vector<double> u(n);
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next_sum =
        sum * std::pow(rng.uniform_real(),
                       1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next_sum;
    sum = next_sum;
  }
  u[n - 1] = sum;
  return u;
}

}  // namespace strt
