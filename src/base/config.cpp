#include "base/config.hpp"

#include <cctype>
#include <limits>

namespace strt::cfg {

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  std::size_t i = 0;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  if (i == 0) return std::nullopt;  // no digits at all
  std::uint64_t scale = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K':
        scale = 1ULL << 10;
        break;
      case 'M':
        scale = 1ULL << 20;
        break;
      case 'G':
        scale = 1ULL << 30;
        break;
      default:
        return std::nullopt;
    }
    ++i;
    // Accept a trailing B ("64MB") but nothing else.
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'B') {
      ++i;
    }
    if (i != text.size()) return std::nullopt;
  }
  if (scale != 1 && value > std::numeric_limits<std::uint64_t>::max() / scale) {
    return std::nullopt;
  }
  return value * scale;
}

std::uint64_t get_bytes(std::string_view key, std::uint64_t def,
                        std::optional<std::string_view> flag) {
  std::uint64_t value = def;
  Source source = Source::kDefault;
  if (flag.has_value() && !flag->empty()) {
    if (const auto parsed = parse_bytes(*flag)) {
      value = *parsed;
      source = Source::kFlag;
    }
  }
  if (source == Source::kDefault) {
    if (const char* env = std::getenv(std::string(key).c_str());
        env != nullptr && *env != '\0') {
      if (const auto parsed = parse_bytes(env)) {
        value = *parsed;
        source = Source::kEnv;
      }
    }
  }
  detail::record(key, std::to_string(value), source);
  return value;
}

std::vector<Resolution> effective_config() {
  detail::RegistryState& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<Resolution> out;
  out.reserve(reg.entries.size());
  for (const auto& [key, res] : reg.entries) out.push_back(res);
  return out;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string effective_config_json() {
  std::string out = "{";
  bool first = true;
  for (const Resolution& res : effective_config()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, res.key);
    out += ":{\"value\":";
    append_json_string(out, res.value);
    out += ",\"source\":";
    append_json_string(out, source_name(res.source));
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace strt::cfg
