// Overflow-checked 64-bit integer arithmetic.
//
// Analysis horizons, separations and execution demands are all 64-bit
// integers; products of horizon x rate-numerator can overflow silently and
// turn a sound bound into garbage.  All curve/graph arithmetic therefore
// goes through these helpers, which throw strt::OverflowError instead of
// wrapping.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace strt {

class OverflowError : public std::overflow_error {
 public:
  using std::overflow_error::overflow_error;
};

namespace checked {

using i64 = std::int64_t;

inline i64 add(i64 a, i64 b) {
  i64 r;
  if (__builtin_add_overflow(a, b, &r))
    throw OverflowError("integer overflow in add");
  return r;
}

inline i64 sub(i64 a, i64 b) {
  i64 r;
  if (__builtin_sub_overflow(a, b, &r))
    throw OverflowError("integer overflow in sub");
  return r;
}

inline i64 mul(i64 a, i64 b) {
  i64 r;
  if (__builtin_mul_overflow(a, b, &r))
    throw OverflowError("integer overflow in mul");
  return r;
}

/// Floor division with sign handling (C++ '/' truncates toward zero).
inline i64 floor_div(i64 a, i64 b) {
  if (b == 0) throw OverflowError("division by zero");
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division with sign handling.
inline i64 ceil_div(i64 a, i64 b) {
  if (b == 0) throw OverflowError("division by zero");
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

/// Euclidean remainder: result is always in [0, |b|).
inline i64 mod_floor(i64 a, i64 b) {
  return sub(a, mul(floor_div(a, b), b));
}

/// Saturating add: clamps to the int64 range instead of throwing.  Used
/// only where a saturated value is itself a correct answer (e.g. adding a
/// finite quantity to an "unbounded" sentinel).
inline i64 sat_add(i64 a, i64 b) {
  i64 r;
  if (!__builtin_add_overflow(a, b, &r)) return r;
  return b > 0 ? std::numeric_limits<i64>::max()
               : std::numeric_limits<i64>::min();
}

}  // namespace checked
}  // namespace strt
