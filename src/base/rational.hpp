// Exact rational arithmetic on 64-bit integers.
//
// Long-run rates (utilizations, supply slopes) must be compared exactly:
// the busy-window bound exists iff workload-rate < supply-rate, and a
// floating-point tie-break there would make the whole analysis unsound.
// All rate comparisons in the library therefore use this class; doubles
// appear only in statistics and generator knobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "base/checked.hpp"

namespace strt {

class Rational {
 public:
  using rep = std::int64_t;

  /// Zero.
  constexpr Rational() = default;

  /// The integer `n`.
  explicit Rational(rep n) : num_(n), den_(1) {}

  /// `num/den`; `den` may be negative, the sign is normalized onto the
  /// numerator and the fraction is reduced.  Throws on `den == 0`.
  Rational(rep num, rep den);

  [[nodiscard]] rep num() const { return num_; }
  [[nodiscard]] rep den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_negative() const { return num_ < 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Largest integer <= value.
  [[nodiscard]] rep floor() const { return checked::floor_div(num_, den_); }
  /// Smallest integer >= value.
  [[nodiscard]] rep ceil() const { return checked::ceil_div(num_, den_); }

  [[nodiscard]] std::string to_string() const;

  Rational operator-() const;
  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  /// Exact comparison via cross-multiplication (checked).
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }

 private:
  rep num_ = 0;
  rep den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace strt
