// Strong types for the two physical dimensions of the library.
//
//   Time  -- instants and durations, in integer ticks.
//   Work  -- accumulated execution demand / delivered service, in integer
//            work units (one unit == one tick of a unit-rate processor).
//
// Keeping the two dimensions apart at the type level has caught real bugs
// in curve code where both are plain integers (e.g. passing a backlog
// where a horizon is expected).  Cross-dimension conversion is explicit:
// Work(t.count()) etc., or through resource rates (see resource/supply).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "base/checked.hpp"

namespace strt {

namespace detail {

/// CRTP base implementing the shared arithmetic of an integral quantity.
/// The "unbounded" sentinel (max int64) is sticky across addition and
/// subtraction of finite amounts, so `Time::unbounded() + Time(5)` stays
/// unbounded instead of overflowing.
template <class Derived>
class Quantity {
 public:
  using rep = std::int64_t;

  constexpr Quantity() = default;
  constexpr explicit Quantity(rep v) : v_(v) {}

  [[nodiscard]] constexpr rep count() const { return v_; }

  [[nodiscard]] static constexpr Derived zero() { return Derived(0); }
  [[nodiscard]] static constexpr Derived unbounded() {
    return Derived(std::numeric_limits<rep>::max());
  }
  [[nodiscard]] constexpr bool is_unbounded() const {
    return v_ == std::numeric_limits<rep>::max();
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  friend Derived operator+(Derived a, Derived b) {
    if (a.is_unbounded() || b.is_unbounded()) return Derived::unbounded();
    return Derived(checked::add(a.count(), b.count()));
  }
  friend Derived operator-(Derived a, Derived b) {
    if (a.is_unbounded()) return Derived::unbounded();
    return Derived(checked::sub(a.count(), b.count()));
  }
  friend Derived operator*(Derived a, rep k) {
    if (a.is_unbounded()) return Derived::unbounded();
    return Derived(checked::mul(a.count(), k));
  }
  friend Derived operator*(rep k, Derived a) { return a * k; }

  Derived& operator+=(Derived o) {
    *self() = *self() + o;
    return *self();
  }
  Derived& operator-=(Derived o) {
    *self() = *self() - o;
    return *self();
  }
  Derived& operator++() {
    *self() = *self() + Derived(1);
    return *self();
  }

 private:
  Derived* self() { return static_cast<Derived*>(this); }
  rep v_ = 0;
};

}  // namespace detail

/// An instant or duration in integer ticks.
class Time : public detail::Quantity<Time> {
 public:
  using Quantity::Quantity;
};

/// An amount of execution demand or delivered service.
class Work : public detail::Quantity<Work> {
 public:
  using Quantity::Quantity;
};

[[nodiscard]] inline Time max(Time a, Time b) { return a < b ? b : a; }
[[nodiscard]] inline Time min(Time a, Time b) { return a < b ? a : b; }
[[nodiscard]] inline Work max(Work a, Work b) { return a < b ? b : a; }
[[nodiscard]] inline Work min(Work a, Work b) { return a < b ? a : b; }

std::ostream& operator<<(std::ostream& os, Time t);
std::ostream& operator<<(std::ostream& os, Work w);

namespace literals {
constexpr Time operator""_t(unsigned long long v) {
  return Time(static_cast<std::int64_t>(v));
}
constexpr Work operator""_w(unsigned long long v) {
  return Work(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace strt
