// Lightweight contract checking for the strt library.
//
// STRT_REQUIRE  -- precondition on public API arguments; throws
//                  std::invalid_argument so callers can recover/test.
// STRT_ASSERT   -- internal invariant; throws strt::InternalError.  These
//                  stay enabled in release builds: every algorithm in this
//                  library is a soundness-critical analysis, and a silently
//                  wrong delay bound is worse than an aborted run.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace strt {

/// Raised when an internal invariant of the library is violated (a bug in
/// the library itself, never a user error).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << cond << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace strt

#define STRT_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond))                                                        \
      ::strt::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define STRT_ASSERT(cond, msg)                                         \
  do {                                                                 \
    if (!(cond))                                                       \
      ::strt::detail::assert_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
