// Lightweight contract checking for the strt library.
//
// STRT_REQUIRE  -- precondition on public API arguments; throws
//                  std::invalid_argument so callers can recover/test.
// STRT_ASSERT   -- internal invariant; throws strt::InternalError.  These
//                  stay enabled in release builds: every algorithm in this
//                  library is a soundness-critical analysis, and a silently
//                  wrong delay bound is worse than an aborted run.
// STRT_LIMIT    -- resource-budget guard (piece counts, horizon caps);
//                  throws strt::ResourceLimitError (a std::runtime_error)
//                  so callers can distinguish "input too big" from "input
//                  malformed" and from "library bug".
// STRT_DCHECK   -- expensive invariant check (full-curve monotonicity
//                  sweeps, cross-validation against a second computation).
//                  Compiled only when STRT_VALIDATE is defined (CMake
//                  option -DSTRT_VALIDATE=ON, exercised by a dedicated CI
//                  leg); expands to nothing otherwise -- the condition is
//                  not evaluated.
//
// Every failure message includes the failed expression text and the
// file:line of the check site.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace strt {

/// Raised when an internal invariant of the library is violated (a bug in
/// the library itself, never a user error).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Raised when an analysis would exceed a hard resource budget (e.g. the
/// min-plus piece cap).  The input is well-formed but too large/fine;
/// coarsen it or shrink the horizon.
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[nodiscard]] inline std::string contract_message(const char* what,
                                                  const char* cond,
                                                  const char* file, int line,
                                                  const std::string& msg) {
  std::ostringstream os;
  os << what << ": " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  return os.str();
}

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(
      contract_message("precondition failed", cond, file, line, msg));
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw InternalError(
      contract_message("internal invariant violated", cond, file, line, msg));
}

[[noreturn]] inline void limit_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw ResourceLimitError(
      contract_message("resource limit exceeded", cond, file, line, msg));
}

}  // namespace detail
}  // namespace strt

#define STRT_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond))                                                        \
      ::strt::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define STRT_ASSERT(cond, msg)                                         \
  do {                                                                 \
    if (!(cond))                                                       \
      ::strt::detail::assert_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define STRT_LIMIT(cond, msg)                                         \
  do {                                                                \
    if (!(cond))                                                      \
      ::strt::detail::limit_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#if defined(STRT_VALIDATE)
#define STRT_DCHECK(cond, msg) STRT_ASSERT(cond, msg)
#else
#define STRT_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#endif
