// Deterministic pseudo-random generation for workload synthesis.
//
// Benchmarks and property tests must be reproducible across platforms, so
// the library ships its own xoshiro256** generator (seeded via splitmix64)
// instead of relying on implementation-defined std::mt19937 distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace strt {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded from a single 64-bit value
/// through splitmix64.  Not cryptographic; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Pick an index in [0, n) uniformly.  Requires n > 0.
  std::size_t pick_index(std::size_t n);

  /// Fork an independent stream (for per-task generators inside a fleet).
  Rng split();

  /// Deterministic stream for trial/worker `index` of a run seeded with
  /// `seed`: split(s, i) depends only on (s, i), never on which thread
  /// runs the trial or in which order, so a parallel sweep that seeds
  /// trial i with split(seed, i) reproduces the serial sweep exactly
  /// regardless of STRT_THREADS.
  static Rng split(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4];
};

/// UUniFast (Bini & Buttazzo): draw `n` utilizations summing exactly (in
/// the reals) to `total`, each in (0, total).  Returns doubles; callers
/// quantize to rationals as needed.
std::vector<double> uunifast(Rng& rng, std::size_t n, double total);

}  // namespace strt
