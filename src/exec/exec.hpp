// Parallel execution: a work-stealing thread pool behind two loop shapes.
//
//   parallel_for(n, fn)  -- fn(i) for every i in [0, n), blocking.
//   parallel_map(n, fn)  -- collects fn(i) into a vector indexed by i.
//
// Sizing: the pool holds STRT_THREADS - 1 worker threads (the calling
// thread is always the remaining participant).  STRT_THREADS defaults to
// std::thread::hardware_concurrency(); STRT_THREADS=1 is the fully serial
// fallback -- no thread is ever created and parallel_for degenerates to a
// plain loop, so single-threaded deployments pay nothing.
//
// Scheduling: the iteration space is split into one contiguous block per
// participant.  A participant pops indices from the front of its own
// block; when the block runs dry it steals the back half of the fattest
// remaining block ("steal-half", Cilk-style) and continues.  Blocks are
// tiny structs guarded by per-block mutexes -- the intended grain is
// coarse (one index == one whole analysis), so synchronization cost is
// noise.  `exec.tasks` counts indices executed by pool runs and
// `exec.steals` counts successful steals; a "parallel_for" obs span wraps
// every parallel run on the calling thread.
//
// Determinism: the schedule (which thread runs which index) is
// nondeterministic, but results are deterministic by construction --
// parallel_map writes slot i from iteration i only, and callers fold the
// slots serially in index order.  Library call sites (joint_fp,
// fixed_priority, audsley, sensitivity) reduce in index order, so their
// results are bit-identical to a STRT_THREADS=1 run.
//
// Nesting: a parallel_for issued from inside a pool worker (or from a
// thread already inside parallel_for) runs inline and serial.  The outer
// loop owns the hardware; nested parallelism would only add contention
// and a deadlock hazard.
//
// Exceptions: the first exception thrown by any iteration is captured,
// remaining claimed indices are drained without executing, and the
// exception is rethrown on the calling thread after the run quiesces.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace strt::exec {

/// The configured participant count (workers + calling thread), >= 1.
/// Resolved from STRT_THREADS on first use; see set_thread_count().
[[nodiscard]] std::size_t thread_count();

/// Overrides the participant count (tests / benches).  `n == 0` resets to
/// the STRT_THREADS / hardware default.  Joins existing workers; must not
/// be called concurrently with a parallel_for.
void set_thread_count(std::size_t n);

/// True while the calling thread is executing inside a parallel_for
/// (either as a pool worker or as the caller).  Nested parallel loops
/// detect this and run serially.
[[nodiscard]] bool inside_parallel_region();

/// Invokes fn(i) for every i in [0, n), distributing across the pool;
/// returns when all iterations completed.  Serial (plain loop, no pool
/// interaction) when n <= 1, thread_count() == 1, or nested.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallel_for that collects results: out[i] = fn(i).  The output order
/// is by index regardless of the execution schedule, so a serial fold
/// over the returned vector is deterministic.
template <class Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<R>, "parallel_map requires a result type");
  std::vector<std::optional<R>> slots(n);
  parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace strt::exec
