#include "exec/exec.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

#include "base/config.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt::exec {

namespace {

thread_local bool t_inside_parallel = false;

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<std::size_t>(
      cfg::get_int("STRT_THREADS", /*def=*/hw == 0 ? 1 : hw, /*min=*/1));
}

/// One participant's slice of the iteration space.  The owner pops from
/// the front, thieves take the back half; both paths lock `mu` for a few
/// instructions only.
struct Block {
  Mutex mu;
  std::size_t next STRT_GUARDED_BY(mu) = 0;
  std::size_t end STRT_GUARDED_BY(mu) = 0;
};

/// Shared state of one parallel_for run.  Heap-allocated and reference-
/// counted so a worker that wakes late (after the caller returned) still
/// holds valid memory.
struct Job {
  explicit Job(std::size_t n_, std::size_t participants)
      : n(n_), blocks(participants) {
    const std::size_t per = n / participants;
    std::size_t lo = 0;
    for (std::size_t p = 0; p < participants; ++p) {
      // Spread the n % participants leftover one-per-block from the front.
      const std::size_t hi = lo + per + (p < n % participants ? 1 : 0);
      const MutexLock lock(blocks[p].mu);
      blocks[p].next = lo;
      blocks[p].end = hi;
      lo = hi;
    }
  }

  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::vector<Block> blocks;

  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> failed{false};
  Mutex error_mu;
  std::exception_ptr error STRT_GUARDED_BY(error_mu);

  Mutex done_mu;
  CondVar done_cv;
  std::size_t finished STRT_GUARDED_BY(done_mu) = 0;

  void record_error(std::exception_ptr e) {
    const MutexLock lock(error_mu);
    if (!error) error = std::move(e);
    failed.store(true, std::memory_order_relaxed);
  }

  /// Reads the first recorded error; call only after every participant is
  /// done (the caller's wait on done_cv is the synchronization point).
  std::exception_ptr take_error() {
    const MutexLock lock(error_mu);
    return error;
  }

  /// Pops the next index of block `p`, or steals the back half of the
  /// fattest other block.  Returns false when the whole space is claimed.
  bool claim(std::size_t& p, std::size_t& idx) {
    {
      const MutexLock lock(blocks[p].mu);
      if (blocks[p].next < blocks[p].end) {
        idx = blocks[p].next++;
        return true;
      }
    }
    for (;;) {
      std::size_t victim = blocks.size();
      std::size_t fattest = 0;
      for (std::size_t v = 0; v < blocks.size(); ++v) {
        if (v == p) continue;
        const MutexLock lock(blocks[v].mu);
        const std::size_t avail = blocks[v].end - blocks[v].next;
        if (avail > fattest) {
          fattest = avail;
          victim = v;
        }
      }
      if (victim == blocks.size()) return false;  // everything claimed
      std::size_t lo;
      std::size_t hi;
      {
        const MutexLock lock(blocks[victim].mu);
        const std::size_t avail = blocks[victim].end - blocks[victim].next;
        if (avail == 0) continue;  // raced; rescan
        const std::size_t take = (avail + 1) / 2;
        blocks[victim].end -= take;
        lo = blocks[victim].end;
        hi = lo + take;
      }
      // Adopt the detached back half as our own block (one lock at a
      // time -- holding victim + own together could cycle among thieves);
      // later steals from *us* then rebalance further.  Our block is
      // empty, so nobody else writes it between the two sections.
      const MutexLock own(blocks[p].mu);
      blocks[p].next = lo;
      blocks[p].end = hi;
      idx = blocks[p].next++;
      steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  /// Runs the participant loop for block `p` until the iteration space is
  /// exhausted.  On failure the remaining indices are claimed and dropped
  /// so `finished` still reaches n and the caller wakes exactly once.
  void work(std::size_t p) {
    std::size_t idx = 0;
    while (claim(p, idx)) {
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          (*fn)(idx);
        } catch (...) {
          record_error(std::current_exception());
        }
      }
      const MutexLock lock(done_mu);
      if (++finished == n) done_cv.notify_all();
    }
  }
};

class Pool {
 public:
  static Pool& global() {
    static Pool pool;
    return pool;
  }

  std::size_t threads() {
    const MutexLock lock(config_mu_);
    return configured_;
  }

  void set_threads(std::size_t n) {
    const MutexLock lock(config_mu_);
    join_workers();
    configured_ = n == 0 ? default_thread_count() : n;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (t_inside_parallel) {  // nested: the outer loop owns the pool
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const MutexLock run_lock(run_mu_);
    std::size_t participants;
    {
      const MutexLock lock(config_mu_);
      participants = std::min(configured_, n);
      if (participants > 1) spawn_workers(configured_ - 1);
    }
    if (participants <= 1) {
      t_inside_parallel = true;
      struct Reset {
        ~Reset() { t_inside_parallel = false; }
      } reset;
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }

    const obs::Span span("parallel_for");
    auto job = std::make_shared<Job>(n, participants);
    job->fn = &fn;
    {
      const MutexLock lock(job_mu_);
      job_ = job;
      ++job_seq_;
    }
    job_cv_.notify_all();

    // The caller is participant 0; workers map themselves onto blocks
    // 1..participants-1 (extra workers start empty and steal).
    t_inside_parallel = true;
    job->work(0);
    t_inside_parallel = false;
    {
      MutexLock lock(job->done_mu);
      while (job->finished != job->n) lock.wait(job->done_cv);
    }
    {
      const MutexLock lock(job_mu_);
      job_.reset();
    }

    static obs::Counter& c_tasks = obs::counter("exec.tasks");
    static obs::Counter& c_steals = obs::counter("exec.steals");
    c_tasks.add(n);
    c_steals.add(job->steals.load(std::memory_order_relaxed));
    if (std::exception_ptr e = job->take_error()) std::rethrow_exception(e);
  }

  ~Pool() {
    const MutexLock lock(config_mu_);
    join_workers();
  }

 private:
  Pool() : configured_(default_thread_count()) {}

  /// Tops the worker set up to `want` threads; workers persist across
  /// runs and park on job_cv_.
  void spawn_workers(std::size_t want) STRT_REQUIRES(config_mu_) {
    while (workers_.size() < want) {
      const std::size_t worker_index = workers_.size();
      workers_.emplace_back([this, worker_index] { worker_loop(worker_index); });
    }
  }

  void join_workers() STRT_REQUIRES(config_mu_) {
    {
      const MutexLock lock(job_mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    {
      const MutexLock lock(job_mu_);
      stop_ = false;
    }
  }

  void worker_loop(std::size_t worker_index) {
    t_inside_parallel = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      std::uint64_t seq;
      {
        MutexLock lock(job_mu_);
        while (!stop_ && (job_ == nullptr || job_seq_ == seen)) {
          lock.wait(job_cv_);
        }
        if (stop_) return;
        job = job_;
        seq = job_seq_;
      }
      seen = seq;
      // Participant index: caller is 0, this worker is worker_index + 1.
      // Workers beyond the participant count sit this run out (their
      // blocks do not exist; n was smaller than the pool).
      const std::size_t p = worker_index + 1;
      if (p < job->blocks.size()) job->work(p);
    }
  }

  Mutex config_mu_;
  std::size_t configured_ STRT_GUARDED_BY(config_mu_);
  std::vector<std::thread> workers_ STRT_GUARDED_BY(config_mu_);

  Mutex run_mu_;  // one parallel_for at a time

  Mutex job_mu_;
  CondVar job_cv_;
  std::shared_ptr<Job> job_ STRT_GUARDED_BY(job_mu_);
  std::uint64_t job_seq_ STRT_GUARDED_BY(job_mu_) = 0;
  bool stop_ STRT_GUARDED_BY(job_mu_) = false;
};

}  // namespace

std::size_t thread_count() { return Pool::global().threads(); }

void set_thread_count(std::size_t n) { Pool::global().set_threads(n); }

bool inside_parallel_region() { return t_inside_parallel; }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  Pool::global().run(n, fn);
}

}  // namespace strt::exec
