// Multi-hop pipeline simulators, one per forwarding semantics:
//
//   cut-through       a work unit served by hop i during tick t is
//                     available to hop i+1 within the same tick
//                     (streaming stages; matches the convolved-service
//                     bounds of core/chain).
//   store-and-forward a job becomes visible to hop i+1 only when hop i
//                     has completed all of its work (message relays;
//                     matches the per-hop compositional bound).
//
// Both execute FIFO per hop over concrete per-tick service patterns and
// report the worst end-to-end delay (release at hop 0 to the job's last
// unit leaving the final hop).
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

namespace strt {

struct PipelineOutcome {
  Time max_delay{0};
  /// Per-job end-to-end delays in release order (only completed jobs).
  std::vector<Time> delays;
  bool all_completed{true};
};

/// Cut-through pipeline.  All patterns must have the same length; the
/// trace must be sorted by release.
[[nodiscard]] PipelineOutcome simulate_cut_through(
    const Trace& trace, const std::vector<ServicePattern>& hops);

/// Store-and-forward pipeline (same contract).
[[nodiscard]] PipelineOutcome simulate_store_and_forward(
    const Trace& trace, const std::vector<ServicePattern>& hops);

}  // namespace strt
