#include "sim/edf_sim.hpp"

#include <algorithm>

#include "base/assert.hpp"
#include "obs/counters.hpp"
#include "obs/span.hpp"

namespace strt {

std::vector<EdfJob> edf_jobs_of_trace(const DrtTask& task,
                                      const Trace& trace,
                                      std::size_t stream) {
  std::vector<EdfJob> jobs;
  jobs.reserve(trace.size());
  for (const SimJob& j : trace) {
    jobs.push_back(EdfJob{j.release, j.wcet,
                          j.release + task.vertex(j.vertex).deadline,
                          stream});
  }
  return jobs;
}

EdfOutcome simulate_edf(const std::vector<EdfJob>& jobs,
                        const ServicePattern& pattern) {
  const obs::Span span("sim.edf");
  static obs::Counter& c_runs = obs::counter("sim.edf.runs");
  static obs::Counter& c_jobs = obs::counter("sim.edf.jobs");
  static obs::Counter& c_ticks = obs::counter("sim.edf.ticks");
  c_runs.add(1);
  c_jobs.add(jobs.size());
  c_ticks.add(pattern.size());
  std::vector<EdfJob> sorted = jobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const EdfJob& a, const EdfJob& b) {
              return a.release < b.release;
            });

  struct Pending {
    EdfJob job;
    Work remaining;
  };
  std::vector<Pending> ready;  // kept unsorted; EDF pick is a linear scan
  EdfOutcome out;
  Work backlog(0);
  std::size_t next = 0;
  const auto H = static_cast<std::int64_t>(pattern.size());

  for (std::int64_t t = 0; t < H; ++t) {
    while (next < sorted.size() && sorted[next].release == Time(t)) {
      ready.push_back(Pending{sorted[next], sorted[next].wcet});
      backlog += sorted[next].wcet;
      ++next;
    }
    out.max_backlog = max(out.max_backlog, backlog);

    // Misses are detected at the deadline instant: a job whose absolute
    // deadline is <= t and which still has remaining work has missed.
    for (const Pending& p : ready) {
      if (p.job.absolute_deadline <= Time(t) && !out.first_miss) {
        out.first_miss = p.job;
      }
    }

    std::int64_t cap = pattern[static_cast<std::size_t>(t)];
    while (cap > 0 && !ready.empty()) {
      // Earliest absolute deadline first.
      std::size_t best = 0;
      for (std::size_t i = 1; i < ready.size(); ++i) {
        const EdfJob& a = ready[i].job;
        const EdfJob& b = ready[best].job;
        if (a.absolute_deadline != b.absolute_deadline) {
          if (a.absolute_deadline < b.absolute_deadline) best = i;
        } else if (a.release != b.release) {
          if (a.release < b.release) best = i;
        } else if (a.stream < b.stream) {
          best = i;
        }
      }
      Pending& head = ready[best];
      const std::int64_t served = std::min(cap, head.remaining.count());
      head.remaining -= Work(served);
      backlog -= Work(served);
      cap -= served;
      if (head.remaining == Work(0)) {
        if (Time(t + 1) > head.job.absolute_deadline && !out.first_miss) {
          out.first_miss = head.job;
        }
        ++out.completed;
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
      }
    }
  }
  out.all_completed = ready.empty() && next == sorted.size();
  return out;
}

}  // namespace strt
