// Cycle-accurate FIFO processing of a release trace over a concrete
// service pattern.  This is the ground-truth executor: every delay it
// observes must be covered by both the structural and the curve-based
// bound, which the test suite enforces.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

namespace strt {

struct CompletedJob {
  SimJob job;
  Time finish{0};  // end of the tick in which the job completed
  Time delay{0};   // finish - release
};

struct SimOutcome {
  std::vector<CompletedJob> jobs;  // completed jobs, in completion order
  Time max_delay{0};
  Work max_backlog{0};
  /// False if some jobs were still queued when the pattern ran out; their
  /// delays are not included in max_delay.
  bool all_completed{true};
};

/// Simulates FIFO processing: jobs queue in release order; each tick
/// serves up to pattern[t] work units from the queue head.  Releases
/// beyond the pattern's end are not admitted (all_completed = false).
/// The trace must be sorted by release time.
[[nodiscard]] SimOutcome simulate_fifo(const Trace& trace,
                                       const ServicePattern& pattern);

}  // namespace strt
