#include "sim/service.hpp"

#include "base/assert.hpp"

namespace strt {

ServicePattern pattern_constant(std::int64_t rate, Time horizon) {
  STRT_REQUIRE(rate >= 0, "rate must be non-negative");
  return ServicePattern(static_cast<std::size_t>(horizon.count()), rate);
}

ServicePattern pattern_tdma(Time slot, Time cycle, Time phase,
                            Time horizon) {
  STRT_REQUIRE(slot >= Time(1) && slot <= cycle, "bad TDMA parameters");
  STRT_REQUIRE(phase >= Time(0) && phase < cycle, "phase must be in [0,cycle)");
  ServicePattern p(static_cast<std::size_t>(horizon.count()), 0);
  for (std::size_t t = 0; t < p.size(); ++t) {
    const std::int64_t pos =
        (static_cast<std::int64_t>(t) - phase.count() % cycle.count() +
         cycle.count()) %
        cycle.count();
    if (pos < slot.count()) p[t] = 1;
  }
  return p;
}

ServicePattern pattern_periodic_server(Time budget, Time period,
                                       BudgetPlacement placement,
                                       Time horizon, Rng* rng) {
  STRT_REQUIRE(budget >= Time(1) && budget <= period,
               "bad periodic-server parameters");
  STRT_REQUIRE(placement != BudgetPlacement::kRandom || rng != nullptr,
               "random placement needs an Rng");
  ServicePattern p(static_cast<std::size_t>(horizon.count()), 0);
  const std::int64_t q = budget.count();
  const std::int64_t pp = period.count();
  for (std::int64_t k = 0; k * pp < horizon.count(); ++k) {
    std::int64_t offset = 0;  // position of the budget within period k
    switch (placement) {
      case BudgetPlacement::kEarly:
        offset = 0;
        break;
      case BudgetPlacement::kLate:
        offset = pp - q;
        break;
      case BudgetPlacement::kWorstCase:
        // Early in the first period, as late as possible afterwards:
        // realizes the Shin & Lee worst-case supply.
        offset = (k == 0) ? 0 : pp - q;
        break;
      case BudgetPlacement::kRandom:
        offset = rng->uniform_int(0, pp - q);
        break;
    }
    for (std::int64_t u = 0; u < q; ++u) {
      const std::int64_t t = k * pp + offset + u;
      if (t >= 0 && t < horizon.count()) {
        p[static_cast<std::size_t>(t)] = 1;
      }
    }
  }
  return p;
}

ServicePattern pattern_schedule(const std::vector<bool>& active,
                                Time phase, Time horizon) {
  const auto cycle = static_cast<std::int64_t>(active.size());
  STRT_REQUIRE(cycle >= 1, "schedule must have at least one tick");
  STRT_REQUIRE(phase >= Time(0) && phase < Time(cycle),
               "phase must be in [0, cycle)");
  ServicePattern p(static_cast<std::size_t>(horizon.count()), 0);
  for (std::size_t t = 0; t < p.size(); ++t) {
    const std::int64_t pos =
        (static_cast<std::int64_t>(t) + phase.count()) % cycle;
    p[t] = active[static_cast<std::size_t>(pos)] ? 1 : 0;
  }
  return p;
}

ServicePattern pattern_from_sbf(const Staircase& sbf, Time horizon) {
  STRT_REQUIRE(horizon <= sbf.horizon() || sbf.tail().has_value(),
               "sbf too short for the requested pattern");
  ServicePattern p(static_cast<std::size_t>(horizon.count()), 0);
  // The ticks are visited in order, so a forward cursor over the
  // breakpoint arrays replaces a binary search per tick; only ticks past
  // the horizon fold through the tail via value().
  const auto ts = sbf.times();
  const auto vs = sbf.values();
  std::size_t i = 0;
  Work prev = vs.front();
  for (std::int64_t t = 1; t <= horizon.count(); ++t) {
    Work cur{0};
    if (Time(t) <= sbf.horizon()) {
      while (i + 1 < ts.size() && ts[i + 1] <= Time(t)) ++i;
      cur = vs[i];
    } else {
      cur = sbf.value(Time(t));
    }
    p[static_cast<std::size_t>(t - 1)] = (cur - prev).count();
    prev = cur;
  }
  return p;
}

bool pattern_conforms(const ServicePattern& pattern, const Staircase& sbf) {
  const std::int64_t H = static_cast<std::int64_t>(pattern.size());
  std::vector<std::int64_t> cum(static_cast<std::size_t>(H) + 1, 0);
  for (std::int64_t t = 0; t < H; ++t) {
    cum[static_cast<std::size_t>(t + 1)] =
        cum[static_cast<std::size_t>(t)] + pattern[static_cast<std::size_t>(t)];
  }
  for (std::int64_t s = 0; s <= H; ++s) {
    for (std::int64_t e = s; e <= H; ++e) {
      const Work need = sbf.value(Time(e - s));
      if (cum[static_cast<std::size_t>(e)] - cum[static_cast<std::size_t>(s)] <
          need.count()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace strt
