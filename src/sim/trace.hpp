// Concrete release traces of a DRT task, for simulation.
#pragma once

#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "graph/drt.hpp"
#include "graph/explore.hpp"

namespace strt {

struct SimJob {
  Time release{0};
  Work wcet{0};
  VertexId vertex{0};
};

using Trace = std::vector<SimJob>;

/// Random walk taking every separation at its minimum (densest releases);
/// branch choice uniform.  Stops when the next release would fall beyond
/// `horizon` or the walk reaches a vertex without successors.
[[nodiscard]] Trace trace_dense_walk(const DrtTask& task, Rng& rng,
                                     Time horizon);

/// Random walk starting at `start` with min separations.
[[nodiscard]] Trace trace_dense_walk_from(const DrtTask& task, VertexId start,
                                          Rng& rng, Time horizon);

/// Random walk with slack: each separation is stretched by a uniform
/// amount in [0, max_slack] with probability `slack_prob` (a legal but
/// less adversarial run).
[[nodiscard]] Trace trace_random_walk(const DrtTask& task, Rng& rng,
                                      Time horizon, double slack_prob,
                                      Time max_slack);

/// Replay of an explorer path (e.g. the structural analysis witness).
[[nodiscard]] Trace trace_from_states(const DrtTask& task,
                                      const std::vector<PathState>& path);

}  // namespace strt
