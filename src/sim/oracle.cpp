#include "sim/oracle.hpp"

#include <functional>
#include <vector>

#include "base/assert.hpp"
#include "base/checked.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

namespace strt {

OracleResult oracle_worst_delay(const DrtTask& task, const Staircase& sbf,
                                Time elapsed_limit) {
  STRT_REQUIRE(elapsed_limit >= Time(0),
               "elapsed_limit must be non-negative");
  // Longest possible path: one job per tick plus the initial one.
  const std::int64_t max_jobs = elapsed_limit.count() + 1;
  const Work max_work =
      Work(checked::mul(max_jobs, task.max_wcet().count()));
  const Time finish_bound = sbf.inverse(max_work);
  STRT_REQUIRE(!finish_bound.is_unbounded(),
               "sbf never delivers the maximal path work");
  // Jobs may be released as late as elapsed_limit and the pattern wastes
  // idle capacity, but any window of length sbf^{-1}(max_work) after the
  // last release drains everything (the minimal pattern conforms to sbf,
  // which is superadditive).
  const Time horizon = elapsed_limit + finish_bound + Time(2);
  const ServicePattern adversary = pattern_from_sbf(sbf, horizon);

  OracleResult res;
  Trace trace;

  auto simulate_leaf = [&]() {
    ++res.paths_explored;
    const SimOutcome out = simulate_fifo(trace, adversary);
    STRT_ASSERT(out.all_completed, "oracle horizon too short");
    res.delay = max(res.delay, out.max_delay);
    res.backlog = max(res.backlog, out.max_backlog);
  };

  std::function<void(VertexId, Time)> dfs = [&](VertexId v, Time elapsed) {
    trace.push_back(SimJob{elapsed, task.vertex(v).wcet, v});
    bool extended = false;
    for (std::int32_t ei : task.out_edges(v)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time next = elapsed + e.separation;
      if (next > elapsed_limit) continue;
      extended = true;
      dfs(e.to, next);
    }
    if (!extended) simulate_leaf();  // maximal path: covers all prefixes
    trace.pop_back();
  };

  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    dfs(v, Time(0));
  }
  return res;
}

}  // namespace strt
