#include "sim/trace.hpp"

#include "base/assert.hpp"

namespace strt {

namespace {

Trace walk(const DrtTask& task, VertexId start, Rng& rng, Time horizon,
           double slack_prob, Time max_slack) {
  Trace trace;
  VertexId v = start;
  Time t(0);
  for (;;) {
    trace.push_back(SimJob{t, task.vertex(v).wcet, v});
    const auto out = task.out_edges(v);
    if (out.empty()) break;
    const DrtEdge& e =
        task.edges()[static_cast<std::size_t>(out[rng.pick_index(out.size())])];
    Time sep = e.separation;
    if (max_slack > Time(0) && rng.chance(slack_prob)) {
      sep += Time(rng.uniform_int(0, max_slack.count()));
    }
    if (t + sep > horizon) break;
    t += sep;
    v = e.to;
  }
  return trace;
}

}  // namespace

Trace trace_dense_walk(const DrtTask& task, Rng& rng, Time horizon) {
  const auto start =
      static_cast<VertexId>(rng.pick_index(task.vertex_count()));
  return walk(task, start, rng, horizon, 0.0, Time(0));
}

Trace trace_dense_walk_from(const DrtTask& task, VertexId start, Rng& rng,
                            Time horizon) {
  return walk(task, start, rng, horizon, 0.0, Time(0));
}

Trace trace_random_walk(const DrtTask& task, Rng& rng, Time horizon,
                        double slack_prob, Time max_slack) {
  STRT_REQUIRE(slack_prob >= 0.0 && slack_prob <= 1.0,
               "slack_prob must be a probability");
  STRT_REQUIRE(max_slack >= Time(0), "max_slack must be non-negative");
  const auto start =
      static_cast<VertexId>(rng.pick_index(task.vertex_count()));
  return walk(task, start, rng, horizon, slack_prob, max_slack);
}

Trace trace_from_states(const DrtTask& task,
                        const std::vector<PathState>& path) {
  Trace trace;
  trace.reserve(path.size());
  for (const PathState& s : path) {
    trace.push_back(SimJob{s.elapsed, task.vertex(s.vertex).wcet, s.vertex});
  }
  return trace;
}

}  // namespace strt
