#include "sim/fifo.hpp"

#include <deque>

#include "base/assert.hpp"

namespace strt {

SimOutcome simulate_fifo(const Trace& trace, const ServicePattern& pattern) {
  for (std::size_t i = 1; i < trace.size(); ++i) {
    STRT_REQUIRE(trace[i - 1].release <= trace[i].release,
                 "trace must be sorted by release time");
  }
  SimOutcome out;
  struct Pending {
    SimJob job;
    Work remaining;
  };
  std::deque<Pending> queue;
  Work backlog(0);
  std::size_t next = 0;
  const auto H = static_cast<std::int64_t>(pattern.size());

  for (std::int64_t t = 0; t < H; ++t) {
    // Admit releases at time t (before this tick's service).
    while (next < trace.size() && trace[next].release == Time(t)) {
      queue.push_back(Pending{trace[next], trace[next].wcet});
      backlog += trace[next].wcet;
      ++next;
    }
    out.max_backlog = max(out.max_backlog, backlog);

    std::int64_t cap = pattern[static_cast<std::size_t>(t)];
    while (cap > 0 && !queue.empty()) {
      Pending& head = queue.front();
      const std::int64_t served = std::min(cap, head.remaining.count());
      head.remaining -= Work(served);
      backlog -= Work(served);
      cap -= served;
      if (head.remaining == Work(0)) {
        CompletedJob done;
        done.job = head.job;
        done.finish = Time(t + 1);
        done.delay = done.finish - head.job.release;
        out.max_delay = max(out.max_delay, done.delay);
        out.jobs.push_back(done);
        queue.pop_front();
      }
    }
  }
  out.all_completed = queue.empty() && next == trace.size();
  return out;
}

}  // namespace strt
