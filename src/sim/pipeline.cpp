#include "sim/pipeline.hpp"

#include <deque>

#include "base/assert.hpp"

namespace strt {

namespace {

struct Chunk {
  std::size_t job;
  std::int64_t units;
};

void validate(const Trace& trace, const std::vector<ServicePattern>& hops) {
  STRT_REQUIRE(!hops.empty(), "pipeline needs at least one hop");
  for (std::size_t i = 1; i < hops.size(); ++i) {
    STRT_REQUIRE(hops[i].size() == hops[0].size(),
                 "hop patterns must share a horizon");
  }
  for (std::size_t i = 1; i < trace.size(); ++i) {
    STRT_REQUIRE(trace[i - 1].release <= trace[i].release,
                 "trace must be sorted by release time");
  }
}

void push_units(std::deque<Chunk>& queue, std::size_t job,
                std::int64_t units) {
  if (units <= 0) return;
  if (!queue.empty() && queue.back().job == job) {
    queue.back().units += units;
  } else {
    queue.push_back(Chunk{job, units});
  }
}

}  // namespace

PipelineOutcome simulate_cut_through(const Trace& trace,
                                     const std::vector<ServicePattern>& hops) {
  validate(trace, hops);
  const std::size_t n = hops.size();
  const auto H = static_cast<std::int64_t>(hops[0].size());
  std::vector<std::deque<Chunk>> queues(n);
  std::vector<std::int64_t> exited(trace.size(), 0);

  PipelineOutcome out;
  out.delays.assign(trace.size(), Time(0));
  std::vector<bool> done(trace.size(), false);
  std::size_t next = 0;
  std::size_t completed = 0;

  for (std::int64_t t = 0; t < H; ++t) {
    while (next < trace.size() && trace[next].release == Time(t)) {
      push_units(queues[0], next, trace[next].wcet.count());
      ++next;
    }
    // Hops in order: units served at hop i are available to hop i+1
    // within the same tick (cut-through).
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t cap = hops[i][static_cast<std::size_t>(t)];
      while (cap > 0 && !queues[i].empty()) {
        Chunk& head = queues[i].front();
        const std::int64_t served = std::min(cap, head.units);
        head.units -= served;
        cap -= served;
        if (i + 1 < n) {
          push_units(queues[i + 1], head.job, served);
        } else {
          exited[head.job] += served;
          if (exited[head.job] == trace[head.job].wcet.count() &&
              !done[head.job]) {
            done[head.job] = true;
            out.delays[head.job] = Time(t + 1) - trace[head.job].release;
            out.max_delay = max(out.max_delay, out.delays[head.job]);
            ++completed;
          }
        }
        if (head.units == 0) queues[i].pop_front();
      }
    }
  }
  out.all_completed = completed == trace.size();
  if (!out.all_completed) {
    // Keep only completed-job delays.
    std::vector<Time> delays;
    for (std::size_t j = 0; j < trace.size(); ++j) {
      if (done[j]) delays.push_back(out.delays[j]);
    }
    out.delays = std::move(delays);
  }
  return out;
}

PipelineOutcome simulate_store_and_forward(
    const Trace& trace, const std::vector<ServicePattern>& hops) {
  validate(trace, hops);
  const std::size_t n = hops.size();
  const auto H = static_cast<std::int64_t>(hops[0].size());

  struct Pending {
    std::size_t job;
    Work remaining;
  };
  std::vector<std::deque<Pending>> queues(n);

  PipelineOutcome out;
  std::vector<Time> finish(trace.size(), Time(0));
  std::vector<bool> done(trace.size(), false);
  std::size_t next = 0;
  std::size_t completed = 0;

  for (std::int64_t t = 0; t < H; ++t) {
    while (next < trace.size() && trace[next].release == Time(t)) {
      queues[0].push_back(Pending{next, trace[next].wcet});
      ++next;
    }
    // Jobs completed at hop i during tick t become visible to hop i+1
    // only at t+1 (a relay cannot retransmit what it is still
    // receiving), so forwards are staged and appended after the sweep.
    std::vector<std::vector<std::size_t>> staged(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t cap = hops[i][static_cast<std::size_t>(t)];
      while (cap > 0 && !queues[i].empty()) {
        Pending& head = queues[i].front();
        const std::int64_t served = std::min(cap, head.remaining.count());
        head.remaining -= Work(served);
        cap -= served;
        if (head.remaining == Work(0)) {
          const std::size_t job = head.job;
          queues[i].pop_front();
          if (i + 1 < n) {
            staged[i + 1].push_back(job);
          } else {
            done[job] = true;
            finish[job] = Time(t + 1);
            out.delays.push_back(finish[job] - trace[job].release);
            out.max_delay = max(out.max_delay, out.delays.back());
            ++completed;
          }
        }
      }
    }
    for (std::size_t i = 1; i < n; ++i) {
      for (const std::size_t job : staged[i]) {
        queues[i].push_back(Pending{job, trace[job].wcet});
      }
    }
  }
  out.all_completed = completed == trace.size();
  return out;
}

}  // namespace strt
