// Exhaustive exact worst-case delay for small instances.
//
// Enumerates every legal minimum-separation release path within the busy
// window (no dominance pruning, no abstraction) and simulates each one
// under the pointwise-minimal service pattern of the sbf -- the universal
// worst-case adversary for FIFO (any conforming run delivers at least as
// much service in every prefix).  Minimum separations are worst-case
// because delaying a release can only reduce that job's (and its
// successors') delay under FIFO with a fixed conforming pattern.
//
// Exponential in the path length; this is the test oracle the polynomial
// structural analysis is validated against, not a production analysis.
#pragma once

#include <cstdint>

#include "base/types.hpp"
#include "curves/staircase.hpp"
#include "graph/drt.hpp"

namespace strt {

struct OracleResult {
  Time delay{0};
  Work backlog{0};
  std::uint64_t paths_explored{0};
};

/// Exact worst-case delay/backlog over all release paths with span
/// <= elapsed_limit, served FIFO by the minimal pattern of `sbf`.
/// `sbf` must cover (elapsed_limit + enough slack for the last job);
/// pass a curve materialized via Supply::sbf on a generous horizon.
[[nodiscard]] OracleResult oracle_worst_delay(const DrtTask& task,
                                              const Staircase& sbf,
                                              Time elapsed_limit);

}  // namespace strt
