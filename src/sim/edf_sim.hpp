// Cycle-accurate preemptive EDF execution of multiple release traces on a
// concrete service pattern.  Ground truth for the demand-bound
// schedulability test (core/edf): a set the test accepts must never miss
// a deadline in any legal run on any conforming pattern.
#pragma once

#include <optional>
#include <vector>

#include "base/types.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

namespace strt {

/// One job with an absolute deadline.
struct EdfJob {
  Time release{0};
  Work wcet{0};
  Time absolute_deadline{0};
  std::size_t stream{0};
};

struct EdfOutcome {
  /// First deadline miss observed (job still unfinished at its absolute
  /// deadline), if any.
  std::optional<EdfJob> first_miss;
  /// Jobs completed within the pattern.
  std::size_t completed{0};
  /// True if every admitted job finished before the pattern ran out.
  bool all_completed{true};
  Work max_backlog{0};
};

/// Preemptive EDF over the merged job list (ties broken by earlier
/// release, then stream id).  Jobs must be sorted by release per stream;
/// the merged list is built internally.
[[nodiscard]] EdfOutcome simulate_edf(const std::vector<EdfJob>& jobs,
                                      const ServicePattern& pattern);

/// Convenience: turn a per-task trace into EDF jobs using the releasing
/// vertex's relative deadline.
[[nodiscard]] std::vector<EdfJob> edf_jobs_of_trace(const DrtTask& task,
                                                    const Trace& trace,
                                                    std::size_t stream);

}  // namespace strt
