// Concrete service patterns: per-tick capacities a resource actually
// delivers in one run.  Patterns are what the simulator consumes; each
// supply model has concrete generators, plus the pointwise-minimal
// pattern of an arbitrary sbf (the universal worst-case adversary used by
// the exact oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "curves/staircase.hpp"

namespace strt {

/// capacity[t] = work units the resource can serve during tick [t, t+1).
using ServicePattern = std::vector<std::int64_t>;

/// Always-on processor of integer speed `rate`.
[[nodiscard]] ServicePattern pattern_constant(std::int64_t rate,
                                              Time horizon);

/// TDMA: active during [phase + k*cycle, phase + k*cycle + slot).
[[nodiscard]] ServicePattern pattern_tdma(Time slot, Time cycle, Time phase,
                                          Time horizon);

enum class BudgetPlacement {
  kWorstCase,  // budget early in the first period, late afterwards
  kEarly,      // budget at every period start
  kLate,       // budget at every period end
  kRandom,     // uniformly random placement per period
};

/// Periodic server delivering `budget` contiguous ticks per period.
[[nodiscard]] ServicePattern pattern_periodic_server(Time budget, Time period,
                                                     BudgetPlacement placement,
                                                     Time horizon,
                                                     Rng* rng = nullptr);

/// Static cyclic schedule pattern: active ticks of the mask, shifted by
/// `phase`, repeated.
[[nodiscard]] ServicePattern pattern_schedule(const std::vector<bool>& active,
                                              Time phase, Time horizon);

/// The pointwise-minimal pattern conforming to `sbf`: capacity[t] =
/// sbf(t+1) - sbf(t).  Dominated by every conforming run, hence the
/// universal worst-case adversary for FIFO delay.
[[nodiscard]] ServicePattern pattern_from_sbf(const Staircase& sbf,
                                              Time horizon);

/// Exhaustive conformance check: every window [s, s+d) of the pattern
/// delivers at least sbf(d).  O(H^2); testing tool.
[[nodiscard]] bool pattern_conforms(const ServicePattern& pattern,
                                    const Staircase& sbf);

}  // namespace strt
