// Mode-switching engine-control task on a periodic server.
//
//   $ ./examples/engine_control
//
// Shows the recurring-branching builder, the abstraction spectrum under a
// periodic resource, and validates the structural bound against both the
// exhaustive oracle (exact on this size) and randomized simulation.

#include <iostream>

#include "core/abstractions.hpp"
#include "core/busy_window.hpp"
#include "core/structural.hpp"
#include "engine/workspace.hpp"
#include "io/table.hpp"
#include "model/recurring.hpp"
#include "sim/oracle.hpp"

using namespace strt;

namespace {

std::string show(Time t) {
  return t.is_unbounded() ? "unbounded" : std::to_string(t.count());
}

}  // namespace

int main() {
  // Control cycle: a dispatcher job branches into cruise / transient /
  // limp-home handling, each with its own demand, then restarts.
  RecurringTaskBuilder builder("engine-control");
  const VertexId dispatch = builder.set_root("dispatch", Work(2), Time(12));
  builder.add_child(dispatch, "cruise", Work(3), Time(20), Time(12));
  builder.add_child(dispatch, "transient", Work(7), Time(30), Time(12));
  builder.add_child(dispatch, "limp-home", Work(5), Time(40), Time(16));
  builder.with_global_period(Time(48));
  const DrtTask task = std::move(builder).build();
  std::cout << "Task: " << task << "\n\n";

  // The engine ECU grants this task a periodic server: 9 ticks per 20.
  const Supply server = Supply::periodic(Time(9), Time(20));
  std::cout << "Supply: " << server.describe() << "\n\n";

  engine::Workspace ws;
  Table table({"analysis", "delay", "busy window"});
  for (const WorkloadAbstraction a : kAllAbstractions) {
    const AbstractionResult r = delay_with_abstraction(ws, task, server, a);
    table.add_row({std::string(abstraction_name(a)), show(r.delay),
                   show(r.busy_window)});
  }
  table.print(std::cout);

  // Ground truth on this instance: exhaustive path enumeration under the
  // minimal conforming service pattern.
  const auto bw = busy_window(ws, task, server);
  if (!bw) {
    std::cout << "overloaded\n";
    return 1;
  }
  const OracleResult oracle = oracle_worst_delay(
      task, bw->sbf, max(Time(0), bw->length - Time(1)));
  const StructuralResult st = structural_delay(ws, task, server);
  std::cout << "\nExhaustive oracle over " << oracle.paths_explored
            << " release paths: worst delay " << oracle.delay.count()
            << " (structural bound " << st.delay.count() << ", "
            << (oracle.delay == st.delay ? "exact" : "conservative")
            << ")\n";
  return 0;
}
