// Sensitivity report: how much headroom does a deployed configuration
// have?  For every job type and every release constraint, the largest
// degradation the deadline verdict survives.
//
//   $ ./examples/sensitivity_report
//
// Also dumps the workload/supply curves as CSV for plotting.

#include <iostream>

#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "engine/workspace.hpp"
#include "graph/workload.hpp"
#include "io/curve_csv.hpp"
#include "io/table.hpp"

using namespace strt;

int main() {
  // A telemetry stream: big snapshot, then a run of deltas.
  DrtBuilder b("telemetry");
  const VertexId snap = b.add_vertex("snapshot", Work(6), Time(30));
  const VertexId delta = b.add_vertex("delta", Work(2), Time(12));
  b.add_edge(snap, delta, Time(12));
  b.add_edge(delta, delta, Time(8));
  b.add_edge(delta, snap, Time(40));
  const DrtTask task = std::move(b).build();

  const Supply supply = Supply::tdma(Time(4), Time(9));
  std::cout << "Task:   " << task << '\n';
  std::cout << "Supply: " << supply.describe() << "\n\n";

  engine::Workspace ws;
  const StructuralResult base = structural_delay(ws, task, supply);
  std::cout << "Worst-case delay " << base.delay.count()
            << ", per-vertex delays:";
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    std::cout << "  " << task.vertex(v).name << "="
              << base.vertex_delays[static_cast<std::size_t>(v)].count()
              << "/" << task.vertex(v).deadline.count();
  }
  std::cout << "\nDeadline verdict: "
            << (base.meets_vertex_deadlines ? "PASS" : "FAIL") << "\n\n";

  const SensitivityReport rep = sensitivity_analysis(ws, task, supply);
  if (!rep.feasible) {
    std::cout << "Configuration infeasible; nothing to report.\n";
    return 1;
  }

  Table wcet({"job type", "wcet", "deadline", "worst delay", "wcet slack"});
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    const Work slack = rep.wcet_slack[static_cast<std::size_t>(v)];
    std::string slack_cell = "unbounded";
    if (!slack.is_unbounded()) {
      slack_cell = "+";
      slack_cell += std::to_string(slack.count());
    }
    wcet.add_row(
        {task.vertex(v).name, std::to_string(task.vertex(v).wcet.count()),
         std::to_string(task.vertex(v).deadline.count()),
         std::to_string(
             base.vertex_delays[static_cast<std::size_t>(v)].count()),
         std::move(slack_cell)});
  }
  wcet.print(std::cout);

  std::cout << '\n';
  Table sep({"constraint", "separation", "separation slack"});
  for (std::size_t i = 0; i < task.edge_count(); ++i) {
    const DrtEdge& e = task.edges()[i];
    std::string slack_cell = "-";
    slack_cell += std::to_string(rep.separation_slack[i].count());
    sep.add_row({task.vertex(e.from).name + " -> " + task.vertex(e.to).name,
                 std::to_string(e.separation.count()),
                 std::move(slack_cell)});
  }
  sep.print(std::cout);

  // Plot-ready curves: workload vs supply over the busy window.
  const Staircase wl = rbf(task, base.busy_window);
  const Staircase sv = supply.sbf(max(base.busy_window,
                                      supply.min_horizon()));
  std::cout << "\nCurves (CSV, t in [0, busy window]):\n";
  write_curves_csv(std::cout,
                   {CurveSeries{"rbf", &wl}, CurveSeries{"sbf", &sv}},
                   base.busy_window);
  return 0;
}
