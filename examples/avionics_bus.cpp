// Avionics-style shared bus: several message streams with structure
// (periodic status, GMF-shaped sensor bursts, a mode-switching command
// stream) share one TDMA-partitioned bus under fixed priorities.
//
//   $ ./examples/avionics_bus
//
// Demonstrates the multi-task fixed-priority analysis: per-stream delay
// bounds (structural vs exact-curve leftover analysis), and a random
// co-simulation that validates the bounds end to end.

#include <iostream>
#include <vector>

#include "core/fixed_priority.hpp"
#include "engine/workspace.hpp"
#include "io/table.hpp"
#include "model/gmf.hpp"
#include "model/sporadic.hpp"
#include "sim/fifo.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

using namespace strt;

int main() {
  // Priority-ordered streams (index 0 = highest).
  std::vector<DrtTask> streams;

  // 1. Flight-critical periodic status words: small, frequent.
  streams.push_back(SporadicTask{"status", Work(2), Time(16), Time(16)}
                        .to_drt());

  // 2. Sensor frames: a GMF ring alternating a big calibrated frame and
  //    two small delta frames.
  streams.push_back(GmfTask("sensor", {GmfFrame{Work(8), Time(60), Time(30)},
                                       GmfFrame{Work(2), Time(20), Time(15)},
                                       GmfFrame{Work(2), Time(20), Time(15)}})
                        .to_drt());

  // 3. Command stream: a burst of reconfiguration messages followed by a
  //    long quiet period -- classic structural workload.
  DrtBuilder cmd("command");
  const VertexId burst = cmd.add_vertex("reconfig", Work(6), Time(80));
  const VertexId ack = cmd.add_vertex("ack", Work(1), Time(20));
  cmd.add_edge(burst, ack, Time(8));
  cmd.add_edge(ack, ack, Time(8));
  cmd.add_edge(ack, burst, Time(90));
  streams.push_back(std::move(cmd).build());

  // The bus: this partition owns 9 of every 16 ticks.
  const Supply bus = Supply::tdma(Time(9), Time(16));
  std::cout << "Bus partition: " << bus.describe() << "\n\n";

  engine::Workspace ws;
  const FpResult res = fixed_priority_analysis(ws, streams, bus);
  if (res.overloaded) {
    std::cout << "Partition overloaded -- no finite bounds.\n";
    return 1;
  }

  Table table({"stream", "prio", "busy win", "structural delay",
               "curve delay", "backlog"});
  for (const FpTaskResult& t : res.tasks) {
    table.add_row({streams[t.task_index].name(),
                   std::to_string(t.task_index),
                   std::to_string(t.busy_window.count()),
                   std::to_string(t.structural_delay.count()),
                   std::to_string(t.curve_delay.count()),
                   std::to_string(t.structural_backlog.count())});
  }
  table.print(std::cout);
  std::cout << "\nSystem-level busy window: "
            << res.system_busy_window.count() << " ticks\n\n";

  // Co-simulation: random legal runs of all three streams, preemptive
  // fixed priority on the bus slot pattern, check observed delays.
  Rng rng(20260706);
  Time worst_observed(0);
  const Time horizon(4000);
  const ServicePattern slots =
      pattern_tdma(Time(9), Time(16), Time(0), horizon);
  for (int run = 0; run < 50; ++run) {
    std::vector<Trace> traces;
    traces.reserve(streams.size());
    for (const DrtTask& t : streams) {
      traces.push_back(
          trace_random_walk(t, rng, Time(3500), 0.3, Time(12)));
    }
    std::vector<std::size_t> next(streams.size(), 0);
    struct Pending {
      Time release;
      Work remaining;
    };
    std::vector<std::vector<Pending>> queues(streams.size());
    bool bound_ok = true;
    for (std::int64_t t = 0; t < horizon.count(); ++t) {
      for (std::size_t i = 0; i < streams.size(); ++i) {
        while (next[i] < traces[i].size() &&
               traces[i][next[i]].release == Time(t)) {
          queues[i].push_back(Pending{Time(t), traces[i][next[i]].wcet});
          ++next[i];
        }
      }
      std::int64_t cap = slots[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; cap > 0 && i < streams.size(); ++i) {
        while (cap > 0 && !queues[i].empty()) {
          Pending& head = queues[i].front();
          const std::int64_t served =
              std::min(cap, head.remaining.count());
          head.remaining -= Work(served);
          cap -= served;
          if (head.remaining == Work(0)) {
            const Time delay = Time(t + 1) - head.release;
            worst_observed = max(worst_observed, delay);
            if (delay > res.tasks[i].structural_delay) bound_ok = false;
            queues[i].erase(queues[i].begin());
          }
        }
      }
    }
    if (!bound_ok) {
      std::cout << "BOUND VIOLATION in run " << run << " -- bug!\n";
      return 1;
    }
  }
  std::cout << "50 random co-simulations: all observed delays within "
               "bounds (worst observed "
            << worst_observed.count() << " ticks).\n";
  return 0;
}
