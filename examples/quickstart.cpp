// Quickstart: model a structural workload, give it a TDMA slice, and
// compare the structural delay bound against the classical curve-based
// abstractions.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface: task construction, supply
// models, the structural analysis with its witness path, the abstraction
// spectrum, and DOT export.

#include <iostream>

#include "core/abstractions.hpp"
#include "core/structural.hpp"
#include "engine/workspace.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "svc/api.hpp"

using namespace strt;

namespace {

std::string show(Time t) {
  return t.is_unbounded() ? "unbounded" : std::to_string(t.count());
}

}  // namespace

int main() {
  // A small engine-management-style task: a heavy mode-change job (M)
  // followed by either a fast control loop (F) or a slow diagnostic (S),
  // cycling back to the mode change.
  DrtBuilder builder("engine");
  const VertexId m = builder.add_vertex("M", Work(9), Time(40));
  const VertexId f = builder.add_vertex("F", Work(2), Time(10));
  const VertexId s = builder.add_vertex("S", Work(4), Time(25));
  builder.add_edge(m, f, Time(10));
  builder.add_edge(f, f, Time(10));
  builder.add_edge(f, s, Time(12));
  builder.add_edge(s, m, Time(25));
  builder.add_edge(m, s, Time(14));
  const DrtTask task = std::move(builder).build();

  std::cout << "Task: " << task << "\n\n";
  std::cout << "Graphviz (pipe into `dot -Tpng`):\n" << to_dot(task) << '\n';

  // The resource: 4 ticks of a shared bus out of every 9.
  const Supply supply = Supply::tdma(Time(4), Time(9));
  std::cout << "Supply: " << supply.describe()
            << "  (long-run rate " << supply.long_run_rate().to_string()
            << ")\n\n";

  // The structural analysis, through the unified request API: one
  // AnalysisRequest in, one validated + analyzed AnalysisOutcome back.
  svc::AnalysisRequest request;
  request.kind = svc::AnalysisKind::kStructural;
  request.tasks = {task};
  request.supply = supply;
  request.want_witness = true;
  const svc::AnalysisOutcome outcome = svc::run_request(request);
  if (!outcome.ok()) {
    std::cerr << "analysis failed (" << svc::status_name(outcome.status)
              << "): " << outcome.error << '\n';
    outcome.diagnostics.print(std::cerr);
    return 1;
  }
  const StructuralResult& st = *outcome.structural();
  std::cout << "Structural worst-case delay : " << show(st.delay) << '\n';
  std::cout << "Structural backlog bound    : " << st.backlog.count() << '\n';
  std::cout << "Busy window                 : " << show(st.busy_window)
            << '\n';
  std::cout << "Explorer stats              : " << st.stats.generated
            << " generated, " << st.stats.expanded << " expanded, "
            << st.stats.pruned << " pruned\n\n";

  std::cout << "Witness release path (job, release, cumulative work, latest "
               "finish, delay):\n";
  for (const WitnessJob& j : st.witness) {
    std::cout << "  " << j.vertex << "  r=" << j.release.count()
              << "  W=" << j.cumulative.count()
              << "  f<=" << j.latest_finish.count()
              << "  d=" << j.delay.count() << '\n';
  }
  std::cout << '\n';

  // The abstraction spectrum: what coarser analyses would report.  These
  // share one memoized workspace, so the task's curves compute once.
  engine::Workspace ws;
  Table table({"analysis", "delay", "backlog", "busy window"});
  for (const WorkloadAbstraction a : kAllAbstractions) {
    const AbstractionResult r = delay_with_abstraction(ws, task, supply, a);
    table.add_row({std::string(abstraction_name(a)), show(r.delay),
                   r.backlog.is_unbounded() ? "unbounded"
                                            : std::to_string(r.backlog.count()),
                   show(r.busy_window)});
  }
  table.print(std::cout);
  std::cout << "\nNote: structural == exact-curve is a theorem for a single "
               "stream;\nthe hull/bucket/min-gap rows show what classical "
               "curve tools give up.\n";
  return 0;
}
