// Batch analysis server driver: read a stream of analysis requests, serve
// them from one long-lived svc::Service, and emit one structured report
// line per request plus a run summary.
//
//   $ ./examples/strt_serve <requests-file> [--format jsonl|csv]
//   $ ./examples/strt_serve                 # runs a built-in demo stream
//
// Output is JSON lines (schema strt.obs.report.v2, see README
// "Observability"): one line per request -- id, kind, status, headline
// result fields, diagnostics, queue/run wall times, batch key and size,
// the cache delta, and the request's span trace -- followed by one
// summary line with the service totals.  With `--report out.json` the
// lines are appended to the file instead and a human-readable table goes
// to stdout.  With `--telemetry-dir DIR` live telemetry (metrics.prom,
// events.jsonl, Perfetto-loadable trace.json) is exported under DIR;
// the flag also turns the observability registry on.
//
// Request stream formats (see src/svc/request_stream.hpp):
//
//   jsonl  one JSON object per line:
//          {"id": 1, "kind": "structural", "supply": "tdma slot 3 cycle 8",
//           "task": "task t\nvertex A wcet 2 deadline 10\nedge A A sep 10"}
//          optional: "tasks" (array of task texts), "max_states",
//          "progress_every", "prune", "want_witness", "max_paths",
//          "delay_cap", "max_wcet_growth", "deadline_ms"
//   csv    id,kind,supply,task_file[,task_file...]; task files are
//          resolved relative to --task-dir
//
// Malformed lines do not stop the stream: each yields a report line with
// status "invalid" carrying the parse diagnostics.
//
// Service knobs: --queue N (admission queue bound), --batch N (dispatch
// window), --shards N (worker shard count; defaults to the STRT_SHARDS
// environment variable, else 1), --no-batch (no fingerprint grouping),
// --serial (no parallel batch tail), --no-cache (cold workspace
// ablation), --threads N, --snapshot PATH (persistent warm-start cache:
// loaded at startup, saved crash-safe at every drain and at shutdown;
// defaults to STRT_SNAPSHOT), --cache-budget BYTES (interned-curve bytes
// budget with K/M/G suffixes, e.g. 64M; defaults to STRT_CACHE_BUDGET).
// Results are bit-identical across all of these; only the timings move.
// The summary report line embeds the resolved effective configuration
// under "config" (flag > STRT_* env > default, per knob).  --coarsen G switches every structural
// request to the coarse-first certified path at starting granularity G
// (reports carry structural.certified_error); that one is an
// approximation knob, not an ablation.
//
// --lockdep-report prints the lock-order analysis summary (src/race/
// lockdep.hpp) after the run; in a -DSTRT_LOCKDEP=ON build any detected
// inversion is also a nonzero exit.  The CI race leg serves the demo
// stream this way and requires "0 cycle(s)".

#include <algorithm>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/config.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "io/table.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "race/lockdep.hpp"
#include "svc/request_stream.hpp"
#include "svc/service.hpp"

using namespace strt;

namespace {

// Two structural requests over the same task system (they share one
// fingerprint batch and every memo), plus one request of each remaining
// kind over a clean two-task set.
constexpr const char* kDemoStream = R"(# strt_serve demo request stream
{"id": 1, "kind": "structural", "supply": "tdma slot 3 cycle 8", "task": "task cruise\nvertex A wcet 2 deadline 10\nvertex B wcet 3 deadline 12\nedge A B sep 10\nedge B A sep 15"}
{"id": 2, "kind": "structural", "supply": "tdma slot 3 cycle 8", "task": "task cruise\nvertex A wcet 2 deadline 10\nvertex B wcet 3 deadline 12\nedge A B sep 10\nedge B A sep 15", "want_witness": true}
{"id": 3, "kind": "sensitivity", "supply": "tdma slot 3 cycle 8", "task": "task cruise\nvertex A wcet 2 deadline 10\nvertex B wcet 3 deadline 12\nedge A B sep 10\nedge B A sep 15"}
{"id": 4, "kind": "fp", "supply": "dedicated rate 1", "tasks": ["task hi\nvertex H wcet 1 deadline 6\nedge H H sep 6", "task lo\nvertex L wcet 2 deadline 14\nedge L L sep 14"]}
{"id": 5, "kind": "edf", "supply": "dedicated rate 1", "tasks": ["task hi\nvertex H wcet 1 deadline 6\nedge H H sep 6", "task lo\nvertex L wcet 2 deadline 14\nedge L L sep 14"]}
{"id": 6, "kind": "joint_fp", "supply": "dedicated rate 1", "tasks": ["task hi\nvertex H wcet 1 deadline 6\nedge H H sep 6", "task lo\nvertex L wcet 2 deadline 14\nedge L L sep 14"]}
{"id": 7, "kind": "audsley", "supply": "dedicated rate 1", "tasks": ["task hi\nvertex H wcet 1 deadline 6\nedge H H sep 6", "task lo\nvertex L wcet 2 deadline 14\nedge L L sep 14"]}
)";

/// Report line for a request that never reached the service (parse
/// failure): status invalid + the stream diagnostics.
/// Lockdep-to-telemetry bridge: each lock-order inversion bumps the
/// race.lock_cycles counter and lands on stderr the moment it is
/// detected, not only in the end-of-run --lockdep-report summary.
void on_lock_cycle(const race::LockCycle& cycle) {
  obs::counter("race.lock_cycles").add();
  std::cerr << cycle.message << '\n';
}

svc::AnalysisOutcome parse_failure_outcome(const svc::RequestParse& parse) {
  svc::AnalysisOutcome out;
  out.status = svc::OutcomeStatus::kInvalid;
  out.error = "request stream parse failed";
  out.diagnostics = parse.diagnostics;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string format_name = "jsonl";
  std::string task_dir;
  svc::ServiceOptions sopts;
  std::int64_t coarsen_g = 0;
  bool lockdep_report = false;
  std::vector<std::string> args;

  race::lockdep_set_cycle_hook(&on_lock_cycle);

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const auto next_value = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires " << what << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--report") {
      report_path = next_value("a file path");
    } else if (arg == "--format") {
      format_name = next_value("jsonl or csv");
    } else if (arg == "--task-dir") {
      task_dir = next_value("a directory");
    } else if (arg == "--queue") {
      sopts.queue_capacity = std::stoull(next_value("a count"));
    } else if (arg == "--batch") {
      sopts.max_batch = std::stoull(next_value("a count"));
    } else if (arg == "--shards") {
      sopts.shards = std::stoull(next_value("a count"));
    } else if (arg == "--no-batch") {
      sopts.batch_by_fingerprint = false;
    } else if (arg == "--serial") {
      sopts.parallel_batches = false;
    } else if (arg == "--no-cache") {
      sopts.caching = false;
    } else if (arg == "--snapshot") {
      sopts.snapshot_path = next_value("a file path");
    } else if (arg == "--cache-budget") {
      const std::string text = next_value("a byte count (e.g. 64M)");
      const std::optional<std::uint64_t> bytes = cfg::parse_bytes(text);
      if (!bytes || *bytes == 0) {
        std::cerr << "--cache-budget: cannot parse '" << text << "'\n";
        return 2;
      }
      sopts.cache_bytes_budget = *bytes;
    } else if (arg == "--coarsen") {
      coarsen_g = std::stoll(next_value("a granularity"));
      if (coarsen_g < 1) {
        std::cerr << "--coarsen granularity must be >= 1\n";
        return 2;
      }
    } else if (arg == "--threads") {
      exec::set_thread_count(std::stoull(next_value("a count")));
    } else if (arg == "--lockdep-report") {
      // Print the lock-order analysis summary after the run.  Only a
      // -DSTRT_LOCKDEP=ON build records acquisitions; elsewhere the
      // report shows zeros (and, correctly, zero cycles).
      lockdep_report = true;
    } else if (arg == "--telemetry-dir") {
      sopts.telemetry_dir = next_value("a directory");
      // Live export is only useful with the registry on: histograms and
      // counters would otherwise stay empty.
      obs::set_enabled(true);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n"
                << "usage: strt_serve [requests-file] [--format jsonl|csv] "
                   "[--task-dir DIR] [--report out.json] [--queue N] "
                   "[--batch N] [--shards N] [--no-batch] [--serial] "
                   "[--no-cache] [--snapshot PATH] [--cache-budget BYTES] "
                   "[--threads N] [--telemetry-dir DIR] "
                   "[--coarsen G] [--lockdep-report]\n";
      return 2;
    } else {
      args.push_back(arg);
    }
  }

  const std::optional<svc::StreamFormat> format =
      svc::format_from_name(format_name);
  if (!format) {
    std::cerr << "unknown format '" << format_name
              << "' (expected jsonl or csv)\n";
    return 2;
  }

  // Parse the whole stream up front; the parses keep input order.
  std::vector<svc::RequestParse> parses;
  if (args.empty()) {
    std::istringstream demo(kDemoStream);
    parses = svc::read_request_stream(demo, *format, task_dir);
  } else {
    std::ifstream in(args[0]);
    if (!in) {
      std::cerr << "cannot open requests file '" << args[0] << "'\n";
      return 2;
    }
    parses = svc::read_request_stream(in, *format, task_dir);
  }

  if (coarsen_g > 0) {
    for (svc::RequestParse& parse : parses) {
      if (parse.request) parse.request->common.coarsen_g = Time(coarsen_g);
    }
  }

  // Serve everything through one long-lived service: submit in input
  // order (blocking admission = backpressure), collect in input order.
  // Dispatch starts paused so the whole stream lands in one dispatch
  // window and fingerprint batching is visible; once any shard's ring
  // could be about to fill -- every request might route to one shard --
  // dispatch resumes (a blocking submit on a paused full ring would
  // never unblock).
  sopts.start_paused = true;
  svc::Service service(sopts);
  const std::size_t per_shard_capacity = std::max<std::size_t>(
      1, service.options().queue_capacity / service.shard_count());
  std::vector<std::optional<std::future<svc::AnalysisOutcome>>> futures;
  futures.reserve(parses.size());
  std::size_t queued = 0;
  for (const svc::RequestParse& parse : parses) {
    if (parse.request) {
      if (queued == per_shard_capacity) service.resume();
      futures.push_back(service.submit(*parse.request));
      ++queued;
    } else {
      futures.push_back(std::nullopt);
    }
  }
  service.resume();

  std::ofstream report_file;
  if (!report_path.empty()) {
    report_file.open(report_path, std::ios::app);
    if (!report_file) {
      std::cerr << "cannot open report file '" << report_path << "'\n";
      return 2;
    }
  }
  std::ostream& lines = report_path.empty() ? std::cout : report_file;

  Table table({"id", "kind", "status", "queue us", "run us", "batch",
               "cache hits"});
  std::uint64_t ok = 0;
  std::uint64_t invalid = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  std::int64_t total_queue_us = 0;
  std::int64_t total_run_us = 0;
  for (std::size_t i = 0; i < parses.size(); ++i) {
    const svc::AnalysisOutcome outcome =
        futures[i] ? futures[i]->get() : parse_failure_outcome(parses[i]);
    switch (outcome.status) {
      case svc::OutcomeStatus::kOk: ++ok; break;
      case svc::OutcomeStatus::kInvalid: ++invalid; break;
      case svc::OutcomeStatus::kDeadlineExpired: ++expired; break;
      case svc::OutcomeStatus::kCancelled: ++cancelled; break;
      default: ++errors; break;
    }
    total_queue_us += outcome.stats.queue_us;
    total_run_us += outcome.stats.run_us;
    obs::RunReport line("strt_serve.request");
    outcome.append_to_report(line);
    line.set_trace(outcome.trace);
    line.write_json_line(lines);
    table.add_row({std::to_string(outcome.id),
                   std::string(svc::kind_name(outcome.kind)),
                   std::string(svc::status_name(outcome.status)),
                   std::to_string(outcome.stats.queue_us),
                   std::to_string(outcome.stats.run_us),
                   std::to_string(outcome.stats.batch_size),
                   std::to_string(outcome.stats.cache_hits)});
  }
  service.drain();

  // Run summary: service totals, the shared workspace's cache numbers,
  // and (under STRT_OBS=1) the global counters and span profile.
  const svc::ServiceStats stats = service.stats();
  const engine::WorkspaceStats cache = service.workspace().stats();
  obs::RunReport summary("strt_serve.summary");
  summary.put("requests", static_cast<std::int64_t>(parses.size()));
  summary.put("ok", ok);
  summary.put("invalid", invalid);
  summary.put("deadline_expired", expired);
  summary.put("cancelled", cancelled);
  summary.put("errors", errors);
  summary.put("svc.shards", static_cast<std::int64_t>(service.shard_count()));
  summary.put("svc.submitted", stats.submitted);
  summary.put("svc.served", stats.served);
  summary.put("svc.batches", stats.batches);
  summary.put("svc.batched_requests", stats.batched_requests);
  summary.put("svc.total_queue_us", total_queue_us);
  summary.put("svc.total_run_us", total_run_us);
  summary.put("cache.enabled", service.workspace().caching());
  summary.put("cache.hits", static_cast<std::int64_t>(cache.hits));
  summary.put("cache.misses", static_cast<std::int64_t>(cache.misses));
  summary.put("cache.bytes", static_cast<std::int64_t>(cache.bytes));
  summary.put("cache.evictions", static_cast<std::int64_t>(cache.evictions));
  if (!service.options().snapshot_path.empty()) {
    summary.put("snapshot.path", service.options().snapshot_path);
  }
  // The exact configuration this run resolved (flag > STRT_* env >
  // default, per knob), so a report is reproducible on its own.
  summary.put_json("config", cfg::effective_config_json());
  summary.capture();
  summary.write_json_line(lines);

  if (!report_path.empty()) {
    table.print(std::cout);
    std::cout << "\nServed " << stats.served << " of " << parses.size()
              << " request(s) in " << stats.batches << " batch(es); "
              << "reports appended to " << report_path << '\n';
  }
  // The lock-order verdict covers everything above: service lifecycle,
  // sharded dispatch, workspace stripes, telemetry export.  A detected
  // inversion is a hard failure, same as an analysis error.
  const race::LockdepStats lockdep = race::lockdep_stats();
  if (lockdep_report) {
    std::cout << race::lockdep_report();
  }
  return errors > 0 || lockdep.cycles > 0 ? 1 : 0;
}
