// strt-lint: standalone domain linter for structural workload inputs.
//
//   $ ./examples/strt_lint task1.task task2.task
//   $ ./examples/strt_lint --supply "tdma slot 3 cycle 8" system.task
//   $ ./examples/strt_lint --curve points.csv
//   $ ./examples/strt_lint --codes
//
// Every file is parsed with the diagnostic-collecting io layer, linted
// with the strt::check passes, and the findings printed one per line as
//
//     <file>: error[parse.invalid-value] line 2: ...
//
// When several task files are given, cross-task rules (set.overutilized,
// set.duplicate-task) run over the whole set; with --supply the combined
// workload is also gated against that supply (supply.overload) and the
// supply curve itself is linted.  --curve switches the remaining files to
// `time,value` CSV curve samples (curve.negative, curve.non-monotone).
//
// Exit code: 0 clean or warnings only, 1 any error (or any warning with
// --strict), 2 usage/IO problems.  --codes prints the full diagnostic
// registry and exits 0.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "io/curve_csv.hpp"
#include "io/parse.hpp"

using namespace strt;

namespace {

int print_codes() {
  for (const check::CodeInfo& info : check::all_codes()) {
    std::cout << check::severity_name(info.severity) << '[' << info.code
              << "]: " << info.summary << '\n';
  }
  return 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

void print_prefixed(const std::string& prefix, const check::CheckResult& r) {
  for (const check::Diagnostic& d : r.diagnostics()) {
    std::cerr << prefix << ": " << d << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool curve_mode = false;
  std::string supply_text;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--codes") return print_codes();
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--curve") {
      curve_mode = true;
    } else if (arg == "--supply") {
      if (i + 1 >= argc) {
        std::cerr << "--supply requires a spec string\n";
        return 2;
      }
      supply_text = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: strt_lint [--strict] [--curve] "
                 "[--supply \"<spec>\"] <file>... | --codes\n";
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  const auto tally = [&](const check::CheckResult& r) {
    errors += r.error_count();
    warnings += r.warning_count();
  };

  std::vector<DrtTask> tasks;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "cannot open '" << path << "'\n";
      return 2;
    }
    if (curve_mode) {
      const CurveReadResult res = read_curve_points_csv(text);
      print_prefixed(path, res.diagnostics);
      tally(res.diagnostics);
    } else {
      ParseResult res = parse_task_checked(text);
      print_prefixed(path, res.diagnostics);
      tally(res.diagnostics);
      if (res.task) tasks.push_back(std::move(*res.task));
    }
  }

  if (tasks.size() > 1) {
    const check::CheckResult r = check::check_task_set(tasks);
    print_prefixed("task set", r);
    tally(r);
  }
  if (!supply_text.empty()) {
    const SupplyParseResult sup = parse_supply_checked(supply_text);
    print_prefixed("supply", sup.diagnostics);
    tally(sup.diagnostics);
    if (sup.supply && !tasks.empty()) {
      const check::CheckResult sys = check::check_system(tasks, *sup.supply);
      print_prefixed("system", sys);
      tally(sys);
      const check::CheckResult curve =
          check::check_supply_curve(sup.supply->sbf(sup.supply->min_horizon()));
      print_prefixed("supply", curve);
      tally(curve);
    }
  }

  std::cerr << errors << " error(s), " << warnings << " warning(s)\n";
  if (errors > 0 || (strict && warnings > 0)) return 1;
  return 0;
}
