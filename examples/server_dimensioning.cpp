// Server dimensioning: the practical payoff of the tighter analysis.
//
//   $ ./examples/server_dimensioning
//
// For a bursty structural workload and a delay requirement, binary-search
// the minimal TDMA slot / periodic budget each analysis in the
// abstraction spectrum can certify.  The difference is bus/CPU capacity
// that coarser analyses would force you to reserve for nothing.

#include <iostream>

#include "core/dimensioning.hpp"
#include "engine/workspace.hpp"
#include "io/table.hpp"

using namespace strt;

namespace {

std::string show_opt(const std::optional<Time>& t) {
  return t ? std::to_string(t->count()) : "infeasible";
}

}  // namespace

int main() {
  // Diagnostics burst followed by a long quiet cycle.
  DrtBuilder b("diagnostics");
  const VertexId big = b.add_vertex("dump", Work(12), Time(200));
  const VertexId small = b.add_vertex("poll", Work(2), Time(40));
  b.add_edge(big, small, Time(15));
  b.add_edge(small, small, Time(15));
  b.add_edge(small, big, Time(150));
  const DrtTask task = std::move(b).build();
  std::cout << "Task: " << task << "\n\n";

  const Time cycle(25);
  const Time period(25);
  const Time deadline(85);
  std::cout << "Requirement: worst-case delay <= " << deadline.count()
            << " ticks\n\n";

  Table tdma({"analysis", "min TDMA slot / " + std::to_string(cycle.count()),
              "share"});
  Table server({"analysis",
                "min server budget / " + std::to_string(period.count()),
                "share"});
  engine::Workspace ws;
  for (const WorkloadAbstraction a : kAllAbstractions) {
    const auto slot = min_tdma_slot(ws, task, cycle, deadline, a);
    const auto budget = min_periodic_budget(ws, task, period, deadline, a);
    auto share = [&](const std::optional<Time>& v, Time total) {
      return v ? fmt_ratio(100.0 * static_cast<double>(v->count()) /
                           static_cast<double>(total.count()),
                           1) +
                     "%"
               : "-";
    };
    tdma.add_row({std::string(abstraction_name(a)), show_opt(slot),
                  share(slot, cycle)});
    server.add_row({std::string(abstraction_name(a)), show_opt(budget),
                    share(budget, period)});
  }
  std::cout << "TDMA dimensioning:\n";
  tdma.print(std::cout);
  std::cout << "\nPeriodic-server dimensioning:\n";
  server.print(std::cout);
  std::cout << "\nEvery slot/budget unit the coarser rows demand beyond the "
               "structural row\nis capacity wasted by forgetting the "
               "workload's structure.\n";
  return 0;
}
