// End-to-end pipeline: a bursty sensor stream crosses a gateway CPU
// slice, a backbone TDMA slot, and a device-side periodic server.
//
//   $ ./examples/pipeline
//
// Compares the end-to-end structural / pay-burst-only-once bound against
// the classical per-hop composition, shows the propagated output arrival
// curves, and replays a recorded trace through the pipeline.

#include <iostream>

#include "core/chain.hpp"
#include "engine/workspace.hpp"
#include "graph/workload.hpp"
#include "io/table.hpp"
#include "io/trace_io.hpp"
#include "sim/pipeline.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"

using namespace strt;

int main() {
  // Camera frames: a key frame then a burst of delta frames, repeating.
  DrtBuilder b("camera");
  const VertexId key = b.add_vertex("key", Work(9), Time(120));
  const VertexId delta = b.add_vertex("delta", Work(2), Time(40));
  b.add_edge(key, delta, Time(12));
  b.add_edge(delta, delta, Time(12));
  b.add_edge(delta, key, Time(60));
  const DrtTask task = std::move(b).build();

  const std::vector<Supply> hops{
      Supply::bounded_delay(Rational(2, 3), Time(3)),  // gateway CPU slice
      Supply::tdma(Time(5), Time(12)),                 // backbone slot
      Supply::periodic(Time(6), Time(14)),             // device server
  };

  std::cout << "Stream: " << task << "\nPipeline:";
  for (const Supply& h : hops) std::cout << "  [" << h.describe() << "]";
  std::cout << "\n\n";

  engine::Workspace ws;
  const ChainResult res = chain_delay(ws, task, hops);
  if (res.overloaded) {
    std::cout << "Pipeline overloaded.\n";
    return 1;
  }

  Table table({"analysis", "end-to-end delay"});
  table.add_row({"structural (convolved service)",
                 std::to_string(res.structural.count())});
  table.add_row({"curve PBOO", std::to_string(res.pboo.count())});
  table.add_row({"per-hop sum", std::to_string(res.per_hop_sum.count())});
  table.print(std::cout);

  std::cout << "\nPer-hop delays (compositional): ";
  for (std::size_t i = 0; i < res.hop_delays.size(); ++i) {
    std::cout << (i ? " + " : "") << res.hop_delays[i].count();
  }
  std::cout << " = " << res.per_hop_sum.count()
            << "  (burst re-paid per hop)\n";
  std::cout << "Busy window of the chain: " << res.busy_window.count()
            << " ticks\n\n";

  // Replay a dense recorded run under both forwarding semantics, each
  // against its own bound.
  Rng rng(42);
  const Trace trace = trace_dense_walk(task, rng, Time(240));
  std::cout << "Recorded run (" << trace.size()
            << " jobs, replayable via io/trace_io):\n"
            << serialize_trace(trace);

  const Time horizon(1200);
  std::vector<ServicePattern> patterns;
  for (const Supply& hop : hops) {
    patterns.push_back(
        pattern_from_sbf(hop.sbf(hop.min_horizon() * 2).extended(horizon),
                         horizon));
  }
  const PipelineOutcome ct = simulate_cut_through(trace, patterns);
  const PipelineOutcome sf = simulate_store_and_forward(trace, patterns);
  std::cout << "\nCut-through replay:       observed " << ct.max_delay.count()
            << "  (convolution bound " << res.structural.count() << ")\n";
  std::cout << "Store-and-forward replay: observed " << sf.max_delay.count()
            << "  (per-hop-sum bound " << res.per_hop_sum.count() << ")\n";
  const bool ok = ct.all_completed && sf.all_completed &&
                  ct.max_delay <= res.structural &&
                  sf.max_delay <= res.per_hop_sum;
  std::cout << (ok ? "Both bounds hold.\n" : "BOUND VIOLATION -- bug!\n");
  return ok ? 0 : 1;
}
