// File-driven analysis: read a task description and a supply description,
// run the full abstraction spectrum, print the verdict.
//
//   $ ./examples/analyze_file <task-file> "<supply spec>" [deadline]
//   $ ./examples/analyze_file            # runs a built-in demo input
//
// With `--report out.json` (anywhere on the command line) a structured
// run report -- analysis inputs/outputs, cache statistics, observability
// counters, and the timing-span tree -- is appended to `out.json` as one
// JSON line (schema strt.obs.report.v2, see README "Observability").
// Set STRT_OBS=1 to populate the counters and spans; the report is
// written either way.
//
// `--no-cache` disables the engine workspace memoization (results are
// bit-identical; useful for ablations) and `--threads N` pins the exec
// pool size (0 = hardware default).
//
// `--snapshot PATH` warm-starts the workspace from a persistent snapshot
// (strt.engine.snapshot.v1; missing or rejected files cold-start clean)
// and saves the warmed state back before exiting; `--cache-budget BYTES`
// bounds the interned-curve storage ("64M"-style suffixes).  Both
// default to the STRT_SNAPSHOT / STRT_CACHE_BUDGET environment
// variables, and neither ever changes a result (bit-identity contract).
// The `--report` JSON embeds the resolved effective configuration under
// "config".
//
// `--check` runs the strt::check domain lint (task, task/supply system,
// supply curve) before the analysis and prints its diagnostics; errors
// abort with exit code 1.  `--check=strict` additionally treats warnings
// as errors.  Diagnostics flow into the `--report` JSON either way
// (check.report / check.errors / check.warnings fields).  Checking never
// changes the analysis results -- it only gates them.
//
// Task file format (see src/io/parse.hpp):
//     task burst
//     vertex B wcet 8 deadline 60
//     vertex T wcet 1 deadline 20
//     edge B T sep 9
//     edge T T sep 9
//     edge T B sep 70
//
// Supply spec examples: "tdma slot 3 cycle 8",
// "periodic budget 4 period 9", "dedicated rate 1",
// "bounded_delay rate 3/4 delay 5".

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "base/config.hpp"
#include "check/check.hpp"
#include "core/abstractions.hpp"
#include "engine/workspace.hpp"
#include "exec/exec.hpp"
#include "io/dot.hpp"
#include "io/parse.hpp"
#include "io/table.hpp"
#include "obs/report.hpp"
#include "svc/api.hpp"

using namespace strt;

namespace {

constexpr const char* kDemoTask = R"(# built-in demo workload
task burst
vertex B wcet 8 deadline 60
vertex T wcet 1 deadline 20
edge B T sep 9
edge T T sep 9
edge T B sep 70
)";

std::string show(Time t) {
  return t.is_unbounded() ? "unbounded" : std::to_string(t.count());
}

}  // namespace

int main(int argc, char** argv) {
  std::string task_text = kDemoTask;
  std::string supply_text = "tdma slot 3 cycle 8";
  std::optional<Time> deadline;
  std::string report_path;
  std::string snapshot_flag;
  std::string budget_flag;
  bool no_cache = false;
  bool check = false;
  bool check_strict = false;
  std::optional<Time> coarsen;

  // Peel off the `--flag` arguments wherever they appear; the remaining
  // positional arguments keep their original meaning.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "--report requires a file path\n";
        return 2;
      }
      report_path = argv[++i];
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--snapshot") {
      if (i + 1 >= argc) {
        std::cerr << "--snapshot requires a file path\n";
        return 2;
      }
      snapshot_flag = argv[++i];
    } else if (arg == "--cache-budget") {
      if (i + 1 >= argc) {
        std::cerr << "--cache-budget requires a byte count (e.g. 64M)\n";
        return 2;
      }
      budget_flag = argv[++i];
      if (!cfg::parse_bytes(budget_flag)) {
        std::cerr << "--cache-budget: cannot parse '" << budget_flag
                  << "'\n";
        return 2;
      }
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check=strict") {
      check = true;
      check_strict = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads requires a count\n";
        return 2;
      }
      exec::set_thread_count(static_cast<std::size_t>(
          std::stoull(argv[++i])));
    } else if (arg == "--coarsen") {
      coarsen = Time(64);
    } else if (arg.rfind("--coarsen=", 0) == 0) {
      const long long g = std::stoll(arg.substr(10));
      if (g < 1) {
        std::cerr << "--coarsen granularity must be >= 1\n";
        return 2;
      }
      coarsen = Time(g);
    } else {
      args.emplace_back(arg);
    }
  }

  if (args.size() >= 2) {
    std::ifstream file(args[0]);
    if (!file) {
      std::cerr << "cannot open task file '" << args[0] << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    task_text = buffer.str();
    supply_text = args[1];
    if (args.size() >= 3) deadline = Time(std::stoll(args[2]));
  } else if (!args.empty()) {
    std::cerr << "usage: analyze_file <task-file> \"<supply spec>\" "
                 "[deadline] [--report out.json] [--no-cache] "
                 "[--snapshot PATH] [--cache-budget BYTES] "
                 "[--check[=strict]] [--threads N] [--coarsen[=G]]\n"
                 "(no positional arguments runs a built-in demo)\n";
    return 2;
  }

  check::CheckResult lint;
  std::optional<DrtTask> parsed;
  if (check) {
    ParseResult res = parse_task_checked(task_text);
    lint.merge(std::move(res.diagnostics));
    parsed = std::move(res.task);
  } else {
    try {
      parsed = parse_task(task_text);
    } catch (const std::invalid_argument& e) {
      std::cerr << "task: " << e.what() << '\n';
      return 2;
    }
  }
  const Supply supply = [&] {
    try {
      return parse_supply(supply_text);
    } catch (const std::invalid_argument& e) {
      std::cerr << "supply: " << e.what() << '\n';
      std::exit(2);
    }
  }();

  if (check && !parsed) {
    if (!lint.clean()) lint.print(std::cerr);
    std::cerr << "check: " << lint.error_count() << " error(s), "
              << lint.warning_count() << " warning(s)\n";
    return 1;
  }
  if (!parsed) return 2;
  DrtTask task = std::move(*parsed);

  std::cout << "Task:   " << task << '\n';
  std::cout << "Supply: " << supply.describe() << "\n\n";

  // One workspace shared across the whole run: the unified request below
  // and the coarser abstractions reuse the exact rbf/sbf the earlier
  // steps materialized.  With a snapshot path resolved (flag >
  // STRT_SNAPSHOT) the run warm-starts from disk and saves back at the
  // end; a missing or rejected snapshot simply cold-starts.
  const std::string snapshot_path = cfg::get_string(
      "STRT_SNAPSHOT", "",
      snapshot_flag.empty()
          ? std::nullopt
          : std::optional<std::string_view>(snapshot_flag));
  const std::uint64_t cache_budget = cfg::get_bytes(
      "STRT_CACHE_BUDGET", 0,
      budget_flag.empty() ? std::nullopt
                          : std::optional<std::string_view>(budget_flag));
  engine::Workspace ws(!no_cache, cache_budget);
  if (!snapshot_path.empty()) (void)ws.load_snapshot(snapshot_path);

  // The headline structural analysis goes through the unified request
  // API: svc::run_request lints the system (the same strt::check passes
  // `--check` used to invoke by hand), runs the analysis, and hands back
  // a tagged outcome plus the diagnostics.
  svc::AnalysisRequest request;
  request.kind = svc::AnalysisKind::kStructural;
  request.tasks = {task};
  request.supply = supply;
  if (coarsen) request.common.coarsen_g = *coarsen;
  const svc::AnalysisOutcome outcome = svc::run_request(ws, request);
  lint.merge(outcome.diagnostics);
  if (check) {
    if (!lint.clean()) lint.print(std::cerr);
    const bool gate =
        !lint.ok() || (check_strict && lint.warning_count() > 0);
    if (gate) {
      std::cerr << "check: " << lint.error_count() << " error(s), "
                << lint.warning_count() << " warning(s)"
                << (check_strict ? " (strict: warnings are fatal)" : "")
                << '\n';
      return 1;
    }
  } else if (outcome.status == svc::OutcomeStatus::kInvalid) {
    lint.print(std::cerr);
    std::cerr << "model rejected by the validate front gate (re-run with "
                 "--check for details)\n";
    return 1;
  }

  if (outcome.certified_error) {
    if (const StructuralResult* s = outcome.structural()) {
      std::cout << "Certified coarse analysis: delay <= " << show(s->delay)
                << ", certified error " << show(*outcome.certified_error)
                << " (the exact curve bound lies within that bracket)\n\n";
    }
  }

  obs::RunReport report("analyze_file");
  outcome.append_to_report(report);
  report.put("task", task.name());
  report.put("supply", supply.describe());
  report.put("vertices", static_cast<std::int64_t>(task.vertex_count()));
  report.put("edges", static_cast<std::int64_t>(task.edge_count()));
  if (deadline) report.put("deadline", deadline->count());

  Table table({"analysis", "delay", "backlog", "busy window",
               deadline ? "meets deadline" : "-"});
  for (const WorkloadAbstraction a : kAllAbstractions) {
    const AbstractionResult r = delay_with_abstraction(ws, task, supply, a);
    std::string verdict = "-";
    if (deadline) {
      verdict = (!r.delay.is_unbounded() && r.delay <= *deadline) ? "yes"
                                                                  : "no";
    }
    table.add_row({std::string(abstraction_name(a)), show(r.delay),
                   r.backlog.is_unbounded()
                       ? "unbounded"
                       : std::to_string(r.backlog.count()),
                   show(r.busy_window), verdict});
    const std::string key = "delay." + std::string(abstraction_name(a));
    if (r.delay.is_unbounded()) {
      report.put(key, "unbounded");
    } else {
      report.put(key, r.delay.count());
    }
  }
  table.print(std::cout);

  const engine::WorkspaceStats cache = ws.stats();
  report.put("cache.enabled", ws.caching());
  report.put("cache.hits", static_cast<std::int64_t>(cache.hits));
  report.put("cache.misses", static_cast<std::int64_t>(cache.misses));
  report.put("cache.bytes", static_cast<std::int64_t>(cache.bytes));
  report.put("cache.coarse_hits",
             static_cast<std::int64_t>(cache.coarse_hits));
  if (!snapshot_path.empty()) {
    std::string save_error;
    if (!ws.save_snapshot(snapshot_path, &save_error)) {
      std::cerr << "snapshot save failed: " << save_error << '\n';
    }
    report.put("snapshot.path", snapshot_path);
  }
  // The exact configuration this run resolved (flag > STRT_* env >
  // default, per knob), so a report is reproducible on its own.
  report.put_json("config", cfg::effective_config_json());

  report.capture();
  if (obs::enabled()) {
    std::cout << '\n';
    print_report_table(std::cout, report);
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::app);
    if (!out) {
      std::cerr << "cannot open report file '" << report_path << "'\n";
      return 2;
    }
    report.write_json_line(out);
    std::cout << "\nReport appended to " << report_path << '\n';
  }

  std::cout << "\nGraphviz:\n" << to_dot(task);
  return 0;
}
