// File-driven analysis: read a task description and a supply description,
// run the full abstraction spectrum, print the verdict.
//
//   $ ./examples/analyze_file <task-file> "<supply spec>" [deadline]
//   $ ./examples/analyze_file            # runs a built-in demo input
//
// Task file format (see src/io/parse.hpp):
//     task burst
//     vertex B wcet 8 deadline 60
//     vertex T wcet 1 deadline 20
//     edge B T sep 9
//     edge T T sep 9
//     edge T B sep 70
//
// Supply spec examples: "tdma slot 3 cycle 8",
// "periodic budget 4 period 9", "dedicated rate 1",
// "bounded_delay rate 3/4 delay 5".

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/abstractions.hpp"
#include "io/dot.hpp"
#include "io/parse.hpp"
#include "io/table.hpp"

using namespace strt;

namespace {

constexpr const char* kDemoTask = R"(# built-in demo workload
task burst
vertex B wcet 8 deadline 60
vertex T wcet 1 deadline 20
edge B T sep 9
edge T T sep 9
edge T B sep 70
)";

std::string show(Time t) {
  return t.is_unbounded() ? "unbounded" : std::to_string(t.count());
}

}  // namespace

int main(int argc, char** argv) {
  std::string task_text = kDemoTask;
  std::string supply_text = "tdma slot 3 cycle 8";
  std::optional<Time> deadline;

  if (argc >= 3) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open task file '" << argv[1] << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    task_text = buffer.str();
    supply_text = argv[2];
    if (argc >= 4) deadline = Time(std::stoll(argv[3]));
  } else if (argc != 1) {
    std::cerr << "usage: analyze_file <task-file> \"<supply spec>\" "
                 "[deadline]\n(no arguments runs a built-in demo)\n";
    return 2;
  }

  DrtTask task = [&] {
    try {
      return parse_task(task_text);
    } catch (const std::invalid_argument& e) {
      std::cerr << "task: " << e.what() << '\n';
      std::exit(2);
    }
  }();
  const Supply supply = [&] {
    try {
      return parse_supply(supply_text);
    } catch (const std::invalid_argument& e) {
      std::cerr << "supply: " << e.what() << '\n';
      std::exit(2);
    }
  }();

  std::cout << "Task:   " << task << '\n';
  std::cout << "Supply: " << supply.describe() << "\n\n";

  Table table({"analysis", "delay", "backlog", "busy window",
               deadline ? "meets deadline" : "-"});
  for (const WorkloadAbstraction a : kAllAbstractions) {
    const AbstractionResult r = delay_with_abstraction(task, supply, a);
    std::string verdict = "-";
    if (deadline) {
      verdict = (!r.delay.is_unbounded() && r.delay <= *deadline) ? "yes"
                                                                  : "no";
    }
    table.add_row({std::string(abstraction_name(a)), show(r.delay),
                   r.backlog.is_unbounded()
                       ? "unbounded"
                       : std::to_string(r.backlog.count()),
                   show(r.busy_window), verdict});
  }
  table.print(std::cout);

  std::cout << "\nGraphviz:\n" << to_dot(task);
  return 0;
}
