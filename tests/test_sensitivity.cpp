#include <gtest/gtest.h>

#include "core/sensitivity.hpp"
#include "core/structural.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(Sensitivity, RebuildHelpers) {
  const DrtTask task = test::small_task();
  const DrtTask grown = with_wcet_increase(task, 1, Work(5));
  EXPECT_EQ(grown.vertex(1).wcet, task.vertex(1).wcet + Work(5));
  EXPECT_EQ(grown.vertex(0).wcet, task.vertex(0).wcet);
  EXPECT_EQ(grown.edge_count(), task.edge_count());

  const DrtTask denser = with_separation_decrease(task, 0, Time(2));
  EXPECT_EQ(denser.edges()[0].separation,
            task.edges()[0].separation - Time(2));
  EXPECT_EQ(denser.edges()[1].separation, task.edges()[1].separation);
  EXPECT_THROW((void)with_separation_decrease(task, 0, Time(99)),
               std::invalid_argument);
  EXPECT_THROW((void)with_separation_decrease(task, 99, Time(1)),
               std::invalid_argument);
}

TEST(Sensitivity, SporadicWcetSlackIsExact) {
  // Sporadic C=2 T=10 on a unit processor with delay cap 6: delay = C, so
  // the wcet can grow by exactly 4.
  const SporadicTask sp{"s", Work(2), Time(10), Time(10)};
  const DrtTask task = sp.to_drt();
  SensitivityOptions opts;
  opts.delay_cap = Time(6);
  const SensitivityReport rep =
      sensitivity_analysis(test::workspace(), task, Supply::dedicated(1), opts);
  ASSERT_TRUE(rep.feasible);
  ASSERT_EQ(rep.wcet_slack.size(), 1u);
  EXPECT_EQ(rep.wcet_slack[0], Work(4));
  // Separation slack: with C=2 and the cap met at any density on a unit
  // processor (rbf(t) = 2ceil(t/T) vs t), even separation 1 keeps... no:
  // at separation 1 utilization is 2 > 1 -> overload, delay unbounded.
  // The verdict flips somewhere; slack must be < 9 and consistent.
  ASSERT_EQ(rep.separation_slack.size(), 1u);
  const Time slack = rep.separation_slack[0];
  EXPECT_LT(slack, Time(9));
  // Boundary check: holds at the reported slack, fails just beyond.
  StructuralOptions sopts;
  sopts.want_witness = false;
  const DrtTask at = with_separation_decrease(task, 0, slack);
  EXPECT_LE(structural_delay(test::workspace(), at, Supply::dedicated(1), sopts).delay,
            Time(6));
  if (slack + Time(1) < Time(10)) {
    const DrtTask beyond =
        with_separation_decrease(task, 0, slack + Time(1));
    const StructuralResult r =
        structural_delay(test::workspace(), beyond, Supply::dedicated(1), sopts);
    EXPECT_TRUE(r.delay.is_unbounded() || r.delay > Time(6));
  }
}

TEST(Sensitivity, InfeasibleTaskHasZeroSlack) {
  // Deadline 1 with wcet 3: per-vertex verdict fails outright.
  DrtBuilder b("tight");
  const VertexId v = b.add_vertex("V", Work(3), Time(1));
  b.add_edge(v, v, Time(10));
  const SensitivityReport rep =
      sensitivity_analysis(test::workspace(), std::move(b).build(), Supply::dedicated(1));
  EXPECT_FALSE(rep.feasible);
  EXPECT_EQ(rep.wcet_slack[0], Work(0));
  EXPECT_EQ(rep.separation_slack[0], Time(0));
}

TEST(Sensitivity, SlacksAreBoundaryTight) {
  Rng rng(515);
  int checked = 0;
  StructuralOptions sopts;
  sopts.want_witness = false;
  while (checked < 5) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 4;
    params.min_separation = Time(5);
    params.max_separation = Time(20);
    params.target_utilization = 0.3;
    params.deadline_factor = 1.0;
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply = Supply::tdma(Time(3), Time(5));

    SensitivityOptions opts;
    const StructuralResult base = structural_delay(test::workspace(), task, supply, sopts);
    if (base.delay.is_unbounded() || !base.meets_vertex_deadlines) continue;
    ++checked;
    const SensitivityReport rep = sensitivity_analysis(test::workspace(), task, supply, opts);
    ASSERT_TRUE(rep.feasible);

    for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
         ++v) {
      const Work slack = rep.wcet_slack[static_cast<std::size_t>(v)];
      if (slack.is_unbounded()) continue;
      const DrtTask at = with_wcet_increase(task, v, slack);
      EXPECT_TRUE(
          structural_delay(test::workspace(), at, supply, sopts).meets_vertex_deadlines)
          << "vertex " << v;
      const DrtTask beyond = with_wcet_increase(task, v, slack + Work(1));
      const StructuralResult r = structural_delay(test::workspace(), beyond, supply, sopts);
      EXPECT_TRUE(r.delay.is_unbounded() || !r.meets_vertex_deadlines)
          << "vertex " << v;
    }
  }
}

TEST(PerVertexDelays, BoundGlobalDelayAndRespectDeadlineVerdict) {
  Rng rng(8181);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.target_utilization = 0.35;
    const DrtTask task = random_drt(rng, params).task;
    const Supply supply = Supply::dedicated(1);
    const StructuralResult res = structural_delay(test::workspace(), task, supply);
    ASSERT_FALSE(res.delay.is_unbounded());
    ASSERT_EQ(res.vertex_delays.size(), task.vertex_count());
    Time worst(0);
    bool all_meet = true;
    for (VertexId v = 0;
         static_cast<std::size_t>(v) < task.vertex_count(); ++v) {
      const Time d = res.vertex_delays[static_cast<std::size_t>(v)];
      worst = max(worst, d);
      all_meet = all_meet && d <= task.vertex(v).deadline;
    }
    EXPECT_EQ(worst, res.delay) << "trial " << trial;
    EXPECT_EQ(all_meet, res.meets_vertex_deadlines) << "trial " << trial;
  }
}

}  // namespace
}  // namespace strt
