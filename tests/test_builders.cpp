#include <gtest/gtest.h>

#include "base/checked.hpp"
#include "curves/builders.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(PeriodicArrival, MatchesCeilFormula) {
  for (const auto& [wcet, period, jitter] :
       {std::tuple{2, 5, 0}, {3, 7, 2}, {1, 1, 0}, {4, 10, 9}}) {
    const Staircase a =
        curve::periodic_arrival(Work(wcet), Time(period), Time(jitter),
                                Time(80));
    EXPECT_EQ(a.value(Time(0)), Work(0));
    for (std::int64_t t = 1; t <= 200; ++t) {  // exercises the tail too
      const std::int64_t expect =
          wcet * checked::ceil_div(t + jitter, period);
      EXPECT_EQ(a.value(Time(t)).count(), expect)
          << "C=" << wcet << " T=" << period << " J=" << jitter
          << " t=" << t;
    }
  }
}

TEST(PeriodicArrival, RejectsShortHorizon) {
  EXPECT_THROW(
      (void)curve::periodic_arrival(Work(1), Time(10), Time(5), Time(10)),
      std::invalid_argument);
}

TEST(TokenBucket, MatchesFloorFormula) {
  const Rational rate(3, 4);
  const Staircase a = curve::token_bucket(Work(5), rate, Time(40));
  EXPECT_EQ(a.value(Time(0)), Work(0));
  for (std::int64_t t = 1; t <= 100; ++t) {
    const std::int64_t expect = 5 + checked::floor_div(3 * t, 4);
    EXPECT_EQ(a.value(Time(t)).count(), expect) << "t=" << t;
  }
}

TEST(RateLatency, MatchesFormula) {
  const Rational rate(2, 3);
  const Staircase b = curve::rate_latency(rate, Time(7), Time(60));
  for (std::int64_t t = 0; t <= 150; ++t) {
    const std::int64_t expect =
        std::max<std::int64_t>(0, checked::floor_div(2 * (t - 7), 3));
    EXPECT_EQ(b.value(Time(t)).count(), expect) << "t=" << t;
  }
}

TEST(Dedicated, IsLinear) {
  const Staircase b = curve::dedicated(3, Time(20));
  for (std::int64_t t = 0; t <= 50; ++t) {
    EXPECT_EQ(b.value(Time(t)).count(), 3 * t);
  }
}

TEST(TdmaSupply, MatchesClosedForm) {
  for (const auto& [slot, cycle] :
       {std::pair{2, 5}, {1, 4}, {5, 5}, {3, 10}}) {
    const Staircase s = curve::tdma_supply(Time(slot), Time(cycle), Time(50));
    for (std::int64_t t = 0; t <= 120; ++t) {
      const std::int64_t q = t / cycle;
      const std::int64_t r = t % cycle;
      const std::int64_t expect =
          slot * q + std::max<std::int64_t>(0, r - (cycle - slot));
      EXPECT_EQ(s.value(Time(t)).count(), expect)
          << "slot=" << slot << " cycle=" << cycle << " t=" << t;
    }
  }
}

TEST(TdmaSupply, FullSlotIsDedicated) {
  const Staircase s = curve::tdma_supply(Time(6), Time(6), Time(30));
  for (std::int64_t t = 0; t <= 60; ++t) {
    EXPECT_EQ(s.value(Time(t)).count(), t);
  }
}

// Brute-force worst case of a periodic resource: minimize over all
// per-period budget placements and window starts the service inside a
// window of length t.  Placements are independent per period, so for a
// fixed window start the minimum is the sum of per-period minima.
std::int64_t brute_periodic_sbf(std::int64_t budget, std::int64_t period,
                                std::int64_t t) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // Window start within one period is enough by periodicity.
  for (std::int64_t start = 0; start < period; ++start) {
    std::int64_t total = 0;
    // Periods overlapping [start, start+t).
    const std::int64_t first = 0;
    const std::int64_t last = (start + t - 1) / period;
    for (std::int64_t k = first; k <= last; ++k) {
      // Budget occupies [k*period + o, k*period + o + budget) for the
      // adversarial offset o in [0, period - budget].
      std::int64_t min_overlap = std::numeric_limits<std::int64_t>::max();
      for (std::int64_t o = 0; o + budget <= period; ++o) {
        const std::int64_t lo = std::max(start, k * period + o);
        const std::int64_t hi =
            std::min(start + t, k * period + o + budget);
        min_overlap = std::min(min_overlap, std::max<std::int64_t>(0, hi - lo));
      }
      total += min_overlap;
    }
    best = std::min(best, total);
  }
  return t == 0 ? 0 : best;
}

TEST(PeriodicResource, MatchesBruteForceAdversary) {
  for (const auto& [budget, period] :
       {std::pair{1, 3}, {2, 5}, {3, 4}, {2, 2}}) {
    const Staircase s =
        curve::periodic_resource(Time(budget), Time(period), Time(40));
    for (std::int64_t t = 0; t <= 30; ++t) {
      EXPECT_EQ(s.value(Time(t)).count(),
                brute_periodic_sbf(budget, period, t))
          << "budget=" << budget << " period=" << period << " t=" << t;
    }
  }
}

TEST(PeriodicResource, TailIsExactlyPeriodic) {
  const Staircase s = curve::periodic_resource(Time(3), Time(8), Time(32));
  for (std::int64_t t = 8; t <= 80; ++t) {
    EXPECT_EQ(s.value(Time(t + 8)), s.value(Time(t)) + Work(3)) << t;
  }
}

TEST(ArrivalOfTrace, MatchesNaiveWindowMax) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<curve::TraceJob> jobs;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      jobs.push_back(curve::TraceJob{Time(rng.uniform_int(0, 30)),
                                     Work(rng.uniform_int(1, 4))});
    }
    const Time horizon(35);
    const Staircase a = curve::arrival_of_trace(jobs, horizon);
    for (std::int64_t t = 0; t <= horizon.count(); ++t) {
      std::int64_t expect = 0;
      for (std::int64_t x = 0; x <= 31; ++x) {
        std::int64_t sum = 0;
        for (const auto& j : jobs) {
          if (j.release.count() >= x && j.release.count() < x + t) {
            sum += j.wcet.count();
          }
        }
        expect = std::max(expect, sum);
      }
      EXPECT_EQ(a.value(Time(t)).count(), expect)
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(ArrivalOfTrace, IsSubadditiveStaircase) {
  std::vector<curve::TraceJob> jobs{{Time(0), Work(3)},
                                    {Time(4), Work(1)},
                                    {Time(5), Work(2)},
                                    {Time(11), Work(3)}};
  const Staircase a = curve::arrival_of_trace(jobs, Time(20));
  EXPECT_EQ(a.value(Time(1)), Work(3));   // single heaviest job
  EXPECT_EQ(a.value(Time(2)), Work(3));
  EXPECT_EQ(a.value(Time(12)), Work(9));  // whole trace fits
}

}  // namespace
}  // namespace strt
