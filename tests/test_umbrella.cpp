// Compiles the umbrella header and exercises the cross-module additions
// (EDF dimensioning, FP per-vertex verdicts, Audsley consistency).

#include <gtest/gtest.h>

#include "strt.hpp"

#include "testutil.hpp"

namespace strt {
namespace {

TEST(Umbrella, EndToEndSmoke) {
  // One pass through the whole public surface from a single include.
  const SporadicTask sp{"s", Work(2), Time(8), Time(8)};
  const DrtTask task = sp.to_drt();
  const Supply supply = Supply::tdma(Time(3), Time(6));
  const StructuralResult st = structural_delay(test::workspace(), task, supply);
  EXPECT_FALSE(st.delay.is_unbounded());
  EXPECT_TRUE(st.meets_vertex_deadlines);
  const std::string dot = to_dot(task);
  EXPECT_FALSE(dot.empty());
}

TEST(EdfDimensioning, FindsMinimalSlot) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(1), Time(6), Time(6)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(2), Time(12), Time(12)}.to_drt());
  const auto slot = min_tdma_slot_edf(test::workspace(), tasks, Time(8));
  ASSERT_TRUE(slot.has_value());
  // Verdict boundary: schedulable at *slot, not below.
  EXPECT_TRUE(
      edf_schedulable(test::workspace(), tasks, Supply::tdma(*slot, Time(8))).schedulable);
  if (*slot > Time(1)) {
    EXPECT_FALSE(
        edf_schedulable(test::workspace(), tasks, Supply::tdma(*slot - Time(1), Time(8)))
            .schedulable);
  }
}

TEST(EdfDimensioning, InfeasibleReturnsNullopt) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(9), Time(10), Time(3)}.to_drt());
  EXPECT_FALSE(min_tdma_slot_edf(test::workspace(), tasks, Time(4)).has_value());
}

TEST(FixedPriority, ExposesPerVertexVerdicts) {
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"hi", Work(1), Time(4), Time(4)}.to_drt());
  tasks.push_back(SporadicTask{"lo", Work(2), Time(10), Time(10)}.to_drt());
  const FpResult res = fixed_priority_analysis(test::workspace(), tasks, Supply::dedicated(1));
  ASSERT_FALSE(res.overloaded);
  for (const FpTaskResult& t : res.tasks) {
    ASSERT_EQ(t.vertex_delays.size(), 1u);
    EXPECT_EQ(t.vertex_delays[0], t.structural_delay);
    EXPECT_TRUE(t.meets_vertex_deadlines);
  }
}

TEST(FixedPriority, PerVertexVerdictMatchesAudsleyAtFixedOrder) {
  // If the FP analysis says every task passes in the given order, Audsley
  // must find some feasible order too.
  std::vector<DrtTask> tasks;
  tasks.push_back(SporadicTask{"a", Work(1), Time(5), Time(5)}.to_drt());
  tasks.push_back(SporadicTask{"b", Work(2), Time(9), Time(9)}.to_drt());
  tasks.push_back(SporadicTask{"c", Work(2), Time(20), Time(20)}.to_drt());
  const Supply supply = Supply::dedicated(1);
  const FpResult fp = fixed_priority_analysis(test::workspace(), tasks, supply);
  ASSERT_FALSE(fp.overloaded);
  bool all_pass = true;
  for (const FpTaskResult& t : fp.tasks) {
    all_pass = all_pass && t.meets_vertex_deadlines;
  }
  ASSERT_TRUE(all_pass);
  const AudsleyResult aud = audsley_assignment(test::workspace(), tasks, supply);
  EXPECT_TRUE(aud.feasible);
}

}  // namespace
}  // namespace strt
