#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "graph/explore.hpp"
#include "model/generator.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

/// Brute-force: max released work per span over all paths (DFS).
std::map<std::int64_t, std::int64_t> brute_pareto(const DrtTask& task,
                                                  Time limit) {
  std::map<std::int64_t, std::int64_t> best;  // span -> max work
  std::function<void(VertexId, Time, Work)> dfs = [&](VertexId v, Time el,
                                                      Work w) {
    auto& slot = best[el.count()];
    slot = std::max(slot, w.count());
    for (std::int32_t ei : task.out_edges(v)) {
      const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
      const Time next = el + e.separation;
      if (next > limit) continue;
      dfs(e.to, next, w + task.vertex(e.to).wcet);
    }
  };
  for (VertexId v = 0; static_cast<std::size_t>(v) < task.vertex_count();
       ++v) {
    dfs(v, Time(0), task.vertex(v).wcet);
  }
  return best;
}

/// Max work over spans <= s (what the frontier's skyline represents).
std::int64_t prefix_max(const std::map<std::int64_t, std::int64_t>& m,
                        std::int64_t s) {
  std::int64_t best = 0;
  for (const auto& [span, w] : m) {
    if (span > s) break;
    best = std::max(best, w);
  }
  return best;
}

TEST(Explore, FrontierMatchesBruteForceSkyline) {
  const DrtTask task = test::small_task();
  const Time limit(40);
  const ExploreResult res =
      explore_paths(task, ExploreOptions{.elapsed_limit = limit});
  const auto brute = brute_pareto(task, limit);

  // Build skyline from the frontier: max work at span <= s.
  std::map<std::int64_t, std::int64_t> frontier_best;
  for (std::int32_t idx : res.frontier) {
    const PathState& st = res.arena[static_cast<std::size_t>(idx)];
    auto& slot = frontier_best[st.elapsed.count()];
    slot = std::max(slot, st.work.count());
  }
  for (std::int64_t s = 0; s <= limit.count(); ++s) {
    EXPECT_EQ(prefix_max(frontier_best, s), prefix_max(brute, s))
        << "span " << s;
  }
}

TEST(Explore, PruningDoesNotChangeTheSkyline) {
  Rng rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    DrtGenParams params;
    params.min_vertices = 3;
    params.max_vertices = 5;
    params.min_separation = Time(2);
    params.max_separation = Time(9);
    params.target_utilization = 0.4;
    const DrtTask task = random_drt(rng, params).task;
    const Time limit(30);
    const ExploreResult pruned =
        explore_paths(task, ExploreOptions{.elapsed_limit = limit});
    const ExploreResult full = explore_paths(
        task,
        ExploreOptions{.elapsed_limit = limit, .prune = false});
    auto skyline = [](const ExploreResult& r, Time lim) {
      std::map<std::int64_t, std::int64_t> m;
      for (std::int32_t idx : r.frontier) {
        const PathState& st = r.arena[static_cast<std::size_t>(idx)];
        auto& slot = m[st.elapsed.count()];
        slot = std::max(slot, st.work.count());
      }
      std::map<std::int64_t, std::int64_t> pm;
      std::int64_t best = 0;
      for (std::int64_t s = 0; s <= lim.count(); ++s) {
        const auto it = m.find(s);
        if (it != m.end()) best = std::max(best, it->second);
        pm[s] = best;
      }
      return pm;
    };
    EXPECT_EQ(skyline(pruned, limit), skyline(full, limit))
        << "trial " << trial;
    EXPECT_LE(pruned.stats.expanded, full.stats.expanded);
  }
}

TEST(Explore, StatsAreConsistent) {
  const DrtTask task = test::small_task();
  const ExploreResult res =
      explore_paths(task, ExploreOptions{.elapsed_limit = Time(60)});
  EXPECT_GT(res.stats.generated, 0u);
  EXPECT_GT(res.stats.expanded, 0u);
  EXPECT_EQ(res.stats.generated, res.arena.size() + res.stats.pruned);
  EXPECT_FALSE(res.frontier.empty());
}

TEST(Explore, PathReconstruction) {
  const DrtTask task = test::small_task();
  const ExploreResult res =
      explore_paths(task, ExploreOptions{.elapsed_limit = Time(30)});
  for (std::int32_t idx : res.frontier) {
    const auto path = res.path_to(idx);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front().elapsed, Time(0));
    EXPECT_EQ(path.front().work, task.vertex(path.front().vertex).wcet);
    // Each hop must correspond to an existing edge with matching
    // separation and accumulate work correctly.
    for (std::size_t i = 1; i < path.size(); ++i) {
      const Time gap = path[i].elapsed - path[i - 1].elapsed;
      bool edge_found = false;
      for (std::int32_t ei : task.out_edges(path[i - 1].vertex)) {
        const DrtEdge& e = task.edges()[static_cast<std::size_t>(ei)];
        if (e.to == path[i].vertex && e.separation == gap) {
          edge_found = true;
          break;
        }
      }
      EXPECT_TRUE(edge_found) << "hop " << i;
      EXPECT_EQ(path[i].work,
                path[i - 1].work + task.vertex(path[i].vertex).wcet);
    }
    const PathState& last = res.arena[static_cast<std::size_t>(idx)];
    EXPECT_EQ(path.back().work, last.work);
    EXPECT_EQ(path.back().elapsed, last.elapsed);
  }
}

TEST(Explore, ZeroLimitKeepsOnlySeeds) {
  const DrtTask task = test::small_task();
  const ExploreResult res =
      explore_paths(task, ExploreOptions{.elapsed_limit = Time(0)});
  for (std::int32_t idx : res.frontier) {
    EXPECT_EQ(res.arena[static_cast<std::size_t>(idx)].elapsed, Time(0));
  }
}

TEST(Explore, StateCapReturnsAbortedPartialResult) {
  const DrtTask task = test::small_task();
  const ExploreResult capped =
      explore_paths(task, ExploreOptions{.elapsed_limit = Time(500),
                                         .prune = false,
                                         .max_states = 100});
  EXPECT_TRUE(capped.stats.aborted);
  EXPECT_EQ(capped.arena.size(), 100u);
  // The explored prefix is sound and usable: its stats stay arithmetic-
  // consistent and the frontier is the prefix's own.
  EXPECT_EQ(capped.stats.generated,
            capped.arena.size() + capped.stats.pruned);
  EXPECT_FALSE(capped.frontier.empty());

  // The same exploration with pruning stays polynomial, never reaches
  // the cap, and is not aborted.
  const ExploreResult pruned =
      explore_paths(task, ExploreOptions{.elapsed_limit = Time(500)});
  EXPECT_FALSE(pruned.stats.aborted);
}

TEST(Explore, NegativeLimitRejected) {
  const DrtTask task = test::small_task();
  EXPECT_THROW(
      (void)explore_paths(task, ExploreOptions{.elapsed_limit = Time(-1)}),
      std::invalid_argument);
}

}  // namespace
}  // namespace strt
