#include <gtest/gtest.h>

#include "core/fixed_priority.hpp"
#include "core/joint_fp.hpp"
#include "model/generator.hpp"
#include "model/sporadic.hpp"
#include "sim/service.hpp"
#include "sim/trace.hpp"
#include "testutil.hpp"

namespace strt {
namespace {

TEST(JointFp, SporadicHpHasOnePathShape) {
  // A sporadic high-priority task has exactly one maximal minimum-gap
  // path per busy window, so joint == rbf-based.
  const DrtTask hp = SporadicTask{"hp", Work(1), Time(4), Time(4)}.to_drt();
  const DrtTask lp = SporadicTask{"lp", Work(2), Time(10), Time(10)}.to_drt();
  const JointFpResult res =
      joint_two_task_fp(test::workspace(), hp, lp, Supply::dedicated(1));
  ASSERT_FALSE(res.overloaded);
  EXPECT_EQ(res.joint_delay, res.rbf_delay);
  EXPECT_EQ(res.joint_delay, Time(3));  // 1 (hp) + 2 (own)
}

TEST(JointFp, NeverExceedsRbfBaseline) {
  Rng rng(818);
  int checked = 0;
  while (checked < 10) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 3;
    params.min_separation = Time(5);
    params.max_separation = Time(18);
    params.target_utilization = 0.3;
    const DrtTask hp = random_drt(rng, params).task;
    const DrtTask lp = random_drt(rng, params).task;
    const Supply supply = Supply::dedicated(1);
    JointFpResult res;
    try {
      res = joint_two_task_fp(test::workspace(), hp, lp, supply);
    } catch (const std::runtime_error&) {
      continue;  // path cap: pick another instance
    }
    if (res.overloaded) continue;
    ++checked;
    EXPECT_LE(res.joint_delay, res.rbf_delay) << "instance " << checked;
    EXPECT_GT(res.paths_analyzed, 0u);
    EXPECT_LE(res.paths_analyzed, res.paths_enumerated);
  }
}

TEST(JointFp, StrictGainExistsForBranchyInterference) {
  // hp alternates between a heavy mode and a light mode via an exclusive
  // branch: rbf takes the heavy burst at small windows AND the dense
  // light cycle at large windows -- no single path does both.
  DrtBuilder hb("hp");
  const VertexId heavy = hb.add_vertex("heavy", Work(6), Time(100));
  const VertexId light = hb.add_vertex("light", Work(1), Time(100));
  hb.add_edge(heavy, heavy, Time(30));
  hb.add_edge(heavy, light, Time(30));
  hb.add_edge(light, light, Time(4));
  hb.add_edge(light, heavy, Time(30));
  const DrtTask hp = std::move(hb).build();

  const DrtTask lp = SporadicTask{"lp", Work(8), Time(60), Time(60)}.to_drt();
  const Supply supply = Supply::tdma(Time(4), Time(8));
  const JointFpResult res = joint_two_task_fp(test::workspace(), hp, lp, supply);
  ASSERT_FALSE(res.overloaded);
  EXPECT_LT(res.joint_delay, res.rbf_delay);  // the headline gain
  EXPECT_EQ(res.joint_delay, Time(32));
  EXPECT_EQ(res.rbf_delay, Time(40));
}

TEST(JointFp, SimulatedPreemptiveRunsRespectTheJointBound) {
  Rng rng(919);
  int checked = 0;
  while (checked < 6) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 3;
    params.min_separation = Time(6);
    params.max_separation = Time(16);
    params.target_utilization = 0.25;
    const DrtTask hp = random_drt(rng, params).task;
    const DrtTask lp = random_drt(rng, params).task;
    const Supply supply = Supply::tdma(Time(4), Time(6));
    JointFpResult res;
    try {
      res = joint_two_task_fp(test::workspace(), hp, lp, supply);
    } catch (const std::runtime_error&) {
      continue;
    }
    if (res.overloaded) continue;
    ++checked;

    const Time horizon(500);
    for (int run = 0; run < 10; ++run) {
      const Trace hp_tr = trace_random_walk(hp, rng, Time(400), 0.3, Time(6));
      const Trace lp_tr = trace_random_walk(lp, rng, Time(400), 0.3, Time(6));
      const ServicePattern slots =
          pattern_tdma(Time(4), Time(6),
                       Time(rng.uniform_int(0, 5)), horizon);
      // Preemptive FP: hp drains first each tick.
      std::size_t hn = 0;
      std::size_t ln = 0;
      std::vector<std::pair<Time, Work>> hq;
      std::vector<std::pair<Time, Work>> lq;
      for (std::int64_t t = 0; t < horizon.count(); ++t) {
        while (hn < hp_tr.size() && hp_tr[hn].release == Time(t)) {
          hq.emplace_back(Time(t), hp_tr[hn].wcet);
          ++hn;
        }
        while (ln < lp_tr.size() && lp_tr[ln].release == Time(t)) {
          lq.emplace_back(Time(t), lp_tr[ln].wcet);
          ++ln;
        }
        std::int64_t cap = slots[static_cast<std::size_t>(t)];
        while (cap > 0 && !hq.empty()) {
          const std::int64_t served =
              std::min(cap, hq.front().second.count());
          hq.front().second -= Work(served);
          cap -= served;
          if (hq.front().second == Work(0)) hq.erase(hq.begin());
        }
        while (cap > 0 && !lq.empty()) {
          const std::int64_t served =
              std::min(cap, lq.front().second.count());
          lq.front().second -= Work(served);
          cap -= served;
          if (lq.front().second == Work(0)) {
            const Time delay = Time(t + 1) - lq.front().first;
            EXPECT_LE(delay, res.joint_delay)
                << "instance " << checked << " run " << run;
            lq.erase(lq.begin());
          }
        }
      }
    }
  }
}

TEST(JointFpMulti, NoInterferenceEqualsSingleStream) {
  const DrtTask lp = SporadicTask{"lp", Work(3), Time(9), Time(9)}.to_drt();
  const JointFpResult res =
      joint_multi_task_fp(test::workspace(), {}, lp, Supply::dedicated(1));
  ASSERT_FALSE(res.overloaded);
  EXPECT_EQ(res.joint_delay, Time(3));
  EXPECT_EQ(res.rbf_delay, Time(3));
  EXPECT_EQ(res.paths_analyzed, 1u);  // the empty interference
}

TEST(JointFpMulti, ThreeTaskStackBeatsRbfLeftover) {
  // Two branchy interferers stacked above a sporadic victim; the rbf
  // aggregate charges the victim with both interferers' bursts and dense
  // cycles simultaneously, the joint analysis keeps each consistent.
  auto make_hp = [](std::int64_t heavy_sep, std::int64_t light_sep,
                    std::int64_t heavy_wcet) {
    DrtBuilder hb("hp");
    const VertexId heavy =
        hb.add_vertex("heavy", Work(heavy_wcet), Time(200));
    const VertexId light = hb.add_vertex("light", Work(1), Time(200));
    hb.add_edge(heavy, heavy, Time(heavy_sep));
    hb.add_edge(heavy, light, Time(heavy_sep));
    hb.add_edge(light, light, Time(light_sep));
    hb.add_edge(light, heavy, Time(heavy_sep));
    return std::move(hb).build();
  };
  const std::vector<DrtTask> hps{make_hp(30, 4, 6), make_hp(40, 6, 5)};
  const DrtTask lp =
      SporadicTask{"lp", Work(12), Time(90), Time(90)}.to_drt();
  const Supply supply = Supply::tdma(Time(5), Time(8));
  const JointFpResult res = joint_multi_task_fp(test::workspace(), hps, lp, supply);
  ASSERT_FALSE(res.overloaded);
  EXPECT_EQ(res.joint_delay, Time(63));
  EXPECT_EQ(res.rbf_delay, Time(69));
  EXPECT_EQ(res.paths_analyzed, 6u);  // cross product after pruning
}

TEST(JointFpMulti, AgreesWithTwoTaskVariant) {
  Rng rng(2626);
  int checked = 0;
  while (checked < 5) {
    DrtGenParams params;
    params.min_vertices = 2;
    params.max_vertices = 3;
    params.min_separation = Time(6);
    params.max_separation = Time(18);
    params.target_utilization = 0.25;
    const DrtTask hp = random_drt(rng, params).task;
    const DrtTask lp = random_drt(rng, params).task;
    const Supply supply = Supply::tdma(Time(4), Time(7));
    JointFpResult two;
    JointFpResult multi;
    try {
      two = joint_two_task_fp(test::workspace(), hp, lp, supply);
      multi = joint_multi_task_fp(test::workspace(), {&hp, 1}, lp, supply);
    } catch (const std::runtime_error&) {
      continue;
    }
    if (two.overloaded) continue;
    ++checked;
    EXPECT_EQ(two.joint_delay, multi.joint_delay);
    EXPECT_EQ(two.rbf_delay, multi.rbf_delay);
  }
}

TEST(JointFp, OverloadDetected) {
  const DrtTask hp = SporadicTask{"hp", Work(3), Time(4), Time(4)}.to_drt();
  const DrtTask lp = SporadicTask{"lp", Work(2), Time(4), Time(4)}.to_drt();
  const JointFpResult res =
      joint_two_task_fp(test::workspace(), hp, lp, Supply::dedicated(1));
  EXPECT_TRUE(res.overloaded);
  EXPECT_TRUE(res.joint_delay.is_unbounded());
}

}  // namespace
}  // namespace strt
